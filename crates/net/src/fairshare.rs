//! Max–min fair bandwidth allocation (progressive filling / water-filling).
//!
//! The cluster is a star: every node has one egress link and one ingress link of
//! fixed capacity into a non-blocking switch (the paper's 8 nodes on a 40GE switch
//! with 10 Gbps NICs — the switch fabric is never the bottleneck, the NICs are).
//! A flow consumes its source's egress and its destination's ingress; rates are the
//! classic max–min fair allocation:
//!
//! 1. every unfrozen flow grows at the same rate;
//! 2. when a link fills, all flows through it freeze at their current rate;
//! 3. repeat until all flows are frozen.
//!
//! The implementation is the standard iterative bottleneck-link algorithm, O(L·F)
//! worst case, with deterministic tie-breaking (lowest link index first).

/// A flow's endpoints for allocation purposes, as link indices.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FlowLinks {
    /// Egress link index of the source node.
    pub egress: usize,
    /// Ingress link index of the destination node.
    pub ingress: usize,
}

/// Computes max–min fair rates.
///
/// `egress_cap[i]` / `ingress_cap[i]` are link capacities in bytes/second; each
/// flow `f` uses `egress_cap[f.egress]` and `ingress_cap[f.ingress]`. Returns one
/// rate per flow, in input order.
///
/// # Panics
/// Panics if any referenced link index is out of bounds or any capacity is
/// non-positive.
pub fn max_min_rates(egress_cap: &[f64], ingress_cap: &[f64], flows: &[FlowLinks]) -> Vec<f64> {
    assert!(
        egress_cap.iter().chain(ingress_cap).all(|&c| c > 0.0),
        "link capacities must be positive"
    );
    let ne = egress_cap.len();
    let n_links = ne + ingress_cap.len();
    // Link id space: [0, ne) egress, [ne, ne+ni) ingress.
    let link_cap = |l: usize| {
        if l < ne {
            egress_cap[l]
        } else {
            ingress_cap[l - ne]
        }
    };
    for f in flows {
        assert!(f.egress < ne, "egress link {} out of bounds", f.egress);
        assert!(
            f.ingress < ingress_cap.len(),
            "ingress link {} out of bounds",
            f.ingress
        );
    }

    let mut rates = vec![0.0f64; flows.len()];
    let mut frozen = vec![false; flows.len()];
    let mut residual: Vec<f64> = (0..n_links).map(link_cap).collect();
    let mut active_on_link = vec![0usize; n_links];
    for f in flows {
        active_on_link[f.egress] += 1;
        active_on_link[ne + f.ingress] += 1;
    }

    let mut remaining = flows.len();
    while remaining > 0 {
        // Find the bottleneck link: smallest fair share among links with active
        // flows; ties resolved by lowest link index for determinism.
        let mut bottleneck = None;
        let mut best_share = f64::INFINITY;
        for l in 0..n_links {
            if active_on_link[l] > 0 {
                let share = residual[l] / active_on_link[l] as f64;
                if share < best_share {
                    best_share = share;
                    bottleneck = Some(l);
                }
            }
        }
        let Some(bottleneck) = bottleneck else {
            panic!("max-min fair share: {remaining} unfrozen flows but no active link");
        };
        // Freeze every flow through the bottleneck at its current rate + share.
        for (i, f) in flows.iter().enumerate() {
            if frozen[i] {
                continue;
            }
            let uses = f.egress == bottleneck || ne + f.ingress == bottleneck;
            if uses {
                let rate = best_share;
                rates[i] = rate;
                frozen[i] = true;
                remaining -= 1;
                // Release capacity on the flow's links.
                residual[f.egress] -= rate;
                residual[ne + f.ingress] -= rate;
                active_on_link[f.egress] -= 1;
                active_on_link[ne + f.ingress] -= 1;
            }
        }
        // Numerical hygiene: residuals can dip epsilon-negative.
        for r in &mut residual {
            if *r < 0.0 {
                *r = 0.0;
            }
        }
    }
    rates
}

#[cfg(test)]
mod tests {
    use super::*;

    const BW: f64 = 1e9;

    fn caps(n: usize) -> (Vec<f64>, Vec<f64>) {
        (vec![BW; n], vec![BW; n])
    }

    fn fl(e: usize, i: usize) -> FlowLinks {
        FlowLinks {
            egress: e,
            ingress: i,
        }
    }

    #[test]
    fn single_flow_gets_full_bandwidth() {
        let (e, i) = caps(2);
        let rates = max_min_rates(&e, &i, &[fl(0, 1)]);
        assert_eq!(rates, vec![BW]);
    }

    #[test]
    fn shared_egress_splits_evenly() {
        let (e, i) = caps(3);
        let rates = max_min_rates(&e, &i, &[fl(0, 1), fl(0, 2)]);
        assert!((rates[0] - BW / 2.0).abs() < 1.0);
        assert!((rates[1] - BW / 2.0).abs() < 1.0);
    }

    #[test]
    fn incast_splits_ingress() {
        // The HP baseline's FC hot-spot: 7 senders into 1 receiver.
        let (e, i) = caps(8);
        let flows: Vec<_> = (1..8).map(|s| fl(s, 0)).collect();
        let rates = max_min_rates(&e, &i, &flows);
        for r in rates {
            assert!((r - BW / 7.0).abs() < 1.0);
        }
    }

    #[test]
    fn disjoint_flows_do_not_interfere() {
        let (e, i) = caps(4);
        let rates = max_min_rates(&e, &i, &[fl(0, 1), fl(2, 3)]);
        assert_eq!(rates, vec![BW, BW]);
    }

    #[test]
    fn water_filling_respects_per_link_fairness() {
        // Flow A: 0→1 alone on egress 0. Flows B, C: 2→1 and 3→1. Ingress 1 carries
        // A, B, C → each gets BW/3; then egress 0, 2, 3 are slack.
        let (e, i) = caps(4);
        let rates = max_min_rates(&e, &i, &[fl(0, 1), fl(2, 1), fl(3, 1)]);
        for r in &rates {
            assert!((r - BW / 3.0).abs() < 1.0, "{rates:?}");
        }
    }

    #[test]
    fn unfrozen_flows_absorb_released_capacity() {
        // Two flows share egress 0; one of them is also squeezed at ingress 1 by
        // two other senders. Max-min: flow(0→1) frozen at BW/3 via ingress 1;
        // flow(0→2) then takes the rest of egress 0 = 2BW/3.
        let (e, i) = caps(4);
        let flows = [fl(0, 1), fl(0, 2), fl(2, 1), fl(3, 1)];
        let rates = max_min_rates(&e, &i, &flows);
        assert!((rates[0] - BW / 3.0).abs() < 1.0, "{rates:?}");
        assert!((rates[1] - 2.0 * BW / 3.0).abs() < 1.0, "{rates:?}");
        assert!((rates[2] - BW / 3.0).abs() < 1.0);
        assert!((rates[3] - BW / 3.0).abs() < 1.0);
    }

    #[test]
    fn total_link_load_never_exceeds_capacity() {
        let (e, i) = caps(5);
        // A messy pattern.
        let flows = [
            fl(0, 1),
            fl(0, 2),
            fl(0, 3),
            fl(1, 2),
            fl(2, 2),
            fl(3, 4),
            fl(4, 0),
            fl(1, 0),
        ];
        let rates = max_min_rates(&e, &i, &flows);
        let mut eg = [0.0; 5];
        let mut ing = [0.0; 5];
        for (f, r) in flows.iter().zip(&rates) {
            eg[f.egress] += r;
            ing[f.ingress] += r;
            assert!(*r > 0.0, "every flow gets a positive rate");
        }
        for l in 0..5 {
            assert!(eg[l] <= BW * 1.000001, "egress {l} over capacity");
            assert!(ing[l] <= BW * 1.000001, "ingress {l} over capacity");
        }
    }

    #[test]
    fn no_flows_no_rates() {
        let (e, i) = caps(2);
        assert!(max_min_rates(&e, &i, &[]).is_empty());
    }

    #[test]
    #[should_panic(expected = "capacities must be positive")]
    fn zero_capacity_rejected() {
        max_min_rates(&[0.0], &[1.0], &[]);
    }

    #[test]
    fn asymmetric_capacities() {
        // Slow receiver bottlenecks the flow.
        let rates = max_min_rates(&[1e9, 1e9], &[1e8, 1e9], &[fl(1, 0)]);
        assert!((rates[0] - 1e8).abs() < 1.0);
    }
}
