//! Max–min fair bandwidth allocation (progressive filling / water-filling).
//!
//! The cluster is a star: every node has one egress link and one ingress link of
//! fixed capacity into a non-blocking switch (the paper's 8 nodes on a 40GE switch
//! with 10 Gbps NICs — the switch fabric is never the bottleneck, the NICs are).
//! A flow consumes its source's egress and its destination's ingress; rates are the
//! classic max–min fair allocation:
//!
//! 1. every unfrozen flow grows at the same rate;
//! 2. when a link fills, all flows through it freeze at their current rate;
//! 3. repeat until all flows are frozen.
//!
//! Two entry points share one arithmetic core ([`progressive_fill`]):
//!
//! * [`max_min_rates`] — the stateless oracle: the standard iterative
//!   bottleneck-link algorithm over the whole flow set, O(L·F) worst case, with
//!   deterministic tie-breaking (lowest link index first).
//! * [`IncrementalMaxMin`] — the incremental engine the [`crate::Network`] hot
//!   path uses: it keeps per-link flow sets, and on each flow start/finish recomputes
//!   rates only for the *connected component* of the link-sharing graph the
//!   changed flow touches. Flows in other components keep their cached rates.
//!
//! ## Why the incremental engine is bit-identical to the oracle
//!
//! Progressive filling decomposes over connected components of the link-sharing
//! graph (links are vertices, flows are edges): a round that freezes component
//! `C`'s bottleneck only subtracts rates from `C`'s links and only decrements
//! `C`'s active counters, so the share sequence observed inside `C` is exactly the
//! share sequence of running the algorithm on `C` alone. The oracle's global
//! bottleneck choice merely *interleaves* the per-component sequences; within a
//! component, both the bottleneck order (ascending link id among minimal shares)
//! and the freeze-loop subtraction order (ascending flow key) are identical. Since
//! every floating-point operation sees the same operands in the same order, the
//! computed rates are bit-identical — the property the simulator's byte-identical
//! artifact gate rests on, and which `tests/tests/properties.rs` property-tests
//! over random flow churn.

use std::collections::{BTreeMap, BTreeSet};

/// A flow's endpoints for allocation purposes, as link indices.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FlowLinks {
    /// Egress link index of the source node.
    pub egress: usize,
    /// Ingress link index of the destination node.
    pub ingress: usize,
}

/// Relative floor applied when a bottleneck's fair share degenerates to zero
/// (possible only through floating-point underflow — e.g. a subnormal capacity
/// whose halves round to 0.0, or an epsilon-negative residual clamped to zero).
/// Freezing a flow at rate 0 would surface upstream as an *infinite* transfer
/// time, deadlocking the simulation; a strictly positive floor keeps the
/// transfer astronomically slow but finite, and keeps the "every flow makes
/// progress" invariant assertable.
const RATE_FLOOR_REL: f64 = 1e-12;

fn positive_rate_floor(bottleneck_cap: f64) -> f64 {
    (bottleneck_cap * RATE_FLOOR_REL).max(f64::MIN_POSITIVE)
}

#[derive(Clone, Copy, Debug)]
struct LinkState {
    residual: f64,
    active: usize,
}

/// The shared water-filling core. `comp_links` are the participating link ids in
/// ascending order; `flows` are `(egress link id, ingress link id)` pairs in
/// canonical (ascending-key) order, both id spaces already unified. Returns one
/// strictly positive rate per flow, in input order.
///
/// Determinism contract: the bottleneck scan walks `comp_links` ascending and the
/// freeze loop walks `flows` in input order, so every caller that presents the
/// same component in the same canonical order gets bit-identical rates.
fn progressive_fill(
    link_cap: impl Fn(usize) -> f64,
    comp_links: &[usize],
    flows: &[(usize, usize)],
) -> Vec<f64> {
    // Dense state indexed by position in `comp_links`; since the slice is sorted
    // ascending, walking positions 0..L preserves the ascending-link-id scan the
    // determinism contract requires. Flow link ids are resolved to positions once
    // up front (binary search over the sorted slice).
    let mut state: Vec<LinkState> = comp_links
        .iter()
        .map(|&l| LinkState {
            residual: link_cap(l),
            active: 0,
        })
        .collect();
    // `comp_links` is usually contiguous (the oracle passes 0..n_links; dense
    // components too) — then position is a subtraction, no binary search.
    let first = comp_links.first().copied().unwrap_or(0);
    let contiguous = comp_links
        .last()
        .map_or(true, |&l| l - first + 1 == comp_links.len());
    let pos_of = |l: usize| -> usize {
        if contiguous {
            if l >= first && l - first < comp_links.len() {
                return l - first;
            }
        } else if let Ok(p) = comp_links.binary_search(&l) {
            return p;
        }
        panic!("flow references link {l} outside the component link set");
    };
    let flow_pos: Vec<(usize, usize)> =
        flows.iter().map(|&(e, g)| (pos_of(e), pos_of(g))).collect();
    for &(pe, pg) in &flow_pos {
        state[pe].active += 1;
        state[pg].active += 1;
    }

    let mut rates = vec![0.0f64; flows.len()];
    let mut frozen = vec![false; flows.len()];
    let mut remaining = flows.len();
    while remaining > 0 {
        // Find the bottleneck link: smallest fair share among links with active
        // flows; ties resolved by lowest link index for determinism.
        let mut bottleneck = None;
        let mut best_share = f64::INFINITY;
        for (p, st) in state.iter().enumerate() {
            if st.active > 0 {
                let share = st.residual / st.active as f64;
                if share < best_share {
                    best_share = share;
                    bottleneck = Some(p);
                }
            }
        }
        let Some(bottleneck) = bottleneck else {
            panic!("max-min fair share: {remaining} unfrozen flows but no active link");
        };
        let rate = if best_share > 0.0 {
            best_share
        } else {
            positive_rate_floor(link_cap(comp_links[bottleneck]))
        };
        // Freeze every flow through the bottleneck at the fair share.
        for (i, &(pe, pg)) in flow_pos.iter().enumerate() {
            if frozen[i] {
                continue;
            }
            if pe == bottleneck || pg == bottleneck {
                rates[i] = rate;
                frozen[i] = true;
                remaining -= 1;
                // Release capacity on the flow's links.
                for p in [pe, pg] {
                    state[p].residual -= rate;
                    state[p].active -= 1;
                }
            }
        }
        // Numerical hygiene: residuals can dip epsilon-negative.
        for st in &mut state {
            if st.residual < 0.0 {
                st.residual = 0.0;
            }
        }
    }
    for (i, r) in rates.iter().enumerate() {
        assert!(*r > 0.0, "flow {i} froze at a non-positive rate {r}");
    }
    rates
}

/// Computes max–min fair rates (the stateless oracle).
///
/// `egress_cap[i]` / `ingress_cap[i]` are link capacities in bytes/second; each
/// flow `f` uses `egress_cap[f.egress]` and `ingress_cap[f.ingress]`. Returns one
/// rate per flow, in input order; every returned rate is strictly positive.
///
/// # Panics
/// Panics if any referenced link index is out of bounds or any capacity is
/// non-positive.
pub fn max_min_rates(egress_cap: &[f64], ingress_cap: &[f64], flows: &[FlowLinks]) -> Vec<f64> {
    assert!(
        egress_cap.iter().chain(ingress_cap).all(|&c| c > 0.0),
        "link capacities must be positive"
    );
    let ne = egress_cap.len();
    let n_links = ne + ingress_cap.len();
    // Link id space: [0, ne) egress, [ne, ne+ni) ingress.
    let link_cap = |l: usize| {
        if l < ne {
            egress_cap[l]
        } else {
            ingress_cap[l - ne]
        }
    };
    for f in flows {
        assert!(f.egress < ne, "egress link {} out of bounds", f.egress);
        assert!(
            f.ingress < ingress_cap.len(),
            "ingress link {} out of bounds",
            f.ingress
        );
    }
    let all_links: Vec<usize> = (0..n_links).collect();
    let pairs: Vec<(usize, usize)> = flows.iter().map(|f| (f.egress, ne + f.ingress)).collect();
    progressive_fill(link_cap, &all_links, &pairs)
}

/// The incremental max–min fair-share engine.
///
/// Holds the active flow set keyed by a caller-chosen `u64` (the simulator uses
/// the raw `FlowId`, whose ascending order is exactly the oracle's input order)
/// and keeps every flow's current rate cached. [`IncrementalMaxMin::insert`] and
/// [`IncrementalMaxMin::remove`]/[`IncrementalMaxMin::remove_batch`] recompute
/// rates only for the affected connected component of the link-sharing graph —
/// O(component) instead of O(L·F) — while staying bit-identical to
/// [`max_min_rates`] over the full set (see the module docs for the argument).
#[derive(Clone, Debug)]
pub struct IncrementalMaxMin {
    egress_cap: Vec<f64>,
    ingress_cap: Vec<f64>,
    /// Active flows by key; ascending key order is the canonical oracle order.
    flows: BTreeMap<u64, FlowLinks>,
    /// `link_flows[l]` — keys of the flows using link `l` (unified id space).
    link_flows: Vec<BTreeSet<u64>>,
    /// Cached rate per flow, maintained by the component recomputations.
    rates: BTreeMap<u64, f64>,
}

impl IncrementalMaxMin {
    /// Creates an engine over the given link capacities (bytes/second).
    ///
    /// # Panics
    /// Panics if any capacity is non-positive.
    pub fn new(egress_cap: Vec<f64>, ingress_cap: Vec<f64>) -> Self {
        assert!(
            egress_cap.iter().chain(&ingress_cap).all(|&c| c > 0.0),
            "link capacities must be positive"
        );
        let n_links = egress_cap.len() + ingress_cap.len();
        IncrementalMaxMin {
            egress_cap,
            ingress_cap,
            flows: BTreeMap::new(),
            link_flows: vec![BTreeSet::new(); n_links],
            rates: BTreeMap::new(),
        }
    }

    fn link_cap(&self, l: usize) -> f64 {
        let ne = self.egress_cap.len();
        if l < ne {
            self.egress_cap[l]
        } else {
            self.ingress_cap[l - ne]
        }
    }

    /// Unified link ids of a flow: `(egress, ne + ingress)`.
    fn link_ids(&self, f: FlowLinks) -> (usize, usize) {
        (f.egress, self.egress_cap.len() + f.ingress)
    }

    /// Number of active flows.
    pub fn len(&self) -> usize {
        self.flows.len()
    }

    /// True if no flows are active.
    pub fn is_empty(&self) -> bool {
        self.flows.is_empty()
    }

    /// The cached rate of an active flow.
    ///
    /// # Panics
    /// Panics if `key` is not an active flow.
    pub fn rate(&self, key: u64) -> f64 {
        match self.rates.get(&key) {
            Some(&r) => r,
            None => panic!("rate queried for unknown flow key {key}"),
        }
    }

    /// Active flow keys and rates in ascending key order (oracle order).
    pub fn rates(&self) -> impl Iterator<Item = (u64, f64)> + '_ {
        self.rates.iter().map(|(&k, &r)| (k, r))
    }

    /// Adds a flow and recomputes its connected component's rates.
    ///
    /// # Panics
    /// Panics if `key` is already active or a link index is out of bounds.
    pub fn insert(&mut self, key: u64, links: FlowLinks) {
        assert!(
            links.egress < self.egress_cap.len(),
            "egress link {} out of bounds",
            links.egress
        );
        assert!(
            links.ingress < self.ingress_cap.len(),
            "ingress link {} out of bounds",
            links.ingress
        );
        assert!(
            self.flows.insert(key, links).is_none(),
            "flow key {key} inserted twice"
        );
        let (e, g) = self.link_ids(links);
        self.link_flows[e].insert(key);
        self.link_flows[g].insert(key);
        self.recompute_from([e, g]);
    }

    /// Removes a flow and recomputes its former component's rates.
    ///
    /// # Panics
    /// Panics if `key` is not an active flow.
    pub fn remove(&mut self, key: u64) {
        self.remove_batch(std::slice::from_ref(&key));
    }

    /// Removes several flows at once, then recomputes every affected component in
    /// a single pass (a completion wave retracts many flows whose components
    /// overlap — one recomputation covers them all).
    ///
    /// # Panics
    /// Panics if any key is not an active flow.
    pub fn remove_batch(&mut self, keys: &[u64]) {
        let mut seeds = Vec::with_capacity(keys.len() * 2);
        for &key in keys {
            let Some(links) = self.flows.remove(&key) else {
                panic!("removal of unknown flow key {key}");
            };
            self.rates.remove(&key);
            let (e, g) = self.link_ids(links);
            self.link_flows[e].remove(&key);
            self.link_flows[g].remove(&key);
            seeds.push(e);
            seeds.push(g);
        }
        self.recompute_from(seeds);
    }

    /// Recomputes rates for the connected component(s) reachable from the seed
    /// links over the link-sharing graph (links are vertices; a flow connects its
    /// two links).
    fn recompute_from(&mut self, seeds: impl IntoIterator<Item = usize>) {
        // Vec-based BFS over the link-sharing graph: a visited bitmap per link
        // and at-most-twice flow duplicates resolved by one sort+dedup — far
        // cheaper than set insertions when the component is large, and the final
        // ascending orders (links, then flow keys) are exactly what the
        // determinism contract of `progressive_fill` requires.
        let mut visited = vec![false; self.link_flows.len()];
        let mut links: Vec<usize> = Vec::new();
        let mut keys: Vec<u64> = Vec::new();
        let mut stack: Vec<usize> = seeds.into_iter().collect();
        while let Some(l) = stack.pop() {
            if std::mem::replace(&mut visited[l], true) {
                continue;
            }
            links.push(l);
            for &key in &self.link_flows[l] {
                // Each flow is reached from at most its two links; the second
                // visit is dropped by the dedup below.
                keys.push(key);
                let (e, g) = self.link_ids(self.flows[&key]);
                stack.push(e);
                stack.push(g);
            }
        }
        keys.sort_unstable();
        keys.dedup();
        if keys.is_empty() {
            return;
        }
        // Links with no flows contribute nothing; keep only active ones plus the
        // seeds already collected (inactive links have active == 0 and are never
        // selected as bottleneck, exactly as in the oracle's full scan).
        links.sort_unstable();
        let pairs: Vec<(usize, usize)> =
            keys.iter().map(|k| self.link_ids(self.flows[k])).collect();
        let rates = progressive_fill(|l| self.link_cap(l), &links, &pairs);
        for (key, rate) in keys.into_iter().zip(rates) {
            self.rates.insert(key, rate);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const BW: f64 = 1e9;

    fn caps(n: usize) -> (Vec<f64>, Vec<f64>) {
        (vec![BW; n], vec![BW; n])
    }

    fn fl(e: usize, i: usize) -> FlowLinks {
        FlowLinks {
            egress: e,
            ingress: i,
        }
    }

    #[test]
    fn single_flow_gets_full_bandwidth() {
        let (e, i) = caps(2);
        let rates = max_min_rates(&e, &i, &[fl(0, 1)]);
        assert_eq!(rates, vec![BW]);
    }

    #[test]
    fn shared_egress_splits_evenly() {
        let (e, i) = caps(3);
        let rates = max_min_rates(&e, &i, &[fl(0, 1), fl(0, 2)]);
        assert!((rates[0] - BW / 2.0).abs() < 1.0);
        assert!((rates[1] - BW / 2.0).abs() < 1.0);
    }

    #[test]
    fn incast_splits_ingress() {
        // The HP baseline's FC hot-spot: 7 senders into 1 receiver.
        let (e, i) = caps(8);
        let flows: Vec<_> = (1..8).map(|s| fl(s, 0)).collect();
        let rates = max_min_rates(&e, &i, &flows);
        for r in rates {
            assert!((r - BW / 7.0).abs() < 1.0);
        }
    }

    #[test]
    fn disjoint_flows_do_not_interfere() {
        let (e, i) = caps(4);
        let rates = max_min_rates(&e, &i, &[fl(0, 1), fl(2, 3)]);
        assert_eq!(rates, vec![BW, BW]);
    }

    #[test]
    fn water_filling_respects_per_link_fairness() {
        // Flow A: 0→1 alone on egress 0. Flows B, C: 2→1 and 3→1. Ingress 1 carries
        // A, B, C → each gets BW/3; then egress 0, 2, 3 are slack.
        let (e, i) = caps(4);
        let rates = max_min_rates(&e, &i, &[fl(0, 1), fl(2, 1), fl(3, 1)]);
        for r in &rates {
            assert!((r - BW / 3.0).abs() < 1.0, "{rates:?}");
        }
    }

    #[test]
    fn unfrozen_flows_absorb_released_capacity() {
        // Two flows share egress 0; one of them is also squeezed at ingress 1 by
        // two other senders. Max-min: flow(0→1) frozen at BW/3 via ingress 1;
        // flow(0→2) then takes the rest of egress 0 = 2BW/3.
        let (e, i) = caps(4);
        let flows = [fl(0, 1), fl(0, 2), fl(2, 1), fl(3, 1)];
        let rates = max_min_rates(&e, &i, &flows);
        assert!((rates[0] - BW / 3.0).abs() < 1.0, "{rates:?}");
        assert!((rates[1] - 2.0 * BW / 3.0).abs() < 1.0, "{rates:?}");
        assert!((rates[2] - BW / 3.0).abs() < 1.0);
        assert!((rates[3] - BW / 3.0).abs() < 1.0);
    }

    #[test]
    fn total_link_load_never_exceeds_capacity() {
        let (e, i) = caps(5);
        // A messy pattern.
        let flows = [
            fl(0, 1),
            fl(0, 2),
            fl(0, 3),
            fl(1, 2),
            fl(2, 2),
            fl(3, 4),
            fl(4, 0),
            fl(1, 0),
        ];
        let rates = max_min_rates(&e, &i, &flows);
        let mut eg = [0.0; 5];
        let mut ing = [0.0; 5];
        for (f, r) in flows.iter().zip(&rates) {
            eg[f.egress] += r;
            ing[f.ingress] += r;
            assert!(*r > 0.0, "every flow gets a positive rate");
        }
        for l in 0..5 {
            assert!(eg[l] <= BW * 1.000001, "egress {l} over capacity");
            assert!(ing[l] <= BW * 1.000001, "ingress {l} over capacity");
        }
    }

    #[test]
    fn no_flows_no_rates() {
        let (e, i) = caps(2);
        assert!(max_min_rates(&e, &i, &[]).is_empty());
    }

    #[test]
    #[should_panic(expected = "capacities must be positive")]
    fn zero_capacity_rejected() {
        max_min_rates(&[0.0], &[1.0], &[]);
    }

    #[test]
    fn asymmetric_capacities() {
        // Slow receiver bottlenecks the flow.
        let rates = max_min_rates(&[1e9, 1e9], &[1e8, 1e9], &[fl(1, 0)]);
        assert!((rates[0] - 1e8).abs() < 1.0);
    }

    /// Regression for the zero-rate freeze: a subnormal capacity shared by two
    /// flows produces a fair share of exactly 0.0 (5e-324 / 2 rounds to zero), so
    /// the old clamp-to-zero code froze both flows at rate 0 — an infinite
    /// transfer upstream. The relative-epsilon floor keeps every rate strictly
    /// positive (and `progressive_fill` now asserts it).
    #[test]
    fn subnormal_capacity_never_freezes_flows_at_zero() {
        let egress = vec![5e-324];
        let ingress = vec![1.0, 1.0];
        let flows = [fl(0, 0), fl(0, 1)];
        assert_eq!(
            5e-324f64 / 2.0,
            0.0,
            "the degenerate share this test forces"
        );
        let rates = max_min_rates(&egress, &ingress, &flows);
        for r in &rates {
            assert!(*r > 0.0, "zero-rate freeze regressed: {rates:?}");
            assert!(r.is_finite());
        }
    }

    // ---- IncrementalMaxMin ----

    fn oracle_of(engine: &IncrementalMaxMin) -> Vec<(u64, f64)> {
        let flows: Vec<FlowLinks> = engine.flows.values().copied().collect();
        let keys: Vec<u64> = engine.flows.keys().copied().collect();
        let rates = max_min_rates(&engine.egress_cap, &engine.ingress_cap, &flows);
        keys.into_iter().zip(rates).collect()
    }

    fn assert_matches_oracle(engine: &IncrementalMaxMin) {
        let expect = oracle_of(engine);
        let got: Vec<(u64, f64)> = engine.rates().collect();
        assert_eq!(got.len(), expect.len());
        for ((gk, gr), (ek, er)) in got.iter().zip(&expect) {
            assert_eq!(gk, ek);
            assert_eq!(
                gr.to_bits(),
                er.to_bits(),
                "rate mismatch for flow {gk}: incremental {gr} vs oracle {er}"
            );
        }
    }

    #[test]
    fn incremental_matches_oracle_over_messy_churn() {
        let (e, i) = caps(5);
        let mut engine = IncrementalMaxMin::new(e, i);
        let pattern = [
            fl(0, 1),
            fl(0, 2),
            fl(0, 3),
            fl(1, 2),
            fl(2, 2),
            fl(3, 4),
            fl(4, 0),
            fl(1, 0),
        ];
        for (k, f) in pattern.iter().enumerate() {
            engine.insert(k as u64, *f);
            assert_matches_oracle(&engine);
        }
        for k in [2u64, 0, 5, 7] {
            engine.remove_batch(&[k]);
            assert_matches_oracle(&engine);
        }
        engine.remove_batch(&[1, 3, 4, 6]);
        assert!(engine.is_empty());
        assert_matches_oracle(&engine);
    }

    #[test]
    fn disjoint_component_rates_are_untouched() {
        let (e, i) = caps(6);
        let mut engine = IncrementalMaxMin::new(e, i);
        engine.insert(0, fl(0, 1));
        engine.insert(1, fl(0, 2));
        let before_a: Vec<(u64, f64)> = engine.rates().collect();
        // A second, link-disjoint component: its churn must leave component A's
        // cached rates untouched (bit-identical, not merely approximately).
        engine.insert(2, fl(3, 4));
        engine.insert(3, fl(3, 5));
        engine.insert(4, fl(4, 5));
        engine.remove_batch(&[3]);
        let after_a: Vec<(u64, f64)> = engine.rates().take(2).collect();
        for ((k1, r1), (k2, r2)) in before_a.iter().zip(&after_a) {
            assert_eq!(k1, k2);
            assert_eq!(r1.to_bits(), r2.to_bits());
        }
        assert_matches_oracle(&engine);
    }

    #[test]
    fn bridging_flow_merges_components() {
        let (e, i) = caps(4);
        let mut engine = IncrementalMaxMin::new(e, i);
        engine.insert(0, fl(0, 1));
        engine.insert(1, fl(2, 3));
        assert_eq!(engine.rate(0), BW);
        assert_eq!(engine.rate(1), BW);
        // 0→3 shares egress 0 with flow 0 and ingress 3 with flow 1: one component.
        engine.insert(2, fl(0, 3));
        assert_matches_oracle(&engine);
        assert!((engine.rate(0) - BW / 2.0).abs() < 1.0);
        // Removing the bridge splits the component again; both sides recover.
        engine.remove_batch(&[2]);
        assert_eq!(engine.rate(0), BW);
        assert_eq!(engine.rate(1), BW);
        assert_matches_oracle(&engine);
    }

    #[test]
    fn incremental_applies_the_positive_rate_floor() {
        let mut engine = IncrementalMaxMin::new(vec![5e-324], vec![1.0, 1.0]);
        engine.insert(0, fl(0, 0));
        engine.insert(1, fl(0, 1));
        for (_, r) in engine.rates() {
            assert!(r > 0.0 && r.is_finite());
        }
        assert_matches_oracle(&engine);
    }

    #[test]
    #[should_panic(expected = "inserted twice")]
    fn duplicate_key_rejected() {
        let (e, i) = caps(2);
        let mut engine = IncrementalMaxMin::new(e, i);
        engine.insert(0, fl(0, 1));
        engine.insert(0, fl(1, 0));
    }

    #[test]
    #[should_panic(expected = "removal of unknown flow key")]
    fn unknown_removal_rejected() {
        let (e, i) = caps(2);
        let mut engine = IncrementalMaxMin::new(e, i);
        engine.remove_batch(&[9]);
    }
}
