//! Ring all-reduce as a flow-level collective.
//!
//! Every runtime in the workspace synchronises parameters with the bandwidth-optimal
//! ring all-reduce (the algorithm Gloo uses, which the paper's prototypes run on):
//! `K` participants exchange `2·(K−1)` rounds of `bytes/K`-sized chunks with their
//! ring neighbours — a reduce-scatter phase followed by an all-gather phase. Each
//! round is a set of concurrent flows; rounds are serialised by the data dependency.
//!
//! [`RingAllReduce`] is a passive state machine: the owning simulation world starts
//! it, forwards flow completions to it, and asks it to launch the next round when a
//! round drains. Because rounds become real [`Network`] flows, synchronisation
//! contends with everything else on the wire — the effect behind the paper's DP/HP
//! crossover in Figure 8.

use fela_sim::SimTime;
use serde::Serialize;

use crate::network::{FlowId, FlowSpec, Network, NodeId};

/// Progress report from [`RingAllReduce::on_flow_complete`].
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize)]
pub enum CollectiveProgress {
    /// The flow did not belong to this collective.
    NotMine,
    /// The flow was absorbed; the current round is still draining.
    InProgress,
    /// A round finished and the next one was started.
    RoundStarted,
    /// All rounds finished — the collective is complete.
    Done,
}

/// A flow-level ring all-reduce.
#[derive(Clone, Debug)]
pub struct RingAllReduce {
    participants: Vec<NodeId>,
    chunk_bytes: u64,
    rounds_total: usize,
    rounds_done: usize,
    inflight: Vec<FlowId>,
    tag: u64,
    done: bool,
}

impl RingAllReduce {
    /// Creates the collective and launches its first round on `net`.
    ///
    /// `tag` is stamped on every flow the collective starts, so owners can route
    /// completions. A single participant (or zero bytes) completes immediately
    /// without touching the network.
    ///
    /// # Panics
    /// Panics if `participants` is empty or contains duplicates.
    pub fn start(
        net: &mut Network,
        now: SimTime,
        participants: Vec<NodeId>,
        total_bytes: u64,
        tag: u64,
    ) -> Self {
        assert!(!participants.is_empty(), "all-reduce needs participants");
        let mut sorted = participants.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(
            sorted.len(),
            participants.len(),
            "duplicate participants in all-reduce"
        );
        let k = participants.len();
        let rounds_total = if k > 1 { 2 * (k - 1) } else { 0 };
        let chunk_bytes = if k > 1 { total_bytes / k as u64 } else { 0 };
        let mut ar = RingAllReduce {
            participants,
            chunk_bytes,
            rounds_total,
            rounds_done: 0,
            inflight: Vec::new(),
            tag,
            done: rounds_total == 0 || total_bytes == 0,
        };
        if !ar.done {
            ar.launch_round(net, now);
        }
        ar
    }

    /// Whether the collective has finished all rounds.
    pub fn is_done(&self) -> bool {
        self.done
    }

    /// The tag stamped on this collective's flows.
    pub fn tag(&self) -> u64 {
        self.tag
    }

    /// Rounds completed so far (of `2·(K−1)`).
    pub fn rounds_done(&self) -> usize {
        self.rounds_done
    }

    fn launch_round(&mut self, net: &mut Network, now: SimTime) {
        debug_assert!(self.inflight.is_empty());
        let k = self.participants.len();
        for (i, &src) in self.participants.iter().enumerate() {
            let dst = self.participants[(i + 1) % k];
            let id = net.start_flow(
                now,
                FlowSpec {
                    src,
                    dst,
                    bytes: self.chunk_bytes,
                    tag: self.tag,
                },
            );
            self.inflight.push(id);
        }
    }

    /// Notifies the collective that `flow` completed at `now`. If that drains the
    /// current round, the next round is launched (or the collective completes).
    pub fn on_flow_complete(
        &mut self,
        net: &mut Network,
        now: SimTime,
        flow: FlowId,
    ) -> CollectiveProgress {
        let Some(pos) = self.inflight.iter().position(|&f| f == flow) else {
            return CollectiveProgress::NotMine;
        };
        self.inflight.swap_remove(pos);
        if !self.inflight.is_empty() {
            return CollectiveProgress::InProgress;
        }
        self.rounds_done += 1;
        if self.rounds_done == self.rounds_total {
            self.done = true;
            CollectiveProgress::Done
        } else {
            self.launch_round(net, now);
            CollectiveProgress::RoundStarted
        }
    }

    /// Analytic lower bound on the collective's duration with no competing
    /// traffic: `2·(K−1) · (chunk_time + latency)`. Used by tests and by quick
    /// estimators; the simulated time can only be larger under contention.
    pub fn ideal_duration_secs(
        participants: usize,
        total_bytes: u64,
        bandwidth: f64,
        latency_secs: f64,
    ) -> f64 {
        if participants <= 1 || total_bytes == 0 {
            return 0.0;
        }
        let k = participants as f64;
        let chunk = total_bytes as f64 / k;
        2.0 * (k - 1.0) * (chunk / bandwidth + latency_secs)
    }
}

/// Completion-map helper: drives collectives to completion synchronously when the
/// network carries nothing else. Returns the finish time. Test/estimation utility —
/// real runtimes interleave collectives with other traffic through their own event
/// loops.
pub fn run_allreduce_alone(
    net: &mut Network,
    start: SimTime,
    participants: Vec<NodeId>,
    total_bytes: u64,
) -> SimTime {
    let mut ar = RingAllReduce::start(net, start, participants, total_bytes, 0);
    let mut now = start;
    while !ar.is_done() {
        let Some(t) = net.next_completion() else {
            panic!("active collective at {now} but the network has no pending flows");
        };
        now = t;
        net.take_completions(now);
        ar.reconcile(net, now);
    }
    now
}

impl RingAllReduce {
    /// Reconciles with the network after completions were consumed elsewhere:
    /// drops in-flight ids the network no longer tracks and advances rounds.
    /// Returns `true` if the collective finished. Prefer
    /// [`RingAllReduce::on_flow_complete`] when flow ids are routed explicitly.
    pub fn reconcile(&mut self, net: &mut Network, now: SimTime) -> bool {
        if self.done {
            return true;
        }
        // A round's flows all start together; the round ends when none remain.
        if net.active_flows() == 0 {
            self.inflight.clear();
            self.rounds_done += 1;
            if self.rounds_done == self.rounds_total {
                self.done = true;
            } else {
                self.launch_round(net, now);
            }
        }
        self.done
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::NetworkConfig;
    use fela_sim::SimDuration;

    fn net(nodes: usize) -> Network {
        Network::new(NetworkConfig {
            nodes,
            link_bandwidth: 1e9,
            latency: SimDuration::from_micros(10),
        })
    }

    #[test]
    fn single_participant_is_immediate() {
        let mut n = net(4);
        let ar = RingAllReduce::start(&mut n, SimTime::ZERO, vec![NodeId(0)], 1 << 30, 1);
        assert!(ar.is_done());
        assert_eq!(n.active_flows(), 0);
    }

    #[test]
    fn zero_bytes_is_immediate() {
        let mut n = net(4);
        let ar = RingAllReduce::start(&mut n, SimTime::ZERO, vec![NodeId(0), NodeId(1)], 0, 1);
        assert!(ar.is_done());
    }

    #[test]
    fn ring_duration_matches_ideal_without_contention() {
        let mut n = net(8);
        let participants: Vec<_> = (0..8).map(NodeId).collect();
        let bytes = 800_000_000u64; // 100 MB chunks
        let end = run_allreduce_alone(&mut n, SimTime::ZERO, participants, bytes);
        let ideal = RingAllReduce::ideal_duration_secs(8, bytes, 1e9, 10e-6);
        assert!(
            (end.as_secs_f64() - ideal).abs() / ideal < 1e-3,
            "simulated {end} vs ideal {ideal}"
        );
    }

    #[test]
    fn rounds_count_is_2k_minus_2() {
        let mut n = net(4);
        let participants: Vec<_> = (0..4).map(NodeId).collect();
        let mut ar = RingAllReduce::start(&mut n, SimTime::ZERO, participants, 4_000, 7);
        let mut rounds = 0;
        while !ar.is_done() {
            let t = n.next_completion().unwrap();
            n.take_completions(t);
            if ar.reconcile(&mut n, t) || ar.rounds_done() > rounds {
                rounds = ar.rounds_done();
            }
        }
        assert_eq!(ar.rounds_done(), 6);
    }

    #[test]
    #[should_panic(expected = "duplicate participants")]
    fn duplicates_rejected() {
        let mut n = net(4);
        let _ = RingAllReduce::start(&mut n, SimTime::ZERO, vec![NodeId(0), NodeId(0)], 10, 0);
    }

    #[test]
    fn ideal_duration_scales_with_participants() {
        // Ring all-reduce total traffic per node ≈ 2·bytes regardless of K, so
        // duration is nearly K-independent for large transfers (the DP property).
        let d4 = RingAllReduce::ideal_duration_secs(4, 1 << 30, 1e9, 0.0);
        let d8 = RingAllReduce::ideal_duration_secs(8, 1 << 30, 1e9, 0.0);
        assert!((d4 / d8 - (2.0 * 3.0 / 4.0) / (2.0 * 7.0 / 8.0)).abs() < 1e-9);
    }
}
