//! The flow-level network state machine.
//!
//! [`Network`] tracks active transfers ([`Flow`]s) between cluster nodes. Rates are
//! recomputed by max–min fair sharing every time the flow set changes; between
//! changes, each flow drains linearly, so completion instants are exact. The owner
//! (a simulation [`fela_sim::World`]) drives it with three calls:
//!
//! 1. [`Network::start_flow`] whenever a transfer begins;
//! 2. [`Network::next_completion`] after any change, to (re)schedule a single
//!    "network completion" event at the right virtual time;
//! 3. [`Network::take_completions`] when that event fires, to learn which transfers
//!    finished.
//!
//! Latency is modelled as a fixed startup delay before a flow's bytes begin to
//! drain (it still occupies its fair share from the start, which slightly
//! overweights tiny control messages — conservative for Fela, whose token RPCs are
//! "at most hundreds of bytes").

use std::collections::BTreeMap;

use fela_sim::{SimDuration, SimTime};
use serde::Serialize;

use crate::fairshare::{FlowLinks, IncrementalMaxMin};

/// A cluster node index.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize)]
pub struct NodeId(pub usize);

/// Identifier of an active or completed flow.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize)]
pub struct FlowId(u64);

/// A transfer request.
#[derive(Clone, Copy, Debug, Serialize)]
pub struct FlowSpec {
    /// Sending node.
    pub src: NodeId,
    /// Receiving node.
    pub dst: NodeId,
    /// Payload size in bytes.
    pub bytes: u64,
    /// Caller-defined tag returned on completion (e.g. "params for token 12").
    pub tag: u64,
}

#[derive(Clone, Debug)]
struct Flow {
    spec: FlowSpec,
    remaining: f64,
    rate: f64,
    /// Bytes start draining here (start + latency).
    ready_at: SimTime,
    /// Exact completion estimate under the current rates.
    est_done: SimTime,
}

/// Configuration of the star network.
#[derive(Clone, Copy, Debug, Serialize)]
pub struct NetworkConfig {
    /// Number of nodes.
    pub nodes: usize,
    /// Per-NIC bandwidth in bytes/second (both directions).
    pub link_bandwidth: f64,
    /// One-way latency added before a flow's bytes drain.
    pub latency: SimDuration,
}

impl NetworkConfig {
    /// The paper's testbed: 10 Gbps NICs on a non-blocking 40GE switch, ~50 µs
    /// one-way software+fabric latency. Goodput is derated to 70% of line rate —
    /// what Gloo's TCP transport sustains after framing, kernel copies and
    /// congestion-control ramp-up.
    pub fn paper_testbed(nodes: usize) -> Self {
        NetworkConfig {
            nodes,
            link_bandwidth: 0.70 * 10.0e9 / 8.0,
            latency: SimDuration::from_micros(50),
        }
    }
}

/// The flow-level network simulator.
#[derive(Clone, Debug)]
pub struct Network {
    config: NetworkConfig,
    flows: BTreeMap<FlowId, Flow>,
    /// Incremental fair-share engine holding every netted (src ≠ dst) flow,
    /// keyed by the raw `FlowId` so its canonical order matches `self.flows`.
    /// On each start/finish it recomputes only the affected connected component
    /// of the link-sharing graph, with rates bit-identical to a full
    /// `max_min_rates` pass (see `fairshare` module docs).
    shares: IncrementalMaxMin,
    next_id: u64,
    last_update: SimTime,
    /// Total bytes delivered, for experiment reporting.
    bytes_delivered: f64,
}

impl Network {
    /// Creates an idle network.
    ///
    /// # Panics
    /// Panics if the configuration has no nodes or non-positive bandwidth.
    pub fn new(config: NetworkConfig) -> Self {
        assert!(config.nodes > 0, "network needs at least one node");
        assert!(config.link_bandwidth > 0.0, "bandwidth must be positive");
        let caps = vec![config.link_bandwidth; config.nodes];
        Network {
            config,
            flows: BTreeMap::new(),
            shares: IncrementalMaxMin::new(caps.clone(), caps),
            next_id: 0,
            last_update: SimTime::ZERO,
            bytes_delivered: 0.0,
        }
    }

    /// The network configuration.
    pub fn config(&self) -> &NetworkConfig {
        &self.config
    }

    /// Number of currently active flows.
    pub fn active_flows(&self) -> usize {
        self.flows.len()
    }

    /// Total bytes delivered so far (for reporting).
    pub fn bytes_delivered(&self) -> u64 {
        self.bytes_delivered as u64
    }

    /// Starts a transfer at `now`; returns its id.
    ///
    /// Same-node transfers (`src == dst`) never touch a NIC: they complete after
    /// the latency alone.
    ///
    /// # Panics
    /// Panics if an endpoint is out of range or `now` precedes the last update.
    pub fn start_flow(&mut self, now: SimTime, spec: FlowSpec) -> FlowId {
        assert!(spec.src.0 < self.config.nodes, "src out of range");
        assert!(spec.dst.0 < self.config.nodes, "dst out of range");
        self.advance(now);
        let id = FlowId(self.next_id);
        self.next_id += 1;
        let ready_at = now + self.config.latency;
        self.flows.insert(
            id,
            Flow {
                spec,
                remaining: spec.bytes as f64,
                rate: 0.0,
                ready_at,
                est_done: SimTime::MAX,
            },
        );
        if spec.src != spec.dst {
            // Recomputes rates for the new flow's connected component only.
            self.shares.insert(
                id.0,
                FlowLinks {
                    egress: spec.src.0,
                    ingress: spec.dst.0,
                },
            );
        }
        self.refresh_rates_and_estimates(now);
        id
    }

    /// Advances all flows' remaining bytes to `now`. Idempotent.
    fn advance(&mut self, now: SimTime) {
        assert!(
            now >= self.last_update,
            "network driven backwards: {now} < {}",
            self.last_update
        );
        for flow in self.flows.values_mut() {
            let from = if flow.ready_at > self.last_update {
                flow.ready_at
            } else {
                self.last_update
            };
            if now > from && flow.rate > 0.0 {
                let dt = now.since(from).as_secs_f64();
                let drained = (flow.rate * dt).min(flow.remaining);
                flow.remaining -= drained;
                self.bytes_delivered += drained;
            }
        }
        self.last_update = now;
    }

    /// Pulls the engine's (possibly component-locally updated) rates into the
    /// flow table and recomputes completion estimates. Call after the flow set
    /// changes (start or completion).
    ///
    /// The estimate pass deliberately still covers *all* flows: `est_done` is a
    /// quantised `SimTime` derived from `remaining / rate` at the current
    /// instant, so re-deriving it lazily at a different instant could drift by
    /// a nanosecond of rounding and break byte-identity of the trace artifacts.
    /// It is O(flows) with no allocation — the O(links·flows) water-filling is
    /// what the component-local engine amortises away.
    fn refresh_rates_and_estimates(&mut self, now: SimTime) {
        for (id, flow) in &mut self.flows {
            if flow.spec.src != flow.spec.dst {
                flow.rate = self.shares.rate(id.0);
            }
        }
        for flow in self.flows.values_mut() {
            if flow.spec.src == flow.spec.dst {
                // Latency-only local delivery.
                flow.est_done = flow.ready_at;
                flow.remaining = 0.0;
                continue;
            }
            let drain_start = if flow.ready_at > now {
                flow.ready_at
            } else {
                now
            };
            if flow.remaining <= 0.0 {
                flow.est_done = drain_start;
            } else if flow.rate > 0.0 {
                flow.est_done =
                    drain_start + SimDuration::from_secs_f64(flow.remaining / flow.rate);
            } else {
                flow.est_done = SimTime::MAX;
            }
        }
    }

    /// Earliest completion instant among active flows, if any. The owner should
    /// keep exactly one pending completion event at this time, cancelling and
    /// rescheduling whenever the value changes.
    pub fn next_completion(&self) -> Option<SimTime> {
        self.flows.values().map(|f| f.est_done).min()
    }

    /// Aborts every active flow matching `pred`, returning them in `FlowId`
    /// order (fault injection: a crashed node or dark link kills its
    /// transfers). Undelivered bytes are *not* counted as delivered; the
    /// surviving flows' rates are recomputed in one batched pass through the
    /// fair-share engine, exactly like a completion wave.
    pub fn abort_matching(
        &mut self,
        now: SimTime,
        pred: impl Fn(&FlowSpec) -> bool,
    ) -> Vec<(FlowId, FlowSpec)> {
        self.advance(now);
        let doomed: Vec<FlowId> = self
            .flows
            .iter()
            .filter(|(_, f)| pred(&f.spec))
            .map(|(&id, _)| id)
            .collect();
        let mut specs = Vec::with_capacity(doomed.len());
        let mut netted = Vec::with_capacity(doomed.len());
        for id in doomed {
            if let Some(flow) = self.flows.remove(&id) {
                if flow.spec.src != flow.spec.dst {
                    netted.push(id.0);
                }
                specs.push((id, flow.spec));
            }
        }
        if !specs.is_empty() {
            self.shares.remove_batch(&netted);
            self.refresh_rates_and_estimates(now);
        }
        specs
    }

    /// Aborts every flow touching `node` — its NIC went dark (crash or link
    /// failure). Returns the aborted flows so the owner can decide which
    /// transfers to retry elsewhere.
    pub fn fail_node(&mut self, now: SimTime, node: NodeId) -> Vec<(FlowId, FlowSpec)> {
        self.abort_matching(now, |s| s.src == node || s.dst == node)
    }

    /// Removes and returns all flows completing at or before `now`, in FlowId
    /// order. Recomputes the remaining flows' rates.
    pub fn take_completions(&mut self, now: SimTime) -> Vec<(FlowId, FlowSpec)> {
        self.advance(now);
        let done: Vec<FlowId> = self
            .flows
            .iter()
            .filter(|(_, f)| f.est_done <= now)
            .map(|(&id, _)| id)
            .collect();
        let mut specs = Vec::with_capacity(done.len());
        let mut netted_done = Vec::with_capacity(done.len());
        for id in done {
            // `done` was collected from `self.flows` above, so the entry exists.
            if let Some(flow) = self.flows.remove(&id) {
                // Account any residual rounding error as delivered.
                self.bytes_delivered += flow.remaining.max(0.0);
                if flow.spec.src != flow.spec.dst {
                    netted_done.push(id.0);
                }
                specs.push((id, flow.spec));
            }
        }
        if !specs.is_empty() {
            // One component recomputation covers the whole completion wave.
            self.shares.remove_batch(&netted_done);
            self.refresh_rates_and_estimates(now);
        }
        specs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn net(nodes: usize) -> Network {
        // 1 GB/s, 1 ms latency for round numbers.
        Network::new(NetworkConfig {
            nodes,
            link_bandwidth: 1e9,
            latency: SimDuration::from_millis(1),
        })
    }

    fn spec(src: usize, dst: usize, bytes: u64) -> FlowSpec {
        FlowSpec {
            src: NodeId(src),
            dst: NodeId(dst),
            bytes,
            tag: 0,
        }
    }

    #[test]
    fn single_flow_timing() {
        let mut n = net(2);
        n.start_flow(SimTime::ZERO, spec(0, 1, 1_000_000_000));
        // 1 GB at 1 GB/s + 1 ms latency.
        let done = n.next_completion().unwrap();
        assert_eq!(done, SimTime::from_secs(1) + SimDuration::from_millis(1));
        let finished = n.take_completions(done);
        assert_eq!(finished.len(), 1);
        assert_eq!(n.active_flows(), 0);
        assert_eq!(n.bytes_delivered(), 1_000_000_000);
    }

    #[test]
    fn local_flow_is_latency_only() {
        let mut n = net(2);
        n.start_flow(SimTime::ZERO, spec(1, 1, u64::MAX / 4));
        assert_eq!(n.next_completion(), Some(SimTime::from_nanos(1_000_000)));
        assert_eq!(n.take_completions(SimTime::from_nanos(1_000_000)).len(), 1);
    }

    #[test]
    fn two_flows_share_then_speed_up() {
        let mut n = net(3);
        // Both use node 0's egress: share 0.5 GB/s each.
        n.start_flow(SimTime::ZERO, spec(0, 1, 500_000_000));
        n.start_flow(SimTime::ZERO, spec(0, 2, 1_000_000_000));
        // Flow 1 finishes at 1ms + 0.5GB/0.5GBps = ~1.001 s.
        let t1 = n.next_completion().unwrap();
        assert!((t1.as_secs_f64() - 1.001).abs() < 1e-6);
        n.take_completions(t1);
        // Flow 2 drained 0.5 GB so far, then gets the full 1 GB/s: +0.5 s.
        let t2 = n.next_completion().unwrap();
        assert!((t2.as_secs_f64() - 1.501).abs() < 1e-6, "{t2}");
        assert_eq!(n.take_completions(t2).len(), 1);
    }

    #[test]
    fn incast_seven_to_one() {
        // The HP hot-spot: 7 equal flows into node 0 take 7× longer than one.
        let mut n = net(8);
        for s in 1..8 {
            n.start_flow(SimTime::ZERO, spec(s, 0, 100_000_000));
        }
        let done = n.next_completion().unwrap();
        assert!((done.as_secs_f64() - (0.7 + 0.001)).abs() < 1e-6);
        assert_eq!(n.take_completions(done).len(), 7);
    }

    #[test]
    fn later_arrival_slows_existing_flow() {
        let mut n = net(3);
        n.start_flow(SimTime::ZERO, spec(0, 1, 1_000_000_000));
        // At t=0.501s the first flow has ~0.5 GB left; a competitor arrives.
        let t_mid = SimTime::from_nanos(501_000_000);
        n.start_flow(t_mid, spec(0, 2, 250_000_000));
        // First flow now drains at 0.5 GB/s: needs 1 more second.
        let next = n.next_completion().unwrap();
        // Competitor: ready at 0.502, 0.25GB at 0.5GB/s → done ≈ 1.002.
        assert!((next.as_secs_f64() - 1.002).abs() < 1e-6, "{next}");
        let first = n.take_completions(next);
        assert_eq!(first.len(), 1);
        assert_eq!(first[0].1.dst, NodeId(2));
    }

    #[test]
    fn completion_batches_simultaneous_flows() {
        let mut n = net(4);
        n.start_flow(SimTime::ZERO, spec(0, 1, 1_000_000));
        n.start_flow(SimTime::ZERO, spec(2, 3, 1_000_000));
        let t = n.next_completion().unwrap();
        assert_eq!(n.take_completions(t).len(), 2);
        assert!(n.next_completion().is_none());
    }

    #[test]
    fn zero_byte_flow_completes_after_latency() {
        let mut n = net(2);
        n.start_flow(SimTime::ZERO, spec(0, 1, 0));
        assert_eq!(n.next_completion(), Some(SimTime::from_nanos(1_000_000)));
    }

    #[test]
    #[should_panic(expected = "driven backwards")]
    fn time_travel_rejected() {
        let mut n = net(2);
        n.start_flow(SimTime::from_secs(5), spec(0, 1, 10));
        n.take_completions(SimTime::from_secs(1));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_endpoint_rejected() {
        let mut n = net(2);
        n.start_flow(SimTime::ZERO, spec(0, 7, 10));
    }

    #[test]
    fn paper_testbed_profile() {
        let c = NetworkConfig::paper_testbed(8);
        assert_eq!(c.nodes, 8);
        assert!((c.link_bandwidth - 0.875e9).abs() < 1.0);
    }

    #[test]
    fn fail_node_aborts_both_directions_and_frees_bandwidth() {
        let mut n = net(4);
        // Node 1 sends, receives, and an unrelated pair shares node 0's egress.
        n.start_flow(SimTime::ZERO, spec(1, 2, 1_000_000_000));
        n.start_flow(SimTime::ZERO, spec(3, 1, 1_000_000_000));
        n.start_flow(SimTime::ZERO, spec(0, 2, 1_000_000_000));
        let aborted = n.fail_node(SimTime::from_nanos(1_000_000), NodeId(1));
        assert_eq!(aborted.len(), 2);
        assert!(aborted
            .iter()
            .all(|(_, s)| s.src == NodeId(1) || s.dst == NodeId(1)));
        assert_eq!(n.active_flows(), 1);
        // The survivor now owns node 2's full ingress: 1 GB at 1 GB/s from the
        // abort instant (it had drained ~0.5 GB/s × ~0 s of payload so far).
        let done = n.next_completion().unwrap();
        assert!(
            done < SimTime::from_secs(2),
            "survivor sped up, done {done}"
        );
        assert_eq!(n.take_completions(done).len(), 1);
    }

    #[test]
    fn aborted_bytes_are_not_delivered() {
        let mut n = net(2);
        n.start_flow(SimTime::ZERO, spec(0, 1, 1_000_000_000));
        // Half way through, kill the receiver.
        let aborted = n.fail_node(SimTime::from_nanos(501_000_000), NodeId(1));
        assert_eq!(aborted.len(), 1);
        // Only the ~0.5 GB drained before the abort counts as delivered.
        let delivered = n.bytes_delivered();
        assert!(
            delivered < 510_000_000 && delivered > 490_000_000,
            "delivered {delivered}"
        );
        assert!(n.next_completion().is_none());
    }

    #[test]
    fn abort_matching_selects_by_tag() {
        let mut n = net(3);
        n.start_flow(
            SimTime::ZERO,
            FlowSpec {
                src: NodeId(0),
                dst: NodeId(1),
                bytes: 1_000,
                tag: 7,
            },
        );
        n.start_flow(
            SimTime::ZERO,
            FlowSpec {
                src: NodeId(0),
                dst: NodeId(2),
                bytes: 1_000,
                tag: 8,
            },
        );
        let aborted = n.abort_matching(SimTime::ZERO, |s| s.tag == 7);
        assert_eq!(aborted.len(), 1);
        assert_eq!(aborted[0].1.tag, 7);
        assert_eq!(n.active_flows(), 1);
    }

    #[test]
    fn abort_matching_nothing_is_noop() {
        let mut n = net(2);
        n.start_flow(SimTime::ZERO, spec(0, 1, 1_000));
        let before = n.next_completion();
        assert!(n.abort_matching(SimTime::ZERO, |s| s.tag == 999).is_empty());
        assert_eq!(n.next_completion(), before);
    }

    #[test]
    fn tags_round_trip() {
        let mut n = net(2);
        n.start_flow(
            SimTime::ZERO,
            FlowSpec {
                src: NodeId(0),
                dst: NodeId(1),
                bytes: 8,
                tag: 0xDEAD,
            },
        );
        let t = n.next_completion().unwrap();
        assert_eq!(n.take_completions(t)[0].1.tag, 0xDEAD);
    }
}
