//! # fela-net — flow-level network simulator
//!
//! The communication substrate of the reproduction: the paper's 8 nodes with
//! 10 Gbps NICs behind a non-blocking 40GE switch become a star of ingress/egress
//! links with **max–min fair sharing** ([`fairshare`]), a flow state machine with
//! exact completion instants ([`Network`]), and a flow-level **ring all-reduce**
//! collective ([`RingAllReduce`]) used by every runtime for parameter
//! synchronisation.
//!
//! Why flow-level (not packet-level): every communication claim in the paper —
//! DP's all-reduce volume, HP's FC-worker incast, MP's boundary transfers, Fela's
//! locality savings — is a bandwidth-sharing effect on NIC links, which max–min
//! fairness captures; packet dynamics would add cost and noise without changing
//! the comparisons.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod fairshare;

mod collective;
mod network;

pub use collective::{run_allreduce_alone, CollectiveProgress, RingAllReduce};
pub use network::{FlowId, FlowSpec, Network, NetworkConfig, NodeId};
