//! Execution tracing and utilization accounting.
//!
//! Experiments need two kinds of observability: an ordered record of interesting
//! events ([`Trace`]) for debugging and assertions, and per-resource busy-time
//! accounting ([`BusyTracker`]) to report GPU utilization / work conservation, which
//! the paper argues is Fela's advantage over pipeline parallelism.

use std::fmt;

use crate::time::{SimDuration, SimTime};

/// Machine-readable classification of a trace event.
///
/// Free-form messages are for humans; checkers (the `fela-check` race detector
/// in particular) need the scheduling-protocol events in structured form. The
/// kernel stays agnostic of higher-level types, so token ids are plain `u64`
/// and sub-model levels plain `usize`.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub enum EventKind {
    /// An event with no structured payload (human-readable message only).
    #[default]
    Generic,
    /// The scheduler granted `token` to `worker` (the worker will mutate the
    /// level's parameter gradient state from here on).
    Grant {
        /// Receiving worker.
        worker: usize,
        /// Granted token id.
        token: u64,
        /// Sub-model level the token trains.
        level: usize,
        /// BSP iteration the token belongs to.
        iteration: u64,
        /// Ids of the completed tokens whose outputs this token consumes.
        deps: Vec<u64>,
    },
    /// `worker` finished computing `token` (its gradient contribution exists).
    Complete {
        /// Reporting worker.
        worker: usize,
        /// Completed token id.
        token: u64,
        /// Sub-model level the token trained.
        level: usize,
        /// BSP iteration the token belongs to.
        iteration: u64,
    },
    /// A parameter all-reduce for `(level, iteration)` started.
    SyncStart {
        /// Level whose parameters synchronize.
        level: usize,
        /// Iteration the sync commits.
        iteration: u64,
    },
    /// The `(level, iteration)` parameter update committed: every participant
    /// now holds the reduced parameters (the mutation point of the level's
    /// parameter chunk).
    SyncDone {
        /// Level whose parameters synchronized.
        level: usize,
        /// Iteration the sync committed.
        iteration: u64,
    },
    /// `worker` left the cluster (process crash or link partition): its
    /// in-flight work is lost and every lease it held is revoked.
    Crash {
        /// The worker that died.
        worker: usize,
    },
    /// `worker` rejoined the cluster after a crash or link outage.
    Restart {
        /// The worker that came back.
        worker: usize,
    },
    /// The scheduler revoked `token`'s lease from `worker` (deadline expiry or
    /// crash notification): the token returns to the grantable set. A later
    /// re-grant of the same token must happen-after this event and carries a
    /// strictly larger attempt number.
    Revoke {
        /// The worker that lost the lease.
        worker: usize,
        /// The revoked token.
        token: u64,
        /// The attempt number of the revoked lease (0 = first grant).
        attempt: u64,
    },
    /// The scheduler rejected a completion report from `worker` for `token`
    /// because it no longer holds the token's lease: the gradient was
    /// discarded, not applied.
    StaleReport {
        /// The rejected reporter.
        worker: usize,
        /// The token whose lease it lost.
        token: u64,
    },
}

/// One recorded trace event.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// Virtual time of the event.
    pub time: SimTime,
    /// Component that emitted it (e.g. `"worker3"`, `"token-server"`).
    pub source: String,
    /// Free-form message.
    pub message: String,
    /// Structured payload for checkers ([`EventKind::Generic`] when none).
    pub kind: EventKind,
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}: {}", self.time, self.source, self.message)
    }
}

/// An append-only, optionally disabled, event trace.
///
/// Tracing is off by default so hot simulation loops pay a single branch; tests that
/// assert on schedules enable it.
#[derive(Clone, Debug, Default)]
pub struct Trace {
    enabled: bool,
    events: Vec<TraceEvent>,
}

impl Trace {
    /// Creates a disabled trace.
    pub fn disabled() -> Self {
        Trace::default()
    }

    /// Creates an enabled trace.
    pub fn enabled() -> Self {
        Trace {
            enabled: true,
            events: Vec::new(),
        }
    }

    /// Whether events are being recorded.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Records an event if enabled. `message` is built lazily so disabled traces pay
    /// no formatting cost.
    pub fn record(&mut self, time: SimTime, source: &str, message: impl FnOnce() -> String) {
        self.record_kind(time, source, EventKind::Generic, message);
    }

    /// Records a structured event if enabled (see [`EventKind`]). `message` is
    /// built lazily so disabled traces pay no formatting cost.
    pub fn record_kind(
        &mut self,
        time: SimTime,
        source: &str,
        kind: EventKind,
        message: impl FnOnce() -> String,
    ) {
        if self.enabled {
            self.events.push(TraceEvent {
                time,
                source: source.to_owned(),
                message: message(),
                kind,
            });
        }
    }

    /// All recorded events in order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Events whose source matches `source` exactly.
    pub fn from_source<'a>(&'a self, source: &'a str) -> impl Iterator<Item = &'a TraceEvent> {
        self.events.iter().filter(move |e| e.source == source)
    }

    /// Events whose message contains `needle`.
    pub fn containing<'a>(&'a self, needle: &'a str) -> impl Iterator<Item = &'a TraceEvent> {
        self.events
            .iter()
            .filter(move |e| e.message.contains(needle))
    }
}

/// Accumulates busy intervals for one resource (e.g. one worker's GPU).
///
/// The tracker tolerates only sequential, non-overlapping busy intervals — a GPU in
/// this model executes one token at a time — and panics on overlap, which would mean
/// the runtime double-booked the device.
#[derive(Clone, Debug, Default)]
pub struct BusyTracker {
    busy: SimDuration,
    busy_since: Option<SimTime>,
    last_end: SimTime,
}

impl BusyTracker {
    /// Creates an idle tracker.
    pub fn new() -> Self {
        BusyTracker::default()
    }

    /// Marks the resource busy starting at `now`.
    ///
    /// # Panics
    /// Panics if the resource is already busy or if `now` precedes the end of the
    /// previous busy interval.
    pub fn begin(&mut self, now: SimTime) {
        assert!(
            self.busy_since.is_none(),
            "resource marked busy while already busy (double booking at {now})"
        );
        assert!(
            now >= self.last_end,
            "busy interval starting at {now} overlaps previous interval ending at {}",
            self.last_end
        );
        self.busy_since = Some(now);
    }

    /// Marks the resource idle at `now`, accumulating the elapsed busy time.
    ///
    /// # Panics
    /// Panics if the resource was not busy.
    pub fn end(&mut self, now: SimTime) {
        let Some(since) = self.busy_since.take() else {
            panic!("resource marked idle while not busy (at {now})");
        };
        self.busy += now.since(since);
        self.last_end = now;
    }

    /// Aborts an open busy interval at `now` — the resource died mid-interval
    /// (fault injection). Elapsed time is accumulated as usual; an interval
    /// armed at a *future* instant (a straggler floor the resource never
    /// reached) is discarded entirely. No-op when idle.
    pub fn abort(&mut self, now: SimTime) {
        if let Some(since) = self.busy_since.take() {
            if now > since {
                self.busy += now.since(since);
                self.last_end = now;
            }
        }
    }

    /// Whether the resource is currently busy.
    pub fn is_busy(&self) -> bool {
        self.busy_since.is_some()
    }

    /// Total accumulated busy time (not counting an open interval).
    pub fn busy_time(&self) -> SimDuration {
        self.busy
    }

    /// Utilization over `[0, horizon]` as a fraction in `[0, 1]`.
    ///
    /// Returns 0 for a zero horizon.
    pub fn utilization(&self, horizon: SimTime) -> f64 {
        if horizon == SimTime::ZERO {
            return 0.0;
        }
        self.busy.as_secs_f64() / horizon.as_secs_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::from_nanos(ms * 1_000_000)
    }

    #[test]
    fn disabled_trace_records_nothing() {
        let mut trace = Trace::disabled();
        trace.record(t(1), "x", || "should not appear".into());
        assert!(trace.events().is_empty());
        assert!(!trace.is_enabled());
    }

    #[test]
    fn enabled_trace_records_and_filters() {
        let mut trace = Trace::enabled();
        trace.record(t(1), "worker0", || "train token 3".into());
        trace.record(t(2), "ts", || "generate token 8".into());
        trace.record(t(3), "worker0", || "report token 3".into());
        assert_eq!(trace.events().len(), 3);
        assert_eq!(trace.from_source("worker0").count(), 2);
        assert_eq!(trace.containing("token 8").count(), 1);
        let shown = trace.events()[0].to_string();
        assert!(shown.contains("worker0") && shown.contains("train token 3"));
    }

    #[test]
    fn busy_tracker_accumulates() {
        let mut tracker = BusyTracker::new();
        tracker.begin(t(0));
        assert!(tracker.is_busy());
        tracker.end(t(10));
        tracker.begin(t(20));
        tracker.end(t(25));
        assert_eq!(tracker.busy_time(), SimDuration::from_millis(15));
        assert!((tracker.utilization(t(30)) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn abort_accumulates_started_interval() {
        let mut tracker = BusyTracker::new();
        tracker.begin(t(0));
        tracker.abort(t(10));
        assert!(!tracker.is_busy());
        assert_eq!(tracker.busy_time(), SimDuration::from_millis(10));
        // A fresh interval may start right at the abort instant.
        tracker.begin(t(10));
        tracker.end(t(12));
        assert_eq!(tracker.busy_time(), SimDuration::from_millis(12));
    }

    #[test]
    fn abort_discards_future_interval() {
        let mut tracker = BusyTracker::new();
        tracker.begin(t(5));
        tracker.end(t(10));
        // Armed at a future straggler floor, aborted before it started.
        tracker.begin(t(20));
        tracker.abort(t(15));
        assert!(!tracker.is_busy());
        assert_eq!(tracker.busy_time(), SimDuration::from_millis(5));
        // The discarded interval must not poison later bookkeeping.
        tracker.begin(t(15));
        tracker.end(t(16));
        assert_eq!(tracker.busy_time(), SimDuration::from_millis(6));
    }

    #[test]
    fn abort_while_idle_is_noop() {
        let mut tracker = BusyTracker::new();
        tracker.abort(t(3));
        assert_eq!(tracker.busy_time(), SimDuration::ZERO);
    }

    #[test]
    fn utilization_of_zero_horizon_is_zero() {
        assert_eq!(BusyTracker::new().utilization(SimTime::ZERO), 0.0);
    }

    #[test]
    #[should_panic(expected = "double booking")]
    fn double_begin_panics() {
        let mut tracker = BusyTracker::new();
        tracker.begin(t(0));
        tracker.begin(t(1));
    }

    #[test]
    #[should_panic(expected = "not busy")]
    fn end_while_idle_panics() {
        BusyTracker::new().end(t(1));
    }

    #[test]
    #[should_panic(expected = "overlaps previous")]
    fn overlapping_intervals_panic() {
        let mut tracker = BusyTracker::new();
        tracker.begin(t(0));
        tracker.end(t(10));
        tracker.begin(t(5));
    }
}
