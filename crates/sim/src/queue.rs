//! The pending-event set of the simulator.
//!
//! [`EventQueue`] is a priority queue keyed on `(time, sequence)`. The sequence number
//! is assigned at scheduling time, so events scheduled earlier fire earlier among
//! same-timestamp events — a total, deterministic order that never depends on heap
//! internals or hash iteration.
//!
//! Events can be cancelled by [`EventId`]; cancellation is lazy (a tombstone set), so
//! it is O(log n) amortised rather than requiring heap surgery. The network simulator
//! uses this to retract flow-completion events whenever fair shares are recomputed —
//! a cancel-heavy workload, so the queue also tracks the live-event set exactly
//! (cancelling an already-fired id is a true no-op, not a leaked tombstone) and
//! compacts tombstones out of the heap once they outnumber live entries.

use std::collections::{BinaryHeap, HashSet};

use crate::time::SimTime;

/// Identifier of a scheduled event, usable for cancellation.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct EventId(u64);

struct HeapEntry<E> {
    time: SimTime,
    id: EventId,
    event: E,
}

impl<E> PartialEq for HeapEntry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.id == other.id
    }
}
impl<E> Eq for HeapEntry<E> {}
impl<E> PartialOrd for HeapEntry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for HeapEntry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // BinaryHeap is a max-heap; reverse so the earliest (time, id) pops first.
        (other.time, other.id).cmp(&(self.time, self.id))
    }
}

/// Once the tombstone set is at least this large *and* outnumbers live entries,
/// the heap is rebuilt without tombstones. The absolute floor keeps small queues
/// from compacting constantly; the ratio bounds heap size at 2× the live count.
const COMPACT_MIN_TOMBSTONES: usize = 64;

/// A deterministic time-ordered event queue with lazy cancellation.
///
/// The sets below partition every issued id: an id is *live* (in `pending`, with
/// exactly one heap entry), *cancelled-but-unreaped* (in `cancelled`, with exactly
/// one heap entry), or *gone* (fired or reaped; in neither set, no heap entry).
/// `HashSet` is safe here despite the workspace's determinism rules: membership is
/// the only operation — iteration order is never observed.
pub struct EventQueue<E> {
    entries: BinaryHeap<HeapEntry<E>>,
    /// Ids currently scheduled: not yet fired, not cancelled.
    pending: HashSet<EventId>,
    /// Cancelled ids whose heap entries have not been reaped yet.
    cancelled: HashSet<EventId>,
    next_seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            entries: BinaryHeap::new(),
            pending: HashSet::new(),
            cancelled: HashSet::new(),
            next_seq: 0,
        }
    }

    /// Schedules `event` to fire at absolute time `time`; returns its id.
    pub fn schedule_at(&mut self, time: SimTime, event: E) -> EventId {
        let id = EventId(self.next_seq);
        self.next_seq += 1;
        self.entries.push(HeapEntry { time, id, event });
        self.pending.insert(id);
        id
    }

    /// Cancels a previously scheduled event. Returns `true` if the event was still
    /// pending (scheduled, not yet fired, not already cancelled). Cancelling an
    /// event that has already fired — or an id this queue never issued — is a
    /// no-op returning `false`; it leaves no tombstone behind.
    pub fn cancel(&mut self, id: EventId) -> bool {
        if !self.pending.remove(&id) {
            return false;
        }
        self.cancelled.insert(id);
        self.maybe_compact();
        true
    }

    /// Rebuilds the heap without tombstones once they dominate it. Amortised O(1):
    /// a rebuild over `n` entries is paid for by the ≥ n/2 cancellations since the
    /// previous rebuild. Pop order is unaffected — it is a pure function of the
    /// surviving `(time, id)` keys.
    fn maybe_compact(&mut self) {
        if self.cancelled.len() < COMPACT_MIN_TOMBSTONES
            || self.cancelled.len() * 2 < self.entries.len()
        {
            return;
        }
        let cancelled = std::mem::take(&mut self.cancelled);
        self.entries.retain(|e| !cancelled.contains(&e.id));
    }

    /// Removes and returns the next live event as `(time, id, event)`.
    pub fn pop_next(&mut self) -> Option<(SimTime, EventId, E)> {
        while let Some(entry) = self.entries.pop() {
            if self.cancelled.remove(&entry.id) {
                continue;
            }
            self.pending.remove(&entry.id);
            return Some((entry.time, entry.id, entry.event));
        }
        None
    }

    /// Time of the next live event, if any, without removing it.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        loop {
            let top = self.entries.peek()?;
            if self.cancelled.contains(&top.id) {
                // The peek above guarantees the heap is non-empty.
                if let Some(entry) = self.entries.pop() {
                    self.cancelled.remove(&entry.id);
                }
                continue;
            }
            return Some(top.time);
        }
    }

    /// Number of live events currently pending.
    pub fn len(&self) -> usize {
        self.pending.len()
    }

    /// True if no live events remain.
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }

    /// Heap entries currently allocated, live or tombstoned (compaction tests).
    #[cfg(test)]
    fn heap_len(&self) -> usize {
        self.entries.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule_at(t(3), "c");
        q.schedule_at(t(1), "a");
        q.schedule_at(t(2), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop_next().map(|(_, _, e)| e)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn fifo_among_equal_timestamps() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule_at(t(5), i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop_next().map(|(_, _, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn cancellation_skips_events() {
        let mut q = EventQueue::new();
        let a = q.schedule_at(t(1), "a");
        q.schedule_at(t(2), "b");
        assert!(q.cancel(a));
        assert!(!q.cancel(a), "double cancel reports false");
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop_next().map(|(_, _, e)| e), Some("b"));
        assert!(q.pop_next().is_none());
    }

    #[test]
    fn cancel_unknown_id_is_false() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(!q.cancel(EventId(42)));
    }

    /// Regression: cancelling an id that has already fired must not leave a
    /// tombstone behind — with the old tombstone-set-only accounting, `len()`
    /// (`entries.len() - cancelled.len()`) under-counted and could underflow.
    #[test]
    fn cancel_after_fire_keeps_len_consistent() {
        let mut q = EventQueue::new();
        let a = q.schedule_at(t(1), "a");
        let b = q.schedule_at(t(2), "b");
        assert_eq!(q.pop_next().map(|(_, _, e)| e), Some("a"));
        assert!(!q.cancel(a), "cancelling a fired event is a no-op");
        assert_eq!(
            q.len(),
            1,
            "the fired-then-cancelled id must not be counted"
        );
        assert!(!q.is_empty());
        assert_eq!(q.pop_next().map(|(_, _, e)| e), Some("b"));
        assert_eq!(q.len(), 0, "previously underflowed usize here");
        assert!(q.is_empty());
        assert!(!q.cancel(b), "cancel after drain is still a no-op");
        assert_eq!(q.len(), 0);
        // A fresh schedule after the failed cancels behaves normally.
        q.schedule_at(t(3), "c");
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop_next().map(|(_, _, e)| e), Some("c"));
    }

    #[test]
    fn peek_skips_cancelled_head() {
        let mut q = EventQueue::new();
        let a = q.schedule_at(t(1), "a");
        q.schedule_at(t(7), "b");
        q.cancel(a);
        assert_eq!(q.peek_time(), Some(t(7)));
        assert!(!q.is_empty());
        q.pop_next();
        assert!(q.is_empty());
    }

    #[test]
    fn interleaved_schedule_and_pop() {
        let mut q = EventQueue::new();
        q.schedule_at(t(10), 10u32);
        q.schedule_at(t(1), 1u32);
        let (time, _, ev) = q.pop_next().unwrap();
        assert_eq!((time, ev), (t(1), 1));
        // Schedule something between the popped event and the remaining one.
        q.schedule_at(t(1) + SimDuration::from_millis(1), 2u32);
        assert_eq!(q.pop_next().unwrap().2, 2);
        assert_eq!(q.pop_next().unwrap().2, 10);
    }

    /// The cancel-heavy rescheduling pattern (retract + re-arm one completion
    /// event per network change) must not grow the heap without bound.
    #[test]
    fn tombstones_are_compacted() {
        let mut q = EventQueue::new();
        let mut live = Vec::new();
        for round in 0..10_000u64 {
            let id = q.schedule_at(t(round + 1), round);
            if round % 100 == 99 {
                live.push(id); // keep a few
            } else {
                q.cancel(id);
            }
        }
        assert_eq!(q.len(), live.len());
        assert!(
            q.heap_len() <= 2 * live.len() + 2 * COMPACT_MIN_TOMBSTONES,
            "heap kept {} entries for {} live events",
            q.heap_len(),
            live.len()
        );
        // Everything still pops, in schedule order.
        let order: Vec<_> = std::iter::from_fn(|| q.pop_next().map(|(_, _, e)| e)).collect();
        assert_eq!(order, (99..10_000).step_by(100).collect::<Vec<_>>());
    }

    /// Compaction never fires below the tombstone floor, so tiny queues keep
    /// their O(log n) lazy cancellation.
    #[test]
    fn small_queues_do_not_compact() {
        let mut q = EventQueue::new();
        let ids: Vec<_> = (0..10).map(|i| q.schedule_at(t(i + 1), i)).collect();
        for id in &ids[..9] {
            q.cancel(*id);
        }
        assert_eq!(q.heap_len(), 10, "all tombstones still lazily parked");
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop_next().unwrap().2, 9);
    }
}
