//! The pending-event set of the simulator.
//!
//! [`EventQueue`] is a priority queue keyed on `(time, sequence)`. The sequence number
//! is assigned at scheduling time, so events scheduled earlier fire earlier among
//! same-timestamp events — a total, deterministic order that never depends on heap
//! internals or hash iteration.
//!
//! Events can be cancelled by [`EventId`]; cancellation is lazy (a tombstone set), so
//! it is O(log n) amortised rather than requiring heap surgery. The network simulator
//! uses this to retract flow-completion events whenever fair shares are recomputed.

use std::collections::{BinaryHeap, HashSet};

use crate::time::SimTime;

/// Identifier of a scheduled event, usable for cancellation.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct EventId(u64);

struct HeapEntry<E> {
    time: SimTime,
    id: EventId,
    event: E,
}

impl<E> PartialEq for HeapEntry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.id == other.id
    }
}
impl<E> Eq for HeapEntry<E> {}
impl<E> PartialOrd for HeapEntry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for HeapEntry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // BinaryHeap is a max-heap; reverse so the earliest (time, id) pops first.
        (other.time, other.id).cmp(&(self.time, self.id))
    }
}

/// A deterministic time-ordered event queue with lazy cancellation.
pub struct EventQueue<E> {
    entries: BinaryHeap<HeapEntry<E>>,
    cancelled: HashSet<EventId>,
    next_seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            entries: BinaryHeap::new(),
            cancelled: HashSet::new(),
            next_seq: 0,
        }
    }

    /// Schedules `event` to fire at absolute time `time`; returns its id.
    pub fn schedule_at(&mut self, time: SimTime, event: E) -> EventId {
        let id = EventId(self.next_seq);
        self.next_seq += 1;
        self.entries.push(HeapEntry { time, id, event });
        id
    }

    /// Cancels a previously scheduled event. Returns `true` if the id was issued by
    /// this queue and had not already been cancelled. Cancelling an event that has
    /// already fired is a silent no-op (its tombstone is never consulted again and is
    /// dropped on the next reconciliation pass through the heap head).
    pub fn cancel(&mut self, id: EventId) -> bool {
        if id.0 >= self.next_seq {
            return false;
        }
        self.cancelled.insert(id)
    }

    /// Removes and returns the next live event as `(time, id, event)`.
    pub fn pop_next(&mut self) -> Option<(SimTime, EventId, E)> {
        while let Some(entry) = self.entries.pop() {
            if self.cancelled.remove(&entry.id) {
                continue;
            }
            return Some((entry.time, entry.id, entry.event));
        }
        None
    }

    /// Time of the next live event, if any, without removing it.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        loop {
            let top = self.entries.peek()?;
            if self.cancelled.contains(&top.id) {
                // The peek above guarantees the heap is non-empty.
                if let Some(entry) = self.entries.pop() {
                    self.cancelled.remove(&entry.id);
                }
                continue;
            }
            return Some(top.time);
        }
    }

    /// Number of live events currently pending.
    pub fn len(&mut self) -> usize {
        // Cancelled entries still in the heap are exactly the live tombstones.
        self.entries.len() - self.cancelled.len()
    }

    /// True if no live events remain.
    pub fn is_empty(&mut self) -> bool {
        self.peek_time().is_none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule_at(t(3), "c");
        q.schedule_at(t(1), "a");
        q.schedule_at(t(2), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop_next().map(|(_, _, e)| e)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn fifo_among_equal_timestamps() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule_at(t(5), i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop_next().map(|(_, _, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn cancellation_skips_events() {
        let mut q = EventQueue::new();
        let a = q.schedule_at(t(1), "a");
        q.schedule_at(t(2), "b");
        assert!(q.cancel(a));
        assert!(!q.cancel(a), "double cancel reports false");
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop_next().map(|(_, _, e)| e), Some("b"));
        assert!(q.pop_next().is_none());
    }

    #[test]
    fn cancel_unknown_id_is_false() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(!q.cancel(EventId(42)));
    }

    #[test]
    fn peek_skips_cancelled_head() {
        let mut q = EventQueue::new();
        let a = q.schedule_at(t(1), "a");
        q.schedule_at(t(7), "b");
        q.cancel(a);
        assert_eq!(q.peek_time(), Some(t(7)));
        assert!(!q.is_empty());
        q.pop_next();
        assert!(q.is_empty());
    }

    #[test]
    fn interleaved_schedule_and_pop() {
        let mut q = EventQueue::new();
        q.schedule_at(t(10), 10u32);
        q.schedule_at(t(1), 1u32);
        let (time, _, ev) = q.pop_next().unwrap();
        assert_eq!((time, ev), (t(1), 1));
        // Schedule something between the popped event and the remaining one.
        q.schedule_at(t(1) + SimDuration::from_millis(1), 2u32);
        assert_eq!(q.pop_next().unwrap().2, 2);
        assert_eq!(q.pop_next().unwrap().2, 10);
    }
}
