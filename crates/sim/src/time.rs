//! Virtual time for the discrete-event simulator.
//!
//! Simulation time is an integer number of **nanoseconds** held in a [`SimTime`].
//! Integer time keeps event ordering exact and platform-independent: two runs of the
//! same scenario produce byte-identical traces, which the reproducibility tests rely
//! on. Durations between instants are [`SimDuration`]s; both types provide lossless
//! arithmetic that panics on overflow (a simulation that overflows ~584 years of
//! virtual time is a bug, not a condition to handle).

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// Number of nanoseconds in one second.
pub const NANOS_PER_SEC: u64 = 1_000_000_000;

/// An instant on the virtual clock, in nanoseconds since simulation start.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct SimTime(u64);

/// A span of virtual time, in nanoseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; used as an "infinitely far" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant from raw nanoseconds.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimTime(nanos)
    }

    /// Creates an instant from whole seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs * NANOS_PER_SEC)
    }

    /// Raw nanoseconds since simulation start.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since simulation start, as a float (for reporting only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_SEC as f64
    }

    /// Duration elapsed since `earlier`.
    ///
    /// # Panics
    /// Panics if `earlier` is later than `self`: asking for a negative elapsed time
    /// always indicates corrupted event ordering.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(earlier.0)
                .expect("SimTime::since called with a later instant"),
        )
    }

    /// Saturating duration since `earlier`; zero if `earlier` is in the future.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The largest representable duration; used as an "infinite" sentinel.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Creates a duration from raw nanoseconds.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimDuration(nanos)
    }

    /// Creates a duration from whole seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * NANOS_PER_SEC)
    }

    /// Creates a duration from whole milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        SimDuration(millis * 1_000_000)
    }

    /// Creates a duration from whole microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        SimDuration(micros * 1_000)
    }

    /// Creates a duration from fractional seconds, rounding to the nearest
    /// nanosecond.
    ///
    /// # Panics
    /// Panics if `secs` is negative, non-finite, or too large to represent.
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(
            secs.is_finite() && secs >= 0.0,
            "duration seconds must be finite and non-negative, got {secs}"
        );
        let nanos = secs * NANOS_PER_SEC as f64;
        assert!(
            nanos < u64::MAX as f64,
            "duration of {secs} seconds overflows SimDuration"
        );
        SimDuration(nanos.round() as u64)
    }

    /// Raw nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Fractional seconds (for reporting only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_SEC as f64
    }

    /// True if this duration is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Checked addition; `None` on overflow.
    pub fn checked_add(self, rhs: SimDuration) -> Option<SimDuration> {
        self.0.checked_add(rhs.0).map(SimDuration)
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }

    /// Multiplies the duration by an integer factor.
    pub fn mul_u64(self, factor: u64) -> SimDuration {
        SimDuration(
            self.0
                .checked_mul(factor)
                .expect("SimDuration multiplication overflow"),
        )
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(
            self.0
                .checked_add(rhs.0)
                .expect("SimTime addition overflow"),
        )
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(
            self.0
                .checked_add(rhs.0)
                .expect("SimDuration addition overflow"),
        )
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(rhs.0)
                .expect("SimDuration subtraction underflow"),
        )
    }
}

impl std::iter::Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> Self {
        iter.fold(SimDuration::ZERO, |a, b| a + b)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        assert_eq!(SimTime::from_secs(3).as_nanos(), 3 * NANOS_PER_SEC);
        assert_eq!(SimDuration::from_millis(1500).as_secs_f64(), 1.5);
        assert_eq!(SimDuration::from_micros(5).as_nanos(), 5000);
        assert_eq!(SimDuration::from_secs_f64(0.25).as_nanos(), 250_000_000);
    }

    #[test]
    fn from_secs_f64_rounds_to_nearest() {
        // 1.5 ns rounds up to 2 ns.
        assert_eq!(SimDuration::from_secs_f64(1.5e-9).as_nanos(), 2);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn from_secs_f64_rejects_negative() {
        let _ = SimDuration::from_secs_f64(-1.0);
    }

    #[test]
    fn time_arithmetic() {
        let t = SimTime::from_secs(1) + SimDuration::from_millis(500);
        assert_eq!(t.as_nanos(), 1_500_000_000);
        assert_eq!(
            t.since(SimTime::from_secs(1)),
            SimDuration::from_millis(500)
        );
        assert_eq!(SimTime::from_secs(1).saturating_since(t), SimDuration::ZERO);
    }

    #[test]
    #[should_panic(expected = "later instant")]
    fn since_panics_on_negative_elapsed() {
        let _ = SimTime::from_secs(1).since(SimTime::from_secs(2));
    }

    #[test]
    fn duration_sum_and_ops() {
        let total: SimDuration = [1u64, 2, 3]
            .iter()
            .map(|&s| SimDuration::from_secs(s))
            .sum();
        assert_eq!(total, SimDuration::from_secs(6));
        assert_eq!(total.mul_u64(2), SimDuration::from_secs(12));
        assert_eq!(
            total.saturating_sub(SimDuration::from_secs(10)),
            SimDuration::ZERO
        );
        assert!(SimDuration::ZERO.is_zero());
    }
}
