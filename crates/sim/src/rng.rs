//! Deterministic randomness for simulations.
//!
//! All stochastic behaviour (probability-based stragglers, randomized workloads)
//! draws from a [`SimRng`] seeded explicitly by the experiment. The generator is a
//! `SplitMix64`-seeded `xoshiro256**`-style permutation implemented locally so that
//! streams are stable across `rand` crate upgrades — experiment outputs recorded in
//! EXPERIMENTS.md must stay regenerable.
//!
//! `SimRng` also implements [`rand::RngCore`], so it plugs into `rand_distr`
//! distributions where those are convenient.

use rand::RngCore;

/// A small, fast, deterministic PRNG (xoshiro256** core, SplitMix64 seeding).
#[derive(Clone, Debug)]
pub struct SimRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        SimRng { s }
    }

    /// Derives an independent child stream, e.g. one per worker, so adding a consumer
    /// of randomness in one component never perturbs another component's stream.
    pub fn fork(&self, stream: u64) -> SimRng {
        // Mix the stream id through SplitMix64 against the parent state.
        let mut sm = self.s[0] ^ stream.wrapping_mul(0xA24B_AED4_963E_E407);
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        SimRng { s }
    }

    /// Next raw 64-bit output.
    pub fn next_raw(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform float in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 high bits → uniform double in [0,1).
        (self.next_raw() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)` using Lemire's rejection method.
    ///
    /// # Panics
    /// Panics if `bound` is zero.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "next_below requires a positive bound");
        loop {
            let x = self.next_raw();
            let m = (x as u128).wrapping_mul(bound as u128);
            let low = m as u64;
            if low >= bound {
                return (m >> 64) as u64;
            }
            // Rejection zone: retry to keep the distribution exactly uniform.
            let threshold = bound.wrapping_neg() % bound;
            if low >= threshold {
                return (m >> 64) as u64;
            }
        }
    }

    /// Bernoulli trial with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p.clamp(0.0, 1.0)
    }
}

impl RngCore for SimRng {
    fn next_u32(&mut self) -> u32 {
        (self.next_raw() >> 32) as u32
    }
    fn next_u64(&mut self) -> u64 {
        self.next_raw()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_raw().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed_from_u64(7);
        let mut b = SimRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_raw(), b.next_raw());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::seed_from_u64(1);
        let mut b = SimRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_raw() == b.next_raw()).count();
        assert!(same < 2, "streams should be effectively independent");
    }

    #[test]
    fn forked_streams_are_independent_of_parent_consumption() {
        let parent = SimRng::seed_from_u64(42);
        let child1 = parent.fork(3);
        let mut parent2 = SimRng::seed_from_u64(42);
        // Consuming from a clone of the parent must not change what fork(3) yields.
        parent2.next_raw();
        let child2 = SimRng::seed_from_u64(42).fork(3);
        let mut c1 = child1;
        let mut c2 = child2;
        for _ in 0..16 {
            assert_eq!(c1.next_raw(), c2.next_raw());
        }
        let _ = parent2;
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut rng = SimRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn next_below_is_in_range_and_covers() {
        let mut rng = SimRng::seed_from_u64(5);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            let v = rng.next_below(8) as usize;
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues should appear");
    }

    #[test]
    #[should_panic(expected = "positive bound")]
    fn next_below_zero_panics() {
        SimRng::seed_from_u64(0).next_below(0);
    }

    #[test]
    fn chance_extremes() {
        let mut rng = SimRng::seed_from_u64(11);
        assert!((0..100).all(|_| !rng.chance(0.0)));
        assert!((0..100).all(|_| rng.chance(1.0)));
    }

    #[test]
    fn chance_rate_is_roughly_p() {
        let mut rng = SimRng::seed_from_u64(13);
        let hits = (0..100_000).filter(|_| rng.chance(0.3)).count();
        let rate = hits as f64 / 100_000.0;
        assert!((rate - 0.3).abs() < 0.01, "rate {rate} too far from 0.3");
    }

    #[test]
    fn fill_bytes_handles_partial_chunks() {
        let mut rng = SimRng::seed_from_u64(1);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
