//! The event loop.
//!
//! A simulation is a [`World`] (all mutable state plus an event handler) driven by an
//! [`Engine`]. The engine owns the clock and the [`EventQueue`]; each step pops the
//! earliest live event, advances the clock to it, and hands it to the world together
//! with a [`Scheduler`] through which the handler may schedule or cancel follow-up
//! events. Handlers never see wall-clock time or threads — everything is sequential
//! and deterministic.

use crate::queue::{EventId, EventQueue};
use crate::time::{SimDuration, SimTime};

/// The mutable state of a simulation plus its event handler.
pub trait World {
    /// The event type circulating through the queue.
    type Event;

    /// Handles one event at virtual time `now`.
    fn handle(&mut self, now: SimTime, event: Self::Event, sched: &mut Scheduler<'_, Self::Event>);
}

/// Handle through which event handlers schedule and cancel events.
pub struct Scheduler<'a, E> {
    now: SimTime,
    queue: &'a mut EventQueue<E>,
}

impl<'a, E> Scheduler<'a, E> {
    /// The current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `event` to fire after `delay`.
    pub fn schedule_in(&mut self, delay: SimDuration, event: E) -> EventId {
        self.queue.schedule_at(self.now + delay, event)
    }

    /// Schedules `event` at absolute time `at`.
    ///
    /// # Panics
    /// Panics if `at` is in the past — scheduling backwards in time would silently
    /// corrupt causality, so it is rejected loudly.
    pub fn schedule_at(&mut self, at: SimTime, event: E) -> EventId {
        assert!(
            at >= self.now,
            "cannot schedule event at {at} before current time {}",
            self.now
        );
        self.queue.schedule_at(at, event)
    }

    /// Schedules `event` to fire immediately (at the current time, after all events
    /// already queued for this instant).
    pub fn schedule_now(&mut self, event: E) -> EventId {
        self.queue.schedule_at(self.now, event)
    }

    /// Cancels a pending event. See [`EventQueue::cancel`].
    pub fn cancel(&mut self, id: EventId) -> bool {
        self.queue.cancel(id)
    }
}

/// Outcome of [`Engine::run`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RunOutcome {
    /// The queue drained: no events remain.
    Drained,
    /// The step limit was reached before the queue drained.
    StepLimit,
}

/// Drives a [`World`] until its event queue drains.
pub struct Engine<W: World> {
    world: W,
    queue: EventQueue<W::Event>,
    now: SimTime,
    steps: u64,
}

impl<W: World> Engine<W> {
    /// Creates an engine at time zero with an empty queue.
    pub fn new(world: W) -> Self {
        Engine {
            world,
            queue: EventQueue::new(),
            now: SimTime::ZERO,
            steps: 0,
        }
    }

    /// Seeds an initial event at absolute time `at` before running.
    pub fn prime_at(&mut self, at: SimTime, event: W::Event) -> EventId {
        self.queue.schedule_at(at, event)
    }

    /// Seeds an initial event at time zero.
    pub fn prime(&mut self, event: W::Event) -> EventId {
        self.prime_at(SimTime::ZERO, event)
    }

    /// The current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events processed so far.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Read access to the world.
    pub fn world(&self) -> &W {
        &self.world
    }

    /// Mutable access to the world (e.g. to inspect or reset between phases).
    pub fn world_mut(&mut self) -> &mut W {
        &mut self.world
    }

    /// Consumes the engine, returning the world and the final time.
    pub fn into_world(self) -> (W, SimTime) {
        (self.world, self.now)
    }

    /// Processes a single event. Returns `false` if the queue was empty.
    pub fn step(&mut self) -> bool {
        let Some((time, _, event)) = self.queue.pop_next() else {
            return false;
        };
        debug_assert!(
            time >= self.now,
            "event queue returned an event in the past"
        );
        self.now = time;
        self.steps += 1;
        let mut sched = Scheduler {
            now: self.now,
            queue: &mut self.queue,
        };
        self.world.handle(time, event, &mut sched);
        true
    }

    /// Runs until the queue drains or `max_steps` events have been processed.
    ///
    /// The step limit exists purely as a runaway-simulation backstop for tests and
    /// experiments; hitting it usually indicates a livelock in the modelled protocol.
    pub fn run(&mut self, max_steps: u64) -> RunOutcome {
        for _ in 0..max_steps {
            if !self.step() {
                return RunOutcome::Drained;
            }
        }
        if self.queue.is_empty() {
            RunOutcome::Drained
        } else {
            RunOutcome::StepLimit
        }
    }

    /// Runs to completion with a generous default backstop (2^40 events).
    pub fn run_to_completion(&mut self) -> RunOutcome {
        self.run(1 << 40)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A world that models a ping-pong of `n` messages.
    struct PingPong {
        remaining: u32,
        log: Vec<(SimTime, &'static str)>,
    }

    enum Msg {
        Ping,
        Pong,
    }

    impl World for PingPong {
        type Event = Msg;
        fn handle(&mut self, now: SimTime, event: Msg, sched: &mut Scheduler<'_, Msg>) {
            match event {
                Msg::Ping => {
                    self.log.push((now, "ping"));
                    sched.schedule_in(SimDuration::from_millis(10), Msg::Pong);
                }
                Msg::Pong => {
                    self.log.push((now, "pong"));
                    if self.remaining > 0 {
                        self.remaining -= 1;
                        sched.schedule_in(SimDuration::from_millis(10), Msg::Ping);
                    }
                }
            }
        }
    }

    #[test]
    fn ping_pong_advances_time() {
        let mut engine = Engine::new(PingPong {
            remaining: 2,
            log: vec![],
        });
        engine.prime(Msg::Ping);
        assert_eq!(engine.run_to_completion(), RunOutcome::Drained);
        let (world, end) = engine.into_world();
        assert_eq!(
            world.log.iter().map(|(_, m)| *m).collect::<Vec<_>>(),
            vec!["ping", "pong", "ping", "pong", "ping", "pong"]
        );
        assert_eq!(end, SimTime::from_nanos(50 * 1_000_000));
    }

    #[test]
    fn step_limit_is_reported() {
        let mut engine = Engine::new(PingPong {
            remaining: u32::MAX,
            log: vec![],
        });
        engine.prime(Msg::Ping);
        assert_eq!(engine.run(5), RunOutcome::StepLimit);
        assert_eq!(engine.steps(), 5);
    }

    #[test]
    fn empty_engine_drains_immediately() {
        let mut engine = Engine::new(PingPong {
            remaining: 0,
            log: vec![],
        });
        assert_eq!(engine.run_to_completion(), RunOutcome::Drained);
        assert_eq!(engine.now(), SimTime::ZERO);
    }

    /// Scheduling at the current instant runs after already-queued same-time events.
    struct Recorder(Vec<u32>);
    impl World for Recorder {
        type Event = u32;
        fn handle(&mut self, _now: SimTime, event: u32, sched: &mut Scheduler<'_, u32>) {
            self.0.push(event);
            if event == 1 {
                sched.schedule_now(99);
            }
        }
    }

    #[test]
    fn schedule_now_preserves_fifo() {
        let mut engine = Engine::new(Recorder(vec![]));
        engine.prime(1);
        engine.prime(2);
        engine.run_to_completion();
        assert_eq!(engine.world().0, vec![1, 2, 99]);
    }
}
