//! # fela-sim — deterministic discrete-event simulation kernel
//!
//! This crate is the execution substrate for the Fela reproduction: a sequential,
//! fully deterministic discrete-event simulator. Every higher-level component — the
//! GPU compute model, the flow-level network, the Fela token runtime and the DP/MP/HP
//! baselines — is expressed as a [`World`] whose state advances only when the
//! [`Engine`] delivers events from the [`EventQueue`].
//!
//! Design goals, in order:
//!
//! 1. **Determinism.** Integer nanosecond time ([`SimTime`]), sequence-number
//!    tie-breaking in the queue, and explicit seeded randomness ([`SimRng`]) make
//!    every run byte-reproducible. The paper's central qualitative claim is that Fela
//!    preserves algorithm reproducibility; the test suite leans on simulator
//!    determinism to check it.
//! 2. **Cancellation.** Flow-level network simulation re-plans transfer completions
//!    whenever bandwidth shares change, so the queue supports O(log n) lazy
//!    cancellation by [`EventId`].
//! 3. **Observability.** [`Trace`] records schedules for assertion-style tests;
//!    [`BusyTracker`] accounts GPU busy time so experiments can report work
//!    conservation.
//!
//! ## Example
//!
//! ```
//! use fela_sim::{Engine, Scheduler, SimDuration, SimTime, World};
//!
//! struct Countdown(u32);
//! impl World for Countdown {
//!     type Event = ();
//!     fn handle(&mut self, _now: SimTime, _ev: (), sched: &mut Scheduler<'_, ()>) {
//!         if self.0 > 0 {
//!             self.0 -= 1;
//!             sched.schedule_in(SimDuration::from_secs(1), ());
//!         }
//!     }
//! }
//!
//! let mut engine = Engine::new(Countdown(3));
//! engine.prime(());
//! engine.run_to_completion();
//! assert_eq!(engine.now(), SimTime::from_secs(3));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod engine;
mod queue;
mod rng;
mod time;
mod trace;

pub use engine::{Engine, RunOutcome, Scheduler, World};
pub use queue::{EventId, EventQueue};
pub use rng::SimRng;
pub use time::{SimDuration, SimTime, NANOS_PER_SEC};
pub use trace::{BusyTracker, EventKind, Trace, TraceEvent};
