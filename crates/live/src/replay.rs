//! Trace → engine replay: turn a run's `Complete` events into valid
//! [`TokenExecutor`] schedules and reference parameters.
//!
//! The scheduler groups a token's dependencies by **completion order** (the
//! j-th generated level-`l` token consumes the outputs of the most recent
//! `gen_ratio` fresh completions at level `l-1`), not by token sequence
//! numbers. Replaying `(level, seq)` pairs through [`SplitPlan`] — whose
//! dependency rule is index-range based — could therefore violate engine
//! dependencies. The fix is *completion-order relabeling*: within each
//! `(level, iteration)`, the engine index of a completion is its 0-based rank
//! among applied completions of that level.
//!
//! This is topologically valid for any trace the Token Server can produce:
//! when the j-th level-`l` completion happens, at least `(j+1)·ratio` level-
//! `(l-1)` completions have been applied (each generated level-`l` token
//! consumed `ratio` fresh ones), and the relabeled dependencies of engine
//! index `j` are exactly indices `j·ratio .. (j+1)·ratio` at level `l-1` —
//! all among those first `(j+1)·ratio` completers.
//!
//! Faulted runs work too: a `Complete` whose report the server rejected
//! (matched [`EventKind::StaleReport`]) never mutated server state, so it is
//! skipped; only *applied* completions drive the relabeling.

use std::collections::{HashMap, VecDeque};

use fela_core::TokenPlan;
use fela_engine::{EngineLayer, EngineNet, SplitPlan, Tensor, TokenExecutor};
use fela_sim::{EventKind, Trace};

/// Learning rate used by every live engine replica and reference replay.
pub const LIVE_LR: f32 = 0.05;
/// Seed for the replica network weights.
pub const NET_SEED: u64 = 17;
/// Seeds for the (fixed) training batch and targets.
pub const DATA_SEED_X: u64 = 100;
/// Target tensor seed.
pub const DATA_SEED_T: u64 = 200;

/// A deterministic engine replica sized to mirror a [`TokenPlan`]: one
/// `Dense(+Relu)` block per token level, token counts copied from the plan.
pub struct EngineSetup {
    /// The replica network (identical on every worker: same seed).
    pub net: EngineNet,
    /// The executor holding the split plan and learning rate.
    pub exec: TokenExecutor,
    /// Fixed input batch.
    pub x: Tensor,
    /// Fixed regression target.
    pub target: Tensor,
}

impl EngineSetup {
    /// Applies one iteration's schedule to the replica.
    pub fn step(&mut self, schedule: &[(usize, usize)]) {
        self.exec
            .step(&mut self.net, &self.x, &self.target, schedule);
    }
}

/// Builds the canonical engine replica for `plan`.
///
/// For `M` levels the network is `mlp([6, 8, .., 8, 4])` (`M+1` dims →
/// `2M-1` units); engine level `i` spans units `[2i, 2i+2)` (the last level
/// takes the final dense alone) and carries the plan's
/// `tokens_per_iteration`. The batch is `2·n_0` rows, so every level's token
/// count divides it (core plans halve token counts level to level).
pub fn engine_setup(plan: &TokenPlan) -> EngineSetup {
    let m = plan.num_levels();
    assert!(m >= 1, "a token plan has at least one level");
    let mut dims = vec![6];
    dims.resize(m, 8);
    dims.push(4);
    let net = EngineNet::mlp(&dims, NET_SEED);
    let n_units = net.len();
    let levels: Vec<(usize, usize)> = (0..m)
        .map(|i| (2 * i, if i == m - 1 { n_units } else { 2 * i + 2 }))
        .collect();
    let tokens: Vec<usize> = plan
        .levels
        .iter()
        .map(|l| l.tokens_per_iteration as usize)
        .collect();
    let batch = tokens[0] * 2;
    let split = SplitPlan { levels, tokens };
    split.validate(&net, batch);
    let x = Tensor::seeded(&[batch, 6], DATA_SEED_X, 1.0);
    let target = Tensor::seeded(&[batch, 4], DATA_SEED_T, 1.0);
    EngineSetup {
        net,
        exec: TokenExecutor {
            plan: split,
            lr: LIVE_LR,
        },
        x,
        target,
    }
}

/// Extracts one engine schedule per iteration from a trace via
/// completion-order relabeling (see the module docs).
///
/// Stale completions are removed by FIFO-matching each
/// [`EventKind::StaleReport`] `(worker, token)` to its earliest unmatched
/// [`EventKind::Complete`] — reports travel a fixed RPC delay, so per
/// `(worker, token)` the rejections land in completion order.
pub fn schedules_from_trace(trace: &Trace) -> Vec<Vec<(usize, usize)>> {
    let events = trace.events();
    let mut stale = vec![false; events.len()];
    let mut pending: HashMap<(usize, u64), VecDeque<usize>> = HashMap::new();
    for (i, ev) in events.iter().enumerate() {
        match &ev.kind {
            EventKind::Complete { worker, token, .. } => {
                pending.entry((*worker, *token)).or_default().push_back(i);
            }
            EventKind::StaleReport { worker, token } => {
                let Some(matched) = pending
                    .get_mut(&(*worker, *token))
                    .and_then(|q| q.pop_front())
                else {
                    panic!("stale report without a matching completion");
                };
                stale[matched] = true;
            }
            _ => {}
        }
    }
    let mut schedules: Vec<Vec<(usize, usize)>> = Vec::new();
    let mut next_rank: Vec<HashMap<usize, usize>> = Vec::new();
    for (i, ev) in events.iter().enumerate() {
        if stale[i] {
            continue;
        }
        if let EventKind::Complete {
            level, iteration, ..
        } = &ev.kind
        {
            let it = *iteration as usize;
            while schedules.len() <= it {
                schedules.push(Vec::new());
                next_rank.push(HashMap::new());
            }
            let rank = next_rank[it].entry(*level).or_insert(0);
            schedules[it].push((*level, *rank));
            *rank += 1;
        }
    }
    schedules
}

/// Serializes the replica's parameters as little-endian `f32` bytes
/// (weights then bias of every parameterized unit, in network order).
pub fn flatten_params(net: &EngineNet) -> Vec<u8> {
    let mut out = Vec::new();
    for layer in net.layers() {
        match layer {
            EngineLayer::Dense { weight, bias } | EngineLayer::Conv2d { weight, bias } => {
                for tensor in [weight, bias] {
                    for v in tensor.data() {
                        out.extend_from_slice(&v.to_le_bytes());
                    }
                }
            }
            EngineLayer::Relu => {}
        }
    }
    out
}

/// Replays every iteration of `trace` through a fresh replica and returns the
/// final parameter bytes — the reference the live workers must match.
pub fn replay_trace(plan: &TokenPlan, trace: &Trace) -> Vec<u8> {
    replay_schedules(plan, &schedules_from_trace(trace))
}

/// Replays explicit per-iteration schedules through a fresh replica.
pub fn replay_schedules(plan: &TokenPlan, schedules: &[Vec<(usize, usize)>]) -> Vec<u8> {
    let mut setup = engine_setup(plan);
    for schedule in schedules {
        setup.step(schedule);
    }
    flatten_params(&setup.net)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fela_core::FelaConfig;
    use fela_model::{bin_partition, zoo, PartitionOptions, ThresholdProfile};
    use fela_sim::SimTime;

    fn plan_for(weights: &[u64]) -> TokenPlan {
        let partition = bin_partition(
            &zoo::vgg19(),
            &ThresholdProfile::k40c(),
            PartitionOptions::default(),
        );
        let config = FelaConfig::new(weights.len()).with_weights(weights.to_vec());
        TokenPlan::build(&partition, &config, 128, 8).expect("plan builds")
    }

    #[test]
    fn engine_setup_matches_plan_shape() {
        let plan = plan_for(&[1, 2, 4]);
        let setup = engine_setup(&plan);
        assert_eq!(setup.exec.plan.levels.len(), plan.num_levels());
        for (l, lp) in plan.levels.iter().enumerate() {
            assert_eq!(
                setup.exec.plan.tokens[l], lp.tokens_per_iteration as usize,
                "level {l} token count"
            );
        }
        assert_eq!(setup.net.len(), 2 * plan.num_levels() - 1);
    }

    #[test]
    fn replicas_with_same_plan_are_bit_identical() {
        let plan = plan_for(&[1, 2, 4]);
        let a = engine_setup(&plan);
        let b = engine_setup(&plan);
        assert_eq!(flatten_params(&a.net), flatten_params(&b.net));
        assert!(!flatten_params(&a.net).is_empty());
    }

    fn complete(trace: &mut Trace, worker: usize, token: u64, level: usize, iteration: u64) {
        trace.record_kind(
            SimTime::ZERO,
            "worker",
            EventKind::Complete {
                worker,
                token,
                level,
                iteration,
            },
            String::new,
        );
    }

    /// Emits one iteration's completions in the order the Token Server
    /// generates tokens: each root completion cascades upward, generating a
    /// level-`l` token (and completing it) whenever `gen_ratio` fresh
    /// level-`l-1` completions have accumulated. Returns the next free id.
    fn record_valid_iteration(
        plan: &TokenPlan,
        trace: &mut Trace,
        iteration: u64,
        first_token: u64,
    ) -> u64 {
        let n: Vec<u64> = plan.levels.iter().map(|l| l.tokens_per_iteration).collect();
        let ratio: Vec<u64> = plan.levels.iter().map(|l| l.gen_ratio).collect();
        let mut credits = vec![0u64; n.len()];
        let mut emitted = vec![0u64; n.len()];
        let mut id = first_token;
        for _ in 0..n[0] {
            complete(trace, 0, id, 0, iteration);
            id += 1;
            credits[0] += 1;
            emitted[0] += 1;
            let mut l = 1;
            while l < n.len() && emitted[l] < n[l] && credits[l - 1] >= ratio[l] {
                credits[l - 1] -= ratio[l];
                complete(trace, 0, id, l, iteration);
                id += 1;
                credits[l] += 1;
                emitted[l] += 1;
                l += 1;
            }
        }
        assert_eq!(emitted, n, "every level fully completed");
        id
    }

    #[test]
    fn completion_order_relabeling_is_a_valid_schedule() {
        // A scheduler-plausible interleaved completion order must relabel to
        // a schedule that passes TokenExecutor's dependency assertions.
        let plan = plan_for(&[1, 2, 4]);
        let mut trace = Trace::enabled();
        let next = record_valid_iteration(&plan, &mut trace, 0, 0);
        record_valid_iteration(&plan, &mut trace, 1, next);
        let schedules = schedules_from_trace(&trace);
        assert_eq!(schedules.len(), 2);
        // Panics inside step() if the relabeled order violates deps.
        let params = replay_schedules(&plan, &schedules);
        assert!(!params.is_empty());
    }

    #[test]
    fn stale_completions_are_skipped() {
        // A worker completes token 0 but its report is rejected; the token is
        // later re-completed. Only applied completions drive the relabeling,
        // so the schedule is identical to the fault-free one.
        let plan = plan_for(&[1, 2, 4]);
        let mut trace = Trace::enabled();
        complete(&mut trace, 1, 0, 0, 0);
        trace.record_kind(
            SimTime::ZERO,
            "ts",
            EventKind::StaleReport {
                worker: 1,
                token: 0,
            },
            String::new,
        );
        let mut clean = Trace::enabled();
        record_valid_iteration(&plan, &mut trace, 0, 0);
        record_valid_iteration(&plan, &mut clean, 0, 0);
        let schedules = schedules_from_trace(&trace);
        assert_eq!(schedules, schedules_from_trace(&clean));
        let params = replay_schedules(&plan, &schedules);
        assert!(!params.is_empty());
    }
}
