//! Real-clock live runs: the Token Server as a wall-clock service.
//!
//! Unlike virtual mode (which *is* the simulator), real mode drives
//! [`TokenServer`] directly: worker threads pull tokens over the wire, sleep
//! the modeled compute span scaled by `time_scale`, and report; the server
//! maps real elapsed nanoseconds onto [`SimTime`] for the scheduling policies
//! and runs leases, faults and restarts off a wall-clock timer heap. Data
//! movement is not emulated — this is a **control-plane** runtime: parameter
//! syncs commit degenerately the moment a level's last report lands
//! ([`TokenServer::sync_finished`] immediately), so the measured quantity is
//! pure token-protocol throughput.
//!
//! Model training is still exact: accepted reports are logged server-side,
//! relabeled into engine schedules (see [`crate::replay`]) and broadcast to
//! every surviving worker at the end of the run. [`fela_engine`]'s executor
//! is schedule-invariant, so even a nondeterministically-ordered TCP run
//! produces bit-identical final parameters on every replica.
//!
//! Fault injection reuses the scenario's [`FaultModel`](fela_cluster::FaultModel)
//! verbatim: `Crash` closes the victim's link (its thread dies on the broken
//! connection), `CrashRestart`/`LinkDown` additionally arm a timer that
//! reconnects via [`Transport::extra_link`] and respawns the worker, and
//! `Hang` ships a `Hang` frame that freezes the victim long enough for its
//! lease to expire on the server.
//!
//! ## The grant hot path
//!
//! The server is a **single poll loop** over nonblocking receive halves — no
//! per-worker pump threads, no inbox channel. Each sweep fires due timers,
//! drains every link via [`LinkRx::try_recv`], queues the grants each frame
//! produces (a report piggybacks up to [`RealOptions::pipeline`] pulls), and
//! flushes a worker's queued grants **eagerly** — as soon as the frame that
//! produced them is handled — as one `GrantBatch` frame + one transport
//! write. The worker computes the batch as one coalesced sleep and answers
//! with one `ReportBatch`, so per-token cost on both sides is
//! `O(1/pipeline)` syscalls and wakeups.
//!
//! Probes are pruned by protocol accounting rather than readiness syscalls:
//! each link owes exactly one inbound frame per (re)spawn plus one reply per
//! flushed batch (`expect_replies`), and a reply cannot arrive before the
//! batch's scaled span has elapsed (`quiet_until`), so the sweep skips every
//! socket that provably has nothing to say. The waiting-worker queue is
//! re-scanned only on events that can actually release tokens — a committed
//! sync, a fault action, or a timer — with a catch-all re-scan before any
//! idle sleep so a missed edge delays a waiter, never stalls it.
//!
//! An idle sweep first *yields* for a bounded streak (a level barrier's
//! reports are microseconds away, and on small core counts `yield_now`
//! reschedules the worker threads directly), then falls back to sleeping
//! with exponential backoff (10µs → 500µs), capped by the next timer
//! deadline computed with `saturating_duration_since` — an already-expired
//! deadline fires immediately instead of underflowing.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::io;
use std::thread;
use std::time::{Duration, Instant};

use fela_cluster::{FaultKind, Scenario};
use fela_core::wal::{decode_u64_pairs, encode_u64_pairs};
use fela_core::{
    recover, wal_path, ControlPlane, DurabilityOptions, FelaConfig, FelaRuntime, FileWal, Grant,
    LevelMeta, MemWal, OpKind, OpOutcome, RecoveryConfig, ScheduleError, TokenId, TokenPlan,
};
use fela_model::Partition;
use fela_sim::{SimDuration, SimTime};

use crate::replay::replay_schedules;
use crate::sched::{pass, Endpoint, SharedSched, SyncEvent};
use crate::transport::{LinkRx, LinkTx, Transport};
use crate::wire::{Frame, WireGrant};
use crate::worker::{spawn_worker, WorkerSpec};

/// Tuning knobs for a real-clock run.
#[derive(Clone, Copy, Debug)]
pub struct RealOptions {
    /// Real seconds slept per modeled second. Small values (1e-4..1e-2) turn
    /// multi-minute modeled runs into sub-second smoke runs.
    pub time_scale: f64,
    /// Floor on real lease deadlines, defending tiny `time_scale` values
    /// against thread-scheduler jitter causing spurious revocations.
    pub min_lease: Duration,
    /// Floor on real restart downtime.
    pub min_down: Duration,
    /// Maximum tokens pulled per worker per report (grant pipelining): each
    /// report piggybacks up to this many requests and the resulting grants
    /// ship as one `GrantBatch` frame. `1` restores the strict one-token
    /// request/grant/report cycle.
    pub pipeline: usize,
}

impl Default for RealOptions {
    fn default() -> Self {
        RealOptions {
            time_scale: 1e-3,
            min_lease: Duration::from_millis(50),
            min_down: Duration::from_millis(20),
            pipeline: 8,
        }
    }
}

/// Result of a real-clock live run.
#[derive(Clone, Debug)]
pub struct RealOutcome {
    /// Real wall-clock seconds the run took.
    pub elapsed_secs: f64,
    /// Iterations committed (equals the scenario's iteration count).
    pub iterations: u64,
    /// Tokens granted by the server (including re-grants after revocation).
    pub grants: u64,
    /// Accepted token reports per second of wall clock — the headline
    /// throughput number for the `live_throughput` bench.
    pub tokens_per_sec: f64,
    /// Accepted reports per worker.
    pub trained_per_worker: Vec<u64>,
    /// Reports discarded because the reporter had lost its lease.
    pub stale_reports: u64,
    /// Injected crashes (including crash-restart and link-down).
    pub crashes: u64,
    /// Workers that rejoined after a crash.
    pub restarts: u64,
    /// Leases revoked (expiry or crash).
    pub revocations: u64,
    /// Token Server process crashes injected (recovered from the WAL).
    pub server_crashes: u64,
    /// Token Server recoveries completed.
    pub server_restarts: u64,
    /// Final model parameters (bit-identical on every surviving replica and
    /// to the server's reference replay).
    pub params: Vec<u8>,
    /// Transport used.
    pub transport: &'static str,
}

/// Where the run's write-ahead log lives.
enum WalHandle {
    Mem(MemWal),
    File(std::path::PathBuf),
}

impl WalHandle {
    fn bytes(&self) -> io::Result<Vec<u8>> {
        match self {
            WalHandle::Mem(m) => Ok(m.bytes()),
            WalHandle::File(path) => std::fs::read(path),
        }
    }
}

enum Timer {
    Lease { token: TokenId, attempt: u64 },
    Restart { worker: usize },
}

struct TimerEntry {
    at: Instant,
    seq: u64,
    timer: Timer,
}

impl PartialEq for TimerEntry {
    fn eq(&self, other: &Self) -> bool {
        (self.at, self.seq) == (other.at, other.seq)
    }
}
impl Eq for TimerEntry {}
impl PartialOrd for TimerEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for TimerEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

struct RealServer<'a> {
    server: ControlPlane,
    scenario: &'a Scenario,
    partition: Partition,
    plan: TokenPlan,
    opts: RealOptions,
    recovery: Option<RecoveryConfig>,
    started: Instant,
    /// Send half per worker; `None` after we closed the link (crash).
    txs: Vec<Option<LinkTx>>,
    /// Receive half per worker, polled nonblockingly by the server loop;
    /// `None` once the link died and its close was processed.
    rxs: Vec<Option<LinkRx>>,
    /// Grants queued per worker, flushed as one `GrantBatch` per sweep.
    pending: Vec<Vec<Grant>>,
    /// Per-worker probe hint: no reply can arrive before the granted batch's
    /// scaled span elapses, so the sweep skips the socket until then. Purely
    /// an optimization — a stale hint only delays a probe, never loses one.
    quiet_until: Vec<Instant>,
    /// Inbound frames still expected per link: one for the initial `Request`
    /// after (re)spawn plus one reply per flushed batch. A worker with zero
    /// expected frames is silent by protocol (pulls are piggybacked
    /// server-side), so the sweep skips its socket entirely.
    expect_replies: Vec<u32>,
    /// Reusable drain buffer for [`ControlPlane::drain_ready_grants`].
    scratch: Vec<(usize, Grant)>,
    /// `(iteration, level)` of every in-flight granted token, so a report
    /// doesn't pay a token-table lookup on the hot path.
    token_info: std::collections::HashMap<TokenId, (u64, usize)>,
    /// Memoized `compute_secs` per `(level, batch, worker)` — the analytic
    /// model walk is deterministic, and flushing re-prices every grant.
    span_cache: std::collections::HashMap<(usize, u64, usize), f64>,
    timers: BinaryHeap<Reverse<TimerEntry>>,
    timer_seq: u64,
    /// Accepted reports in arrival order: `(iteration, level)`.
    completions: Vec<(u64, usize)>,
    faults_armed: u64,
    stale_reports: u64,
    crashes: u64,
    restarts: u64,
    revocations: u64,
    /// Level metadata, retained for WAL recovery (rebuilding the plane from
    /// the log needs the same inputs the original construction had).
    meta: Vec<LevelMeta>,
    /// Write-ahead log backing the control plane, when the run is durable.
    wal: Option<WalHandle>,
    /// Checkpoint cadence in completed iterations (0 = log-only, never
    /// checkpoint).
    checkpoint_every: u64,
    last_checkpoint: u64,
    server_crashes: u64,
    server_restarts: u64,
    sched: SharedSched,
}

impl RealServer<'_> {
    fn now_sim(&self) -> SimTime {
        SimTime::ZERO + SimDuration::from_secs_f64(self.started.elapsed().as_secs_f64())
    }

    fn arm_timer(&mut self, at: Instant, timer: Timer) {
        self.timer_seq += 1;
        self.timers.push(Reverse(TimerEntry {
            at,
            seq: self.timer_seq,
            timer,
        }));
    }

    fn worker_spec(&self, index: usize, pull: bool) -> WorkerSpec {
        WorkerSpec {
            index,
            scenario: self.scenario.clone(),
            plan: self.plan.clone(),
            time_scale: self.opts.time_scale,
            pull,
            sched: self.sched.clone(),
        }
    }

    /// Modeled compute seconds for one grant on `worker`, straggler included —
    /// what the worker will sleep (before `time_scale`).
    fn base_secs(&mut self, worker: usize, grant: &Grant) -> f64 {
        let key = (grant.token.level, grant.token.batch, worker);
        let compute = match self.span_cache.get(&key) {
            Some(&secs) => secs,
            None => {
                let sm = &self.partition.sub_models()[grant.token.level];
                let secs = self.scenario.cluster.compute_secs(
                    &self.scenario.model,
                    sm.unit_start,
                    sm.unit_end,
                    grant.token.batch,
                    worker,
                );
                self.span_cache.insert(key, secs);
                secs
            }
        };
        compute
            + self
                .scenario
                .straggler_delay(grant.token.iteration, worker)
                .as_secs_f64()
    }

    /// Queues a grant for `worker`; shipped by the sweep's [`Self::flush_grants`].
    fn queue_grant(&mut self, worker: usize, grant: Grant) {
        self.token_info
            .insert(grant.token.id, (grant.token.iteration, grant.token.level));
        self.pending[worker].push(grant);
    }

    /// Pulls up to `pipeline` tokens for `worker` into its pending batch. The
    /// first starved request stops the loop (the worker is then queued
    /// server-side and served later by [`Self::drain_ready`]).
    fn pull_into(&mut self, worker: usize) {
        for _ in 0..self.opts.pipeline.max(1) {
            match self.server.request(worker, self.now_sim()) {
                Ok(Some(grant)) => self.queue_grant(worker, grant),
                Ok(None) => break,
                Err(ScheduleError::WorkerUnavailable { .. }) => break,
                Err(e) => panic!("Fela scheduler invariant violated: {e}"),
            }
        }
    }

    /// Queues a grant for every waiting worker whose turn has come.
    fn drain_ready(&mut self) {
        let now = self.now_sim();
        let mut ready = std::mem::take(&mut self.scratch);
        if let Err(e) = self.server.drain_ready_grants(now, &mut ready) {
            panic!("Fela scheduler invariant violated: {e}");
        }
        for (worker, grant) in ready.drain(..) {
            self.queue_grant(worker, grant);
        }
        self.scratch = ready;
    }

    /// Ships every queued grant: one frame (a `GrantBatch` when the batch has
    /// more than one grant) and one transport flush per worker. Leases are
    /// armed here, at send time, sized to the **cumulative** batch span — the
    /// worker computes the batch serially and reports it with one frame at
    /// the end, so every lease in the batch must survive until the whole
    /// batch lands.
    fn flush_grants(&mut self) {
        for worker in 0..self.pending.len() {
            if self.pending[worker].is_empty() {
                continue;
            }
            let grants = std::mem::take(&mut self.pending[worker]);
            let wire: Vec<WireGrant> = grants
                .iter()
                .map(|g| {
                    let sm = &self.partition.sub_models()[g.token.level];
                    WireGrant {
                        token: g.token.id.0,
                        level: g.token.level as u32,
                        iteration: g.token.iteration,
                        batch: g.token.batch,
                        unit_start: sm.unit_start as u32,
                        unit_end: sm.unit_end as u32,
                    }
                })
                .collect();
            let frame = if wire.len() == 1 {
                let g = wire[0];
                Frame::Grant {
                    token: g.token,
                    level: g.level,
                    iteration: g.iteration,
                    batch: g.batch,
                    unit_start: g.unit_start,
                    unit_end: g.unit_end,
                }
            } else {
                Frame::GrantBatch { grants: wire }
            };
            let sent = match self.txs[worker].as_mut() {
                Some(tx) => tx.queue(&frame).and_then(|()| tx.flush()).is_ok(),
                // Link already closed (crash injection): `worker_crashed`
                // revoked these grants, nothing to send.
                None => false,
            };
            if !sent {
                // Worker died under us; the sweep's close handling reclaims.
                continue;
            }
            self.expect_replies[worker] += 1;
            let mut total = 0.0;
            for g in &grants {
                total += self.base_secs(worker, g);
            }
            // The worker starts sleeping the whole scaled batch span strictly
            // after this flush, so its reply cannot arrive before the full
            // span has elapsed — probing earlier is a guaranteed-empty
            // syscall, and skipping until then is safe by construction.
            self.quiet_until[worker] =
                Instant::now() + Duration::from_secs_f64(total * self.opts.time_scale);
            if let Some(rec) = self.recovery {
                for g in &grants {
                    let backoff = (1u64 << g.attempt.min(32)) as f64;
                    let lease = Duration::from_secs_f64(
                        (total * rec.lease_slack * backoff + rec.lease_grace.as_secs_f64())
                            * self.opts.time_scale,
                    )
                    .max(self.opts.min_lease);
                    self.arm_timer(
                        Instant::now() + lease,
                        Timer::Lease {
                            token: g.token.id,
                            attempt: g.attempt,
                        },
                    );
                }
            }
        }
    }

    /// Kills a worker at the transport level and tells the server.
    fn kill(&mut self, worker: usize) {
        if let Some(mut tx) = self.txs[worker].take() {
            tx.close();
        }
        self.pending[worker].clear();
        if self.server.is_alive(worker) {
            match self.server.worker_crashed(worker) {
                Ok(revoked) => {
                    self.crashes += 1;
                    self.revocations += revoked.len() as u64;
                }
                Err(e) => panic!("Fela scheduler invariant violated: {e}"),
            }
        }
    }

    /// Appends a checkpoint once `checkpoint_every` more iterations have
    /// completed since the last one. The payload is the accepted-report
    /// schedule, so recovery rebuilds [`RealServer::completions`] from the
    /// checkpoint plus the short log suffix instead of the whole history.
    fn maybe_checkpoint(&mut self) -> io::Result<()> {
        if self.wal.is_none() || self.checkpoint_every == 0 {
            return Ok(());
        }
        let done = self.server.completed_iterations();
        if done / self.checkpoint_every <= self.last_checkpoint / self.checkpoint_every {
            return Ok(());
        }
        let pairs: Vec<(u64, u64)> = self
            .completions
            .iter()
            .map(|&(iteration, level)| (iteration, level as u64))
            .collect();
        self.server.checkpoint_wal(&encode_u64_pairs(&pairs))?;
        self.last_checkpoint = done;
        Ok(())
    }

    /// The injected Token Server crash: the server "process" dies (every
    /// worker link drops and all volatile server-side state is discarded),
    /// the downtime elapses, then a fresh process recovers from the WAL,
    /// reconciles in-flight grants against the replayed log, and respawns
    /// the fleet over fresh links.
    fn crash_server(&mut self, down: SimDuration, transport: &mut dyn Transport) -> io::Result<()> {
        let bytes = match &self.wal {
            Some(handle) => handle.bytes()?,
            None => panic!("server crash injected without a write-ahead log attached"),
        };
        self.server_crashes += 1;
        // The server dies: every link drops, which kills the worker threads
        // on their next recv. Replicas are only mutated by the epilogue's
        // Iter frames, so no training state is lost worker-side.
        for worker in 0..self.txs.len() {
            if let Some(mut tx) = self.txs[worker].take() {
                tx.close();
            }
            self.rxs[worker] = None;
            self.pending[worker].clear();
            self.expect_replies[worker] = 0;
        }
        self.token_info.clear();
        let pre_crash = self.server.snapshot();
        let real_down = Duration::from_secs_f64(down.as_secs_f64() * self.opts.time_scale)
            .max(self.opts.min_down);
        thread::sleep(real_down);

        let rec = recover(
            &bytes,
            self.server.plan(),
            self.server.config(),
            &self.meta,
            self.server.n_workers(),
            self.server.max_iterations(),
        )
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        assert_eq!(
            rec.plane.snapshot(),
            pre_crash,
            "recovered control plane diverged from the crashed one"
        );
        // Rebuild the accepted-report schedule from the log alone — the
        // in-memory vector died with the process. Checkpoint payload first,
        // then every accepted report in the replayed suffix, in log order.
        let mut replayed: Vec<(u64, usize)> = if rec.payload.is_empty() {
            Vec::new()
        } else {
            decode_u64_pairs(&rec.payload)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?
                .into_iter()
                .map(|(iteration, level)| (iteration, level as usize))
                .collect()
        };
        for op in &rec.ops {
            let OpKind::Report { token, .. } = op.kind else {
                continue;
            };
            if !matches!(op.outcome, OpOutcome::Synced { .. }) {
                continue;
            }
            match rec.plane.token(TokenId(token)) {
                Some(t) => replayed.push((t.iteration, t.level)),
                None => panic!("replayed report names a token the plan never minted"),
            }
        }
        assert_eq!(
            replayed, self.completions,
            "WAL replay reconstructed a different completion schedule"
        );
        self.completions = replayed;

        let mut plane = rec.plane;
        let valid = bytes.len() - rec.torn_bytes;
        match &self.wal {
            Some(WalHandle::Mem(mem)) => {
                mem.truncate(valid);
                plane.resume_wal(Box::new(mem.clone()), rec.next_seq);
            }
            Some(WalHandle::File(path)) => {
                let file = FileWal::resume(path, valid as u64)?;
                plane.resume_wal(Box::new(file), rec.next_seq);
            }
            None => unreachable!("wal presence was checked at entry"),
        }
        self.server = plane;

        // Reconcile in-flight grants: tokens granted but never reported died
        // with the worker threads. Crash-then-restart revokes those leases
        // for immediate regrant without charging lease expiries (which would
        // quarantine innocent workers). Both transitions land in the resumed
        // log, so a second crash replays them too.
        for worker in 0..self.txs.len() {
            if !self.server.is_alive(worker) {
                continue; // a downed worker's Restart timer will revive it
            }
            match self.server.worker_crashed(worker) {
                Ok(revoked) => self.revocations += revoked.len() as u64,
                Err(e) => panic!("Fela scheduler invariant violated: {e}"),
            }
            if let Err(e) = self.server.worker_restarted(worker) {
                panic!("Fela scheduler invariant violated: {e}");
            }
        }
        // Respawn the fleet over fresh links; each worker reconnects with
        // the usual pull handshake. Workers downed by their own declared
        // faults stay down until their Restart timers fire.
        for worker in 0..self.txs.len() {
            if !self.server.is_alive(worker) {
                continue;
            }
            let (mut server_link, worker_link) = transport.extra_link(worker)?;
            server_link.instrument(self.sched.clone(), Endpoint::Server, worker);
            let (tx, mut rx) = server_link.split();
            rx.set_nonblocking(true)?;
            self.txs[worker] = Some(tx);
            self.rxs[worker] = Some(rx);
            self.quiet_until[worker] = Instant::now();
            self.expect_replies[worker] = 1;
            let _ = spawn_worker(self.worker_spec(worker, true), worker_link);
        }
        self.server_restarts += 1;
        self.drain_ready();
        Ok(())
    }

    /// Turns fault declarations into actions as root iterations are released.
    fn arm_faults(&mut self, transport: &mut dyn Transport) -> io::Result<bool> {
        if self.scenario.fault.is_none() {
            return Ok(false);
        }
        let mut acted = false;
        while self.faults_armed < self.server.released_root_iterations() {
            let it = self.faults_armed;
            for worker in 0..self.scenario.cluster.nodes {
                match self.scenario.fault_for(it, worker) {
                    None => {}
                    Some(FaultKind::Hang { stall }) => {
                        let nanos = (stall.as_secs_f64() * self.opts.time_scale * 1e9)
                            .max(self.opts.min_lease.as_nanos() as f64 * 2.0)
                            as u64;
                        if let Some(tx) = self.txs[worker].as_mut() {
                            let _ = tx.send(&Frame::Hang { nanos });
                        }
                        acted = true;
                    }
                    Some(FaultKind::Crash) => {
                        self.kill(worker);
                        acted = true;
                    }
                    Some(FaultKind::CrashRestart { down }) | Some(FaultKind::LinkDown { down }) => {
                        self.kill(worker);
                        let real_down =
                            Duration::from_secs_f64(down.as_secs_f64() * self.opts.time_scale)
                                .max(self.opts.min_down);
                        self.arm_timer(Instant::now() + real_down, Timer::Restart { worker });
                        acted = true;
                    }
                }
            }
            if let Some(down) = self.scenario.fault.server_fault_for(it) {
                self.crash_server(down, transport)?;
                acted = true;
            }
            self.faults_armed += 1;
        }
        Ok(acted)
    }

    fn fire_timer(&mut self, timer: Timer, transport: &mut dyn Transport) -> io::Result<()> {
        match timer {
            Timer::Lease { token, attempt } => {
                self.sched.reached(&SyncEvent::LeaseFired {
                    token: token.0,
                    attempt,
                });
                match self.server.lease_expired(token, attempt) {
                    Ok(Some(expired)) => {
                        self.revocations += expired.revoked.len() as u64;
                    }
                    Ok(None) => {} // lease already satisfied or superseded
                    Err(e) => panic!("Fela scheduler invariant violated: {e}"),
                }
                self.drain_ready();
            }
            Timer::Restart { worker } => {
                self.sched.reached(&SyncEvent::RestartFired { worker });
                if self.server.is_alive(worker) {
                    return Ok(());
                }
                let (mut server_link, worker_link) = transport.extra_link(worker)?;
                server_link.instrument(self.sched.clone(), Endpoint::Server, worker);
                let (tx, mut rx) = server_link.split();
                rx.set_nonblocking(true)?;
                self.txs[worker] = Some(tx);
                self.rxs[worker] = Some(rx);
                self.quiet_until[worker] = Instant::now();
                self.expect_replies[worker] = 1;
                let _ = spawn_worker(self.worker_spec(worker, true), worker_link);
                match self.server.worker_restarted(worker) {
                    Ok(()) => self.restarts += 1,
                    Err(e) => panic!("Fela scheduler invariant violated: {e}"),
                }
                self.drain_ready();
            }
        }
        Ok(())
    }

    /// One accepted (or stale) report: exactly the old single-report arm.
    /// Returns `true` when a sync committed — the only event that releases
    /// new tokens, and therefore the only one worth a [`Self::drain_ready`].
    fn accept_report(&mut self, worker: usize, id: TokenId) -> bool {
        let info = self
            .token_info
            .remove(&id)
            .or_else(|| self.server.token(id).map(|t| (t.iteration, t.level)));
        match self.server.report(worker, id) {
            Ok(syncs) => {
                let Some((iteration, level)) = info else {
                    panic!("accepted report for an unknown token");
                };
                self.completions.push((iteration, level));
                let released = !syncs.is_empty();
                // Control-plane runtime: every sync commits degenerately.
                for spec in syncs {
                    if let Err(e) = self.server.sync_finished(spec.level, spec.iteration) {
                        panic!("Fela scheduler invariant violated: {e}");
                    }
                }
                released
            }
            Err(ScheduleError::StaleReport { .. }) => {
                self.stale_reports += 1;
                false
            }
            Err(e) => panic!("Fela scheduler invariant violated: {e}"),
        }
    }

    fn handle_frame(
        &mut self,
        worker: usize,
        frame: Frame,
        transport: &mut dyn Transport,
    ) -> io::Result<()> {
        match frame {
            Frame::Request { worker: w } => {
                debug_assert_eq!(w as usize, worker);
                self.pull_into(worker);
            }
            Frame::Report { worker: w, token } => {
                debug_assert_eq!(w as usize, worker);
                let released = self.accept_report(worker, TokenId(token));
                self.maybe_checkpoint()?;
                // Piggybacked pull, exactly like the simulated control plane —
                // widened to the pipeline depth.
                self.pull_into(worker);
                // Only a committed sync (or a fault action) can make a
                // *waiting* worker servable, so skip the drain scan otherwise.
                if self.arm_faults(transport)? || released {
                    self.drain_ready();
                }
            }
            Frame::ReportBatch { worker: w, tokens } => {
                debug_assert_eq!(w as usize, worker);
                let mut released = false;
                for token in tokens {
                    released |= self.accept_report(worker, TokenId(token));
                }
                self.maybe_checkpoint()?;
                self.pull_into(worker);
                if self.arm_faults(transport)? || released {
                    self.drain_ready();
                }
            }
            other => panic!("server: unexpected frame from worker {worker}: {other:?}"),
        }
        Ok(())
    }
}

/// Runs `scenario` live in real-clock mode over `transport`, under the
/// default pass-through scheduler.
pub fn run_real(
    config: &FelaConfig,
    scenario: &Scenario,
    transport: &mut dyn Transport,
    opts: RealOptions,
) -> io::Result<RealOutcome> {
    run_real_with(config, scenario, transport, opts, pass())
}

/// [`run_real`] with an explicit [`Sched`](crate::sched::Sched): every link
/// on both endpoints, every server inbox dequeue, and every timer fire yields
/// to `sched`. Under [`pass`] this is the uninstrumented run.
pub fn run_real_with(
    config: &FelaConfig,
    scenario: &Scenario,
    transport: &mut dyn Transport,
    opts: RealOptions,
    sched: SharedSched,
) -> io::Result<RealOutcome> {
    run_real_impl(config, scenario, transport, opts, None, sched)
}

/// [`run_real`] with a durable control plane: every control-plane transition
/// is write-ahead logged (to `fela.wal` under `durability.wal_dir`, or an
/// in-memory sink when unset) and the accepted-report schedule is
/// checkpointed every `durability.checkpoint_every` completed iterations, so
/// an injected [`fela_cluster::FaultModel::ServerCrashRestart`] recovers
/// mid-iteration instead of restarting the job from scratch.
pub fn run_real_durable(
    config: &FelaConfig,
    scenario: &Scenario,
    transport: &mut dyn Transport,
    opts: RealOptions,
    durability: &DurabilityOptions,
) -> io::Result<RealOutcome> {
    run_real_impl(config, scenario, transport, opts, Some(durability), pass())
}

fn run_real_impl(
    config: &FelaConfig,
    scenario: &Scenario,
    transport: &mut dyn Transport,
    opts: RealOptions,
    durability: Option<&DurabilityOptions>,
    sched: SharedSched,
) -> io::Result<RealOutcome> {
    scenario.cluster.validate();
    if let Err(e) = scenario.fault.validate() {
        panic!("invalid fault model: {e}");
    }
    let mut config = config.clone();
    if !scenario.fault.is_none() && config.recovery.is_none() {
        config.recovery = Some(RecoveryConfig::default());
    }
    let runtime = FelaRuntime::new(config.clone());
    let partition = runtime.partition_for(scenario);
    let plan = TokenPlan::build(
        &partition,
        &config,
        scenario.total_batch,
        scenario.cluster.nodes,
    )
    .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e.to_string()))?;
    let meta: Vec<LevelMeta> = partition
        .sub_models()
        .iter()
        .map(|s| LevelMeta {
            param_bytes: s.param_bytes,
            output_bytes_per_sample: s.output_bytes_per_sample,
            input_bytes_per_sample: s.input_bytes_per_sample,
            comm_intensive: s.comm_intensive,
        })
        .collect();
    let n = scenario.cluster.nodes;
    let mut server = ControlPlane::new(
        plan.clone(),
        config.clone(),
        meta.clone(),
        n,
        scenario.iterations,
    );

    // A declared server fault implies durability: the run cannot survive the
    // crash without a log to recover from, so one is attached even when the
    // caller did not ask for it explicitly (in-memory unless a `wal_dir` was
    // configured, exactly like the simulated runtime).
    let server_fault =
        (0..scenario.iterations).any(|it| scenario.fault.server_fault_for(it).is_some());
    let mut wal = None;
    if durability.is_some() || server_fault {
        let handle = match durability.and_then(|d| d.wal_dir.as_deref()) {
            Some(dir) => {
                std::fs::create_dir_all(dir)?;
                let path = wal_path(dir);
                server.attach_wal(Box::new(FileWal::create(&path)?))?;
                WalHandle::File(path)
            }
            None => {
                let mem = MemWal::new();
                server.attach_wal(Box::new(mem.clone()))?;
                WalHandle::Mem(mem)
            }
        };
        wal = Some(handle);
    }
    let checkpoint_every = durability.map_or(1, |d| d.checkpoint_every);

    let (server_links, worker_links) = transport.establish(n)?;
    let mut txs = Vec::with_capacity(n);
    let mut rxs = Vec::with_capacity(n);
    for (w, mut link) in server_links.into_iter().enumerate() {
        link.instrument(sched.clone(), Endpoint::Server, w);
        let (tx, mut rx) = link.split();
        rx.set_nonblocking(true)?;
        txs.push(Some(tx));
        rxs.push(Some(rx));
    }

    let recovery = if !scenario.fault.is_none() {
        config.recovery
    } else {
        None
    };
    let mut rs = RealServer {
        server,
        scenario,
        partition,
        plan,
        opts,
        recovery,
        started: Instant::now(),
        txs,
        rxs,
        pending: vec![Vec::new(); n],
        quiet_until: vec![Instant::now(); n],
        expect_replies: vec![1; n],
        scratch: Vec::new(),
        token_info: std::collections::HashMap::new(),
        span_cache: std::collections::HashMap::new(),
        timers: BinaryHeap::new(),
        timer_seq: 0,
        completions: Vec::new(),
        faults_armed: 0,
        stale_reports: 0,
        crashes: 0,
        restarts: 0,
        revocations: 0,
        meta,
        wal,
        checkpoint_every,
        last_checkpoint: 0,
        server_crashes: 0,
        server_restarts: 0,
        sched: sched.clone(),
    };

    // Spawn the fleet, then start the measured clock: thread creation is a
    // startup artifact (64 spawns cost a couple of milliseconds on a small
    // box) and would otherwise be billed to token-protocol throughput.
    for (index, link) in worker_links.into_iter().enumerate() {
        let _ = spawn_worker(rs.worker_spec(index, true), link);
    }
    rs.started = Instant::now();
    rs.arm_faults(transport)?;

    // The poll loop. Each sweep: fire due timers, drain every link, flush
    // queued grants. An idle sweep first *yields* for a bounded streak —
    // under a level barrier the reports are microseconds away, and on a
    // small core count `yield_now` reschedules the worker threads directly,
    // whereas even a 10µs sleep pays timer-slack latency per wave. Only a
    // long idle streak (a real lease/restart wait) falls back to sleeping,
    // exponentially backed off and capped by the next timer deadline. All
    // deadline arithmetic saturates, so a deadline already in the past fires
    // immediately instead of panicking.
    const SPIN_SWEEPS: u32 = 256;
    const IDLE_MIN: Duration = Duration::from_micros(10);
    const IDLE_MAX: Duration = Duration::from_micros(500);
    let mut idle_streak = 0u32;
    let mut idle = IDLE_MIN;
    while !rs.server.run_complete() {
        while let Some(Reverse(entry)) = rs.timers.peek() {
            if entry.at > Instant::now() {
                break;
            }
            let Some(Reverse(entry)) = rs.timers.pop() else {
                unreachable!("peek returned a deadline but pop found nothing");
            };
            rs.fire_timer(entry.timer, transport)?;
        }
        let mut progressed = false;
        let sweep_now = Instant::now();
        for worker in 0..n {
            if rs.expect_replies[worker] == 0 || rs.quiet_until[worker] > sweep_now {
                continue;
            }
            while let Some(rx) = rs.rxs[worker].as_mut() {
                match rx.try_recv() {
                    Ok(Some(frame)) => {
                        rs.expect_replies[worker] = rs.expect_replies[worker].saturating_sub(1);
                        rs.sched.reached(&SyncEvent::InboxDequeued {
                            worker,
                            frame: Some(frame.clone()),
                        });
                        rs.handle_frame(worker, frame, transport)?;
                        // Flush eagerly: the grants this frame produced (for
                        // this worker *and* any drained waiters) ship now
                        // instead of after the rest of the sweep — same
                        // number of writes, tens of µs less turnaround.
                        rs.flush_grants();
                        progressed = true;
                        if rs.server.run_complete() {
                            break;
                        }
                    }
                    Ok(None) => break,
                    Err(_) => {
                        // We closed the link ourselves (crash injection) — or
                        // the thread died unexpectedly, which the server
                        // treats the same.
                        rs.sched.reached(&SyncEvent::InboxDequeued {
                            worker,
                            frame: None,
                        });
                        rs.rxs[worker] = None;
                        if rs.server.is_alive(worker) && rs.txs[worker].is_some() {
                            rs.kill(worker);
                            rs.drain_ready();
                        }
                        progressed = true;
                        break;
                    }
                }
            }
            if rs.server.run_complete() {
                break;
            }
        }
        rs.flush_grants();
        if progressed {
            idle_streak = 0;
            idle = IDLE_MIN;
            continue;
        }
        idle_streak += 1;
        if idle_streak <= SPIN_SWEEPS && rs.timers.peek().is_none() {
            thread::yield_now();
            continue;
        }
        // Catch-all before sleeping: re-scan the waiting queue once, so a
        // skipped drain (reports without a committed sync) can only delay a
        // waiter by one spin streak, never stall it.
        rs.drain_ready();
        rs.flush_grants();
        let sleep = match rs.timers.peek() {
            Some(Reverse(entry)) => entry.at.saturating_duration_since(Instant::now()).min(idle),
            None => idle,
        };
        if !sleep.is_zero() {
            thread::sleep(sleep);
        }
        idle = (idle * 2).min(IDLE_MAX);
    }
    let elapsed = rs.started.elapsed();

    // Broadcast the relabeled schedules and collect every replica's params.
    let mut schedules: Vec<Vec<(usize, usize)>> = Vec::new();
    {
        let mut next_rank: Vec<std::collections::HashMap<usize, usize>> = Vec::new();
        for &(iteration, level) in &rs.completions {
            let it = iteration as usize;
            while schedules.len() <= it {
                schedules.push(Vec::new());
                next_rank.push(Default::default());
            }
            let rank = next_rank[it].entry(level).or_insert(0);
            schedules[it].push((level, *rank));
            *rank += 1;
        }
    }
    let reference = replay_schedules(&rs.plan, &schedules);
    let mut waiting = Vec::new();
    for worker in 0..n {
        let Some(tx) = rs.txs[worker].as_mut() else {
            continue;
        };
        // The whole epilogue — every Iter frame plus End — ships as one
        // queued batch and a single flush per worker.
        let mut ok = true;
        for (iteration, schedule) in schedules.iter().enumerate() {
            if tx
                .queue(&Frame::Iter {
                    iteration: iteration as u64,
                    schedule: schedule
                        .iter()
                        .map(|&(l, j)| (l as u32, j as u32))
                        .collect(),
                })
                .is_err()
            {
                ok = false;
                break;
            }
        }
        if ok && tx.queue(&Frame::End).is_ok() && tx.flush().is_ok() {
            waiting.push(worker);
        }
    }
    let mut collected = 0usize;
    let deadline = Instant::now() + Duration::from_secs(30);
    while collected < waiting.len() {
        let mut progressed = false;
        for &worker in &waiting {
            let polled = match rs.rxs[worker].as_mut() {
                Some(rx) => rx.try_recv(),
                None => continue,
            };
            match polled {
                Ok(Some(Frame::Params { bytes })) => {
                    assert_eq!(
                        bytes, reference,
                        "worker {worker}: replica parameters diverged from the reference replay"
                    );
                    collected += 1;
                    progressed = true;
                }
                // Late reports/requests from still-draining workers.
                Ok(Some(_)) => progressed = true,
                Ok(None) => {}
                // The worker closes its link on exit; buffered frames were
                // parsed first, so a close here means no Params will come.
                Err(_) => rs.rxs[worker] = None,
            }
        }
        if collected < waiting.len() && !progressed {
            if deadline.saturating_duration_since(Instant::now()).is_zero() {
                panic!("timed out collecting final parameters");
            }
            thread::sleep(Duration::from_micros(200));
        }
    }

    let trained = rs.server.trained_per_worker().to_vec();
    let tokens: u64 = trained.iter().sum();
    Ok(RealOutcome {
        elapsed_secs: elapsed.as_secs_f64(),
        iterations: rs.server.completed_iterations(),
        grants: rs.server.stats().grants,
        tokens_per_sec: tokens as f64 / elapsed.as_secs_f64(),
        trained_per_worker: trained,
        stale_reports: rs.stale_reports,
        crashes: rs.crashes,
        restarts: rs.restarts,
        revocations: rs.revocations,
        server_crashes: rs.server_crashes,
        server_restarts: rs.server_restarts,
        params: reference,
        transport: transport.name(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::{ChanTransport, TcpTransport};
    use fela_cluster::{ClusterSpec, FaultModel};
    use fela_model::zoo;

    fn quick() -> (FelaConfig, Scenario) {
        let mut scenario = Scenario::paper(zoo::alexnet(), 128);
        scenario.iterations = 3;
        scenario.cluster = ClusterSpec::k40c_cluster(2);
        let config = FelaConfig::new(3);
        (config, scenario)
    }

    fn fast() -> RealOptions {
        RealOptions {
            time_scale: 1e-4,
            ..RealOptions::default()
        }
    }

    #[test]
    fn real_chan_run_completes_and_replicas_agree() {
        let (config, scenario) = quick();
        let out =
            run_real(&config, &scenario, &mut ChanTransport, fast()).expect("real run succeeds");
        assert_eq!(out.iterations, 3);
        assert!(!out.params.is_empty());
        assert_eq!(out.trained_per_worker.iter().sum::<u64>(), out.grants);
        assert!(out.tokens_per_sec > 0.0);
    }

    #[test]
    fn real_tcp_run_completes() {
        let (config, scenario) = quick();
        let out = run_real(&config, &scenario, &mut TcpTransport::default(), fast())
            .expect("real run succeeds");
        assert_eq!(out.iterations, 3);
        assert_eq!(out.transport, "tcp");
    }

    #[test]
    fn real_run_params_match_the_virtual_run() {
        // Schedule-invariance in action: a wall-clock run with real thread
        // interleavings lands on the same final parameter bits as the
        // deterministic virtual run of the same scenario.
        let (config, scenario) = quick();
        let real =
            run_real(&config, &scenario, &mut ChanTransport, fast()).expect("real run succeeds");
        let virt = crate::virt::run_virtual(&config, &scenario, &mut ChanTransport)
            .expect("virtual run succeeds");
        assert_eq!(real.params, virt.params);
    }

    #[test]
    fn already_expired_deadlines_fire_immediately_without_panicking() {
        // Regression for the timer-underflow panic: zero floors plus a tiny
        // time scale arm lease and restart deadlines that are already in the
        // past the moment they enter the timer heap. The poll loop's
        // saturating deadline math must fire them immediately — the old
        // `recv_timeout(at - now)` path aborted the server thread here.
        let (config, mut scenario) = quick();
        scenario.iterations = 4;
        scenario.fault = FaultModel::Scripted {
            worker: 1,
            iteration: 1,
            kind: FaultKind::CrashRestart {
                down: fela_sim::SimDuration::from_millis(100),
            },
        };
        let opts = RealOptions {
            time_scale: 1e-7,
            min_lease: Duration::ZERO,
            min_down: Duration::ZERO,
            pipeline: 4,
        };
        let out =
            run_real(&config, &scenario, &mut ChanTransport, opts).expect("real run succeeds");
        assert_eq!(out.iterations, 4);
        assert_eq!(out.crashes, 1);
        assert_eq!(out.restarts, 1);
        assert!(!out.params.is_empty());
    }

    #[test]
    fn pipeline_depth_one_still_completes() {
        let (config, scenario) = quick();
        let opts = RealOptions {
            pipeline: 1,
            ..fast()
        };
        let out =
            run_real(&config, &scenario, &mut ChanTransport, opts).expect("real run succeeds");
        assert_eq!(out.iterations, 3);
        assert_eq!(out.trained_per_worker.iter().sum::<u64>(), out.grants);
    }

    #[test]
    fn real_crash_restart_recovers() {
        let (config, mut scenario) = quick();
        scenario.iterations = 8;
        scenario.fault = FaultModel::Scripted {
            worker: 1,
            iteration: 1,
            kind: FaultKind::CrashRestart {
                down: fela_sim::SimDuration::from_millis(100),
            },
        };
        let opts = RealOptions {
            time_scale: 1e-3,
            min_down: Duration::from_millis(1),
            ..RealOptions::default()
        };
        let out =
            run_real(&config, &scenario, &mut ChanTransport, opts).expect("real run succeeds");
        assert_eq!(out.iterations, 8);
        assert_eq!(out.crashes, 1);
        assert_eq!(out.restarts, 1);
        assert!(!out.params.is_empty());
    }

    #[test]
    fn server_crash_restart_matches_the_uninterrupted_run() {
        // The acceptance bar for the durable control plane: kill the server
        // mid-iteration, recover from the WAL, and land on final parameters
        // byte-identical to a run that was never interrupted.
        let (config, mut scenario) = quick();
        scenario.iterations = 8;
        let baseline = run_real(&config, &scenario, &mut ChanTransport, fast())
            .expect("uninterrupted run succeeds");
        scenario.fault = FaultModel::ServerCrashRestart {
            iteration: 1,
            down: fela_sim::SimDuration::from_millis(100),
        };
        let opts = RealOptions {
            time_scale: 1e-3,
            min_down: Duration::from_millis(1),
            ..RealOptions::default()
        };
        let out = run_real(&config, &scenario, &mut ChanTransport, opts)
            .expect("durable run survives the server crash");
        assert_eq!(out.iterations, 8);
        assert_eq!(out.server_crashes, 1);
        assert_eq!(out.server_restarts, 1);
        assert_eq!(out.crashes, 0, "no worker fault was declared");
        assert_eq!(
            out.params, baseline.params,
            "recovered run must produce byte-identical parameters"
        );
    }

    #[test]
    fn tcp_server_crash_restart_recovers() {
        let (config, mut scenario) = quick();
        scenario.iterations = 6;
        scenario.fault = FaultModel::ServerCrashRestart {
            iteration: 1,
            down: fela_sim::SimDuration::from_millis(100),
        };
        let opts = RealOptions {
            time_scale: 1e-3,
            min_down: Duration::from_millis(1),
            ..RealOptions::default()
        };
        let out = run_real(&config, &scenario, &mut TcpTransport::default(), opts)
            .expect("durable run survives the server crash over TCP");
        assert_eq!(out.iterations, 6);
        assert_eq!(out.server_crashes, 1);
        assert_eq!(out.server_restarts, 1);
        assert!(!out.params.is_empty());
    }

    #[test]
    fn durable_run_writes_a_replayable_wal_file() {
        let dir = std::env::temp_dir().join(format!(
            "fela-live-wal-{}-{:?}",
            std::process::id(),
            thread::current().id()
        ));
        std::fs::create_dir_all(&dir).expect("temp dir");
        let (config, mut scenario) = quick();
        scenario.iterations = 4;
        scenario.fault = FaultModel::ServerCrashRestart {
            iteration: 1,
            down: fela_sim::SimDuration::from_millis(50),
        };
        let durability = DurabilityOptions {
            wal_dir: Some(dir.clone()),
            checkpoint_every: 1,
        };
        let opts = RealOptions {
            time_scale: 1e-3,
            min_down: Duration::from_millis(1),
            ..RealOptions::default()
        };
        let out = run_real_durable(&config, &scenario, &mut ChanTransport, opts, &durability)
            .expect("durable run succeeds");
        assert_eq!(out.iterations, 4);
        assert_eq!(out.server_crashes, 1);
        let bytes = std::fs::read(wal_path(&dir)).expect("wal file exists");
        let log = fela_core::wal::read_log(&bytes).expect("wal parses cleanly");
        assert_eq!(log.torn_bytes, 0, "resumed file log must end on a record");
        assert!(log.records.len() > 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn worker_and_server_faults_keep_separate_counters() {
        // A worker CrashRestart run must not touch the server counters.
        let (config, mut scenario) = quick();
        scenario.iterations = 6;
        scenario.fault = FaultModel::Scripted {
            worker: 0,
            iteration: 1,
            kind: FaultKind::CrashRestart {
                down: fela_sim::SimDuration::from_millis(100),
            },
        };
        let opts = RealOptions {
            time_scale: 1e-3,
            min_down: Duration::from_millis(1),
            ..RealOptions::default()
        };
        let out =
            run_real(&config, &scenario, &mut ChanTransport, opts).expect("real run succeeds");
        assert_eq!(out.crashes, 1);
        assert_eq!(out.restarts, 1);
        assert_eq!(out.server_crashes, 0);
        assert_eq!(out.server_restarts, 0);
    }
}
