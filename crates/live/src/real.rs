//! Real-clock live runs: the Token Server as a wall-clock service.
//!
//! Unlike virtual mode (which *is* the simulator), real mode drives
//! [`TokenServer`] directly: worker threads pull tokens over the wire, sleep
//! the modeled compute span scaled by `time_scale`, and report; the server
//! maps real elapsed nanoseconds onto [`SimTime`] for the scheduling policies
//! and runs leases, faults and restarts off a wall-clock timer heap. Data
//! movement is not emulated — this is a **control-plane** runtime: parameter
//! syncs commit degenerately the moment a level's last report lands
//! ([`TokenServer::sync_finished`] immediately), so the measured quantity is
//! pure token-protocol throughput.
//!
//! Model training is still exact: accepted reports are logged server-side,
//! relabeled into engine schedules (see [`crate::replay`]) and broadcast to
//! every surviving worker at the end of the run. [`fela_engine`]'s executor
//! is schedule-invariant, so even a nondeterministically-ordered TCP run
//! produces bit-identical final parameters on every replica.
//!
//! Fault injection reuses the scenario's [`FaultModel`](fela_cluster::FaultModel)
//! verbatim: `Crash` closes the victim's link (its thread dies on the broken
//! connection), `CrashRestart`/`LinkDown` additionally arm a timer that
//! reconnects via [`Transport::extra_link`] and respawns the worker, and
//! `Hang` ships a `Hang` frame that freezes the victim long enough for its
//! lease to expire on the server.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::io;
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use fela_cluster::{FaultKind, Scenario};
use fela_core::{
    ControlPlane, FelaConfig, FelaRuntime, Grant, LevelMeta, RecoveryConfig, ScheduleError,
    TokenId, TokenPlan,
};
use fela_model::Partition;
use fela_sim::{SimDuration, SimTime};

use crate::replay::replay_schedules;
use crate::sched::{pass, Endpoint, SharedSched, SyncEvent};
use crate::transport::{LinkRx, LinkTx, Transport};
use crate::wire::Frame;
use crate::worker::{spawn_worker, WorkerSpec};

/// Tuning knobs for a real-clock run.
#[derive(Clone, Copy, Debug)]
pub struct RealOptions {
    /// Real seconds slept per modeled second. Small values (1e-4..1e-2) turn
    /// multi-minute modeled runs into sub-second smoke runs.
    pub time_scale: f64,
    /// Floor on real lease deadlines, defending tiny `time_scale` values
    /// against thread-scheduler jitter causing spurious revocations.
    pub min_lease: Duration,
    /// Floor on real restart downtime.
    pub min_down: Duration,
}

impl Default for RealOptions {
    fn default() -> Self {
        RealOptions {
            time_scale: 1e-3,
            min_lease: Duration::from_millis(50),
            min_down: Duration::from_millis(20),
        }
    }
}

/// Result of a real-clock live run.
#[derive(Clone, Debug)]
pub struct RealOutcome {
    /// Real wall-clock seconds the run took.
    pub elapsed_secs: f64,
    /// Iterations committed (equals the scenario's iteration count).
    pub iterations: u64,
    /// Tokens granted by the server (including re-grants after revocation).
    pub grants: u64,
    /// Accepted token reports per second of wall clock — the headline
    /// throughput number for the `live_throughput` bench.
    pub tokens_per_sec: f64,
    /// Accepted reports per worker.
    pub trained_per_worker: Vec<u64>,
    /// Reports discarded because the reporter had lost its lease.
    pub stale_reports: u64,
    /// Injected crashes (including crash-restart and link-down).
    pub crashes: u64,
    /// Workers that rejoined after a crash.
    pub restarts: u64,
    /// Leases revoked (expiry or crash).
    pub revocations: u64,
    /// Final model parameters (bit-identical on every surviving replica and
    /// to the server's reference replay).
    pub params: Vec<u8>,
    /// Transport used.
    pub transport: &'static str,
}

enum Inbound {
    Frame(Frame),
    Gone,
}

enum Timer {
    Lease { token: TokenId, attempt: u64 },
    Restart { worker: usize },
}

struct TimerEntry {
    at: Instant,
    seq: u64,
    timer: Timer,
}

impl PartialEq for TimerEntry {
    fn eq(&self, other: &Self) -> bool {
        (self.at, self.seq) == (other.at, other.seq)
    }
}
impl Eq for TimerEntry {}
impl PartialOrd for TimerEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for TimerEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

fn spawn_pump(worker: usize, mut rx: LinkRx, inbox: Sender<(usize, Inbound)>) -> JoinHandle<()> {
    thread::Builder::new()
        .name(format!("fela-pump-{worker}"))
        .spawn(move || loop {
            match rx.recv() {
                Ok(frame) => {
                    if inbox.send((worker, Inbound::Frame(frame))).is_err() {
                        return;
                    }
                }
                Err(_) => {
                    let _ = inbox.send((worker, Inbound::Gone));
                    return;
                }
            }
        })
        .unwrap_or_else(|e| panic!("spawn pump thread: {e}"))
}

struct RealServer<'a> {
    server: ControlPlane,
    scenario: &'a Scenario,
    partition: Partition,
    plan: TokenPlan,
    opts: RealOptions,
    recovery: Option<RecoveryConfig>,
    started: Instant,
    /// Send half per worker; `None` after we closed the link (crash).
    txs: Vec<Option<LinkTx>>,
    inbox_tx: Sender<(usize, Inbound)>,
    timers: BinaryHeap<Reverse<TimerEntry>>,
    timer_seq: u64,
    /// Accepted reports in arrival order: `(iteration, level)`.
    completions: Vec<(u64, usize)>,
    faults_armed: u64,
    stale_reports: u64,
    crashes: u64,
    restarts: u64,
    revocations: u64,
    sched: SharedSched,
}

impl RealServer<'_> {
    fn now_sim(&self) -> SimTime {
        SimTime::ZERO + SimDuration::from_secs_f64(self.started.elapsed().as_secs_f64())
    }

    fn arm_timer(&mut self, at: Instant, timer: Timer) {
        self.timer_seq += 1;
        self.timers.push(Reverse(TimerEntry {
            at,
            seq: self.timer_seq,
            timer,
        }));
    }

    fn worker_spec(&self, index: usize, pull: bool) -> WorkerSpec {
        WorkerSpec {
            index,
            scenario: self.scenario.clone(),
            plan: self.plan.clone(),
            time_scale: self.opts.time_scale,
            pull,
            sched: self.sched.clone(),
        }
    }

    fn send_grant(&mut self, worker: usize, grant: Grant) {
        let sm = &self.partition.sub_models()[grant.token.level];
        let frame = Frame::Grant {
            token: grant.token.id.0,
            level: grant.token.level as u32,
            iteration: grant.token.iteration,
            batch: grant.token.batch,
            unit_start: sm.unit_start as u32,
            unit_end: sm.unit_end as u32,
        };
        if let Some(tx) = self.txs[worker].as_mut() {
            if tx.send(&frame).is_err() {
                // Worker died under us; the pump's Gone will handle it.
                return;
            }
        } else {
            return;
        }
        if let Some(rec) = self.recovery {
            let base = self.scenario.cluster.compute_secs(
                &self.scenario.model,
                sm.unit_start,
                sm.unit_end,
                grant.token.batch,
                worker,
            ) + self
                .scenario
                .straggler_delay(grant.token.iteration, worker)
                .as_secs_f64();
            let backoff = (1u64 << grant.attempt.min(32)) as f64;
            let lease = Duration::from_secs_f64(
                (base * rec.lease_slack * backoff + rec.lease_grace.as_secs_f64())
                    * self.opts.time_scale,
            )
            .max(self.opts.min_lease);
            self.arm_timer(
                Instant::now() + lease,
                Timer::Lease {
                    token: grant.token.id,
                    attempt: grant.attempt,
                },
            );
        }
    }

    /// Grants every waiting worker whose turn has come.
    fn pump_grants(&mut self) {
        loop {
            match self.server.pop_ready_grant(self.now_sim()) {
                Ok(Some((worker, grant))) => self.send_grant(worker, grant),
                Ok(None) => break,
                Err(e) => panic!("Fela scheduler invariant violated: {e}"),
            }
        }
    }

    /// Kills a worker at the transport level and tells the server.
    fn kill(&mut self, worker: usize) {
        if let Some(mut tx) = self.txs[worker].take() {
            tx.close();
        }
        if self.server.is_alive(worker) {
            match self.server.worker_crashed(worker) {
                Ok(revoked) => {
                    self.crashes += 1;
                    self.revocations += revoked.len() as u64;
                }
                Err(e) => panic!("Fela scheduler invariant violated: {e}"),
            }
        }
    }

    /// Turns fault declarations into actions as root iterations are released.
    fn arm_faults(&mut self, transport: &mut dyn Transport) -> io::Result<()> {
        if self.scenario.fault.is_none() {
            return Ok(());
        }
        while self.faults_armed < self.server.released_root_iterations() {
            let it = self.faults_armed;
            for worker in 0..self.scenario.cluster.nodes {
                match self.scenario.fault_for(it, worker) {
                    None => {}
                    Some(FaultKind::Hang { stall }) => {
                        let nanos = (stall.as_secs_f64() * self.opts.time_scale * 1e9)
                            .max(self.opts.min_lease.as_nanos() as f64 * 2.0)
                            as u64;
                        if let Some(tx) = self.txs[worker].as_mut() {
                            let _ = tx.send(&Frame::Hang { nanos });
                        }
                    }
                    Some(FaultKind::Crash) => self.kill(worker),
                    Some(FaultKind::CrashRestart { down }) | Some(FaultKind::LinkDown { down }) => {
                        self.kill(worker);
                        let real_down =
                            Duration::from_secs_f64(down.as_secs_f64() * self.opts.time_scale)
                                .max(self.opts.min_down);
                        self.arm_timer(Instant::now() + real_down, Timer::Restart { worker });
                    }
                }
            }
            self.faults_armed += 1;
        }
        let _ = transport;
        Ok(())
    }

    fn fire_timer(&mut self, timer: Timer, transport: &mut dyn Transport) -> io::Result<()> {
        match timer {
            Timer::Lease { token, attempt } => {
                self.sched.reached(&SyncEvent::LeaseFired {
                    token: token.0,
                    attempt,
                });
                match self.server.lease_expired(token, attempt) {
                    Ok(Some(expired)) => {
                        self.revocations += expired.revoked.len() as u64;
                    }
                    Ok(None) => {} // lease already satisfied or superseded
                    Err(e) => panic!("Fela scheduler invariant violated: {e}"),
                }
                self.pump_grants();
            }
            Timer::Restart { worker } => {
                self.sched.reached(&SyncEvent::RestartFired { worker });
                if self.server.is_alive(worker) {
                    return Ok(());
                }
                let (mut server_link, worker_link) = transport.extra_link(worker)?;
                server_link.instrument(self.sched.clone(), Endpoint::Server, worker);
                let (tx, rx) = server_link.split();
                self.txs[worker] = Some(tx);
                let _ = spawn_pump(worker, rx, self.inbox_tx.clone());
                let _ = spawn_worker(self.worker_spec(worker, true), worker_link);
                match self.server.worker_restarted(worker) {
                    Ok(()) => self.restarts += 1,
                    Err(e) => panic!("Fela scheduler invariant violated: {e}"),
                }
                self.pump_grants();
            }
        }
        Ok(())
    }

    fn handle_frame(
        &mut self,
        worker: usize,
        frame: Frame,
        transport: &mut dyn Transport,
    ) -> io::Result<()> {
        match frame {
            Frame::Request { worker: w } => {
                debug_assert_eq!(w as usize, worker);
                match self.server.request(worker, self.now_sim()) {
                    Ok(Some(grant)) => self.send_grant(worker, grant),
                    Ok(None) => {}
                    Err(ScheduleError::WorkerUnavailable { .. }) => {}
                    Err(e) => panic!("Fela scheduler invariant violated: {e}"),
                }
            }
            Frame::Report { worker: w, token } => {
                debug_assert_eq!(w as usize, worker);
                let id = TokenId(token);
                let info = self.server.token(id).map(|t| (t.iteration, t.level));
                match self.server.report(worker, id) {
                    Ok(syncs) => {
                        let Some((iteration, level)) = info else {
                            panic!("accepted report for an unknown token");
                        };
                        self.completions.push((iteration, level));
                        // Control-plane runtime: every sync commits degenerately.
                        for spec in syncs {
                            if let Err(e) = self.server.sync_finished(spec.level, spec.iteration) {
                                panic!("Fela scheduler invariant violated: {e}");
                            }
                        }
                    }
                    Err(ScheduleError::StaleReport { .. }) => self.stale_reports += 1,
                    Err(e) => panic!("Fela scheduler invariant violated: {e}"),
                }
                // Piggybacked pull, exactly like the simulated control plane.
                match self.server.request(worker, self.now_sim()) {
                    Ok(Some(grant)) => self.send_grant(worker, grant),
                    Ok(None) => {}
                    Err(ScheduleError::WorkerUnavailable { .. }) => {}
                    Err(e) => panic!("Fela scheduler invariant violated: {e}"),
                }
                self.arm_faults(transport)?;
                self.pump_grants();
            }
            other => panic!("server: unexpected frame from worker {worker}: {other:?}"),
        }
        Ok(())
    }
}

/// Runs `scenario` live in real-clock mode over `transport`, under the
/// default pass-through scheduler.
pub fn run_real(
    config: &FelaConfig,
    scenario: &Scenario,
    transport: &mut dyn Transport,
    opts: RealOptions,
) -> io::Result<RealOutcome> {
    run_real_with(config, scenario, transport, opts, pass())
}

/// [`run_real`] with an explicit [`Sched`](crate::sched::Sched): every link
/// on both endpoints, every server inbox dequeue, and every timer fire yields
/// to `sched`. Under [`pass`] this is the uninstrumented run.
pub fn run_real_with(
    config: &FelaConfig,
    scenario: &Scenario,
    transport: &mut dyn Transport,
    opts: RealOptions,
    sched: SharedSched,
) -> io::Result<RealOutcome> {
    scenario.cluster.validate();
    if let Err(e) = scenario.fault.validate() {
        panic!("invalid fault model: {e}");
    }
    let mut config = config.clone();
    if !scenario.fault.is_none() && config.recovery.is_none() {
        config.recovery = Some(RecoveryConfig::default());
    }
    let runtime = FelaRuntime::new(config.clone());
    let partition = runtime.partition_for(scenario);
    let plan = TokenPlan::build(
        &partition,
        &config,
        scenario.total_batch,
        scenario.cluster.nodes,
    )
    .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e.to_string()))?;
    let meta: Vec<LevelMeta> = partition
        .sub_models()
        .iter()
        .map(|s| LevelMeta {
            param_bytes: s.param_bytes,
            output_bytes_per_sample: s.output_bytes_per_sample,
            input_bytes_per_sample: s.input_bytes_per_sample,
            comm_intensive: s.comm_intensive,
        })
        .collect();
    let n = scenario.cluster.nodes;
    let server = ControlPlane::new(plan.clone(), config.clone(), meta, n, scenario.iterations);

    type InboxPair = (Sender<(usize, Inbound)>, Receiver<(usize, Inbound)>);
    let (inbox_tx, inbox_rx): InboxPair = channel();
    let (server_links, worker_links) = transport.establish(n)?;
    let mut txs = Vec::with_capacity(n);
    for (w, mut link) in server_links.into_iter().enumerate() {
        link.instrument(sched.clone(), Endpoint::Server, w);
        let (tx, rx) = link.split();
        txs.push(Some(tx));
        let _ = spawn_pump(w, rx, inbox_tx.clone());
    }

    let recovery = if !scenario.fault.is_none() {
        config.recovery
    } else {
        None
    };
    let mut rs = RealServer {
        server,
        scenario,
        partition,
        plan,
        opts,
        recovery,
        started: Instant::now(),
        txs,
        inbox_tx,
        timers: BinaryHeap::new(),
        timer_seq: 0,
        completions: Vec::new(),
        faults_armed: 0,
        stale_reports: 0,
        crashes: 0,
        restarts: 0,
        revocations: 0,
        sched: sched.clone(),
    };

    // Workers are spawned *after* the clock starts so their initial Requests
    // measure real protocol latency.
    for (index, link) in worker_links.into_iter().enumerate() {
        let _ = spawn_worker(rs.worker_spec(index, true), link);
    }
    rs.arm_faults(transport)?;

    while !rs.server.run_complete() {
        let next_deadline = rs.timers.peek().map(|Reverse(e)| e.at);
        let msg = match next_deadline {
            Some(at) => {
                let now = Instant::now();
                if at <= now {
                    let Some(Reverse(entry)) = rs.timers.pop() else {
                        unreachable!("peek returned a deadline but pop found nothing");
                    };
                    rs.fire_timer(entry.timer, transport)?;
                    continue;
                }
                match inbox_rx.recv_timeout(at - now) {
                    Ok(msg) => msg,
                    Err(RecvTimeoutError::Timeout) => continue,
                    Err(RecvTimeoutError::Disconnected) => {
                        panic!("every worker pump exited before the run completed")
                    }
                }
            }
            None => match inbox_rx.recv() {
                Ok(msg) => msg,
                Err(_) => panic!("every worker pump exited before the run completed"),
            },
        };
        match &msg {
            (worker, Inbound::Frame(frame)) => rs.sched.reached(&SyncEvent::InboxDequeued {
                worker: *worker,
                frame: Some(frame.clone()),
            }),
            (worker, Inbound::Gone) => rs.sched.reached(&SyncEvent::InboxDequeued {
                worker: *worker,
                frame: None,
            }),
        }
        match msg {
            (worker, Inbound::Frame(frame)) => rs.handle_frame(worker, frame, transport)?,
            (worker, Inbound::Gone) => {
                // We closed the link ourselves (crash injection) — or the
                // thread died unexpectedly, which the server treats the same.
                if rs.server.is_alive(worker) && rs.txs[worker].is_some() {
                    rs.kill(worker);
                    rs.pump_grants();
                }
            }
        }
    }
    let elapsed = rs.started.elapsed();

    // Broadcast the relabeled schedules and collect every replica's params.
    let mut schedules: Vec<Vec<(usize, usize)>> = Vec::new();
    {
        let mut next_rank: Vec<std::collections::HashMap<usize, usize>> = Vec::new();
        for &(iteration, level) in &rs.completions {
            let it = iteration as usize;
            while schedules.len() <= it {
                schedules.push(Vec::new());
                next_rank.push(Default::default());
            }
            let rank = next_rank[it].entry(level).or_insert(0);
            schedules[it].push((level, *rank));
            *rank += 1;
        }
    }
    let reference = replay_schedules(&rs.plan, &schedules);
    let mut waiting = Vec::new();
    for worker in 0..n {
        let Some(tx) = rs.txs[worker].as_mut() else {
            continue;
        };
        let mut ok = true;
        for (iteration, schedule) in schedules.iter().enumerate() {
            if tx
                .send(&Frame::Iter {
                    iteration: iteration as u64,
                    schedule: schedule
                        .iter()
                        .map(|&(l, j)| (l as u32, j as u32))
                        .collect(),
                })
                .is_err()
            {
                ok = false;
                break;
            }
        }
        if ok && tx.send(&Frame::End).is_ok() {
            waiting.push(worker);
        }
    }
    let mut collected = 0usize;
    let deadline = Instant::now() + Duration::from_secs(30);
    while collected < waiting.len() {
        let Some(remaining) = deadline.checked_duration_since(Instant::now()) else {
            panic!("timed out collecting final parameters");
        };
        match inbox_rx.recv_timeout(remaining) {
            Ok((worker, Inbound::Frame(Frame::Params { bytes }))) => {
                assert_eq!(
                    bytes, reference,
                    "worker {worker}: replica parameters diverged from the reference replay"
                );
                collected += 1;
            }
            // Late reports/requests from still-draining workers, and Gone
            // notifications as threads exit.
            Ok(_) => {}
            Err(e) => panic!("collecting final parameters: {e}"),
        }
    }

    let trained = rs.server.trained_per_worker().to_vec();
    let tokens: u64 = trained.iter().sum();
    Ok(RealOutcome {
        elapsed_secs: elapsed.as_secs_f64(),
        iterations: rs.server.completed_iterations(),
        grants: rs.server.stats().grants,
        tokens_per_sec: tokens as f64 / elapsed.as_secs_f64(),
        trained_per_worker: trained,
        stale_reports: rs.stale_reports,
        crashes: rs.crashes,
        restarts: rs.restarts,
        revocations: rs.revocations,
        params: reference,
        transport: transport.name(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::{ChanTransport, TcpTransport};
    use fela_cluster::{ClusterSpec, FaultModel};
    use fela_model::zoo;

    fn quick() -> (FelaConfig, Scenario) {
        let mut scenario = Scenario::paper(zoo::alexnet(), 128);
        scenario.iterations = 3;
        scenario.cluster = ClusterSpec::k40c_cluster(2);
        let config = FelaConfig::new(3);
        (config, scenario)
    }

    fn fast() -> RealOptions {
        RealOptions {
            time_scale: 1e-4,
            ..RealOptions::default()
        }
    }

    #[test]
    fn real_chan_run_completes_and_replicas_agree() {
        let (config, scenario) = quick();
        let out =
            run_real(&config, &scenario, &mut ChanTransport, fast()).expect("real run succeeds");
        assert_eq!(out.iterations, 3);
        assert!(!out.params.is_empty());
        assert_eq!(out.trained_per_worker.iter().sum::<u64>(), out.grants);
        assert!(out.tokens_per_sec > 0.0);
    }

    #[test]
    fn real_tcp_run_completes() {
        let (config, scenario) = quick();
        let out = run_real(&config, &scenario, &mut TcpTransport::default(), fast())
            .expect("real run succeeds");
        assert_eq!(out.iterations, 3);
        assert_eq!(out.transport, "tcp");
    }

    #[test]
    fn real_run_params_match_the_virtual_run() {
        // Schedule-invariance in action: a wall-clock run with real thread
        // interleavings lands on the same final parameter bits as the
        // deterministic virtual run of the same scenario.
        let (config, scenario) = quick();
        let real =
            run_real(&config, &scenario, &mut ChanTransport, fast()).expect("real run succeeds");
        let virt = crate::virt::run_virtual(&config, &scenario, &mut ChanTransport)
            .expect("virtual run succeeds");
        assert_eq!(real.params, virt.params);
    }

    #[test]
    fn real_crash_restart_recovers() {
        let (config, mut scenario) = quick();
        scenario.iterations = 8;
        scenario.fault = FaultModel::Scripted {
            worker: 1,
            iteration: 1,
            kind: FaultKind::CrashRestart {
                down: fela_sim::SimDuration::from_millis(100),
            },
        };
        let opts = RealOptions {
            time_scale: 1e-3,
            min_down: Duration::from_millis(1),
            ..RealOptions::default()
        };
        let out =
            run_real(&config, &scenario, &mut ChanTransport, opts).expect("real run succeeds");
        assert_eq!(out.iterations, 8);
        assert_eq!(out.crashes, 1);
        assert_eq!(out.restarts, 1);
        assert!(!out.params.is_empty());
    }
}
