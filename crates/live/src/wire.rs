//! The wire protocol: length-prefixed binary frames.
//!
//! Every message between the live Token Server and a worker — on *both*
//! transports, including the in-process channel one — is one [`Frame`],
//! serialized by [`encode_frame`] as a little-endian `u32` body length
//! followed by a one-byte frame tag and the fields in declaration order.
//! Hand-rolled (std-only, no serde): the frame set is small, fixed, and the
//! explicit codec is itself under test (round-trip property tests below).
//!
//! `f64` values (compute-span seconds) travel as raw IEEE-754 bits so a value
//! crosses the wire without any formatting round-trip — bit-exactness of the
//! virtual clock depends on it.

use std::io::{self, Read, Write};

/// Maximum accepted frame body, a defensive bound against corrupt length
/// prefixes (the largest legitimate frame is a `Params` payload of a few KB).
pub const MAX_FRAME: u32 = 16 * 1024 * 1024;

/// One protocol message.
#[derive(Clone, PartialEq, Debug)]
pub enum Frame {
    /// Connection handshake: identifies which worker owns the link.
    Hello {
        /// Worker index.
        worker: u32,
    },
    /// Virtual-clock mode, server → worker: price this compute span.
    CostQuery {
        /// Worker the token was granted to.
        worker: u32,
        /// Token id (echoed in the reply for correlation).
        token: u64,
        /// Sub-model level.
        level: u32,
        /// First model unit (inclusive).
        unit_start: u32,
        /// Last model unit (exclusive).
        unit_end: u32,
        /// Samples the token covers.
        batch: u64,
        /// Iteration the token belongs to.
        iteration: u64,
    },
    /// Virtual-clock mode, worker → server: the span costs these seconds.
    CostReply {
        /// Token id being answered.
        token: u64,
        /// `f64::to_bits` of the span seconds (bit-exact transfer).
        secs_bits: u64,
    },
    /// Real-clock mode, worker → server: the worker is idle and pulls work.
    Request {
        /// Requesting worker.
        worker: u32,
    },
    /// Real-clock mode, server → worker: train this token.
    Grant {
        /// Token id.
        token: u64,
        /// Sub-model level.
        level: u32,
        /// Iteration.
        iteration: u64,
        /// Samples.
        batch: u64,
        /// First model unit (inclusive).
        unit_start: u32,
        /// Last model unit (exclusive).
        unit_end: u32,
    },
    /// Real-clock mode, worker → server: token trained, gradient ready.
    Report {
        /// Reporting worker.
        worker: u32,
        /// Completed token id.
        token: u64,
    },
    /// Real-clock mode, server → worker: train these tokens, in order. One
    /// frame (one syscall, one flush) amortizes the grant hot path over N
    /// tokens — the batched sibling of [`Frame::Grant`].
    GrantBatch {
        /// The granted tokens, in grant order.
        grants: Vec<WireGrant>,
    },
    /// Real-clock mode, worker → server: these tokens are trained, in
    /// completion order — the batched sibling of [`Frame::Report`].
    ReportBatch {
        /// Reporting worker.
        worker: u32,
        /// Completed token ids, oldest first.
        tokens: Vec<u64>,
    },
    /// Server → worker: one committed iteration's token schedule, as
    /// `(level, completion_index)` pairs — the worker applies it to its
    /// `fela-engine` model replica.
    Iter {
        /// Iteration number.
        iteration: u64,
        /// Completion-ordered `(level, index)` schedule.
        schedule: Vec<(u32, u32)>,
    },
    /// Server → worker fault injection: freeze for this long before
    /// processing anything else (drives real lease expiry).
    Hang {
        /// Real nanoseconds to sleep.
        nanos: u64,
    },
    /// Server → worker: run over; reply with `Params` and exit.
    End,
    /// Worker → server: the replica's final parameters, flattened LE `f32`s.
    Params {
        /// Raw little-endian parameter bytes.
        bytes: Vec<u8>,
    },
}

/// One grant inside a [`Frame::GrantBatch`]: the same fields as
/// [`Frame::Grant`], packed as a plain value so a batch encodes as a count
/// followed by fixed-size records.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct WireGrant {
    /// Token id.
    pub token: u64,
    /// Sub-model level.
    pub level: u32,
    /// Iteration.
    pub iteration: u64,
    /// Samples.
    pub batch: u64,
    /// First model unit (inclusive).
    pub unit_start: u32,
    /// Last model unit (exclusive).
    pub unit_end: u32,
}

/// Encoded size of one [`WireGrant`] record.
const WIRE_GRANT_BYTES: usize = 8 + 4 + 8 + 8 + 4 + 4;

/// Wire-protocol failure: the peer sent bytes that are not a valid frame, or
/// the underlying stream failed mid-frame.
///
/// Structured (not a bare `io::Error`) so callers — and the protocol session
/// verifier in `fela-check` — can distinguish a corrupt peer from a dead link
/// without string matching.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum WireError {
    /// The body ended before a field could be read.
    Truncated {
        /// Bytes the field needed.
        wanted: usize,
        /// Offset the read started at.
        offset: usize,
        /// Total body length.
        body: usize,
    },
    /// Bytes remained after the frame's last field.
    Trailing {
        /// Number of unconsumed bytes.
        extra: usize,
    },
    /// The frame tag byte is not part of the protocol.
    UnknownTag(u8),
    /// The buffer is too short to even hold the length prefix.
    MissingPrefix,
    /// The length prefix disagrees with the buffer handed to `decode_frame`.
    LengthMismatch {
        /// Length the prefix claimed.
        prefix: usize,
        /// Bytes actually present after the prefix.
        actual: usize,
    },
    /// A length prefix exceeded [`MAX_FRAME`] — a corrupt or adversarial peer
    /// trying to drive an unbounded allocation.
    Oversized {
        /// The claimed body length.
        len: u64,
        /// The protocol bound.
        max: u32,
    },
    /// An embedded element count is impossible for the bytes that follow it
    /// (guards `Vec::with_capacity` against attacker-controlled counts).
    BadCount {
        /// Which field carried the count.
        what: &'static str,
        /// The claimed element count.
        count: usize,
        /// Bytes actually remaining in the body.
        remaining: usize,
    },
    /// The underlying stream failed (peer gone, reset, short read).
    Io(io::ErrorKind),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated {
                wanted,
                offset,
                body,
            } => write!(
                f,
                "frame truncated: wanted {wanted} bytes at offset {offset}, body is {body}"
            ),
            WireError::Trailing { extra } => {
                write!(f, "{extra} trailing byte(s) after frame body")
            }
            WireError::UnknownTag(tag) => write!(f, "unknown frame tag {tag}"),
            WireError::MissingPrefix => write!(f, "missing length prefix"),
            WireError::LengthMismatch { prefix, actual } => write!(
                f,
                "length prefix {prefix} disagrees with buffer size {actual}"
            ),
            WireError::Oversized { len, max } => write!(
                f,
                "frame of {len} bytes exceeds the {max}-byte protocol bound"
            ),
            WireError::BadCount {
                what,
                count,
                remaining,
            } => write!(
                f,
                "{what} count {count} is impossible with {remaining} body byte(s) remaining"
            ),
            WireError::Io(kind) => write!(f, "stream failed mid-frame: {kind}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<WireError> for io::Error {
    fn from(e: WireError) -> io::Error {
        match e {
            WireError::Io(kind) => io::Error::new(kind, e),
            _ => io::Error::new(io::ErrorKind::InvalidData, e),
        }
    }
}

impl From<io::Error> for WireError {
    fn from(e: io::Error) -> WireError {
        WireError::Io(e.kind())
    }
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if n > self.buf.len() - self.pos {
            return Err(WireError::Truncated {
                wanted: n,
                offset: self.pos,
                body: self.buf.len(),
            });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    fn done(&self) -> Result<(), WireError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(WireError::Trailing {
                extra: self.buf.len() - self.pos,
            })
        }
    }
}

const TAG_HELLO: u8 = 1;
const TAG_COST_QUERY: u8 = 2;
const TAG_COST_REPLY: u8 = 3;
const TAG_REQUEST: u8 = 4;
const TAG_GRANT: u8 = 5;
const TAG_REPORT: u8 = 6;
const TAG_ITER: u8 = 7;
const TAG_HANG: u8 = 8;
const TAG_END: u8 = 9;
const TAG_PARAMS: u8 = 10;
const TAG_GRANT_BATCH: u8 = 11;
const TAG_REPORT_BATCH: u8 = 12;

/// Exact encoded body size (tag byte included) of one frame.
///
/// The hot-path encoder pre-reserves exactly this many bytes, so batched
/// frames never reallocate mid-encode; exactness is property-tested against
/// [`encode_frame`] for every variant.
pub fn body_len(frame: &Frame) -> usize {
    1 + match frame {
        Frame::Hello { .. } | Frame::Request { .. } => 4,
        Frame::CostQuery { .. } => 4 + 8 + 4 + 4 + 4 + 8 + 8,
        Frame::CostReply { .. } => 8 + 8,
        Frame::Grant { .. } => WIRE_GRANT_BYTES,
        Frame::Report { .. } => 4 + 8,
        Frame::GrantBatch { grants } => 4 + WIRE_GRANT_BYTES * grants.len(),
        Frame::ReportBatch { tokens, .. } => 4 + 4 + 8 * tokens.len(),
        Frame::Iter { schedule, .. } => 8 + 4 + 8 * schedule.len(),
        Frame::Hang { .. } => 8,
        Frame::End => 0,
        Frame::Params { bytes } => 4 + bytes.len(),
    }
}

fn put_grant(out: &mut Vec<u8>, g: &WireGrant) {
    put_u64(out, g.token);
    put_u32(out, g.level);
    put_u64(out, g.iteration);
    put_u64(out, g.batch);
    put_u32(out, g.unit_start);
    put_u32(out, g.unit_end);
}

/// Serializes one frame — `[body_len: u32 LE][tag: u8][fields...]` — by
/// *appending* to `out`, reserving the exact encoded size up front
/// ([`body_len`]). This is the hot-path entry: a link keeps one buffer alive
/// across frames instead of allocating a fresh `Vec` per frame, and a batch
/// flush queues several frames into it before one write.
pub fn encode_frame_into(out: &mut Vec<u8>, frame: &Frame) {
    let body = body_len(frame);
    out.reserve(4 + body);
    let start = out.len();
    put_u32(out, body as u32);
    match frame {
        Frame::Hello { worker } => {
            out.push(TAG_HELLO);
            put_u32(out, *worker);
        }
        Frame::CostQuery {
            worker,
            token,
            level,
            unit_start,
            unit_end,
            batch,
            iteration,
        } => {
            out.push(TAG_COST_QUERY);
            put_u32(out, *worker);
            put_u64(out, *token);
            put_u32(out, *level);
            put_u32(out, *unit_start);
            put_u32(out, *unit_end);
            put_u64(out, *batch);
            put_u64(out, *iteration);
        }
        Frame::CostReply { token, secs_bits } => {
            out.push(TAG_COST_REPLY);
            put_u64(out, *token);
            put_u64(out, *secs_bits);
        }
        Frame::Request { worker } => {
            out.push(TAG_REQUEST);
            put_u32(out, *worker);
        }
        Frame::Grant {
            token,
            level,
            iteration,
            batch,
            unit_start,
            unit_end,
        } => {
            out.push(TAG_GRANT);
            put_grant(
                out,
                &WireGrant {
                    token: *token,
                    level: *level,
                    iteration: *iteration,
                    batch: *batch,
                    unit_start: *unit_start,
                    unit_end: *unit_end,
                },
            );
        }
        Frame::Report { worker, token } => {
            out.push(TAG_REPORT);
            put_u32(out, *worker);
            put_u64(out, *token);
        }
        Frame::GrantBatch { grants } => {
            out.push(TAG_GRANT_BATCH);
            put_u32(out, grants.len() as u32);
            for g in grants {
                put_grant(out, g);
            }
        }
        Frame::ReportBatch { worker, tokens } => {
            out.push(TAG_REPORT_BATCH);
            put_u32(out, *worker);
            put_u32(out, tokens.len() as u32);
            for &t in tokens {
                put_u64(out, t);
            }
        }
        Frame::Iter {
            iteration,
            schedule,
        } => {
            out.push(TAG_ITER);
            put_u64(out, *iteration);
            put_u32(out, schedule.len() as u32);
            for &(level, idx) in schedule {
                put_u32(out, level);
                put_u32(out, idx);
            }
        }
        Frame::Hang { nanos } => {
            out.push(TAG_HANG);
            put_u64(out, *nanos);
        }
        Frame::End => out.push(TAG_END),
        Frame::Params { bytes } => {
            out.push(TAG_PARAMS);
            put_u32(out, bytes.len() as u32);
            out.extend_from_slice(bytes);
        }
    }
    debug_assert_eq!(out.len() - start, 4 + body, "body_len must be exact");
}

/// Serializes one frame into a fresh buffer: `[body_len: u32 LE][tag: u8]
/// [fields...]`. Cold-path convenience over [`encode_frame_into`].
pub fn encode_frame(frame: &Frame) -> Vec<u8> {
    let mut out = Vec::with_capacity(4 + body_len(frame));
    encode_frame_into(&mut out, frame);
    out
}

/// Decodes one frame body (the bytes *after* the length prefix).
pub fn decode_body(body: &[u8]) -> Result<Frame, WireError> {
    let mut c = Cursor { buf: body, pos: 0 };
    let tag = c.take(1)?[0];
    let frame = match tag {
        TAG_HELLO => Frame::Hello { worker: c.u32()? },
        TAG_COST_QUERY => Frame::CostQuery {
            worker: c.u32()?,
            token: c.u64()?,
            level: c.u32()?,
            unit_start: c.u32()?,
            unit_end: c.u32()?,
            batch: c.u64()?,
            iteration: c.u64()?,
        },
        TAG_COST_REPLY => Frame::CostReply {
            token: c.u64()?,
            secs_bits: c.u64()?,
        },
        TAG_REQUEST => Frame::Request { worker: c.u32()? },
        TAG_GRANT => Frame::Grant {
            token: c.u64()?,
            level: c.u32()?,
            iteration: c.u64()?,
            batch: c.u64()?,
            unit_start: c.u32()?,
            unit_end: c.u32()?,
        },
        TAG_REPORT => Frame::Report {
            worker: c.u32()?,
            token: c.u64()?,
        },
        TAG_GRANT_BATCH => {
            let n = c.u32()? as usize;
            if n > c.remaining() / WIRE_GRANT_BYTES {
                return Err(WireError::BadCount {
                    what: "GrantBatch grants",
                    count: n,
                    remaining: c.remaining(),
                });
            }
            let mut grants = Vec::with_capacity(n);
            for _ in 0..n {
                grants.push(WireGrant {
                    token: c.u64()?,
                    level: c.u32()?,
                    iteration: c.u64()?,
                    batch: c.u64()?,
                    unit_start: c.u32()?,
                    unit_end: c.u32()?,
                });
            }
            Frame::GrantBatch { grants }
        }
        TAG_REPORT_BATCH => {
            let worker = c.u32()?;
            let n = c.u32()? as usize;
            if n > c.remaining() / 8 {
                return Err(WireError::BadCount {
                    what: "ReportBatch tokens",
                    count: n,
                    remaining: c.remaining(),
                });
            }
            let mut tokens = Vec::with_capacity(n);
            for _ in 0..n {
                tokens.push(c.u64()?);
            }
            Frame::ReportBatch { worker, tokens }
        }
        TAG_ITER => {
            let iteration = c.u64()?;
            let n = c.u32()? as usize;
            // Each pair is 8 bytes; refuse counts the body cannot possibly
            // hold before sizing the allocation off an untrusted value.
            if n > c.remaining() / 8 {
                return Err(WireError::BadCount {
                    what: "Iter schedule",
                    count: n,
                    remaining: c.remaining(),
                });
            }
            let mut schedule = Vec::with_capacity(n);
            for _ in 0..n {
                schedule.push((c.u32()?, c.u32()?));
            }
            Frame::Iter {
                iteration,
                schedule,
            }
        }
        TAG_HANG => Frame::Hang { nanos: c.u64()? },
        TAG_END => Frame::End,
        TAG_PARAMS => {
            let n = c.u32()? as usize;
            if n > c.remaining() {
                return Err(WireError::BadCount {
                    what: "Params payload",
                    count: n,
                    remaining: c.remaining(),
                });
            }
            Frame::Params {
                bytes: c.take(n)?.to_vec(),
            }
        }
        other => return Err(WireError::UnknownTag(other)),
    };
    c.done()?;
    Ok(frame)
}

/// Decodes one length-prefixed frame from a full byte buffer.
pub fn decode_frame(bytes: &[u8]) -> Result<Frame, WireError> {
    if bytes.len() < 4 {
        return Err(WireError::MissingPrefix);
    }
    let len = u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]);
    if len > MAX_FRAME {
        return Err(WireError::Oversized {
            len: u64::from(len),
            max: MAX_FRAME,
        });
    }
    if bytes.len() - 4 != len as usize {
        return Err(WireError::LengthMismatch {
            prefix: len as usize,
            actual: bytes.len() - 4,
        });
    }
    decode_body(&bytes[4..])
}

/// Queues one frame on a byte stream **without flushing** — the mid-batch
/// path. The caller owns the flush: pair with [`flush_frames`] once the batch
/// is complete so one flush (and, on a buffered writer, one syscall)
/// amortizes over every queued frame.
pub fn queue_frame(w: &mut impl Write, frame: &Frame) -> io::Result<()> {
    w.write_all(&encode_frame(frame))
}

/// Flushes a stream previously fed by [`queue_frame`], ending a batch.
pub fn flush_frames(w: &mut impl Write) -> io::Result<()> {
    w.flush()
}

/// Writes one frame to a byte stream and flushes it — the single-frame path
/// ([`queue_frame`] + [`flush_frames`]). Callers mid-batch must use
/// [`queue_frame`] instead so the batch flushes once.
pub fn write_frame(w: &mut impl Write, frame: &Frame) -> io::Result<()> {
    queue_frame(w, frame)?;
    flush_frames(w)
}

/// Reads one frame from a byte stream (blocking).
///
/// The length prefix is validated against [`MAX_FRAME`] *before* the body
/// buffer is allocated, so a corrupt or adversarial prefix cannot drive an
/// unbounded allocation. Stream failures surface as [`WireError::Io`];
/// `io::Result` callers can convert with `?` via `From<WireError>`.
pub fn read_frame(r: &mut impl Read) -> Result<Frame, WireError> {
    let mut prefix = [0u8; 4];
    r.read_exact(&mut prefix)?;
    let len = u32::from_le_bytes(prefix);
    if len > MAX_FRAME {
        return Err(WireError::Oversized {
            len: u64::from(len),
            max: MAX_FRAME,
        });
    }
    let mut body = vec![0u8; len as usize];
    r.read_exact(&mut body)?;
    decode_body(&body)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn sample_frames() -> Vec<Frame> {
        vec![
            Frame::Hello { worker: 3 },
            Frame::CostQuery {
                worker: 1,
                token: 42,
                level: 2,
                unit_start: 10,
                unit_end: 19,
                batch: 64,
                iteration: 7,
            },
            Frame::CostReply {
                token: 42,
                secs_bits: 0.125f64.to_bits(),
            },
            Frame::Request { worker: 0 },
            Frame::Grant {
                token: 9,
                level: 0,
                iteration: 1,
                batch: 16,
                unit_start: 0,
                unit_end: 10,
            },
            Frame::Report {
                worker: 5,
                token: 9,
            },
            Frame::GrantBatch {
                grants: vec![
                    WireGrant {
                        token: 11,
                        level: 1,
                        iteration: 2,
                        batch: 8,
                        unit_start: 3,
                        unit_end: 7,
                    },
                    WireGrant {
                        token: 12,
                        level: 0,
                        iteration: 2,
                        batch: 8,
                        unit_start: 0,
                        unit_end: 3,
                    },
                ],
            },
            Frame::ReportBatch {
                worker: 5,
                tokens: vec![11, 12, 13],
            },
            Frame::Iter {
                iteration: 2,
                schedule: vec![(0, 0), (0, 1), (1, 0)],
            },
            Frame::Hang { nanos: 1_000_000 },
            Frame::End,
            Frame::Params {
                bytes: vec![1, 2, 3, 4],
            },
        ]
    }

    #[test]
    fn every_frame_round_trips() {
        for f in sample_frames() {
            let bytes = encode_frame(&f);
            assert_eq!(decode_frame(&bytes).expect("round trip"), f, "{f:?}");
        }
    }

    #[test]
    fn stream_io_round_trips_back_to_back_frames() {
        let frames = sample_frames();
        let mut buf = Vec::new();
        for f in &frames {
            write_frame(&mut buf, f).expect("write");
        }
        let mut r = &buf[..];
        for f in &frames {
            assert_eq!(&read_frame(&mut r).expect("read"), f);
        }
        assert!(r.is_empty());
    }

    #[test]
    fn truncated_and_trailing_bytes_are_rejected() {
        let bytes = encode_frame(&Frame::Report {
            worker: 1,
            token: 2,
        });
        assert!(matches!(
            decode_frame(&bytes[..bytes.len() - 1]),
            Err(WireError::LengthMismatch { .. })
        ));
        let mut padded = bytes.clone();
        padded.push(0);
        assert!(matches!(
            decode_frame(&padded),
            Err(WireError::LengthMismatch { .. })
        ));
        assert_eq!(decode_body(&[99]), Err(WireError::UnknownTag(99)));
        assert!(matches!(
            decode_body(&bytes[4..bytes.len() - 1]),
            Err(WireError::Truncated { .. })
        ));
        let mut body_padded = bytes[4..].to_vec();
        body_padded.push(0);
        assert!(matches!(
            decode_body(&body_padded),
            Err(WireError::Trailing { extra: 1 })
        ));
        assert_eq!(decode_frame(&[1, 2]), Err(WireError::MissingPrefix));
    }

    #[test]
    fn oversized_length_prefix_is_rejected_before_allocation() {
        // A corrupt prefix claiming a 4 GiB-1 body must fail fast without
        // the reader ever attempting the allocation.
        let bytes = u32::MAX.to_le_bytes();
        let mut r = &bytes[..];
        assert_eq!(
            read_frame(&mut r),
            Err(WireError::Oversized {
                len: u64::from(u32::MAX),
                max: MAX_FRAME,
            })
        );
        let mut buf = bytes.to_vec();
        buf.push(0);
        assert!(matches!(
            decode_frame(&buf),
            Err(WireError::Oversized { .. })
        ));
    }

    #[test]
    fn impossible_embedded_counts_are_rejected_before_allocation() {
        // Iter claiming u32::MAX schedule pairs in an 8-byte-ish body.
        let mut body = vec![TAG_ITER];
        body.extend_from_slice(&7u64.to_le_bytes());
        body.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            decode_body(&body),
            Err(WireError::BadCount {
                what: "Iter schedule",
                ..
            })
        ));
        // Params claiming more payload bytes than the body holds.
        let mut body = vec![TAG_PARAMS];
        body.extend_from_slice(&u32::MAX.to_le_bytes());
        body.push(1);
        assert!(matches!(
            decode_body(&body),
            Err(WireError::BadCount {
                what: "Params payload",
                ..
            })
        ));
        // GrantBatch claiming u32::MAX records in a near-empty body.
        let mut body = vec![TAG_GRANT_BATCH];
        body.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            decode_body(&body),
            Err(WireError::BadCount {
                what: "GrantBatch grants",
                ..
            })
        ));
        // ReportBatch claiming more token ids than bytes remain.
        let mut body = vec![TAG_REPORT_BATCH];
        body.extend_from_slice(&3u32.to_le_bytes());
        body.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            decode_body(&body),
            Err(WireError::BadCount {
                what: "ReportBatch tokens",
                ..
            })
        ));
    }

    #[test]
    fn stream_failures_surface_as_io_kind() {
        let mut empty: &[u8] = &[];
        assert_eq!(
            read_frame(&mut empty),
            Err(WireError::Io(io::ErrorKind::UnexpectedEof))
        );
        let err = io::Error::from(WireError::Io(io::ErrorKind::ConnectionReset));
        assert_eq!(err.kind(), io::ErrorKind::ConnectionReset);
        let err = io::Error::from(WireError::UnknownTag(42));
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn cost_reply_is_bit_exact_for_awkward_floats() {
        for secs in [0.1, 1e-12, 12345.678901234567, f64::MIN_POSITIVE] {
            let f = Frame::CostReply {
                token: 1,
                secs_bits: secs.to_bits(),
            };
            match decode_frame(&encode_frame(&f)).expect("round trip") {
                Frame::CostReply { secs_bits, .. } => {
                    assert_eq!(f64::from_bits(secs_bits).to_bits(), secs.to_bits());
                }
                other => panic!("wrong frame {other:?}"),
            }
        }
    }

    /// A reader that hands out at most `chunk` bytes per `read` call — the
    /// shape of a TCP stream delivering a frame across several segments.
    struct Chunked<'a> {
        data: &'a [u8],
        chunk: usize,
    }

    impl Read for Chunked<'_> {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            let n = self.chunk.min(self.data.len()).min(buf.len());
            buf[..n].copy_from_slice(&self.data[..n]);
            self.data = &self.data[n..];
            Ok(n)
        }
    }

    #[test]
    fn frames_survive_arbitrarily_segmented_streams() {
        // Regression for the TCP short-read case: `read_frame` must
        // reassemble a frame delivered one byte at a time, and a stream that
        // dies mid-body must surface as an EOF error, never a panic or a
        // mis-framed success.
        let frames = sample_frames();
        let mut buf = Vec::new();
        for f in &frames {
            write_frame(&mut buf, f).expect("write");
        }
        for chunk in [1, 2, 3, 7] {
            let mut r = Chunked { data: &buf, chunk };
            for f in &frames {
                assert_eq!(&read_frame(&mut r).expect("chunked read"), f);
            }
        }
        let cut = encode_frame(&Frame::Iter {
            iteration: 3,
            schedule: vec![(0, 0), (1, 1)],
        });
        for short in 1..cut.len() {
            let mut r = Chunked {
                data: &cut[..short],
                chunk: 1,
            };
            assert_eq!(
                read_frame(&mut r),
                Err(WireError::Io(io::ErrorKind::UnexpectedEof)),
                "short read at {short}/{} bytes",
                cut.len()
            );
        }
    }

    /// An arbitrary `WireGrant` record.
    fn arb_wire_grant() -> impl Strategy<Value = WireGrant> {
        (
            any::<u64>(),
            any::<u32>(),
            any::<u64>(),
            any::<u64>(),
            any::<u32>(),
            any::<u32>(),
        )
            .prop_map(
                |(token, level, iteration, batch, unit_start, unit_end)| WireGrant {
                    token,
                    level,
                    iteration,
                    batch,
                    unit_start,
                    unit_end,
                },
            )
    }

    /// Every `Frame` variant, with arbitrary field values.
    fn arb_frame() -> impl Strategy<Value = Frame> {
        prop_oneof![
            any::<u32>().prop_map(|worker| Frame::Hello { worker }),
            (
                any::<u32>(),
                any::<u64>(),
                any::<u32>(),
                any::<u32>(),
                any::<u32>(),
                any::<u64>(),
                any::<u64>(),
            )
                .prop_map(
                    |(worker, token, level, unit_start, unit_end, batch, iteration)| {
                        Frame::CostQuery {
                            worker,
                            token,
                            level,
                            unit_start,
                            unit_end,
                            batch,
                            iteration,
                        }
                    }
                ),
            (any::<u64>(), any::<u64>())
                .prop_map(|(token, secs_bits)| Frame::CostReply { token, secs_bits }),
            any::<u32>().prop_map(|worker| Frame::Request { worker }),
            (
                any::<u64>(),
                any::<u32>(),
                any::<u64>(),
                any::<u64>(),
                any::<u32>(),
                any::<u32>(),
            )
                .prop_map(|(token, level, iteration, batch, unit_start, unit_end)| {
                    Frame::Grant {
                        token,
                        level,
                        iteration,
                        batch,
                        unit_start,
                        unit_end,
                    }
                }),
            (any::<u32>(), any::<u64>())
                .prop_map(|(worker, token)| Frame::Report { worker, token }),
            prop::collection::vec(arb_wire_grant(), 0..32)
                .prop_map(|grants| Frame::GrantBatch { grants }),
            (any::<u32>(), prop::collection::vec(any::<u64>(), 0..64))
                .prop_map(|(worker, tokens)| Frame::ReportBatch { worker, tokens }),
            (
                any::<u64>(),
                prop::collection::vec((any::<u32>(), any::<u32>()), 0..64),
            )
                .prop_map(|(iteration, schedule)| Frame::Iter {
                    iteration,
                    schedule,
                }),
            any::<u64>().prop_map(|nanos| Frame::Hang { nanos }),
            Just(Frame::End),
            prop::collection::vec(any::<u8>(), 0..256).prop_map(|bytes| Frame::Params { bytes }),
        ]
    }

    proptest! {
        #[test]
        fn decode_frame_never_panics_on_arbitrary_bytes(
            bytes in prop::collection::vec(any::<u8>(), 0..512),
        ) {
            // Any outcome is fine — Ok for the rare byte string that happens
            // to be a valid frame, a structured WireError otherwise — but the
            // decoder must never panic or overflow on attacker-shaped input.
            let _ = decode_frame(&bytes);
            let _ = decode_body(&bytes);
            let mut r = &bytes[..];
            let _ = read_frame(&mut r);
        }

        #[test]
        fn every_variant_round_trips_bit_exactly(f in arb_frame()) {
            prop_assert_eq!(decode_frame(&encode_frame(&f)).unwrap(), f.clone());
            // And through the stream path, including a 1-byte-chunk reader.
            let mut buf = Vec::new();
            write_frame(&mut buf, &f).unwrap();
            let mut r = Chunked { data: &buf, chunk: 1 };
            prop_assert_eq!(read_frame(&mut r).unwrap(), f);
        }

        #[test]
        fn iter_frames_round_trip(
            iteration in 0u64..1000,
            pairs in prop::collection::vec((0u32..8, 0u32..64), 0..40),
        ) {
            let f = Frame::Iter { iteration, schedule: pairs.clone() };
            prop_assert_eq!(decode_frame(&encode_frame(&f)).unwrap(), f);
        }

        #[test]
        fn body_len_is_exact_for_every_variant(f in arb_frame()) {
            // The hot-path encoder pre-reserves body_len bytes; exactness is
            // what guarantees batched frames never reallocate mid-encode.
            let encoded = encode_frame(&f);
            prop_assert_eq!(encoded.len(), 4 + body_len(&f));
            // And appending into a pre-reserved buffer does not grow it.
            let mut buf = Vec::with_capacity(4 + body_len(&f));
            let cap = buf.capacity();
            encode_frame_into(&mut buf, &f);
            prop_assert_eq!(buf.capacity(), cap, "encode must not reallocate");
            prop_assert_eq!(buf, encoded);
        }

        #[test]
        fn grant_batch_frames_round_trip_bit_exactly(
            grants in prop::collection::vec(arb_wire_grant(), 0..48),
        ) {
            let f = Frame::GrantBatch { grants };
            prop_assert_eq!(decode_frame(&encode_frame(&f)).unwrap(), f.clone());
            let mut buf = Vec::new();
            write_frame(&mut buf, &f).unwrap();
            let mut r = Chunked { data: &buf, chunk: 1 };
            prop_assert_eq!(read_frame(&mut r).unwrap(), f);
        }

        #[test]
        fn report_batch_frames_round_trip_bit_exactly(
            worker in any::<u32>(),
            tokens in prop::collection::vec(any::<u64>(), 0..64),
        ) {
            let f = Frame::ReportBatch { worker, tokens };
            prop_assert_eq!(decode_frame(&encode_frame(&f)).unwrap(), f);
        }

        #[test]
        fn grant_frames_round_trip(
            token in 0u64..u64::MAX,
            level in 0u32..16,
            iteration in 0u64..u64::MAX,
            batch in 0u64..u64::MAX,
            us in 0u32..u32::MAX,
            ue in 0u32..u32::MAX,
        ) {
            let f = Frame::Grant { token, level, iteration, batch, unit_start: us, unit_end: ue };
            prop_assert_eq!(decode_frame(&encode_frame(&f)).unwrap(), f);
        }
    }
}
