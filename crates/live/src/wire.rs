//! The wire protocol: length-prefixed binary frames.
//!
//! Every message between the live Token Server and a worker — on *both*
//! transports, including the in-process channel one — is one [`Frame`],
//! serialized by [`encode_frame`] as a little-endian `u32` body length
//! followed by a one-byte frame tag and the fields in declaration order.
//! Hand-rolled (std-only, no serde): the frame set is small, fixed, and the
//! explicit codec is itself under test (round-trip property tests below).
//!
//! `f64` values (compute-span seconds) travel as raw IEEE-754 bits so a value
//! crosses the wire without any formatting round-trip — bit-exactness of the
//! virtual clock depends on it.

use std::io::{self, Read, Write};

/// Maximum accepted frame body, a defensive bound against corrupt length
/// prefixes (the largest legitimate frame is a `Params` payload of a few KB).
const MAX_FRAME: u32 = 16 * 1024 * 1024;

/// One protocol message.
#[derive(Clone, PartialEq, Debug)]
pub enum Frame {
    /// Connection handshake: identifies which worker owns the link.
    Hello {
        /// Worker index.
        worker: u32,
    },
    /// Virtual-clock mode, server → worker: price this compute span.
    CostQuery {
        /// Worker the token was granted to.
        worker: u32,
        /// Token id (echoed in the reply for correlation).
        token: u64,
        /// Sub-model level.
        level: u32,
        /// First model unit (inclusive).
        unit_start: u32,
        /// Last model unit (exclusive).
        unit_end: u32,
        /// Samples the token covers.
        batch: u64,
        /// Iteration the token belongs to.
        iteration: u64,
    },
    /// Virtual-clock mode, worker → server: the span costs these seconds.
    CostReply {
        /// Token id being answered.
        token: u64,
        /// `f64::to_bits` of the span seconds (bit-exact transfer).
        secs_bits: u64,
    },
    /// Real-clock mode, worker → server: the worker is idle and pulls work.
    Request {
        /// Requesting worker.
        worker: u32,
    },
    /// Real-clock mode, server → worker: train this token.
    Grant {
        /// Token id.
        token: u64,
        /// Sub-model level.
        level: u32,
        /// Iteration.
        iteration: u64,
        /// Samples.
        batch: u64,
        /// First model unit (inclusive).
        unit_start: u32,
        /// Last model unit (exclusive).
        unit_end: u32,
    },
    /// Real-clock mode, worker → server: token trained, gradient ready.
    Report {
        /// Reporting worker.
        worker: u32,
        /// Completed token id.
        token: u64,
    },
    /// Server → worker: one committed iteration's token schedule, as
    /// `(level, completion_index)` pairs — the worker applies it to its
    /// `fela-engine` model replica.
    Iter {
        /// Iteration number.
        iteration: u64,
        /// Completion-ordered `(level, index)` schedule.
        schedule: Vec<(u32, u32)>,
    },
    /// Server → worker fault injection: freeze for this long before
    /// processing anything else (drives real lease expiry).
    Hang {
        /// Real nanoseconds to sleep.
        nanos: u64,
    },
    /// Server → worker: run over; reply with `Params` and exit.
    End,
    /// Worker → server: the replica's final parameters, flattened LE `f32`s.
    Params {
        /// Raw little-endian parameter bytes.
        bytes: Vec<u8>,
    },
}

/// Decode failure: the peer sent bytes that are not a valid frame.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct WireError(pub String);

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "wire protocol error: {}", self.0)
    }
}

impl std::error::Error for WireError {}

impl From<WireError> for io::Error {
    fn from(e: WireError) -> io::Error {
        io::Error::new(io::ErrorKind::InvalidData, e)
    }
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.pos + n > self.buf.len() {
            return Err(WireError(format!(
                "frame truncated: wanted {n} bytes at offset {}, body is {}",
                self.pos,
                self.buf.len()
            )));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    fn done(&self) -> Result<(), WireError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(WireError(format!(
                "{} trailing byte(s) after frame body",
                self.buf.len() - self.pos
            )))
        }
    }
}

const TAG_HELLO: u8 = 1;
const TAG_COST_QUERY: u8 = 2;
const TAG_COST_REPLY: u8 = 3;
const TAG_REQUEST: u8 = 4;
const TAG_GRANT: u8 = 5;
const TAG_REPORT: u8 = 6;
const TAG_ITER: u8 = 7;
const TAG_HANG: u8 = 8;
const TAG_END: u8 = 9;
const TAG_PARAMS: u8 = 10;

/// Serializes one frame: `[body_len: u32 LE][tag: u8][fields...]`.
pub fn encode_frame(frame: &Frame) -> Vec<u8> {
    let mut body = Vec::with_capacity(32);
    match frame {
        Frame::Hello { worker } => {
            body.push(TAG_HELLO);
            put_u32(&mut body, *worker);
        }
        Frame::CostQuery {
            worker,
            token,
            level,
            unit_start,
            unit_end,
            batch,
            iteration,
        } => {
            body.push(TAG_COST_QUERY);
            put_u32(&mut body, *worker);
            put_u64(&mut body, *token);
            put_u32(&mut body, *level);
            put_u32(&mut body, *unit_start);
            put_u32(&mut body, *unit_end);
            put_u64(&mut body, *batch);
            put_u64(&mut body, *iteration);
        }
        Frame::CostReply { token, secs_bits } => {
            body.push(TAG_COST_REPLY);
            put_u64(&mut body, *token);
            put_u64(&mut body, *secs_bits);
        }
        Frame::Request { worker } => {
            body.push(TAG_REQUEST);
            put_u32(&mut body, *worker);
        }
        Frame::Grant {
            token,
            level,
            iteration,
            batch,
            unit_start,
            unit_end,
        } => {
            body.push(TAG_GRANT);
            put_u64(&mut body, *token);
            put_u32(&mut body, *level);
            put_u64(&mut body, *iteration);
            put_u64(&mut body, *batch);
            put_u32(&mut body, *unit_start);
            put_u32(&mut body, *unit_end);
        }
        Frame::Report { worker, token } => {
            body.push(TAG_REPORT);
            put_u32(&mut body, *worker);
            put_u64(&mut body, *token);
        }
        Frame::Iter {
            iteration,
            schedule,
        } => {
            body.push(TAG_ITER);
            put_u64(&mut body, *iteration);
            put_u32(&mut body, schedule.len() as u32);
            for &(level, idx) in schedule {
                put_u32(&mut body, level);
                put_u32(&mut body, idx);
            }
        }
        Frame::Hang { nanos } => {
            body.push(TAG_HANG);
            put_u64(&mut body, *nanos);
        }
        Frame::End => body.push(TAG_END),
        Frame::Params { bytes } => {
            body.push(TAG_PARAMS);
            put_u32(&mut body, bytes.len() as u32);
            body.extend_from_slice(bytes);
        }
    }
    let mut out = Vec::with_capacity(4 + body.len());
    put_u32(&mut out, body.len() as u32);
    out.extend_from_slice(&body);
    out
}

/// Decodes one frame body (the bytes *after* the length prefix).
pub fn decode_body(body: &[u8]) -> Result<Frame, WireError> {
    let mut c = Cursor { buf: body, pos: 0 };
    let tag = c.take(1)?[0];
    let frame = match tag {
        TAG_HELLO => Frame::Hello { worker: c.u32()? },
        TAG_COST_QUERY => Frame::CostQuery {
            worker: c.u32()?,
            token: c.u64()?,
            level: c.u32()?,
            unit_start: c.u32()?,
            unit_end: c.u32()?,
            batch: c.u64()?,
            iteration: c.u64()?,
        },
        TAG_COST_REPLY => Frame::CostReply {
            token: c.u64()?,
            secs_bits: c.u64()?,
        },
        TAG_REQUEST => Frame::Request { worker: c.u32()? },
        TAG_GRANT => Frame::Grant {
            token: c.u64()?,
            level: c.u32()?,
            iteration: c.u64()?,
            batch: c.u64()?,
            unit_start: c.u32()?,
            unit_end: c.u32()?,
        },
        TAG_REPORT => Frame::Report {
            worker: c.u32()?,
            token: c.u64()?,
        },
        TAG_ITER => {
            let iteration = c.u64()?;
            let n = c.u32()? as usize;
            let mut schedule = Vec::with_capacity(n);
            for _ in 0..n {
                schedule.push((c.u32()?, c.u32()?));
            }
            Frame::Iter {
                iteration,
                schedule,
            }
        }
        TAG_HANG => Frame::Hang { nanos: c.u64()? },
        TAG_END => Frame::End,
        TAG_PARAMS => {
            let n = c.u32()? as usize;
            Frame::Params {
                bytes: c.take(n)?.to_vec(),
            }
        }
        other => return Err(WireError(format!("unknown frame tag {other}"))),
    };
    c.done()?;
    Ok(frame)
}

/// Decodes one length-prefixed frame from a full byte buffer.
pub fn decode_frame(bytes: &[u8]) -> Result<Frame, WireError> {
    if bytes.len() < 4 {
        return Err(WireError("missing length prefix".into()));
    }
    let len = u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]) as usize;
    if bytes.len() != 4 + len {
        return Err(WireError(format!(
            "length prefix {len} disagrees with buffer size {}",
            bytes.len() - 4
        )));
    }
    decode_body(&bytes[4..])
}

/// Writes one frame to a byte stream.
pub fn write_frame(w: &mut impl Write, frame: &Frame) -> io::Result<()> {
    w.write_all(&encode_frame(frame))?;
    w.flush()
}

/// Reads one frame from a byte stream (blocking).
pub fn read_frame(r: &mut impl Read) -> io::Result<Frame> {
    let mut prefix = [0u8; 4];
    r.read_exact(&mut prefix)?;
    let len = u32::from_le_bytes(prefix);
    if len > MAX_FRAME {
        return Err(WireError(format!("frame of {len} bytes exceeds the protocol bound")).into());
    }
    let mut body = vec![0u8; len as usize];
    r.read_exact(&mut body)?;
    Ok(decode_body(&body)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn sample_frames() -> Vec<Frame> {
        vec![
            Frame::Hello { worker: 3 },
            Frame::CostQuery {
                worker: 1,
                token: 42,
                level: 2,
                unit_start: 10,
                unit_end: 19,
                batch: 64,
                iteration: 7,
            },
            Frame::CostReply {
                token: 42,
                secs_bits: 0.125f64.to_bits(),
            },
            Frame::Request { worker: 0 },
            Frame::Grant {
                token: 9,
                level: 0,
                iteration: 1,
                batch: 16,
                unit_start: 0,
                unit_end: 10,
            },
            Frame::Report {
                worker: 5,
                token: 9,
            },
            Frame::Iter {
                iteration: 2,
                schedule: vec![(0, 0), (0, 1), (1, 0)],
            },
            Frame::Hang { nanos: 1_000_000 },
            Frame::End,
            Frame::Params {
                bytes: vec![1, 2, 3, 4],
            },
        ]
    }

    #[test]
    fn every_frame_round_trips() {
        for f in sample_frames() {
            let bytes = encode_frame(&f);
            assert_eq!(decode_frame(&bytes).expect("round trip"), f, "{f:?}");
        }
    }

    #[test]
    fn stream_io_round_trips_back_to_back_frames() {
        let frames = sample_frames();
        let mut buf = Vec::new();
        for f in &frames {
            write_frame(&mut buf, f).expect("write");
        }
        let mut r = &buf[..];
        for f in &frames {
            assert_eq!(&read_frame(&mut r).expect("read"), f);
        }
        assert!(r.is_empty());
    }

    #[test]
    fn truncated_and_trailing_bytes_are_rejected() {
        let bytes = encode_frame(&Frame::Report {
            worker: 1,
            token: 2,
        });
        assert!(decode_frame(&bytes[..bytes.len() - 1]).is_err());
        let mut padded = bytes.clone();
        padded.push(0);
        assert!(decode_frame(&padded).is_err());
        assert!(decode_body(&[99]).is_err(), "unknown tag must fail");
    }

    #[test]
    fn cost_reply_is_bit_exact_for_awkward_floats() {
        for secs in [0.1, 1e-12, 12345.678901234567, f64::MIN_POSITIVE] {
            let f = Frame::CostReply {
                token: 1,
                secs_bits: secs.to_bits(),
            };
            match decode_frame(&encode_frame(&f)).expect("round trip") {
                Frame::CostReply { secs_bits, .. } => {
                    assert_eq!(f64::from_bits(secs_bits).to_bits(), secs.to_bits());
                }
                other => panic!("wrong frame {other:?}"),
            }
        }
    }

    proptest! {
        #[test]
        fn iter_frames_round_trip(
            iteration in 0u64..1000,
            pairs in prop::collection::vec((0u32..8, 0u32..64), 0..40),
        ) {
            let f = Frame::Iter { iteration, schedule: pairs.clone() };
            prop_assert_eq!(decode_frame(&encode_frame(&f)).unwrap(), f);
        }

        #[test]
        fn grant_frames_round_trip(
            token in 0u64..u64::MAX,
            level in 0u32..16,
            iteration in 0u64..u64::MAX,
            batch in 0u64..u64::MAX,
            us in 0u32..u32::MAX,
            ue in 0u32..u32::MAX,
        ) {
            let f = Frame::Grant { token, level, iteration, batch, unit_start: us, unit_end: ue };
            prop_assert_eq!(decode_frame(&encode_frame(&f)).unwrap(), f);
        }
    }
}
