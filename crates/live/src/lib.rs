//! # fela-live — a real concurrent token-pull runtime
//!
//! Everything else in this workspace models Fela's control plane inside a
//! single-threaded discrete-event simulator. This crate runs it **for real**:
//! the Token Server and the workers are separate OS threads exchanging
//! length-prefixed binary frames ([`wire`]) over a pluggable [`Transport`] —
//! in-process channels or `std::net` TCP loopback (std only, no external
//! dependencies).
//!
//! Two clock modes:
//!
//! * **Virtual** ([`run_virtual`]) — the server side is the *unmodified*
//!   [`fela_core::FelaRuntime`] event loop; only the compute-span oracle is
//!   swapped for a fleet of live worker threads that price each span over the
//!   wire ([`fela_core::ComputeBackend`]). Traces and reports are
//!   **byte-identical** to the simulator, so `fela-check`'s race detector and
//!   recovery verifier run unchanged on live output. Deterministic.
//! * **Real** ([`run_real`]) — the server drives [`fela_core::TokenServer`]
//!   against the wall clock: workers pull tokens, sleep the modeled span
//!   scaled by `time_scale`, and report; leases, crash/restart injection and
//!   hang faults run off real timers. Nondeterministic interleavings — but
//!   final model parameters are still bit-exact (see below).
//!
//! In both modes every worker trains a real [`fela_engine`] model replica:
//! the server relabels the run's accepted completions into per-iteration
//! token schedules ([`replay`]) and broadcasts them; the executor's canonical
//! per-level gradient reduction makes the result schedule-invariant, so all
//! replicas — and a local reference replay — agree bit-for-bit.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod real;
pub mod replay;
pub mod sched;
pub mod transport;
pub mod virt;
pub mod wire;
mod worker;

pub use real::{run_real, run_real_durable, run_real_with, RealOptions, RealOutcome};
pub use replay::{
    engine_setup, flatten_params, replay_schedules, replay_trace, schedules_from_trace,
};
pub use sched::{
    pass, Endpoint, GateSched, PassSched, RecordingSched, Sched, SharedSched, SyncEvent,
};
pub use transport::{
    transport_by_name, ChanTransport, Link, LinkRx, LinkTx, TcpTransport, Transport,
};
pub use virt::{plan_for, run_virtual, run_virtual_with, LiveOutcome};
pub use wire::{Frame, WireError, WireGrant};
pub use worker::{spawn_worker, WorkerSpec};
