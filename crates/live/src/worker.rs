//! The live worker: one OS thread per worker node.
//!
//! A worker owns its own [`Scenario`] clone (the analytic compute model it
//! prices spans with) and its own engine replica (the model it actually
//! trains). It is a pure token-puller: everything it does is a reaction to a
//! frame from the Token Server.
//!
//! * `CostQuery` — price a compute span with the worker's *own* copy of the
//!   analytic model and reply bit-exactly (`f64::to_bits`). In virtual-clock
//!   mode this is the only thing that feeds the server's event loop, which is
//!   why live runs are conformant: the server never consults its local model.
//! * `Grant` — "compute" the token by sleeping the span scaled by
//!   `time_scale` (0 in virtual mode: pure control-plane), then `Report`.
//! * `Iter` — apply one iteration's relabeled schedule to the engine replica.
//! * `Hang` — injected fault: freeze for the given real nanos, keeping state.
//! * `End` — reply with the replica's flattened parameters and exit.
//!
//! A failed receive means the server dropped the link (crash injection or
//! shutdown): the thread exits silently, exactly like a killed process.

use std::thread::{self, JoinHandle};
use std::time::Duration;

use fela_cluster::Scenario;
use fela_core::TokenPlan;

use crate::replay::{engine_setup, flatten_params};
use crate::sched::{Endpoint, SharedSched};
use crate::transport::Link;
use crate::wire::Frame;

/// Everything a worker thread needs to start.
pub struct WorkerSpec {
    /// Worker index (node id).
    pub index: usize,
    /// The worker's own copy of the workload (compute model, straggler spec).
    pub scenario: Scenario,
    /// Token plan, for sizing the engine replica.
    pub plan: TokenPlan,
    /// Real seconds slept per modeled second (0.0 = virtual clock).
    pub time_scale: f64,
    /// Send an initial `Request` on startup (real-clock pull mode). Virtual
    /// mode leaves this off: the simulated event loop injects requests.
    pub pull: bool,
    /// Scheduler the worker's link yields to at every frame send/receive
    /// ([`crate::sched::pass`] for the uninstrumented default).
    pub sched: SharedSched,
}

/// Base compute seconds for a span, priced by the worker's own scenario copy.
/// Exactly what [`fela_core::LocalCompute`] would return — straggler delays
/// are NOT included (the simulator applies them as a start-time floor, and the
/// real-clock path adds them at grant time).
fn span_secs(spec: &WorkerSpec, unit_start: usize, unit_end: usize, batch: u64) -> f64 {
    spec.scenario.cluster.compute_secs(
        &spec.scenario.model,
        unit_start,
        unit_end,
        batch,
        spec.index,
    )
}

fn scaled_sleep(secs: f64, time_scale: f64) {
    let real = secs * time_scale;
    if real > 0.0 {
        thread::sleep(Duration::from_secs_f64(real));
    }
}

/// Spawns the worker thread. It runs until `End` or until its link dies.
pub fn spawn_worker(spec: WorkerSpec, mut link: Link) -> JoinHandle<()> {
    link.instrument(spec.sched.clone(), Endpoint::Worker, spec.index);
    thread::Builder::new()
        .name(format!("fela-worker-{}", spec.index))
        .spawn(move || {
            let mut setup = engine_setup(&spec.plan);
            // Memoized span pricing: the analytic model walk repeats for
            // every token of a level, and the batched hot path prices whole
            // grant batches at once.
            let mut spans: std::collections::HashMap<(u32, u32, u64), f64> =
                std::collections::HashMap::new();
            let mut priced = |spec: &WorkerSpec, us: u32, ue: u32, batch: u64, iteration: u64| {
                let base = *spans
                    .entry((us, ue, batch))
                    .or_insert_with(|| span_secs(spec, us as usize, ue as usize, batch));
                base + spec
                    .scenario
                    .straggler
                    .delay_for(iteration, spec.index, spec.scenario.cluster.nodes)
                    .as_secs_f64()
            };
            if spec.pull
                && link
                    .send(&Frame::Request {
                        worker: spec.index as u32,
                    })
                    .is_err()
            {
                return;
            }
            loop {
                let frame = match link.recv() {
                    Ok(frame) => frame,
                    Err(_) => return, // server dropped us: die like a killed process
                };
                match frame {
                    Frame::CostQuery {
                        token,
                        unit_start,
                        unit_end,
                        batch,
                        ..
                    } => {
                        let secs = span_secs(&spec, unit_start as usize, unit_end as usize, batch);
                        if link
                            .send(&Frame::CostReply {
                                token,
                                secs_bits: secs.to_bits(),
                            })
                            .is_err()
                        {
                            return;
                        }
                    }
                    Frame::Grant {
                        token,
                        iteration,
                        batch,
                        unit_start,
                        unit_end,
                        ..
                    } => {
                        let secs = priced(&spec, unit_start, unit_end, batch, iteration);
                        scaled_sleep(secs, spec.time_scale);
                        if link
                            .send(&Frame::Report {
                                worker: spec.index as u32,
                                token,
                            })
                            .is_err()
                        {
                            return;
                        }
                    }
                    Frame::GrantBatch { grants } => {
                        // The whole pipelined batch "computes" as one coalesced
                        // sleep, then reports with a single frame — the
                        // worker-side half of the batched hot path.
                        let secs: f64 = grants
                            .iter()
                            .map(|g| priced(&spec, g.unit_start, g.unit_end, g.batch, g.iteration))
                            .sum();
                        scaled_sleep(secs, spec.time_scale);
                        let reply = match grants.as_slice() {
                            [only] => Frame::Report {
                                worker: spec.index as u32,
                                token: only.token,
                            },
                            _ => Frame::ReportBatch {
                                worker: spec.index as u32,
                                tokens: grants.iter().map(|g| g.token).collect(),
                            },
                        };
                        if link.send(&reply).is_err() {
                            return;
                        }
                    }
                    Frame::Iter { schedule, .. } => {
                        let schedule: Vec<(usize, usize)> = schedule
                            .iter()
                            .map(|&(l, j)| (l as usize, j as usize))
                            .collect();
                        setup.step(&schedule);
                    }
                    Frame::Hang { nanos } => {
                        thread::sleep(Duration::from_nanos(nanos));
                    }
                    Frame::End => {
                        let _ = link.send(&Frame::Params {
                            bytes: flatten_params(&setup.net),
                        });
                        return;
                    }
                    other => panic!(
                        "worker {}: unexpected frame from server: {other:?}",
                        spec.index
                    ),
                }
            }
        })
        .unwrap_or_else(|e| panic!("spawn worker thread: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::{ChanTransport, Transport};
    use fela_model::zoo;

    fn test_spec(index: usize) -> WorkerSpec {
        let scenario = Scenario::paper(zoo::alexnet(), 128);
        let runtime = fela_core::FelaRuntime::new(fela_core::FelaConfig::new(1));
        let partition = runtime.partition_for(&scenario);
        let config = fela_core::FelaConfig::new(partition.len());
        let plan = fela_core::TokenPlan::build(&partition, &config, 128, 8).expect("plan");
        WorkerSpec {
            index,
            scenario,
            plan,
            time_scale: 0.0,
            pull: false,
            sched: crate::sched::pass(),
        }
    }

    #[test]
    fn worker_answers_cost_queries_bit_exactly() {
        let spec = test_spec(0);
        let expect = spec
            .scenario
            .cluster
            .compute_secs(&spec.scenario.model, 0, 3, 16, 0);
        let mut t = ChanTransport;
        let (mut servers, workers) = t.establish(1).expect("establish");
        let handle = spawn_worker(spec, workers.into_iter().next().expect("one"));
        servers[0]
            .send(&Frame::CostQuery {
                worker: 0,
                token: 7,
                level: 0,
                unit_start: 0,
                unit_end: 3,
                batch: 16,
                iteration: 0,
            })
            .expect("send");
        match servers[0].recv().expect("reply") {
            Frame::CostReply { token, secs_bits } => {
                assert_eq!(token, 7);
                assert_eq!(secs_bits, expect.to_bits());
            }
            other => panic!("unexpected {other:?}"),
        }
        servers[0].send(&Frame::End).expect("send end");
        match servers[0].recv().expect("params") {
            Frame::Params { bytes } => assert!(!bytes.is_empty()),
            other => panic!("unexpected {other:?}"),
        }
        handle.join().expect("worker exits cleanly");
    }

    #[test]
    fn grant_batch_reports_every_token_with_one_frame() {
        use crate::wire::WireGrant;
        let spec = test_spec(1);
        let mut t = ChanTransport;
        let (mut servers, workers) = t.establish(1).expect("establish");
        let handle = spawn_worker(spec, workers.into_iter().next().expect("one"));
        let grant = |token| WireGrant {
            token,
            level: 0,
            iteration: 0,
            batch: 16,
            unit_start: 0,
            unit_end: 2,
        };
        servers[0]
            .send(&Frame::GrantBatch {
                grants: vec![grant(4), grant(5), grant(6)],
            })
            .expect("send batch");
        match servers[0].recv().expect("report batch") {
            Frame::ReportBatch { worker, tokens } => {
                assert_eq!(worker, 1);
                assert_eq!(tokens, vec![4, 5, 6]);
            }
            other => panic!("unexpected {other:?}"),
        }
        // A batch of one degenerates to the plain Report frame.
        servers[0]
            .send(&Frame::GrantBatch {
                grants: vec![grant(7)],
            })
            .expect("send singleton batch");
        match servers[0].recv().expect("report") {
            Frame::Report { worker, token } => assert_eq!((worker, token), (1, 7)),
            other => panic!("unexpected {other:?}"),
        }
        servers[0].send(&Frame::End).expect("send end");
        assert!(matches!(servers[0].recv(), Ok(Frame::Params { .. })));
        handle.join().expect("worker exits cleanly");
    }

    #[test]
    fn worker_dies_when_the_link_drops() {
        let spec = test_spec(0);
        let mut t = ChanTransport;
        let (servers, workers) = t.establish(1).expect("establish");
        let handle = spawn_worker(spec, workers.into_iter().next().expect("one"));
        drop(servers);
        handle.join().expect("worker exits, not panics");
    }

    #[test]
    fn grant_report_round_trip_applies_no_engine_state() {
        let spec = test_spec(2);
        let mut t = ChanTransport;
        let (mut servers, workers) = t.establish(1).expect("establish");
        let handle = spawn_worker(spec, workers.into_iter().next().expect("one"));
        servers[0]
            .send(&Frame::Grant {
                token: 3,
                level: 0,
                iteration: 0,
                batch: 16,
                unit_start: 0,
                unit_end: 2,
            })
            .expect("send grant");
        match servers[0].recv().expect("report") {
            Frame::Report { worker, token } => assert_eq!((worker, token), (2, 3)),
            other => panic!("unexpected {other:?}"),
        }
        servers[0].send(&Frame::End).expect("send end");
        let params = match servers[0].recv().expect("params") {
            Frame::Params { bytes } => bytes,
            other => panic!("unexpected {other:?}"),
        };
        // No Iter frames were sent, so the replica still holds seed weights.
        let fresh = crate::replay::engine_setup(&test_spec(2).plan);
        assert_eq!(params, crate::replay::flatten_params(&fresh.net));
        handle.join().expect("worker exits cleanly");
    }
}
