//! Virtual-clock live runs: real threads, real wire protocol, simulated time.
//!
//! The Token Server side *is* the simulator: [`fela_core::FelaRuntime`] runs
//! its full discrete-event loop (grants, fetches, syncs, straggler floors,
//! leases, faults), but every compute span is priced by shipping a
//! `CostQuery` frame to the owning worker thread and blocking on its
//! bit-exact `CostReply` ([`LiveBackend`]). Because the event machinery is
//! shared code and the workers evaluate the same pure analytic model on their
//! own [`Scenario`] clones, the emitted trace and report are **byte-identical**
//! to `FelaRuntime::run_traced` — that is the conformance argument, and the
//! conformance tests byte-diff both.
//!
//! After the simulated run drains, the server extracts one engine schedule
//! per iteration from the trace (completion-order relabeling, see
//! [`crate::replay`]), broadcasts them as `Iter` frames, and collects every
//! worker's final parameters, asserting they agree bit-for-bit with a local
//! reference replay.

use std::io;

use fela_cluster::Scenario;
use fela_core::{ComputeBackend, ComputeRequest, FelaConfig, FelaRuntime, TokenPlan};
use fela_metrics::RunReport;
use fela_sim::Trace;

use crate::replay::{replay_schedules, schedules_from_trace};
use crate::sched::{pass, Endpoint, SharedSched};
use crate::transport::{Link, Transport};
use crate::wire::Frame;
use crate::worker::{spawn_worker, WorkerSpec};

/// Result of a virtual-clock live run.
pub struct LiveOutcome {
    /// The run report — byte-identical to the simulator's.
    pub report: RunReport,
    /// The trace — byte-identical to the simulator's.
    pub trace: Trace,
    /// Final model parameters (all workers agreed, and matched the local
    /// reference replay).
    pub params: Vec<u8>,
    /// Transport the run used (`"chan"` / `"tcp"`).
    pub transport: &'static str,
}

/// A [`ComputeBackend`] that prices spans by round-tripping a `CostQuery`
/// over the worker's link.
struct LiveBackend {
    links: Vec<Link>,
}

impl ComputeBackend for LiveBackend {
    fn compute_secs(&mut self, _scenario: &Scenario, req: &ComputeRequest) -> f64 {
        let link = &mut self.links[req.worker];
        link.send(&Frame::CostQuery {
            worker: req.worker as u32,
            token: req.token,
            level: req.level as u32,
            unit_start: req.unit_start as u32,
            unit_end: req.unit_end as u32,
            batch: req.batch,
            iteration: req.iteration,
        })
        .unwrap_or_else(|e| panic!("live worker link closed during cost query: {e}"));
        let reply = link
            .recv()
            .unwrap_or_else(|e| panic!("live worker died during cost query: {e}"));
        match reply {
            Frame::CostReply { token, secs_bits } => {
                assert_eq!(token, req.token, "cost reply for the wrong token");
                f64::from_bits(secs_bits)
            }
            other => panic!("expected CostReply, got {other:?}"),
        }
    }
}

/// Builds the token plan the runtime will use for `scenario` (needed to size
/// the worker engine replicas identically).
pub fn plan_for(config: &FelaConfig, scenario: &Scenario) -> io::Result<TokenPlan> {
    let runtime = FelaRuntime::new(config.clone());
    let partition = runtime.partition_for(scenario);
    TokenPlan::build(
        &partition,
        config,
        scenario.total_batch,
        scenario.cluster.nodes,
    )
    .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e.to_string()))
}

/// Runs `scenario` live in virtual-clock mode over `transport` with one
/// worker thread per cluster node, under the default pass-through scheduler.
pub fn run_virtual(
    config: &FelaConfig,
    scenario: &Scenario,
    transport: &mut dyn Transport,
) -> io::Result<LiveOutcome> {
    run_virtual_with(config, scenario, transport, pass())
}

/// [`run_virtual`] with an explicit [`Sched`](crate::sched::Sched): every
/// link on both endpoints yields its frame traffic to `sched`. Under
/// [`pass`] this is byte-identical to the uninstrumented run.
pub fn run_virtual_with(
    config: &FelaConfig,
    scenario: &Scenario,
    transport: &mut dyn Transport,
    sched: SharedSched,
) -> io::Result<LiveOutcome> {
    let n = scenario.cluster.nodes;
    let plan = plan_for(config, scenario)?;
    let (mut server_links, worker_links) = transport.establish(n)?;
    for (w, link) in server_links.iter_mut().enumerate() {
        link.instrument(sched.clone(), Endpoint::Server, w);
    }
    let handles: Vec<_> = worker_links
        .into_iter()
        .enumerate()
        .map(|(index, link)| {
            spawn_worker(
                WorkerSpec {
                    index,
                    scenario: scenario.clone(),
                    plan: plan.clone(),
                    time_scale: 0.0,
                    pull: false,
                    sched: sched.clone(),
                },
                link,
            )
        })
        .collect();

    let mut backend = LiveBackend {
        links: server_links,
    };
    let runtime = FelaRuntime::new(config.clone());
    let (report, trace) = runtime.run_traced_with(scenario, &mut backend);

    // Drive the engine replicas and collect their final parameters.
    let schedules = schedules_from_trace(&trace);
    let reference = replay_schedules(&plan, &schedules);
    let mut params = Vec::with_capacity(n);
    for (w, link) in backend.links.iter_mut().enumerate() {
        for (iteration, schedule) in schedules.iter().enumerate() {
            link.send(&Frame::Iter {
                iteration: iteration as u64,
                schedule: schedule
                    .iter()
                    .map(|&(l, j)| (l as u32, j as u32))
                    .collect(),
            })?;
        }
        link.send(&Frame::End)?;
        match link.recv()? {
            Frame::Params { bytes } => params.push(bytes),
            other => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("worker {w}: expected Params, got {other:?}"),
                ))
            }
        }
    }
    for (w, p) in params.iter().enumerate() {
        assert_eq!(
            p, &reference,
            "worker {w}: replica parameters diverged from the reference replay"
        );
    }
    for handle in handles {
        if handle.join().is_err() {
            panic!("worker thread panicked instead of exiting cleanly");
        }
    }
    Ok(LiveOutcome {
        report,
        trace,
        params: reference,
        transport: transport.name(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::{ChanTransport, TcpTransport};
    use fela_model::zoo;

    fn quick_scenario() -> (FelaConfig, Scenario) {
        let mut scenario = Scenario::paper(zoo::vgg19(), 128);
        scenario.iterations = 3;
        scenario.cluster = fela_cluster::ClusterSpec::k40c_cluster(4);
        let config = FelaConfig::new(3).with_weights(vec![1, 2, 4]);
        (config, scenario)
    }

    #[test]
    fn virtual_chan_run_is_byte_identical_to_sim() {
        let (config, scenario) = quick_scenario();
        let sim = FelaRuntime::new(config.clone()).run_traced(&scenario);
        let live = run_virtual(&config, &scenario, &mut ChanTransport).expect("live run succeeds");
        assert_eq!(sim.1.events(), live.trace.events(), "traces must match");
        assert_eq!(
            sim.0.total_time_secs.to_bits(),
            live.report.total_time_secs.to_bits(),
            "makespans must be bit-identical"
        );
        assert_eq!(sim.0.per_iteration_secs, live.report.per_iteration_secs);
        assert_eq!(sim.0.counters, live.report.counters);
        assert!(!live.params.is_empty());
    }

    #[test]
    fn virtual_tcp_run_is_byte_identical_to_sim() {
        let (config, scenario) = quick_scenario();
        let sim = FelaRuntime::new(config.clone()).run_traced(&scenario);
        let live = run_virtual(&config, &scenario, &mut TcpTransport::default())
            .expect("live run succeeds");
        assert_eq!(sim.1.events(), live.trace.events(), "traces must match");
    }
}
