//! The `Sched` seam: every cross-thread synchronization point in the live
//! runtime yields to a pluggable scheduler.
//!
//! The live runtime's sync points are frame sends/receives on a [`Link`],
//! server inbox dequeues, and wall-clock timer fires (lease expiry, worker
//! restart). Each one calls [`Sched::reached`] with a [`SyncEvent`] describing
//! the operation before/as it happens:
//!
//! * [`PassSched`] — the default — does nothing, preserving today's behavior
//!   bit-for-bit (the conformance suites run against it unchanged);
//! * [`RecordingSched`] captures the event stream for `fela-check`'s frame
//!   protocol session verifier (`fela check --protocol` replays it against
//!   the per-link state machine);
//! * test schedulers may block inside `reached` to freeze a thread at a sync
//!   point and force a specific interleaving ([`GateSched`]).
//!
//! There is deliberately no mutex-acquire event: the runtime is mutex-free by
//! design (threads communicate only through channels/sockets), and the
//! `lock-order` / `no-blocking-under-lock` lint rules in `fela-check` keep it
//! that way. Exhaustive interleaving exploration lives in `fela-check`'s
//! model checker (`mc.rs`), which drives the same `ControlPlane` +
//! [`Frame`] protocol as this crate without OS threads; this seam is the
//! *observation* side — it ties real executions back to the model.
//!
//! [`Link`]: crate::transport::Link

use std::sync::{Arc, Condvar, Mutex};

use crate::wire::Frame;

/// Which side of a server ↔ worker link observed an event.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Endpoint {
    /// The Token Server end.
    Server,
    /// The worker end.
    Worker,
}

/// One cross-thread synchronization point.
#[derive(Clone, PartialEq, Debug)]
pub enum SyncEvent {
    /// `side` is about to hand `frame` to the transport on its link with
    /// worker `worker`.
    FrameSent {
        /// Observing endpoint.
        side: Endpoint,
        /// Worker index the link belongs to.
        worker: usize,
        /// The frame being sent.
        frame: Frame,
    },
    /// `side` received `frame` from the transport on its link with `worker`.
    FrameReceived {
        /// Observing endpoint.
        side: Endpoint,
        /// Worker index the link belongs to.
        worker: usize,
        /// The frame received.
        frame: Frame,
    },
    /// `side` observed its link with `worker` closed: a receive failed (peer
    /// gone) or the link was deliberately shut (crash injection).
    LinkClosed {
        /// Observing endpoint.
        side: Endpoint,
        /// Worker index the link belongs to.
        worker: usize,
    },
    /// The real-clock server dequeued one inbound message from its merged
    /// inbox. `frame` is `None` when the message was a peer-gone
    /// notification. This is the server's *processing* order — distinct from
    /// [`SyncEvent::FrameReceived`], which is pump-thread arrival order.
    InboxDequeued {
        /// Worker the message came from.
        worker: usize,
        /// The dequeued frame, or `None` for a closed-link notification.
        frame: Option<Frame>,
    },
    /// A lease timer fired on the real-clock server.
    LeaseFired {
        /// Token id the lease covered.
        token: u64,
        /// Grant attempt the lease belonged to.
        attempt: u64,
    },
    /// A worker-restart timer fired on the real-clock server.
    RestartFired {
        /// Worker being restarted.
        worker: usize,
    },
}

/// A pluggable scheduler observing (and optionally controlling) every
/// synchronization point.
pub trait Sched: Send + Sync {
    /// Called at each synchronization point. May block to freeze the calling
    /// thread at the sync point. Must not panic.
    fn reached(&self, event: &SyncEvent);
}

/// Shared scheduler handle, cloned into every thread of a run.
pub type SharedSched = Arc<dyn Sched>;

/// The default scheduler: a no-op at every sync point. A run under
/// `PassSched` is byte-identical to one without the seam.
#[derive(Default, Clone, Copy, Debug)]
pub struct PassSched;

impl Sched for PassSched {
    fn reached(&self, _event: &SyncEvent) {}
}

/// Shorthand for the default pass-through scheduler handle.
pub fn pass() -> SharedSched {
    Arc::new(PassSched)
}

/// Records every synchronization event in global arrival order (per-link
/// subsequences are per-direction FIFO, which is all the protocol session
/// verifier needs).
#[derive(Default)]
pub struct RecordingSched {
    events: Mutex<Vec<SyncEvent>>,
}

impl RecordingSched {
    /// New shared recorder.
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Drains and returns everything recorded so far.
    pub fn take(&self) -> Vec<SyncEvent> {
        let mut events = self.events.lock().unwrap_or_else(|p| p.into_inner());
        std::mem::take(&mut *events)
    }
}

impl Sched for RecordingSched {
    fn reached(&self, event: &SyncEvent) {
        let mut events = self.events.lock().unwrap_or_else(|p| p.into_inner());
        events.push(event.clone());
    }
}

/// A gate scheduler: blocks every thread that reaches a sync point matching
/// `hold` until [`GateSched::release`] — the primitive for forcing one
/// specific adversarial interleaving in integration tests (e.g. freezing a
/// worker's Report send until its lease has fired).
pub struct GateSched {
    hold: Box<dyn Fn(&SyncEvent) -> bool + Send + Sync>,
    open: Mutex<bool>,
    cv: Condvar,
    seen: Mutex<Vec<SyncEvent>>,
}

impl GateSched {
    /// New gate holding every event `hold` matches.
    pub fn new(hold: impl Fn(&SyncEvent) -> bool + Send + Sync + 'static) -> Arc<Self> {
        Arc::new(GateSched {
            hold: Box::new(hold),
            open: Mutex::new(false),
            cv: Condvar::new(),
            seen: Mutex::new(Vec::new()),
        })
    }

    /// Opens the gate; all held threads (and future matches) proceed.
    pub fn release(&self) {
        let mut open = self.open.lock().unwrap_or_else(|p| p.into_inner());
        *open = true;
        self.cv.notify_all();
    }

    /// Events observed so far (held or not).
    pub fn seen(&self) -> Vec<SyncEvent> {
        self.seen.lock().unwrap_or_else(|p| p.into_inner()).clone()
    }
}

impl Sched for GateSched {
    fn reached(&self, event: &SyncEvent) {
        {
            let mut seen = self.seen.lock().unwrap_or_else(|p| p.into_inner());
            seen.push(event.clone());
        }
        if !(self.hold)(event) {
            return;
        }
        let mut open = self.open.lock().unwrap_or_else(|p| p.into_inner());
        while !*open {
            open = self.cv.wait(open).unwrap_or_else(|p| p.into_inner());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recording_sched_captures_in_order_and_drains() {
        let rec = RecordingSched::new();
        rec.reached(&SyncEvent::FrameSent {
            side: Endpoint::Server,
            worker: 0,
            frame: Frame::End,
        });
        rec.reached(&SyncEvent::LinkClosed {
            side: Endpoint::Worker,
            worker: 1,
        });
        let events = rec.take();
        assert_eq!(events.len(), 2);
        assert!(matches!(events[0], SyncEvent::FrameSent { worker: 0, .. }));
        assert!(rec.take().is_empty(), "take drains");
    }

    #[test]
    fn gate_sched_holds_matching_threads_until_release() {
        let gate = GateSched::new(|e| matches!(e, SyncEvent::LeaseFired { .. }));
        // Non-matching events pass straight through.
        gate.reached(&SyncEvent::RestartFired { worker: 0 });
        let g2 = Arc::clone(&gate);
        let held = std::thread::spawn(move || {
            g2.reached(&SyncEvent::LeaseFired {
                token: 1,
                attempt: 0,
            });
        });
        // The held thread cannot have finished before release.
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert!(!held.is_finished(), "matching event must block");
        gate.release();
        held.join().expect("held thread resumes");
        assert_eq!(gate.seen().len(), 2);
    }
}
