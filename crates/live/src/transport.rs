//! Server ↔ worker links: the [`Transport`] trait and its two implementations.
//!
//! A transport establishes one bidirectional, ordered, reliable frame [`Link`]
//! per worker. Both implementations push every message through the same wire
//! codec ([`crate::wire`]):
//!
//! * [`ChanTransport`] — in-process `std::sync::mpsc` channels carrying the
//!   *encoded* frame bytes (the codec is exercised even without sockets);
//! * [`TcpTransport`] — `std::net` TCP over loopback, one connection per
//!   worker, identified by a `Hello` handshake frame at accept time.
//!
//! A link can be split into independently owned send/receive halves
//! ([`Link::split`]) so the real-clock server can pump inbound frames from a
//! reader thread while granting from its main loop, and it can be closed
//! ([`LinkTx::close`]) — which is how the fault injector "drops the
//! connection" to a worker: the peer's next receive fails and the thread dies,
//! exactly like a real network partition.

use std::io::{self, Read, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Arc;

use crate::sched::{Endpoint, Sched, SyncEvent};
use crate::wire::{decode_frame, encode_frame, read_frame, Frame};

/// One endpoint of a bidirectional frame link.
pub struct Link {
    tx: LinkTx,
    rx: LinkRx,
}

/// An instrumentation tap: a [`Sched`] plus the identity of the endpoint it
/// observes. Cloned onto both halves of an instrumented [`Link`].
#[derive(Clone)]
struct Tap {
    sched: Arc<dyn Sched>,
    side: Endpoint,
    worker: usize,
}

impl Tap {
    fn sent(&self, frame: &Frame) {
        self.sched.reached(&SyncEvent::FrameSent {
            side: self.side,
            worker: self.worker,
            frame: frame.clone(),
        });
    }

    fn received(&self, frame: &Frame) {
        self.sched.reached(&SyncEvent::FrameReceived {
            side: self.side,
            worker: self.worker,
            frame: frame.clone(),
        });
    }

    fn closed(&self) {
        self.sched.reached(&SyncEvent::LinkClosed {
            side: self.side,
            worker: self.worker,
        });
    }
}

enum TxKind {
    /// In-process channel of encoded frames.
    Chan(Option<Sender<Vec<u8>>>),
    /// TCP stream (a `try_clone` of the connection).
    Tcp(Option<TcpStream>),
}

enum RxKind {
    /// In-process channel of encoded frames.
    Chan(Receiver<Vec<u8>>),
    /// TCP stream.
    Tcp(TcpStream),
}

/// The sending half of a link.
pub struct LinkTx {
    kind: TxKind,
    tap: Option<Tap>,
}

/// The receiving half of a link.
pub struct LinkRx {
    kind: RxKind,
    tap: Option<Tap>,
}

impl LinkTx {
    /// Sends one frame. Fails when the peer is gone or the link was closed.
    /// Yields to the link's scheduler (if instrumented) *before* the bytes
    /// move, so a test scheduler can hold the send at the sync point.
    pub fn send(&mut self, frame: &Frame) -> io::Result<()> {
        if let Some(tap) = &self.tap {
            tap.sent(frame);
        }
        match &mut self.kind {
            TxKind::Chan(tx) => match tx {
                Some(tx) => tx
                    .send(encode_frame(frame))
                    .map_err(|_| io::Error::new(io::ErrorKind::BrokenPipe, "peer hung up")),
                None => Err(io::Error::new(io::ErrorKind::NotConnected, "link closed")),
            },
            TxKind::Tcp(stream) => match stream {
                Some(s) => {
                    s.write_all(&encode_frame(frame))?;
                    s.flush()
                }
                None => Err(io::Error::new(io::ErrorKind::NotConnected, "link closed")),
            },
        }
    }

    /// Drops the connection. The peer's next receive fails (channel
    /// disconnect / TCP reset-EOF), which is the transport-level kill switch
    /// for fault injection.
    pub fn close(&mut self) {
        if let Some(tap) = &self.tap {
            tap.closed();
        }
        match &mut self.kind {
            TxKind::Chan(tx) => {
                tx.take();
            }
            TxKind::Tcp(stream) => {
                if let Some(s) = stream.take() {
                    let _ = s.shutdown(Shutdown::Both);
                }
            }
        }
    }
}

impl LinkRx {
    /// Receives one frame, blocking. An error means the peer is gone (or the
    /// link was closed under us, or it sent garbage — see
    /// [`crate::wire::WireError`]).
    pub fn recv(&mut self) -> io::Result<Frame> {
        let result = match &mut self.kind {
            RxKind::Chan(rx) => {
                let bytes = rx
                    .recv()
                    .map_err(|_| io::Error::new(io::ErrorKind::UnexpectedEof, "peer hung up"));
                bytes.and_then(|bytes| decode_frame(&bytes).map_err(io::Error::from))
            }
            RxKind::Tcp(stream) => read_frame(stream).map_err(io::Error::from),
        };
        if let Some(tap) = &self.tap {
            match &result {
                Ok(frame) => tap.received(frame),
                Err(_) => tap.closed(),
            }
        }
        result
    }
}

impl Link {
    fn new(tx: LinkTx, rx: LinkRx) -> Self {
        Link { tx, rx }
    }

    /// Attaches a scheduler tap to both halves: every send, receive, and
    /// close on this link yields a [`SyncEvent`] identifying `side`/`worker`.
    /// Un-instrumented links (the default) skip the seam entirely.
    pub fn instrument(&mut self, sched: Arc<dyn Sched>, side: Endpoint, worker: usize) {
        let tap = Tap {
            sched,
            side,
            worker,
        };
        self.tx.tap = Some(tap.clone());
        self.rx.tap = Some(tap);
    }

    /// Sends one frame.
    pub fn send(&mut self, frame: &Frame) -> io::Result<()> {
        self.tx.send(frame)
    }

    /// Receives one frame, blocking.
    pub fn recv(&mut self) -> io::Result<Frame> {
        self.rx.recv()
    }

    /// Splits into independently owned halves (reader thread + writer loop).
    pub fn split(self) -> (LinkTx, LinkRx) {
        (self.tx, self.rx)
    }
}

/// A way to establish server ↔ worker frame links.
pub trait Transport {
    /// Human-readable transport name (`"chan"` / `"tcp"`).
    fn name(&self) -> &'static str;

    /// Establishes `n` links; returns `(server_ends, worker_ends)` with the
    /// link for worker `w` at index `w` of both vectors.
    fn establish(&mut self, n: usize) -> io::Result<(Vec<Link>, Vec<Link>)>;

    /// Establishes one additional link for a rejoining worker (crash-restart
    /// in real-clock mode). Returns `(server_end, worker_end)`.
    fn extra_link(&mut self, worker: usize) -> io::Result<(Link, Link)>;
}

/// In-process channel transport.
#[derive(Default)]
pub struct ChanTransport;

fn bare_tx(kind: TxKind) -> LinkTx {
    LinkTx { kind, tap: None }
}

fn bare_rx(kind: RxKind) -> LinkRx {
    LinkRx { kind, tap: None }
}

fn chan_pair() -> (Link, Link) {
    let (a_tx, b_rx) = channel();
    let (b_tx, a_rx) = channel();
    (
        Link::new(
            bare_tx(TxKind::Chan(Some(a_tx))),
            bare_rx(RxKind::Chan(a_rx)),
        ),
        Link::new(
            bare_tx(TxKind::Chan(Some(b_tx))),
            bare_rx(RxKind::Chan(b_rx)),
        ),
    )
}

impl Transport for ChanTransport {
    fn name(&self) -> &'static str {
        "chan"
    }

    fn establish(&mut self, n: usize) -> io::Result<(Vec<Link>, Vec<Link>)> {
        let mut servers = Vec::with_capacity(n);
        let mut workers = Vec::with_capacity(n);
        for _ in 0..n {
            let (s, w) = chan_pair();
            servers.push(s);
            workers.push(w);
        }
        Ok((servers, workers))
    }

    fn extra_link(&mut self, _worker: usize) -> io::Result<(Link, Link)> {
        Ok(chan_pair())
    }
}

/// TCP-loopback transport. Binds an ephemeral `127.0.0.1` listener on first
/// use and keeps it open for restart links.
#[derive(Default)]
pub struct TcpTransport {
    listener: Option<TcpListener>,
}

impl TcpTransport {
    fn listener(&mut self) -> io::Result<&TcpListener> {
        if self.listener.is_none() {
            self.listener = Some(TcpListener::bind(("127.0.0.1", 0))?);
        }
        match self.listener.as_ref() {
            Some(listener) => Ok(listener),
            None => unreachable!("just bound"),
        }
    }

    /// Connects one worker end and performs the `Hello` handshake; returns
    /// the accepted (server) stream and the connecting (worker) stream.
    fn connect_one(&mut self, worker: usize) -> io::Result<(TcpStream, TcpStream)> {
        let listener = self.listener()?;
        let addr = listener.local_addr()?;
        let worker_stream = TcpStream::connect(addr)?;
        worker_stream.set_nodelay(true)?;
        {
            let mut w = &worker_stream;
            w.write_all(&encode_frame(&Frame::Hello {
                worker: worker as u32,
            }))?;
            w.flush()?;
        }
        let (server_stream, _) = listener.accept()?;
        server_stream.set_nodelay(true)?;
        let hello = {
            let mut r = &server_stream;
            read_one(&mut r)?
        };
        match hello {
            Frame::Hello { worker: got } if got as usize == worker => {}
            other => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("expected Hello for worker {worker}, got {other:?}"),
                ))
            }
        }
        Ok((server_stream, worker_stream))
    }
}

fn read_one(r: &mut impl Read) -> io::Result<Frame> {
    read_frame(r).map_err(io::Error::from)
}

fn tcp_link(stream: TcpStream) -> io::Result<Link> {
    let write_half = stream.try_clone()?;
    Ok(Link::new(
        bare_tx(TxKind::Tcp(Some(write_half))),
        bare_rx(RxKind::Tcp(stream)),
    ))
}

impl Transport for TcpTransport {
    fn name(&self) -> &'static str {
        "tcp"
    }

    fn establish(&mut self, n: usize) -> io::Result<(Vec<Link>, Vec<Link>)> {
        let mut servers = Vec::with_capacity(n);
        let mut workers = Vec::with_capacity(n);
        for w in 0..n {
            let (server_stream, worker_stream) = self.connect_one(w)?;
            servers.push(tcp_link(server_stream)?);
            workers.push(tcp_link(worker_stream)?);
        }
        Ok((servers, workers))
    }

    fn extra_link(&mut self, worker: usize) -> io::Result<(Link, Link)> {
        let (server_stream, worker_stream) = self.connect_one(worker)?;
        Ok((tcp_link(server_stream)?, tcp_link(worker_stream)?))
    }
}

/// Looks a transport up by its CLI name.
pub fn transport_by_name(name: &str) -> Option<Box<dyn Transport>> {
    match name {
        "chan" => Some(Box::<ChanTransport>::default()),
        "tcp" => Some(Box::<TcpTransport>::default()),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(transport: &mut dyn Transport) {
        let (mut servers, mut workers) = transport.establish(3).expect("establish");
        for w in 0..3 {
            servers[w]
                .send(&Frame::Grant {
                    token: w as u64,
                    level: 1,
                    iteration: 0,
                    batch: 8,
                    unit_start: 0,
                    unit_end: 4,
                })
                .expect("send grant");
            match workers[w].recv().expect("recv grant") {
                Frame::Grant { token, .. } => assert_eq!(token, w as u64),
                other => panic!("unexpected {other:?}"),
            }
            workers[w]
                .send(&Frame::Report {
                    worker: w as u32,
                    token: w as u64,
                })
                .expect("send report");
            match servers[w].recv().expect("recv report") {
                Frame::Report { worker, token } => {
                    assert_eq!((worker as usize, token), (w, w as u64));
                }
                other => panic!("unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn chan_links_round_trip() {
        roundtrip(&mut ChanTransport);
    }

    #[test]
    fn tcp_links_round_trip() {
        roundtrip(&mut TcpTransport::default());
    }

    #[test]
    fn closing_the_server_end_kills_the_worker_recv() {
        for name in ["chan", "tcp"] {
            let mut t = transport_by_name(name).expect("known transport");
            let (servers, mut workers) = t.establish(1).expect("establish");
            let (mut tx, rx) = servers.into_iter().next().expect("one link").split();
            tx.close();
            drop(rx);
            assert!(
                workers[0].recv().is_err(),
                "{name}: recv on a dropped connection must fail"
            );
        }
    }

    #[test]
    fn extra_link_reconnects_a_worker() {
        for name in ["chan", "tcp"] {
            let mut t = transport_by_name(name).expect("known transport");
            let _initial = t.establish(2).expect("establish");
            let (mut s, mut w) = t.extra_link(1).expect("extra link");
            s.send(&Frame::End).expect("send");
            assert_eq!(w.recv().expect("recv"), Frame::End, "{name}");
        }
    }

    #[test]
    fn unknown_transport_name_is_rejected() {
        assert!(transport_by_name("udp").is_none());
    }

    #[test]
    fn instrumented_links_record_sends_receives_and_closes() {
        use crate::sched::{Endpoint, RecordingSched, SyncEvent};

        let rec = RecordingSched::new();
        let (mut server, mut worker) = chan_pair();
        server.instrument(rec.clone(), Endpoint::Server, 3);
        server.send(&Frame::End).expect("send");
        assert_eq!(worker.recv().expect("recv"), Frame::End);
        worker
            .send(&Frame::Report {
                worker: 3,
                token: 7,
            })
            .expect("send report");
        assert!(matches!(server.recv(), Ok(Frame::Report { .. })));
        drop(worker);
        assert!(server.recv().is_err(), "peer gone");
        let events = rec.take();
        assert_eq!(
            events,
            vec![
                SyncEvent::FrameSent {
                    side: Endpoint::Server,
                    worker: 3,
                    frame: Frame::End,
                },
                SyncEvent::FrameReceived {
                    side: Endpoint::Server,
                    worker: 3,
                    frame: Frame::Report {
                        worker: 3,
                        token: 7,
                    },
                },
                SyncEvent::LinkClosed {
                    side: Endpoint::Server,
                    worker: 3,
                },
            ],
            "only the instrumented (server) side records, in program order"
        );
    }
}
