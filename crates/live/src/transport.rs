//! Server ↔ worker links: the [`Transport`] trait and its two implementations.
//!
//! A transport establishes one bidirectional, ordered, reliable frame [`Link`]
//! per worker. Both implementations push every message through the same wire
//! codec ([`crate::wire`]):
//!
//! * [`ChanTransport`] — in-process `std::sync::mpsc` channels carrying the
//!   *encoded* frame bytes (the codec is exercised even without sockets);
//! * [`TcpTransport`] — `std::net` TCP over loopback, one connection per
//!   worker, identified by a `Hello` handshake frame at accept time.
//!
//! A link can be split into independently owned send/receive halves
//! ([`Link::split`]) so the real-clock server can drive every receive half
//! from its single poll loop while granting over the send halves, and it can
//! be closed ([`LinkTx::close`]) — which is how the fault injector "drops the
//! connection" to a worker: the peer's next receive fails and the thread dies,
//! exactly like a real network partition.
//!
//! Receive halves carry an incremental frame parser ([`FrameBuf`]): inbound
//! bytes accumulate in a per-link buffer and complete frames are peeled off,
//! which is what makes **nonblocking** reads possible ([`LinkRx::try_recv`] +
//! [`LinkRx::set_nonblocking`]) — a TCP segment boundary can land anywhere in
//! a frame. Send halves own a reusable per-link encode buffer:
//! [`LinkTx::queue`] appends encoded frames without a syscall and
//! [`LinkTx::flush`] moves the whole batch with one write — the grant
//! hot path of the real-clock server.

use std::io::{self, ErrorKind, Read, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::sync::mpsc::{channel, Receiver, Sender, TryRecvError};
use std::sync::Arc;

use crate::sched::{Endpoint, Sched, SyncEvent};
use crate::wire::{decode_body, encode_frame, read_frame, Frame, WireError, MAX_FRAME};

/// One endpoint of a bidirectional frame link.
pub struct Link {
    tx: LinkTx,
    rx: LinkRx,
}

/// An instrumentation tap: a [`Sched`] plus the identity of the endpoint it
/// observes. Cloned onto both halves of an instrumented [`Link`].
#[derive(Clone)]
struct Tap {
    sched: Arc<dyn Sched>,
    side: Endpoint,
    worker: usize,
}

impl Tap {
    fn sent(&self, frame: &Frame) {
        self.sched.reached(&SyncEvent::FrameSent {
            side: self.side,
            worker: self.worker,
            frame: frame.clone(),
        });
    }

    fn received(&self, frame: &Frame) {
        self.sched.reached(&SyncEvent::FrameReceived {
            side: self.side,
            worker: self.worker,
            frame: frame.clone(),
        });
    }

    fn closed(&self) {
        self.sched.reached(&SyncEvent::LinkClosed {
            side: self.side,
            worker: self.worker,
        });
    }
}

enum TxKind {
    /// In-process channel of encoded frame batches.
    Chan(Option<Sender<Vec<u8>>>),
    /// TCP stream (a `try_clone` of the connection).
    Tcp(Option<TcpStream>),
}

enum RxKind {
    /// In-process channel of encoded frame batches.
    Chan(Receiver<Vec<u8>>),
    /// TCP stream.
    Tcp(TcpStream),
}

/// Incremental frame parser: inbound bytes accumulate here and complete
/// `[len][tag][fields]` frames are peeled off the front. Consumed space is
/// reclaimed lazily (one `drain` once the buffer is fully parsed), so steady
/// traffic reuses the same allocation.
#[derive(Default)]
struct FrameBuf {
    buf: Vec<u8>,
    start: usize,
}

impl FrameBuf {
    fn extend(&mut self, bytes: &[u8]) {
        if self.start == self.buf.len() {
            self.buf.clear();
            self.start = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Peels one complete frame off the front, or `None` if more bytes are
    /// needed. Corrupt prefixes and bodies surface as [`WireError`]s.
    fn next_frame(&mut self) -> Result<Option<Frame>, WireError> {
        let avail = &self.buf[self.start..];
        if avail.len() < 4 {
            return Ok(None);
        }
        let len = u32::from_le_bytes([avail[0], avail[1], avail[2], avail[3]]);
        if len > MAX_FRAME {
            return Err(WireError::Oversized {
                len: u64::from(len),
                max: MAX_FRAME,
            });
        }
        let len = len as usize;
        if avail.len() < 4 + len {
            return Ok(None);
        }
        let frame = decode_body(&avail[4..4 + len])?;
        self.start += 4 + len;
        if self.start == self.buf.len() {
            self.buf.clear();
            self.start = 0;
        }
        Ok(Some(frame))
    }
}

/// The sending half of a link.
pub struct LinkTx {
    kind: TxKind,
    tap: Option<Tap>,
    /// Reusable per-link encode buffer: [`LinkTx::queue`] appends frames
    /// here; [`LinkTx::flush`] moves the whole batch in one write.
    pending: Vec<u8>,
}

/// The receiving half of a link.
pub struct LinkRx {
    kind: RxKind,
    tap: Option<Tap>,
    parse: FrameBuf,
}

/// Writes `bytes` fully even on a socket in nonblocking mode: `WouldBlock`
/// (the send buffer is momentarily full) yields and retries rather than
/// erroring out. Server and worker share one underlying socket per link via
/// `try_clone`, so putting the receive half in nonblocking mode makes writes
/// nonblocking too — this keeps the send path correct either way.
fn write_all_would_block(s: &mut TcpStream, mut bytes: &[u8]) -> io::Result<()> {
    while !bytes.is_empty() {
        match s.write(bytes) {
            Ok(0) => return Err(io::Error::new(ErrorKind::WriteZero, "socket wrote 0 bytes")),
            Ok(n) => bytes = &bytes[n..],
            Err(e) if e.kind() == ErrorKind::WouldBlock => std::thread::yield_now(),
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

impl LinkTx {
    /// Queues one frame into the link's reusable encode buffer **without
    /// moving any bytes** — the mid-batch path. Yields to the link's
    /// scheduler (if instrumented) at queue time, which is the frame's send
    /// sync point. Pair with [`LinkTx::flush`].
    pub fn queue(&mut self, frame: &Frame) -> io::Result<()> {
        let connected = match &self.kind {
            TxKind::Chan(tx) => tx.is_some(),
            TxKind::Tcp(stream) => stream.is_some(),
        };
        if !connected {
            return Err(io::Error::new(io::ErrorKind::NotConnected, "link closed"));
        }
        if let Some(tap) = &self.tap {
            tap.sent(frame);
        }
        crate::wire::encode_frame_into(&mut self.pending, frame);
        Ok(())
    }

    /// Flushes every queued frame with one write (and, on TCP, one syscall).
    /// A no-op when nothing is queued.
    pub fn flush(&mut self) -> io::Result<()> {
        if self.pending.is_empty() {
            return Ok(());
        }
        match &mut self.kind {
            TxKind::Chan(tx) => {
                // The channel owns its message, so the batch is moved out;
                // the allocation cost amortizes over every queued frame.
                let batch = std::mem::take(&mut self.pending);
                match tx {
                    Some(tx) => tx
                        .send(batch)
                        .map_err(|_| io::Error::new(io::ErrorKind::BrokenPipe, "peer hung up")),
                    None => Err(io::Error::new(io::ErrorKind::NotConnected, "link closed")),
                }
            }
            TxKind::Tcp(stream) => {
                let result = match stream {
                    Some(s) => write_all_would_block(s, &self.pending).and_then(|()| s.flush()),
                    None => Err(io::Error::new(io::ErrorKind::NotConnected, "link closed")),
                };
                self.pending.clear();
                result
            }
        }
    }

    /// Sends one frame immediately ([`LinkTx::queue`] + [`LinkTx::flush`]).
    /// Fails when the peer is gone or the link was closed.
    pub fn send(&mut self, frame: &Frame) -> io::Result<()> {
        self.queue(frame)?;
        self.flush()
    }

    /// Drops the connection. The peer's next receive fails (channel
    /// disconnect / TCP reset-EOF), which is the transport-level kill switch
    /// for fault injection.
    pub fn close(&mut self) {
        if let Some(tap) = &self.tap {
            tap.closed();
        }
        self.pending.clear();
        match &mut self.kind {
            TxKind::Chan(tx) => {
                tx.take();
            }
            TxKind::Tcp(stream) => {
                if let Some(s) = stream.take() {
                    let _ = s.shutdown(Shutdown::Both);
                }
            }
        }
    }
}

impl LinkRx {
    fn tap_result(&self, result: &io::Result<Frame>) {
        if let Some(tap) = &self.tap {
            match result {
                Ok(frame) => tap.received(frame),
                Err(_) => tap.closed(),
            }
        }
    }

    /// Receives one frame, blocking. An error means the peer is gone (or the
    /// link was closed under us, or it sent garbage — see
    /// [`crate::wire::WireError`]).
    pub fn recv(&mut self) -> io::Result<Frame> {
        let result = self.recv_inner();
        self.tap_result(&result);
        result
    }

    fn recv_inner(&mut self) -> io::Result<Frame> {
        loop {
            if let Some(frame) = self.parse.next_frame().map_err(io::Error::from)? {
                return Ok(frame);
            }
            match &mut self.kind {
                RxKind::Chan(rx) => {
                    let bytes = rx.recv().map_err(|_| {
                        io::Error::new(io::ErrorKind::UnexpectedEof, "peer hung up")
                    })?;
                    self.parse.extend(&bytes);
                }
                RxKind::Tcp(stream) => {
                    // One blocking read per wakeup; whole frames are peeled
                    // from the parse buffer, so a single segment carrying a
                    // batch costs a single syscall.
                    if self.parse.start == 0 && self.parse.buf.is_empty() {
                        let frame = read_frame(stream).map_err(io::Error::from)?;
                        return Ok(frame);
                    }
                    let mut chunk = [0u8; 16 * 1024];
                    let n = match stream.read(&mut chunk) {
                        Ok(0) => {
                            return Err(io::Error::new(
                                io::ErrorKind::UnexpectedEof,
                                "peer hung up",
                            ))
                        }
                        Ok(n) => n,
                        Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                        Err(e) => return Err(e),
                    };
                    self.parse.extend(&chunk[..n]);
                }
            }
        }
    }

    /// Receives one frame **without blocking**: `Ok(None)` means no complete
    /// frame is available right now, `Err` means the peer is gone. The
    /// nonblocking primitive under the real-clock server's poll loop; TCP
    /// links must be in nonblocking mode ([`LinkRx::set_nonblocking`]).
    pub fn try_recv(&mut self) -> io::Result<Option<Frame>> {
        loop {
            match self.parse.next_frame() {
                Ok(Some(frame)) => {
                    if let Some(tap) = &self.tap {
                        tap.received(&frame);
                    }
                    return Ok(Some(frame));
                }
                Ok(None) => {}
                Err(e) => {
                    if let Some(tap) = &self.tap {
                        tap.closed();
                    }
                    return Err(e.into());
                }
            }
            match &mut self.kind {
                RxKind::Chan(rx) => match rx.try_recv() {
                    Ok(bytes) => self.parse.extend(&bytes),
                    Err(TryRecvError::Empty) => return Ok(None),
                    Err(TryRecvError::Disconnected) => {
                        if let Some(tap) = &self.tap {
                            tap.closed();
                        }
                        return Err(io::Error::new(io::ErrorKind::UnexpectedEof, "peer hung up"));
                    }
                },
                RxKind::Tcp(stream) => {
                    let mut chunk = [0u8; 16 * 1024];
                    match stream.read(&mut chunk) {
                        Ok(0) => {
                            if let Some(tap) = &self.tap {
                                tap.closed();
                            }
                            return Err(io::Error::new(
                                io::ErrorKind::UnexpectedEof,
                                "peer hung up",
                            ));
                        }
                        Ok(n) => self.parse.extend(&chunk[..n]),
                        Err(e) if e.kind() == ErrorKind::WouldBlock => return Ok(None),
                        Err(e) if e.kind() == ErrorKind::Interrupted => {}
                        Err(e) => {
                            if let Some(tap) = &self.tap {
                                tap.closed();
                            }
                            return Err(e);
                        }
                    }
                }
            }
        }
    }

    /// Switches a TCP link between blocking and nonblocking reads (a no-op on
    /// channel links, whose `try_recv` never blocks anyway). Note that the
    /// mode is a property of the underlying socket, shared with the link's
    /// send half — the send path tolerates `WouldBlock` for exactly this
    /// reason.
    pub fn set_nonblocking(&mut self, nonblocking: bool) -> io::Result<()> {
        match &self.kind {
            RxKind::Chan(_) => Ok(()),
            RxKind::Tcp(stream) => stream.set_nonblocking(nonblocking),
        }
    }
}

impl Link {
    fn new(tx: LinkTx, rx: LinkRx) -> Self {
        Link { tx, rx }
    }

    /// Attaches a scheduler tap to both halves: every send, receive, and
    /// close on this link yields a [`SyncEvent`] identifying `side`/`worker`.
    /// Un-instrumented links (the default) skip the seam entirely.
    pub fn instrument(&mut self, sched: Arc<dyn Sched>, side: Endpoint, worker: usize) {
        let tap = Tap {
            sched,
            side,
            worker,
        };
        self.tx.tap = Some(tap.clone());
        self.rx.tap = Some(tap);
    }

    /// Sends one frame.
    pub fn send(&mut self, frame: &Frame) -> io::Result<()> {
        self.tx.send(frame)
    }

    /// Receives one frame, blocking.
    pub fn recv(&mut self) -> io::Result<Frame> {
        self.rx.recv()
    }

    /// Splits into independently owned halves (reader thread + writer loop).
    pub fn split(self) -> (LinkTx, LinkRx) {
        (self.tx, self.rx)
    }
}

/// A way to establish server ↔ worker frame links.
pub trait Transport {
    /// Human-readable transport name (`"chan"` / `"tcp"`).
    fn name(&self) -> &'static str;

    /// Establishes `n` links; returns `(server_ends, worker_ends)` with the
    /// link for worker `w` at index `w` of both vectors.
    fn establish(&mut self, n: usize) -> io::Result<(Vec<Link>, Vec<Link>)>;

    /// Establishes one additional link for a rejoining worker (crash-restart
    /// in real-clock mode). Returns `(server_end, worker_end)`.
    fn extra_link(&mut self, worker: usize) -> io::Result<(Link, Link)>;
}

/// In-process channel transport.
#[derive(Default)]
pub struct ChanTransport;

fn bare_tx(kind: TxKind) -> LinkTx {
    LinkTx {
        kind,
        tap: None,
        pending: Vec::new(),
    }
}

fn bare_rx(kind: RxKind) -> LinkRx {
    LinkRx {
        kind,
        tap: None,
        parse: FrameBuf::default(),
    }
}

fn chan_pair() -> (Link, Link) {
    let (a_tx, b_rx) = channel();
    let (b_tx, a_rx) = channel();
    (
        Link::new(
            bare_tx(TxKind::Chan(Some(a_tx))),
            bare_rx(RxKind::Chan(a_rx)),
        ),
        Link::new(
            bare_tx(TxKind::Chan(Some(b_tx))),
            bare_rx(RxKind::Chan(b_rx)),
        ),
    )
}

impl Transport for ChanTransport {
    fn name(&self) -> &'static str {
        "chan"
    }

    fn establish(&mut self, n: usize) -> io::Result<(Vec<Link>, Vec<Link>)> {
        let mut servers = Vec::with_capacity(n);
        let mut workers = Vec::with_capacity(n);
        for _ in 0..n {
            let (s, w) = chan_pair();
            servers.push(s);
            workers.push(w);
        }
        Ok((servers, workers))
    }

    fn extra_link(&mut self, _worker: usize) -> io::Result<(Link, Link)> {
        Ok(chan_pair())
    }
}

/// TCP-loopback transport. Binds an ephemeral `127.0.0.1` listener on first
/// use and keeps it open for restart links.
#[derive(Default)]
pub struct TcpTransport {
    listener: Option<TcpListener>,
}

impl TcpTransport {
    fn listener(&mut self) -> io::Result<&TcpListener> {
        if self.listener.is_none() {
            self.listener = Some(TcpListener::bind(("127.0.0.1", 0))?);
        }
        match self.listener.as_ref() {
            Some(listener) => Ok(listener),
            None => unreachable!("just bound"),
        }
    }

    /// Connects one worker end and performs the `Hello` handshake; returns
    /// the accepted (server) stream and the connecting (worker) stream.
    fn connect_one(&mut self, worker: usize) -> io::Result<(TcpStream, TcpStream)> {
        let listener = self.listener()?;
        let addr = listener.local_addr()?;
        let worker_stream = TcpStream::connect(addr)?;
        worker_stream.set_nodelay(true)?;
        {
            let mut w = &worker_stream;
            w.write_all(&encode_frame(&Frame::Hello {
                worker: worker as u32,
            }))?;
            w.flush()?;
        }
        let (server_stream, _) = listener.accept()?;
        server_stream.set_nodelay(true)?;
        let hello = {
            let mut r = &server_stream;
            read_one(&mut r)?
        };
        match hello {
            Frame::Hello { worker: got } if got as usize == worker => {}
            other => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("expected Hello for worker {worker}, got {other:?}"),
                ))
            }
        }
        Ok((server_stream, worker_stream))
    }
}

fn read_one(r: &mut impl Read) -> io::Result<Frame> {
    read_frame(r).map_err(io::Error::from)
}

fn tcp_link(stream: TcpStream) -> io::Result<Link> {
    let write_half = stream.try_clone()?;
    Ok(Link::new(
        bare_tx(TxKind::Tcp(Some(write_half))),
        bare_rx(RxKind::Tcp(stream)),
    ))
}

impl Transport for TcpTransport {
    fn name(&self) -> &'static str {
        "tcp"
    }

    fn establish(&mut self, n: usize) -> io::Result<(Vec<Link>, Vec<Link>)> {
        let mut servers = Vec::with_capacity(n);
        let mut workers = Vec::with_capacity(n);
        for w in 0..n {
            let (server_stream, worker_stream) = self.connect_one(w)?;
            servers.push(tcp_link(server_stream)?);
            workers.push(tcp_link(worker_stream)?);
        }
        Ok((servers, workers))
    }

    fn extra_link(&mut self, worker: usize) -> io::Result<(Link, Link)> {
        let (server_stream, worker_stream) = self.connect_one(worker)?;
        Ok((tcp_link(server_stream)?, tcp_link(worker_stream)?))
    }
}

/// Looks a transport up by its CLI name.
pub fn transport_by_name(name: &str) -> Option<Box<dyn Transport>> {
    match name {
        "chan" => Some(Box::<ChanTransport>::default()),
        "tcp" => Some(Box::<TcpTransport>::default()),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(transport: &mut dyn Transport) {
        let (mut servers, mut workers) = transport.establish(3).expect("establish");
        for w in 0..3 {
            servers[w]
                .send(&Frame::Grant {
                    token: w as u64,
                    level: 1,
                    iteration: 0,
                    batch: 8,
                    unit_start: 0,
                    unit_end: 4,
                })
                .expect("send grant");
            match workers[w].recv().expect("recv grant") {
                Frame::Grant { token, .. } => assert_eq!(token, w as u64),
                other => panic!("unexpected {other:?}"),
            }
            workers[w]
                .send(&Frame::Report {
                    worker: w as u32,
                    token: w as u64,
                })
                .expect("send report");
            match servers[w].recv().expect("recv report") {
                Frame::Report { worker, token } => {
                    assert_eq!((worker as usize, token), (w, w as u64));
                }
                other => panic!("unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn chan_links_round_trip() {
        roundtrip(&mut ChanTransport);
    }

    #[test]
    fn tcp_links_round_trip() {
        roundtrip(&mut TcpTransport::default());
    }

    #[test]
    fn closing_the_server_end_kills_the_worker_recv() {
        for name in ["chan", "tcp"] {
            let mut t = transport_by_name(name).expect("known transport");
            let (servers, mut workers) = t.establish(1).expect("establish");
            let (mut tx, rx) = servers.into_iter().next().expect("one link").split();
            tx.close();
            drop(rx);
            assert!(
                workers[0].recv().is_err(),
                "{name}: recv on a dropped connection must fail"
            );
        }
    }

    #[test]
    fn extra_link_reconnects_a_worker() {
        for name in ["chan", "tcp"] {
            let mut t = transport_by_name(name).expect("known transport");
            let _initial = t.establish(2).expect("establish");
            let (mut s, mut w) = t.extra_link(1).expect("extra link");
            s.send(&Frame::End).expect("send");
            assert_eq!(w.recv().expect("recv"), Frame::End, "{name}");
        }
    }

    #[test]
    fn unknown_transport_name_is_rejected() {
        assert!(transport_by_name("udp").is_none());
    }

    #[test]
    fn frame_buf_peels_frames_fed_one_byte_at_a_time() {
        let frames = vec![
            Frame::Request { worker: 2 },
            Frame::Report {
                worker: 2,
                token: 9,
            },
            Frame::End,
        ];
        let mut bytes = Vec::new();
        for f in &frames {
            crate::wire::encode_frame_into(&mut bytes, f);
        }
        let mut buf = FrameBuf::default();
        let mut got = Vec::new();
        for b in bytes {
            buf.extend(&[b]);
            while let Some(frame) = buf.next_frame().expect("valid stream") {
                got.push(frame);
            }
        }
        assert_eq!(got, frames);
        assert!(buf.next_frame().expect("empty").is_none());
    }

    #[test]
    fn queued_frames_flush_as_one_batch_and_try_recv_drains_them() {
        for name in ["chan", "tcp"] {
            let mut t = transport_by_name(name).expect("known transport");
            let (servers, workers) = t.establish(1).expect("establish");
            let (mut tx, _srx) = servers.into_iter().next().expect("one link").split();
            let (_wtx, mut rx) = workers.into_iter().next().expect("one link").split();
            rx.set_nonblocking(true).expect("nonblocking");
            assert!(
                rx.try_recv().expect("idle").is_none(),
                "{name}: nothing queued yet"
            );
            let sent: Vec<Frame> = (0..5)
                .map(|i| Frame::Grant {
                    token: i,
                    level: 0,
                    iteration: 1,
                    batch: 8,
                    unit_start: 0,
                    unit_end: 4,
                })
                .collect();
            for f in &sent {
                tx.queue(f).expect("queue");
            }
            tx.flush().expect("flush");
            let mut got = Vec::new();
            while got.len() < sent.len() {
                match rx.try_recv().expect("try_recv") {
                    Some(frame) => got.push(frame),
                    None => std::thread::yield_now(),
                }
            }
            assert_eq!(got, sent, "{name}");
            assert!(rx.try_recv().expect("drained").is_none(), "{name}");
        }
    }

    #[test]
    fn flush_with_nothing_queued_is_a_no_op() {
        let (server, _worker) = chan_pair();
        let (mut tx, _rx) = server.split();
        tx.flush().expect("empty flush");
        tx.flush().expect("still empty");
    }

    #[test]
    fn try_recv_reports_a_gone_peer() {
        for name in ["chan", "tcp"] {
            let mut t = transport_by_name(name).expect("known transport");
            let (servers, workers) = t.establish(1).expect("establish");
            let (mut tx, rx) = servers.into_iter().next().expect("one link").split();
            let (_wtx, mut wrx) = workers.into_iter().next().expect("one link").split();
            wrx.set_nonblocking(true).expect("nonblocking");
            tx.close();
            drop(rx);
            let dead = loop {
                match wrx.try_recv() {
                    Ok(Some(_)) => panic!("{name}: no frame was ever sent"),
                    Ok(None) => std::thread::yield_now(),
                    Err(_) => break true,
                }
            };
            assert!(dead, "{name}: try_recv must surface the disconnect");
        }
    }

    #[test]
    fn instrumented_links_record_sends_receives_and_closes() {
        use crate::sched::{Endpoint, RecordingSched, SyncEvent};

        let rec = RecordingSched::new();
        let (mut server, mut worker) = chan_pair();
        server.instrument(rec.clone(), Endpoint::Server, 3);
        server.send(&Frame::End).expect("send");
        assert_eq!(worker.recv().expect("recv"), Frame::End);
        worker
            .send(&Frame::Report {
                worker: 3,
                token: 7,
            })
            .expect("send report");
        assert!(matches!(server.recv(), Ok(Frame::Report { .. })));
        drop(worker);
        assert!(server.recv().is_err(), "peer gone");
        let events = rec.take();
        assert_eq!(
            events,
            vec![
                SyncEvent::FrameSent {
                    side: Endpoint::Server,
                    worker: 3,
                    frame: Frame::End,
                },
                SyncEvent::FrameReceived {
                    side: Endpoint::Server,
                    worker: 3,
                    frame: Frame::Report {
                        worker: 3,
                        token: 7,
                    },
                },
                SyncEvent::LinkClosed {
                    side: Endpoint::Server,
                    worker: 3,
                },
            ],
            "only the instrumented (server) side records, in program order"
        );
    }
}
