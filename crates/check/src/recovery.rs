//! Lease-protocol verification over fault-injected traces.
//!
//! The race detector ([`crate::race`]) proves *ordering*: a re-granted token
//! happens-after its revocation. This module proves the complementary
//! *exactly-once* property the recovery protocol promises: every granted
//! micro-batch gradient is applied exactly once, no matter how many crashes,
//! hangs and lease expiries interleave with it.
//!
//! [`check_recovery`] replays a trace through a per-token lease state machine
//! mirroring the Token Server's:
//!
//! ```text
//!            Grant(w)                Complete by holder (report accepted)
//!   Free ───────────────► Held(w) ─────────────────────────────► Applied
//!    ▲                      │
//!    │      Revoke          │   (crash or lease expiry)
//!    └──────────────────────┘
//! ```
//!
//! A completion whose report the TS rejected is witnessed by a matching
//! [`EventKind::StaleReport`]; since reports arrive in completion order, each
//! rejection is matched to the *earliest* unmatched completion of the same
//! `(worker, token)` pair. Everything else must follow the machine exactly —
//! any deviation is a [`RecoveryViolation`].
//!
//! [`mutate_trace`] applies seeded corruptions ([`RecoveryMutation`]) to a
//! real faulted trace, proving each diagnostic actually fires.

use std::collections::{BTreeMap, BTreeSet};

use fela_sim::{EventKind, Trace};

/// A lease-protocol violation found in a trace.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum RecoveryViolation {
    /// A token was granted while another lease on it was still live: two
    /// workers hold the same micro-batch at once.
    DoubleGrant {
        /// The doubly-leased token.
        token: u64,
        /// Worker holding the live lease.
        holder: usize,
        /// Worker that received the second grant.
        second: usize,
    },
    /// A token was granted again after its gradient had already been applied.
    GrantAfterApply {
        /// The re-granted token.
        token: u64,
        /// Worker that received the redundant grant.
        worker: usize,
    },
    /// A token was granted to a worker the trace had crashed and not yet
    /// restarted.
    GrantToDeadWorker {
        /// The granted token.
        token: u64,
        /// The dead recipient.
        worker: usize,
    },
    /// A gradient from a worker that did not hold the token's lease was
    /// applied (no stale-report rejection matches the completion).
    GhostGradient {
        /// The non-holder that reported.
        worker: usize,
        /// The token it reported.
        token: u64,
    },
    /// A revocation named a token with no live lease.
    RevokeWithoutLease {
        /// The token revoked while free.
        token: u64,
    },
    /// A revocation named a different worker than the lease holder.
    RevokeHolderMismatch {
        /// The revoked token.
        token: u64,
        /// The actual lease holder.
        holder: usize,
        /// The worker the revocation named.
        named: usize,
    },
    /// A worker restarted without a preceding crash.
    RestartWithoutCrash {
        /// The worker that restarted.
        worker: usize,
    },
    /// A stale-report rejection with no completion to match it.
    UnmatchedStaleReport {
        /// The rejected reporter.
        worker: usize,
        /// The token it reported.
        token: u64,
    },
    /// A granted token's gradient was applied more than once.
    DuplicateApplication {
        /// The over-applied token.
        token: u64,
        /// How many times it was applied.
        times: u64,
    },
    /// A granted token's gradient was never applied (the run ended with the
    /// micro-batch lost).
    NeverApplied {
        /// The lost token.
        token: u64,
    },
}

impl std::fmt::Display for RecoveryViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecoveryViolation::DoubleGrant {
                token,
                holder,
                second,
            } => write!(
                f,
                "token {token} granted to worker {second} while worker {holder} still holds its lease"
            ),
            RecoveryViolation::GrantAfterApply { token, worker } => write!(
                f,
                "token {token} re-granted to worker {worker} after its gradient was applied"
            ),
            RecoveryViolation::GrantToDeadWorker { token, worker } => {
                write!(f, "token {token} granted to crashed worker {worker}")
            }
            RecoveryViolation::GhostGradient { worker, token } => write!(
                f,
                "gradient for token {token} applied from worker {worker}, which holds no lease on it"
            ),
            RecoveryViolation::RevokeWithoutLease { token } => {
                write!(f, "token {token} revoked while no lease on it was live")
            }
            RecoveryViolation::RevokeHolderMismatch {
                token,
                holder,
                named,
            } => write!(
                f,
                "token {token} revoked from worker {named} but worker {holder} holds the lease"
            ),
            RecoveryViolation::RestartWithoutCrash { worker } => {
                write!(f, "worker {worker} restarted without having crashed")
            }
            RecoveryViolation::UnmatchedStaleReport { worker, token } => write!(
                f,
                "stale-report rejection of worker {worker} / token {token} matches no completion"
            ),
            RecoveryViolation::DuplicateApplication { token, times } => {
                write!(f, "token {token} applied {times} times")
            }
            RecoveryViolation::NeverApplied { token } => {
                write!(f, "token {token} was granted but its gradient never applied")
            }
        }
    }
}

/// Statistics of a clean lease-protocol replay.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RecoverySummary {
    /// Distinct tokens granted at least once.
    pub tokens: usize,
    /// Grants seen (re-grants included).
    pub grants: usize,
    /// Gradients applied (accepted reports).
    pub applied: usize,
    /// Completions discarded by stale-report rejection.
    pub discarded: usize,
    /// Lease revocations seen.
    pub revocations: usize,
    /// Worker crashes seen.
    pub crashes: usize,
    /// Worker restarts seen.
    pub restarts: usize,
}

/// Lease state of one token during replay.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Lease {
    Free,
    Held(usize),
}

/// Replays `trace` through the per-token lease state machine. Returns the
/// summary if the trace obeys the protocol, or every violation found.
///
/// Works on fault-free traces too: with no `Revoke`/`StaleReport` events the
/// machine degenerates to "each token granted once, completed once by its
/// grantee" — so the checker can gate both chaos and baseline runs.
pub fn check_recovery(trace: &Trace) -> Result<RecoverySummary, Vec<RecoveryViolation>> {
    let mut summary = RecoverySummary::default();
    let mut violations = Vec::new();
    let mut lease: BTreeMap<u64, Lease> = BTreeMap::new();
    let mut applied: BTreeMap<u64, u64> = BTreeMap::new();
    let mut dead: BTreeSet<usize> = BTreeSet::new();

    // Reports arrive in completion order per (worker, token), so each
    // stale rejection matches the earliest unmatched completion of its pair.
    let mut stale_remaining: BTreeMap<(usize, u64), u64> = BTreeMap::new();
    for e in trace.events() {
        if let EventKind::StaleReport { worker, token } = e.kind {
            *stale_remaining.entry((worker, token)).or_insert(0) += 1;
        }
    }

    for e in trace.events() {
        match e.kind {
            EventKind::Grant { worker, token, .. } => {
                summary.grants += 1;
                if dead.contains(&worker) {
                    violations.push(RecoveryViolation::GrantToDeadWorker { token, worker });
                }
                if applied.get(&token).copied().unwrap_or(0) > 0 {
                    violations.push(RecoveryViolation::GrantAfterApply { token, worker });
                }
                match lease.insert(token, Lease::Held(worker)) {
                    Some(Lease::Held(holder)) => violations.push(RecoveryViolation::DoubleGrant {
                        token,
                        holder,
                        second: worker,
                    }),
                    Some(Lease::Free) | None => {}
                }
            }
            EventKind::Complete { worker, token, .. } => {
                let stale = match stale_remaining.get_mut(&(worker, token)) {
                    Some(left) if *left > 0 => {
                        *left -= 1;
                        true
                    }
                    _ => false,
                };
                if stale {
                    // The TS rejected this report; the lease (if any) was
                    // already released by the revocation that preceded it.
                    summary.discarded += 1;
                } else {
                    if lease.get(&token) != Some(&Lease::Held(worker)) {
                        violations.push(RecoveryViolation::GhostGradient { worker, token });
                    }
                    lease.insert(token, Lease::Free);
                    summary.applied += 1;
                    *applied.entry(token).or_insert(0) += 1;
                }
            }
            EventKind::Revoke { worker, token, .. } => {
                summary.revocations += 1;
                match lease.get(&token) {
                    Some(&Lease::Held(holder)) => {
                        if holder != worker {
                            violations.push(RecoveryViolation::RevokeHolderMismatch {
                                token,
                                holder,
                                named: worker,
                            });
                        }
                    }
                    Some(&Lease::Free) | None => {
                        // A crash legitimately revokes leases whose grants
                        // were still in flight: the grant is only traced on
                        // arrival, which the dead worker never saw.
                        if !dead.contains(&worker) {
                            violations.push(RecoveryViolation::RevokeWithoutLease { token });
                        }
                    }
                }
                lease.insert(token, Lease::Free);
            }
            EventKind::Crash { worker } => {
                summary.crashes += 1;
                dead.insert(worker);
            }
            EventKind::Restart { worker } => {
                summary.restarts += 1;
                if !dead.remove(&worker) {
                    violations.push(RecoveryViolation::RestartWithoutCrash { worker });
                }
            }
            EventKind::StaleReport { .. }
            | EventKind::SyncStart { .. }
            | EventKind::SyncDone { .. }
            | EventKind::Generic => {}
        }
    }

    for ((worker, token), left) in stale_remaining {
        for _ in 0..left {
            violations.push(RecoveryViolation::UnmatchedStaleReport { worker, token });
        }
    }
    summary.tokens = lease.len();
    for (&token, _) in lease.iter() {
        match applied.get(&token).copied().unwrap_or(0) {
            0 => violations.push(RecoveryViolation::NeverApplied { token }),
            1 => {}
            times => violations.push(RecoveryViolation::DuplicateApplication { token, times }),
        }
    }

    if violations.is_empty() {
        Ok(summary)
    } else {
        Err(violations)
    }
}

/// A seeded trace corruption for mutation-testing [`check_recovery`].
#[derive(Clone, Copy, Debug)]
pub enum RecoveryMutation {
    /// Delete one `Revoke` event (→ [`RecoveryViolation::DoubleGrant`] when
    /// the token was re-granted, and the race detector's
    /// `RegrantWithoutRevocation`).
    DropRevoke {
        /// Picks which revocation, deterministically.
        seed: u64,
    },
    /// Delete one `StaleReport` event: its discarded completion now looks
    /// applied from a non-holder (→ [`RecoveryViolation::GhostGradient`]).
    DropStaleReport {
        /// Picks which rejection, deterministically.
        seed: u64,
    },
    /// Append a fresh grant + completion of an already-applied token
    /// (→ [`RecoveryViolation::GrantAfterApply`] and
    /// [`RecoveryViolation::DuplicateApplication`]).
    ReplayToken {
        /// Picks which applied token, deterministically.
        seed: u64,
    },
    /// Insert a grant to a crashed worker right after its crash
    /// (→ [`RecoveryViolation::GrantToDeadWorker`]).
    GrantToDead {
        /// Picks which crash, deterministically.
        seed: u64,
    },
}

/// Rebuilds `trace` with `mutation` applied. A mutation whose precondition the
/// trace lacks (e.g. [`RecoveryMutation::DropRevoke`] on a fault-free trace)
/// returns the trace unchanged.
pub fn mutate_trace(trace: &Trace, mutation: RecoveryMutation) -> Trace {
    let pick = |candidates: &[usize], seed: u64| -> Option<usize> {
        if candidates.is_empty() {
            None
        } else {
            Some(candidates[(seed as usize) % candidates.len()])
        }
    };
    let events = trace.events();
    let mut skip: Option<usize> = None;
    // (index to insert after, events to insert)
    let mut insert: Option<(usize, Vec<EventKind>)> = None;

    match mutation {
        RecoveryMutation::DropRevoke { seed } => {
            let revokes: Vec<usize> = (0..events.len())
                .filter(|&i| matches!(events[i].kind, EventKind::Revoke { .. }))
                .collect();
            skip = pick(&revokes, seed);
        }
        RecoveryMutation::DropStaleReport { seed } => {
            let stales: Vec<usize> = (0..events.len())
                .filter(|&i| matches!(events[i].kind, EventKind::StaleReport { .. }))
                .collect();
            skip = pick(&stales, seed);
        }
        RecoveryMutation::ReplayToken { seed } => {
            // Completions that were actually applied (not stale-rejected).
            let mut stale: BTreeMap<(usize, u64), u64> = BTreeMap::new();
            for e in events {
                if let EventKind::StaleReport { worker, token } = e.kind {
                    *stale.entry((worker, token)).or_insert(0) += 1;
                }
            }
            let mut appliers: Vec<(usize, u64, usize, u64)> = Vec::new();
            for e in events {
                if let EventKind::Complete {
                    worker,
                    token,
                    level,
                    iteration,
                } = e.kind
                {
                    match stale.get_mut(&(worker, token)) {
                        Some(left) if *left > 0 => *left -= 1,
                        _ => appliers.push((worker, token, level, iteration)),
                    }
                }
            }
            if !appliers.is_empty() {
                let (worker, token, level, iteration) = appliers[(seed as usize) % appliers.len()];
                insert = Some((
                    events.len().saturating_sub(1),
                    vec![
                        EventKind::Grant {
                            worker,
                            token,
                            level,
                            iteration,
                            deps: vec![],
                        },
                        EventKind::Complete {
                            worker,
                            token,
                            level,
                            iteration,
                        },
                    ],
                ));
            }
        }
        RecoveryMutation::GrantToDead { seed } => {
            let crashes: Vec<usize> = (0..events.len())
                .filter(|&i| matches!(events[i].kind, EventKind::Crash { .. }))
                .collect();
            if let Some(at) = pick(&crashes, seed) {
                if let EventKind::Crash { worker } = events[at].kind {
                    // A token id far outside any real plan's range.
                    let phantom = u64::MAX;
                    insert = Some((
                        at,
                        vec![
                            EventKind::Grant {
                                worker,
                                token: phantom,
                                level: 0,
                                iteration: 0,
                                deps: vec![],
                            },
                            EventKind::Complete {
                                worker,
                                token: phantom,
                                level: 0,
                                iteration: 0,
                            },
                        ],
                    ));
                }
            }
        }
    }

    let mut out = Trace::enabled();
    for (i, e) in events.iter().enumerate() {
        if skip != Some(i) {
            out.record_kind(e.time, &e.source, e.kind.clone(), || e.message.clone());
        }
        if let Some((at, kinds)) = &insert {
            if *at == i {
                for k in kinds {
                    out.record_kind(e.time, "mutation", k.clone(), String::new);
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use fela_cluster::{FaultKind, FaultModel, Scenario};
    use fela_core::{FelaConfig, FelaRuntime};
    use fela_model::zoo;
    use fela_sim::SimDuration;

    fn traced(fault: FaultModel) -> Trace {
        let scenario = Scenario::paper(zoo::vgg19(), 128)
            .with_iterations(3)
            .with_fault(fault);
        let (_, trace) =
            FelaRuntime::new(FelaConfig::new(3).with_weights(vec![1, 2, 4])).run_traced(&scenario);
        trace
    }

    /// A faulted trace guaranteed to contain revocations and stale reports:
    /// scan scripted hang sites until one catches a worker mid-compute.
    fn expiring_trace() -> Trace {
        for worker in 0..8 {
            for iteration in 0..3 {
                let tr = traced(FaultModel::Scripted {
                    worker,
                    iteration,
                    kind: FaultKind::Hang {
                        stall: SimDuration::from_secs(600),
                    },
                });
                let has = |f: fn(&EventKind) -> bool| tr.events().iter().any(|e| f(&e.kind));
                if has(|k| matches!(k, EventKind::Revoke { .. }))
                    && has(|k| matches!(k, EventKind::StaleReport { .. }))
                {
                    return tr;
                }
            }
        }
        panic!("no scripted hang produced a lease expiry");
    }

    fn crash_trace() -> Trace {
        traced(FaultModel::Scripted {
            worker: 2,
            iteration: 1,
            kind: FaultKind::CrashRestart {
                down: SimDuration::from_secs(5),
            },
        })
    }

    #[test]
    fn fault_free_run_is_exactly_once() {
        let tr = traced(FaultModel::None);
        let s = check_recovery(&tr).unwrap();
        assert_eq!(s.tokens, 14 * 3);
        assert_eq!(s.grants, 14 * 3);
        assert_eq!(s.applied, 14 * 3);
        assert_eq!(s.discarded + s.revocations + s.crashes, 0);
    }

    #[test]
    fn crash_restart_run_obeys_the_lease_protocol() {
        let s = check_recovery(&crash_trace()).unwrap();
        assert_eq!(s.applied, 14 * 3, "every gradient applied exactly once");
        assert_eq!(s.crashes, 1);
        assert_eq!(s.restarts, 1);
        assert!(s.grants >= s.applied);
    }

    #[test]
    fn lease_expiry_run_obeys_the_lease_protocol() {
        let s = check_recovery(&expiring_trace()).unwrap();
        assert_eq!(s.applied, 14 * 3);
        assert!(s.revocations >= 1);
        assert!(s.discarded >= 1, "the thawed report must be discarded");
    }

    #[test]
    fn dropped_revocation_is_diagnosed() {
        for seed in [0u64, 1, 7] {
            let tr = mutate_trace(&expiring_trace(), RecoveryMutation::DropRevoke { seed });
            let violations = check_recovery(&tr).unwrap_err();
            assert!(
                violations
                    .iter()
                    .any(|v| matches!(v, RecoveryViolation::DoubleGrant { .. })),
                "seed {seed}: {violations:?}"
            );
        }
    }

    #[test]
    fn dropped_stale_report_is_diagnosed() {
        let tr = mutate_trace(
            &expiring_trace(),
            RecoveryMutation::DropStaleReport { seed: 0 },
        );
        let violations = check_recovery(&tr).unwrap_err();
        assert!(
            violations
                .iter()
                .any(|v| matches!(v, RecoveryViolation::GhostGradient { .. })),
            "{violations:?}"
        );
    }

    #[test]
    fn replayed_token_is_diagnosed() {
        for seed in [0u64, 11, 2024] {
            let tr = mutate_trace(&crash_trace(), RecoveryMutation::ReplayToken { seed });
            let violations = check_recovery(&tr).unwrap_err();
            assert!(
                violations
                    .iter()
                    .any(|v| matches!(v, RecoveryViolation::GrantAfterApply { .. })),
                "seed {seed}: {violations:?}"
            );
            assert!(
                violations
                    .iter()
                    .any(|v| matches!(v, RecoveryViolation::DuplicateApplication { .. })),
                "seed {seed}: {violations:?}"
            );
        }
    }

    #[test]
    fn grant_to_dead_worker_is_diagnosed() {
        let tr = mutate_trace(&crash_trace(), RecoveryMutation::GrantToDead { seed: 0 });
        let violations = check_recovery(&tr).unwrap_err();
        assert!(
            violations
                .iter()
                .any(|v| matches!(v, RecoveryViolation::GrantToDeadWorker { .. })),
            "{violations:?}"
        );
    }

    #[test]
    fn mutation_without_precondition_is_identity() {
        let tr = traced(FaultModel::None);
        let same = mutate_trace(&tr, RecoveryMutation::DropRevoke { seed: 3 });
        assert_eq!(same.events().len(), tr.events().len());
        check_recovery(&same).unwrap();
    }

    #[test]
    fn faulted_traces_are_also_race_free() {
        // The ordering half of the story: revocation edges keep the
        // happens-before analysis clean under crashes and expiries.
        crate::race::check_trace(&crash_trace(), 0).unwrap();
        crate::race::check_trace(&expiring_trace(), 0).unwrap();
    }
}
