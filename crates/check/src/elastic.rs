//! Elastic-run verification: per-epoch membership, re-bin fidelity and the
//! lease protocol across resize boundaries.
//!
//! An elastic run is a chain of constant-membership epochs
//! ([`fela_elastic::ElasticPlan`]) executed back to back. Three things can go
//! wrong that no fixed-membership checker sees:
//!
//! 1. **Grants to departed workers** — after a scale-down, the control plane
//!    must never grant a token to a rank outside the shrunken membership.
//!    [`check_elastic`] replays every epoch's trace against that epoch's
//!    worker set.
//! 2. **Re-bin divergence** — the incremental boundary re-tune promises
//!    bit-identity with the full offline two-phase search. The checker re-runs
//!    the full [`fela_tuning::Tuner`] oracle per epoch and compares the
//!    chosen weights and CTD subset.
//! 3. **Protocol breaks inside an epoch** — each epoch's trace must still
//!    pass the happens-before race analysis ([`crate::race`]) and the
//!    exactly-once lease replay ([`crate::recovery`]); violations are
//!    reported with the epoch attached.
//!
//! [`mutate_elastic`] applies seeded corruptions ([`ElasticMutation`]) to a
//! real elastic run and [`run_elastic_mutation_matrix`] proves every
//! diagnostic fires — the elastic counterpart of the recovery and WAL
//! mutation matrices.

use fela_cluster::Scenario;
use fela_elastic::{ElasticError, ElasticOptions, ElasticPlan, ElasticRuntime};
use fela_sim::{EventKind, Trace};
use fela_tuning::Tuner;

use crate::race::{check_trace, RaceViolation};
use crate::recovery::{check_recovery, RecoveryViolation};

/// A violation of the elastic execution contract.
#[derive(Clone, PartialEq, Debug)]
pub enum ElasticViolation {
    /// A token was granted to a rank outside the epoch's membership — a
    /// grant to a departed (or never-joined) worker.
    GrantToDepartedWorker {
        /// Epoch whose trace holds the grant.
        epoch: usize,
        /// The out-of-membership rank.
        worker: usize,
        /// The epoch's worker count (valid ranks are `0..n_workers`).
        n_workers: usize,
        /// The granted token.
        token: u64,
    },
    /// An epoch's planned weight vector differs from the full two-phase
    /// search oracle — the incremental re-bin diverged.
    RebinDivergence {
        /// The diverging epoch.
        epoch: usize,
        /// Weights the plan recorded.
        planned: Vec<u64>,
        /// Weights the full offline search chooses.
        oracle: Vec<u64>,
    },
    /// An epoch's planned CTD subset differs from the full search oracle.
    SubsetDivergence {
        /// The diverging epoch.
        epoch: usize,
        /// Subset the plan recorded.
        planned: Option<usize>,
        /// Subset the full offline search chooses.
        oracle: Option<usize>,
    },
    /// The trace chain does not tile the plan (missing or extra epochs).
    EpochCountMismatch {
        /// Traces supplied.
        traces: usize,
        /// Epochs planned.
        epochs: usize,
    },
    /// A happens-before race inside one epoch's trace.
    Race {
        /// The offending epoch.
        epoch: usize,
        /// The underlying race violation.
        violation: RaceViolation,
    },
    /// A lease-protocol violation inside one epoch's trace.
    Recovery {
        /// The offending epoch.
        epoch: usize,
        /// The underlying recovery violation.
        violation: RecoveryViolation,
    },
}

impl std::fmt::Display for ElasticViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ElasticViolation::GrantToDepartedWorker {
                epoch,
                worker,
                n_workers,
                token,
            } => write!(
                f,
                "epoch {epoch}: token {token} granted to rank {worker}, outside the \
                 {n_workers}-worker membership"
            ),
            ElasticViolation::RebinDivergence {
                epoch,
                planned,
                oracle,
            } => write!(
                f,
                "epoch {epoch}: planned weights {planned:?} diverge from the full-search \
                 oracle {oracle:?}"
            ),
            ElasticViolation::SubsetDivergence {
                epoch,
                planned,
                oracle,
            } => write!(
                f,
                "epoch {epoch}: planned CTD subset {planned:?} diverges from the \
                 full-search oracle {oracle:?}"
            ),
            ElasticViolation::EpochCountMismatch { traces, epochs } => write!(
                f,
                "{traces} epoch trace(s) supplied for a {epochs}-epoch plan"
            ),
            ElasticViolation::Race { epoch, violation } => {
                write!(f, "epoch {epoch}: {violation}")
            }
            ElasticViolation::Recovery { epoch, violation } => {
                write!(f, "epoch {epoch}: {violation}")
            }
        }
    }
}

/// Statistics of a clean elastic replay.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ElasticSummary {
    /// Epochs checked.
    pub epochs: usize,
    /// Resize boundaries crossed.
    pub resizes: usize,
    /// Grants across all epochs.
    pub grants: usize,
    /// Gradients applied across all epochs.
    pub applied: usize,
    /// Tuning cases profiled at boundaries (plan accounting).
    pub retune_profiled: usize,
    /// Tuning cases served from the cross-epoch cache (plan accounting).
    pub retune_reused: usize,
}

/// Verifies an elastic run: `traces[i]` is the simulator (or conformant live)
/// trace of `plan.epochs[i]`. `profile_iterations` must match the options the
/// plan was built with — the full-search oracle is re-run with it.
///
/// Returns the summary if every epoch obeys the contract, or every violation
/// found (most expensive check — the tuning oracle — runs only when the
/// cheaper structural checks found nothing for that epoch).
pub fn check_elastic(
    plan: &ElasticPlan,
    traces: &[Trace],
    profile_iterations: u64,
) -> Result<ElasticSummary, Vec<ElasticViolation>> {
    let mut violations = Vec::new();
    if traces.len() != plan.epochs.len() {
        return Err(vec![ElasticViolation::EpochCountMismatch {
            traces: traces.len(),
            epochs: plan.epochs.len(),
        }]);
    }
    let mut summary = ElasticSummary {
        epochs: plan.epochs.len(),
        resizes: plan.resizes(),
        ..ElasticSummary::default()
    };
    let oracle = Tuner { profile_iterations };
    for (epoch, (e, trace)) in plan.epochs.iter().zip(traces).enumerate() {
        let n_workers = e.spec.n_workers();
        for ev in trace.events() {
            if let EventKind::Grant { worker, token, .. } = ev.kind {
                if worker >= n_workers {
                    violations.push(ElasticViolation::GrantToDepartedWorker {
                        epoch,
                        worker,
                        n_workers,
                        token,
                    });
                }
            }
        }
        match check_trace(trace, e.config.staleness) {
            Ok(_) => {}
            Err(races) => violations.extend(
                races
                    .into_iter()
                    .map(|violation| ElasticViolation::Race { epoch, violation }),
            ),
        }
        match check_recovery(trace) {
            Ok(s) => {
                summary.grants += s.grants;
                summary.applied += s.applied;
            }
            Err(lease) => violations.extend(
                lease
                    .into_iter()
                    .map(|violation| ElasticViolation::Recovery { epoch, violation }),
            ),
        }
        summary.retune_profiled += e.retune.profiled;
        summary.retune_reused += e.retune.reused;

        let outcome = oracle.tune_with_jobs(&e.scenario, 1);
        let best = &outcome.cases[outcome.best].case;
        if best.weights != e.weights {
            violations.push(ElasticViolation::RebinDivergence {
                epoch,
                planned: e.weights.clone(),
                oracle: best.weights.clone(),
            });
        }
        if best.subset != e.subset {
            violations.push(ElasticViolation::SubsetDivergence {
                epoch,
                planned: e.subset,
                oracle: best.subset,
            });
        }
    }
    if violations.is_empty() {
        Ok(summary)
    } else {
        Err(violations)
    }
}

/// A seeded corruption of an elastic run, for mutation-testing
/// [`check_elastic`].
#[derive(Clone, Copy, Debug)]
pub enum ElasticMutation {
    /// Rewrites one grant's recipient to a rank outside its epoch's
    /// membership — the schedule a buggy rebalance would produce after a
    /// leave (→ [`ElasticViolation::GrantToDepartedWorker`]).
    GrantToDeparted {
        /// Picks the epoch and grant, deterministically.
        seed: u64,
    },
    /// Bumps one planned weight in one epoch — an incremental re-tune that
    /// silently diverged from the full search
    /// (→ [`ElasticViolation::RebinDivergence`]).
    RebinDiverge {
        /// Picks the epoch and weight, deterministically.
        seed: u64,
    },
}

impl ElasticMutation {
    /// Every mutation kind at `seed`, for matrix drivers.
    pub fn matrix(seed: u64) -> [ElasticMutation; 2] {
        [
            ElasticMutation::GrantToDeparted { seed },
            ElasticMutation::RebinDiverge { seed },
        ]
    }
}

/// Rebuilds `(plan, traces)` with `mutation` applied.
pub fn mutate_elastic(
    plan: &ElasticPlan,
    traces: &[Trace],
    mutation: ElasticMutation,
) -> (ElasticPlan, Vec<Trace>) {
    let mut plan = plan.clone();
    let mut traces = traces.to_vec();
    let n_epochs = plan.epochs.len().max(1);
    match mutation {
        ElasticMutation::GrantToDeparted { seed } => {
            let epoch = (seed as usize) % n_epochs;
            let n_workers = plan.epochs[epoch].spec.n_workers();
            let grants: Vec<usize> = (0..traces[epoch].events().len())
                .filter(|&i| matches!(traces[epoch].events()[i].kind, EventKind::Grant { .. }))
                .collect();
            if let Some(&at) = grants.get((seed as usize / n_epochs) % grants.len().max(1)) {
                let mut out = Trace::enabled();
                for (i, ev) in traces[epoch].events().iter().enumerate() {
                    let mut kind = ev.kind.clone();
                    if i == at {
                        if let EventKind::Grant { worker, .. } = &mut kind {
                            // The first rank past the membership: exactly the
                            // rank a stale routing table would still hold
                            // after a one-worker leave.
                            *worker = n_workers;
                        }
                    }
                    out.record_kind(ev.time, &ev.source, kind, || ev.message.clone());
                }
                traces[epoch] = out;
            }
        }
        ElasticMutation::RebinDiverge { seed } => {
            let epoch = (seed as usize) % n_epochs;
            let e = &mut plan.epochs[epoch];
            if !e.weights.is_empty() {
                let at = (seed as usize / n_epochs) % e.weights.len();
                e.weights[at] += 1;
            }
        }
    }
    (plan, traces)
}

/// One entry of the elastic mutation matrix.
#[derive(Clone, Debug)]
pub struct ElasticMutationRun {
    /// The corruption applied.
    pub mutation: ElasticMutation,
    /// The violations it provoked (never empty for a sound matrix).
    pub violations: Vec<ElasticViolation>,
}

/// Runs every [`ElasticMutation`] at every seed against a real traced elastic
/// run of `scenario`, returning what each corruption provoked. A sound
/// checker yields a non-empty violation list for every entry.
///
/// # Errors
/// Propagates planning failures from the underlying elastic run.
pub fn run_elastic_mutation_matrix(
    scenario: &Scenario,
    options: ElasticOptions,
    seeds: &[u64],
) -> Result<Vec<ElasticMutationRun>, ElasticError> {
    let runtime = ElasticRuntime::new(options);
    let (outcome, traces) = runtime.run_elastic_traced(scenario)?;
    let mut runs = Vec::with_capacity(seeds.len() * 2);
    for &seed in seeds {
        for mutation in ElasticMutation::matrix(seed) {
            let (plan, traces) = mutate_elastic(&outcome.plan, &traces, mutation);
            let violations = match check_elastic(&plan, &traces, options.profile_iterations) {
                Ok(_) => Vec::new(),
                Err(vs) => vs,
            };
            runs.push(ElasticMutationRun {
                mutation,
                violations,
            });
        }
    }
    Ok(runs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fela_cluster::{ResizeAction, ResizeEvent, ResizeModel};
    use fela_model::zoo;

    fn scenario() -> Scenario {
        Scenario::paper(zoo::googlenet(), 256)
            .with_iterations(6)
            .with_resize(ResizeModel::Scripted(vec![
                ResizeEvent {
                    iteration: 2,
                    action: ResizeAction::Join(2),
                },
                ResizeEvent {
                    iteration: 4,
                    action: ResizeAction::Leave(vec![9, 3]),
                },
            ]))
    }

    fn options() -> ElasticOptions {
        ElasticOptions {
            profile_iterations: 1,
            ..ElasticOptions::default()
        }
    }

    fn traced_run() -> (ElasticPlan, Vec<Trace>) {
        let (outcome, traces) = ElasticRuntime::new(options())
            .run_elastic_traced(&scenario())
            .expect("elastic run");
        (outcome.plan, traces)
    }

    #[test]
    fn a_real_elastic_run_checks_clean() {
        let (plan, traces) = traced_run();
        let s = check_elastic(&plan, &traces, 1).expect("clean run");
        assert_eq!(s.epochs, 3);
        assert_eq!(s.resizes, 2);
        assert!(s.grants > 0);
        assert_eq!(s.grants, s.applied, "resize boundaries drain: no losses");
        assert!(s.retune_reused > 0, "the cross-epoch cache was exercised");
    }

    #[test]
    fn trace_count_mismatch_is_diagnosed() {
        let (plan, traces) = traced_run();
        let violations = check_elastic(&plan, &traces[..2], 1).expect_err("must fail");
        assert!(matches!(
            violations[..],
            [ElasticViolation::EpochCountMismatch {
                traces: 2,
                epochs: 3
            }]
        ));
    }

    #[test]
    fn grant_to_departed_worker_is_diagnosed() {
        let (plan, traces) = traced_run();
        for seed in [0u64, 1, 2, 17] {
            let (plan, traces) =
                mutate_elastic(&plan, &traces, ElasticMutation::GrantToDeparted { seed });
            let violations = check_elastic(&plan, &traces, 1).expect_err("must fail");
            assert!(
                violations
                    .iter()
                    .any(|v| matches!(v, ElasticViolation::GrantToDepartedWorker { .. })),
                "seed {seed}: {violations:?}"
            );
        }
    }

    #[test]
    fn rebin_divergence_is_diagnosed() {
        let (plan, traces) = traced_run();
        for seed in [0u64, 1, 2] {
            let (plan, traces) =
                mutate_elastic(&plan, &traces, ElasticMutation::RebinDiverge { seed });
            let violations = check_elastic(&plan, &traces, 1).expect_err("must fail");
            assert!(
                violations
                    .iter()
                    .any(|v| matches!(v, ElasticViolation::RebinDivergence { .. })),
                "seed {seed}: {violations:?}"
            );
        }
    }

    #[test]
    fn the_mutation_matrix_fires_every_diagnostic() {
        let runs = run_elastic_mutation_matrix(&scenario(), options(), &[0, 1, 2]).expect("matrix");
        assert_eq!(runs.len(), 6);
        for run in &runs {
            assert!(
                !run.violations.is_empty(),
                "{:?} provoked no diagnostic",
                run.mutation
            );
        }
        // Each mutation kind provokes its own diagnostic, not a generic one.
        for run in &runs {
            match run.mutation {
                ElasticMutation::GrantToDeparted { .. } => assert!(run
                    .violations
                    .iter()
                    .any(|v| matches!(v, ElasticViolation::GrantToDepartedWorker { .. }))),
                ElasticMutation::RebinDiverge { .. } => assert!(run
                    .violations
                    .iter()
                    .any(|v| matches!(v, ElasticViolation::RebinDivergence { .. }))),
            }
        }
    }
}
