//! Frame-protocol session verifier for the live runtime.
//!
//! The server ↔ worker dialogue over a [`Link`] follows a strict session
//! discipline (DESIGN.md §"live runtime"): an optional `Hello`, then —
//! virtual mode — blocking `CostQuery`/`CostReply` round trips, or — real
//! mode — an initial `Request` followed by `Grant`/`Report` cycles, and an
//! epilogue of `Iter*`, `End`, `Params` with `Params` the link's last frame.
//! This module encodes that discipline as one state machine per link
//! ([`SessionVerifier`]) and replays it over a stream of recorded
//! [`SyncEvent`]s — either captured from a real run by
//! [`RecordingSched`](fela_live::RecordingSched), or synthesized by the model
//! checker ([`crate::mc`]) for every explored execution.
//!
//! Checked per link (= per worker index), from the server's perspective:
//!
//! * **direction** — only worker-type frames arrive (`Hello`, `Request`,
//!   `Report`, `CostReply`, `Params`), only server-type frames depart
//!   (`CostQuery`, `Grant`, `Iter`, `Hang`, `End`);
//! * **identity** — `Request`/`Report` frames carry the link's worker index;
//! * **grant/report matching** — every `Report` pops the *oldest* outstanding
//!   `Grant` on its link (per-direction FIFO means reports cannot overtake
//!   each other), and a `Report` with no outstanding grant is a violation;
//! * **cost round trips** — a `CostReply` answers exactly the pending
//!   `CostQuery`, and queries never nest;
//! * **epilogue** — nothing is sent after `End`, no `Grant` after `Iter`,
//!   `Params` only after `End`, and nothing arrives after `Params`;
//! * **inbox conservation** — each [`SyncEvent::InboxDequeued`] on the real
//!   server matches the oldest not-yet-dequeued arrival from that worker (the
//!   pump threads must not reorder or invent messages);
//! * **routing** (cross-link, needs the control-plane op log) — a `Grant`
//!   frame carries no worker id, so a grant sent down the wrong link is
//!   locally well-formed on a fresh link; with the recorded
//!   [`CoordOp`](fela_core::CoordOp) history the verifier knows which worker
//!   the plane granted each token *to* and flags deliveries to anyone else.
//!
//! [`mutate_events`] applies the seeded wire mutations of the PR's mutation
//! matrix (mirroring `dag::Mutation` / `recovery::mutate_trace`): each must
//! surface as a distinct [`SessionViolation`].
//!
//! [`Link`]: fela_live::transport::Link

use std::collections::{BTreeMap, VecDeque};

use fela_core::{CoordOp, OpOutcome};
use fela_live::{Endpoint, Frame, SyncEvent};

/// A violation of the frame-protocol session discipline.
#[derive(Clone, PartialEq, Debug)]
pub enum SessionViolation {
    /// A frame travelled in the wrong direction (e.g. the server received a
    /// `Grant`, or sent a `Report`).
    WrongDirection {
        /// Link (worker index) the frame moved on.
        worker: usize,
        /// Debug form of the offending frame.
        frame: String,
    },
    /// A `Request`/`Report` arrived on link `link` claiming worker id
    /// `claimed`.
    WrongWorkerId {
        /// Link the frame arrived on.
        link: usize,
        /// Worker id embedded in the frame.
        claimed: usize,
    },
    /// A `Report` arrived with no outstanding grant on its link.
    ReportWithoutGrant {
        /// Reporting link.
        worker: usize,
        /// Reported token.
        token: u64,
    },
    /// A `Report` arrived for a token that is outstanding, but is not the
    /// oldest outstanding grant on its link — per-direction FIFO was broken.
    ReportOutOfOrder {
        /// Reporting link.
        worker: usize,
        /// Oldest outstanding token (what FIFO required).
        expected: u64,
        /// Token actually reported.
        got: u64,
    },
    /// A `CostReply` did not answer the pending `CostQuery`.
    CostReplyMismatch {
        /// Link the reply arrived on.
        worker: usize,
        /// Token of the pending query, if any.
        expected: Option<u64>,
        /// Token the reply carried.
        got: u64,
    },
    /// A `CostQuery` was sent while another query was still unanswered on the
    /// same link (the virtual server's round trips are strictly blocking).
    NestedCostQuery {
        /// Link the query went down.
        worker: usize,
        /// Token of the new query.
        token: u64,
    },
    /// A frame was sent on a link after its `End`.
    SendAfterEnd {
        /// Link.
        worker: usize,
        /// Debug form of the frame sent.
        frame: String,
    },
    /// A `Grant` was sent after the epilogue (`Iter`) began on its link.
    GrantAfterIter {
        /// Link.
        worker: usize,
        /// Granted token.
        token: u64,
    },
    /// `Params` arrived before `End` was sent on the link.
    ParamsBeforeEnd {
        /// Link.
        worker: usize,
    },
    /// A frame arrived on a link after its `Params` (which must be last).
    FrameAfterParams {
        /// Link.
        worker: usize,
        /// Debug form of the late frame.
        frame: String,
    },
    /// The server dequeued a message from a worker that does not match the
    /// oldest not-yet-dequeued arrival from that worker.
    InboxReorder {
        /// Worker whose messages were reordered.
        worker: usize,
        /// Debug form of the expected (oldest) arrival.
        expected: String,
        /// Debug form of what was dequeued.
        got: String,
    },
    /// The server dequeued a message from a worker with no recorded arrival.
    InboxWithoutArrival {
        /// Worker the phantom message was attributed to.
        worker: usize,
        /// Debug form of the dequeued message.
        frame: String,
    },
    /// A `Grant` for `token` was delivered down the wrong link: the control
    /// plane granted it to `granted_to`, the frame went to `delivered_to`.
    MisroutedGrant {
        /// Granted token.
        token: u64,
        /// Worker the plane granted the token to.
        granted_to: usize,
        /// Link the frame was actually sent down.
        delivered_to: usize,
    },
}

impl std::fmt::Display for SessionViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SessionViolation::WrongDirection { worker, frame } => {
                write!(f, "link {worker}: frame in the wrong direction: {frame}")
            }
            SessionViolation::WrongWorkerId { link, claimed } => {
                write!(f, "link {link}: frame claims worker id {claimed}")
            }
            SessionViolation::ReportWithoutGrant { worker, token } => {
                write!(
                    f,
                    "link {worker}: Report({token}) with no outstanding grant"
                )
            }
            SessionViolation::ReportOutOfOrder {
                worker,
                expected,
                got,
            } => write!(
                f,
                "link {worker}: Report({got}) overtook outstanding grant {expected}"
            ),
            SessionViolation::CostReplyMismatch {
                worker,
                expected,
                got,
            } => write!(
                f,
                "link {worker}: CostReply({got}) does not answer pending query {expected:?}"
            ),
            SessionViolation::NestedCostQuery { worker, token } => {
                write!(f, "link {worker}: CostQuery({token}) nested inside another")
            }
            SessionViolation::SendAfterEnd { worker, frame } => {
                write!(f, "link {worker}: sent after End: {frame}")
            }
            SessionViolation::GrantAfterIter { worker, token } => {
                write!(f, "link {worker}: Grant({token}) after the epilogue began")
            }
            SessionViolation::ParamsBeforeEnd { worker } => {
                write!(f, "link {worker}: Params before End")
            }
            SessionViolation::FrameAfterParams { worker, frame } => {
                write!(f, "link {worker}: frame after Params: {frame}")
            }
            SessionViolation::InboxReorder {
                worker,
                expected,
                got,
            } => write!(
                f,
                "worker {worker}: inbox dequeued {got}, oldest arrival is {expected}"
            ),
            SessionViolation::InboxWithoutArrival { worker, frame } => {
                write!(f, "worker {worker}: inbox dequeued {frame} with no arrival")
            }
            SessionViolation::MisroutedGrant {
                token,
                granted_to,
                delivered_to,
            } => write!(
                f,
                "Grant({token}) for worker {granted_to} delivered down link {delivered_to}"
            ),
        }
    }
}

/// FIFO grant/report matching for one reported token: shared by the `Report`
/// and `ReportBatch` arms so a batched report is checked token by token,
/// exactly as if each had arrived as its own frame.
fn check_report_token(
    violations: &mut Vec<SessionViolation>,
    link: &mut LinkSession,
    worker: usize,
    token: u64,
) {
    match link.outstanding.front().copied() {
        Some(oldest) if oldest == token => {
            link.outstanding.pop_front();
        }
        Some(oldest) if link.outstanding.contains(&token) => {
            violations.push(SessionViolation::ReportOutOfOrder {
                worker,
                expected: oldest,
                got: token,
            });
            link.outstanding.retain(|t| *t != token);
        }
        _ => violations.push(SessionViolation::ReportWithoutGrant { worker, token }),
    }
}

/// Per-link session machine state.
#[derive(Clone, Default)]
struct LinkSession {
    /// Tokens granted but not yet reported, oldest first.
    outstanding: VecDeque<u64>,
    /// Token of the unanswered `CostQuery`, if any.
    pending_query: Option<u64>,
    /// Whether the epilogue (`Iter`) has begun on this link.
    sent_iter: bool,
    /// Whether `End` was sent on this link.
    sent_end: bool,
    /// Whether `Params` arrived (must be the link's last inbound frame).
    got_params: bool,
    /// Arrivals not yet dequeued by the server loop (`None` = link closed).
    arrivals: VecDeque<Option<Frame>>,
}

/// Outcome of verifying one event stream.
#[derive(Clone, Debug)]
pub struct SessionReport {
    /// Distinct links observed.
    pub links: usize,
    /// Frames checked (sent + received, server perspective).
    pub frames: u64,
    /// Violations, in stream order.
    pub violations: Vec<SessionViolation>,
}

impl SessionReport {
    /// True when the stream was session-clean.
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Incremental session verifier over a [`SyncEvent`] stream.
///
/// Events are checked from the server's perspective; worker-side events
/// (`side == Endpoint::Worker`) describe the same frames and are skipped so
/// a both-endpoints recording is not double-checked.
#[derive(Clone, Default)]
pub struct SessionVerifier {
    links: BTreeMap<usize, LinkSession>,
    /// Per-token queue of intended grantees, in plane issue order (from the
    /// op log). `None` = no routing information; misroutes undetectable.
    intents: Option<BTreeMap<u64, VecDeque<usize>>>,
    violations: Vec<SessionViolation>,
    frames: u64,
}

impl SessionVerifier {
    /// A verifier with no routing information.
    pub fn new() -> Self {
        SessionVerifier::default()
    }

    /// A verifier that knows, from the control-plane op log, which worker
    /// each grant was issued to — enabling [`SessionViolation::MisroutedGrant`].
    pub fn with_grant_intents(ops: &[CoordOp]) -> Self {
        let mut v = SessionVerifier {
            intents: Some(BTreeMap::new()),
            ..SessionVerifier::default()
        };
        for op in ops {
            if let OpOutcome::Granted { worker, token, .. } = &op.outcome {
                v.add_grant_intent(*token, *worker);
            }
        }
        v
    }

    /// Records that the control plane issued `token` to `worker` (used by the
    /// model checker, which learns intents as it explores).
    pub fn add_grant_intent(&mut self, token: u64, worker: usize) {
        self.intents
            .get_or_insert_with(BTreeMap::new)
            .entry(token)
            .or_default()
            .push_back(worker);
    }

    /// Violations found so far (drains; exploration calls this per transition).
    pub fn take_violations(&mut self) -> Vec<SessionViolation> {
        std::mem::take(&mut self.violations)
    }

    /// Feeds one event through the machine.
    pub fn observe(&mut self, event: &SyncEvent) {
        match event {
            SyncEvent::FrameSent {
                side: Endpoint::Server,
                worker,
                frame,
            } => self.on_sent(*worker, frame),
            SyncEvent::FrameReceived {
                side: Endpoint::Server,
                worker,
                frame,
            } => self.on_received(*worker, frame),
            SyncEvent::LinkClosed {
                side: Endpoint::Server,
                worker,
            } => {
                let link = self.links.entry(*worker).or_default();
                // A closed link forgives its session state (crash semantics);
                // a restart starts a fresh machine on the same worker index.
                // The arrival queue keeps the close marker so the inbox
                // conservation check can match the pump's Gone notification.
                link.outstanding.clear();
                link.pending_query = None;
                link.sent_iter = false;
                link.sent_end = false;
                link.got_params = false;
                link.arrivals.push_back(None);
            }
            SyncEvent::InboxDequeued { worker, frame } => self.on_dequeued(*worker, frame),
            // Worker-side mirror events and timer fires carry no session
            // obligations of their own.
            _ => {}
        }
    }

    /// Finishes the stream and returns the report. End-of-stream link state
    /// (outstanding grants, unanswered queries, undrained arrivals) is *not*
    /// flagged: streams may legitimately be truncated mid-run.
    pub fn finish(self) -> SessionReport {
        SessionReport {
            links: self.links.len(),
            frames: self.frames,
            violations: self.violations,
        }
    }

    /// Routing check for one granted token: flags a delivery down a link the
    /// control plane did not grant it to.
    fn check_grant_intent(&mut self, worker: usize, token: u64) {
        if let Some(intents) = self.intents.as_mut() {
            let granted_to = intents.get_mut(&token).and_then(VecDeque::pop_front);
            if let Some(g) = granted_to {
                if g != worker {
                    self.violations.push(SessionViolation::MisroutedGrant {
                        token,
                        granted_to: g,
                        delivered_to: worker,
                    });
                }
            }
        }
    }

    fn on_sent(&mut self, worker: usize, frame: &Frame) {
        self.frames += 1;
        // Routing first: a misrouted grant is flagged at the send even when
        // locally well-formed on its link. A `GrantBatch` is checked grant by
        // grant, exactly as if each had shipped as its own frame.
        match frame {
            Frame::Grant { token, .. } => self.check_grant_intent(worker, *token),
            Frame::GrantBatch { grants } => {
                for g in grants {
                    self.check_grant_intent(worker, g.token);
                }
            }
            _ => {}
        }
        let link = self.links.entry(worker).or_default();
        if link.sent_end {
            self.violations.push(SessionViolation::SendAfterEnd {
                worker,
                frame: format!("{frame:?}"),
            });
            return;
        }
        match frame {
            Frame::Grant { token, .. } => {
                if link.sent_iter {
                    self.violations.push(SessionViolation::GrantAfterIter {
                        worker,
                        token: *token,
                    });
                }
                link.outstanding.push_back(*token);
            }
            Frame::GrantBatch { grants } => {
                for g in grants {
                    if link.sent_iter {
                        self.violations.push(SessionViolation::GrantAfterIter {
                            worker,
                            token: g.token,
                        });
                    }
                    link.outstanding.push_back(g.token);
                }
            }
            Frame::CostQuery { token, .. } => {
                if link.pending_query.is_some() {
                    self.violations.push(SessionViolation::NestedCostQuery {
                        worker,
                        token: *token,
                    });
                }
                link.pending_query = Some(*token);
            }
            Frame::Iter { .. } => link.sent_iter = true,
            Frame::End => link.sent_end = true,
            Frame::Hang { .. } => {}
            other => self.violations.push(SessionViolation::WrongDirection {
                worker,
                frame: format!("{other:?}"),
            }),
        }
    }

    fn on_received(&mut self, worker: usize, frame: &Frame) {
        self.frames += 1;
        let link = self.links.entry(worker).or_default();
        link.arrivals.push_back(Some(frame.clone()));
        if link.got_params {
            self.violations.push(SessionViolation::FrameAfterParams {
                worker,
                frame: format!("{frame:?}"),
            });
            return;
        }
        match frame {
            Frame::Hello { .. } => {}
            Frame::Request { worker: claimed } => {
                if *claimed as usize != worker {
                    self.violations.push(SessionViolation::WrongWorkerId {
                        link: worker,
                        claimed: *claimed as usize,
                    });
                }
            }
            Frame::Report {
                worker: claimed,
                token,
            } => {
                if *claimed as usize != worker {
                    self.violations.push(SessionViolation::WrongWorkerId {
                        link: worker,
                        claimed: *claimed as usize,
                    });
                }
                check_report_token(&mut self.violations, link, worker, *token);
            }
            Frame::ReportBatch {
                worker: claimed,
                tokens,
            } => {
                if *claimed as usize != worker {
                    self.violations.push(SessionViolation::WrongWorkerId {
                        link: worker,
                        claimed: *claimed as usize,
                    });
                }
                // Batched reports keep per-direction FIFO: each token must
                // pop the oldest outstanding grant, in batch order.
                for token in tokens {
                    check_report_token(&mut self.violations, link, worker, *token);
                }
            }
            Frame::CostReply { token, .. } => {
                if link.pending_query == Some(*token) {
                    link.pending_query = None;
                } else {
                    self.violations.push(SessionViolation::CostReplyMismatch {
                        worker,
                        expected: link.pending_query,
                        got: *token,
                    });
                }
            }
            Frame::Params { .. } => {
                if !link.sent_end {
                    self.violations
                        .push(SessionViolation::ParamsBeforeEnd { worker });
                }
                link.got_params = true;
            }
            other => self.violations.push(SessionViolation::WrongDirection {
                worker,
                frame: format!("{other:?}"),
            }),
        }
    }

    fn on_dequeued(&mut self, worker: usize, frame: &Option<Frame>) {
        let link = self.links.entry(worker).or_default();
        match link.arrivals.pop_front() {
            None => self.violations.push(SessionViolation::InboxWithoutArrival {
                worker,
                frame: format!("{frame:?}"),
            }),
            Some(expected) if expected != *frame => {
                self.violations.push(SessionViolation::InboxReorder {
                    worker,
                    expected: format!("{expected:?}"),
                    got: format!("{frame:?}"),
                });
            }
            Some(_) => {}
        }
    }
}

/// Verifies a recorded event stream in one call. Pass the run's control-plane
/// op log to also catch misrouted grants.
pub fn verify_session(events: &[SyncEvent], ops: Option<&[CoordOp]>) -> SessionReport {
    let mut verifier = match ops {
        Some(ops) => SessionVerifier::with_grant_intents(ops),
        None => SessionVerifier::new(),
    };
    for event in events {
        verifier.observe(event);
    }
    verifier.finish()
}

/// A seeded wire-level mutation of a recorded event stream — the protocol
/// half of the PR's mutation matrix (the model-level half,
/// [`crate::mc::McMutation`], lives in the explorer).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum WireMutation {
    /// Deletes the `nth` server-sent grant (0-based): the wakeup is lost in
    /// flight. Its report then arrives unmatched. A `GrantBatch` counts each
    /// of its grants in stream order; dropping one from a batch leaves the
    /// rest of the frame intact.
    DropGrant {
        /// Which grant to drop, in stream order.
        nth: usize,
    },
    /// Moves the report answering the `nth` server-sent grant to just
    /// *before* that grant: the pair is reordered on the wire, breaking
    /// per-direction FIFO. A report inside a `ReportBatch` is split out of
    /// the batch and overtakes the grant as its own frame.
    ReorderGrantReport {
        /// Which grant/report pair to reorder, in stream order.
        nth: usize,
    },
    /// Rewrites the link of the `nth` server-sent grant to the next worker
    /// (mod links): the shard reply reaches the wrong requester.
    MisrouteGrant {
        /// Which grant to misroute, in stream order.
        nth: usize,
    },
}

/// Applies `mutation` to a recorded stream, returning the corrupted copy.
/// If the stream has no matching frame the copy is returned unchanged (the
/// caller's "mutation must be caught" assertion will then fail loudly).
///
/// Grants are counted in stream order across both frame shapes: a singleton
/// `Grant` is one grant, a `GrantBatch` contributes its grants in batch
/// order — the mutations target the logical grant stream, not the framing.
pub fn mutate_events(events: &[SyncEvent], mutation: &WireMutation) -> Vec<SyncEvent> {
    let mut out: Vec<SyncEvent> = events.to_vec();
    let nth = match mutation {
        WireMutation::DropGrant { nth }
        | WireMutation::ReorderGrantReport { nth }
        | WireMutation::MisrouteGrant { nth } => *nth,
    };
    // Locate the nth logical grant: (event idx, index within a GrantBatch or
    // None for a singleton, link, token).
    let mut seen = 0usize;
    let mut target: Option<(usize, Option<usize>, usize, u64)> = None;
    'scan: for (i, ev) in events.iter().enumerate() {
        let SyncEvent::FrameSent {
            side: Endpoint::Server,
            worker,
            frame,
        } = ev
        else {
            continue;
        };
        match frame {
            Frame::Grant { token, .. } => {
                if seen == nth {
                    target = Some((i, None, *worker, *token));
                    break 'scan;
                }
                seen += 1;
            }
            Frame::GrantBatch { grants } => {
                for (j, g) in grants.iter().enumerate() {
                    if seen == nth {
                        target = Some((i, Some(j), *worker, g.token));
                        break 'scan;
                    }
                    seen += 1;
                }
            }
            _ => {}
        }
    }
    let Some((grant_idx, within, grant_worker, token)) = target else {
        return out;
    };
    match mutation {
        WireMutation::DropGrant { .. } => match within {
            None => {
                out.remove(grant_idx);
            }
            Some(j) => {
                let SyncEvent::FrameSent {
                    frame: Frame::GrantBatch { grants },
                    ..
                } = &mut out[grant_idx]
                else {
                    unreachable!("target indexed a GrantBatch");
                };
                grants.remove(j);
                if grants.is_empty() {
                    out.remove(grant_idx);
                }
            }
        },
        WireMutation::ReorderGrantReport { .. } => {
            // The answering report may be its own frame or one token of a
            // ReportBatch; either way it overtakes the grant as a singleton.
            let mut extracted: Option<SyncEvent> = None;
            for i in grant_idx + 1..out.len() {
                match &mut out[i] {
                    SyncEvent::FrameReceived {
                        side: Endpoint::Server,
                        worker,
                        frame: Frame::Report { token: t, .. },
                    } if *worker == grant_worker && *t == token => {
                        extracted = Some(out.remove(i));
                        break;
                    }
                    SyncEvent::FrameReceived {
                        side: Endpoint::Server,
                        worker,
                        frame:
                            Frame::ReportBatch {
                                worker: claimed,
                                tokens,
                            },
                    } if *worker == grant_worker && tokens.contains(&token) => {
                        let claimed = *claimed;
                        tokens.retain(|t| *t != token);
                        let empty = tokens.is_empty();
                        if empty {
                            out.remove(i);
                        }
                        extracted = Some(SyncEvent::FrameReceived {
                            side: Endpoint::Server,
                            worker: grant_worker,
                            frame: Frame::Report {
                                worker: claimed,
                                token,
                            },
                        });
                        break;
                    }
                    _ => {}
                }
            }
            if let Some(report) = extracted {
                out.insert(grant_idx, report);
            }
        }
        WireMutation::MisrouteGrant { .. } => {
            let links: std::collections::BTreeSet<usize> = events
                .iter()
                .filter_map(|ev| match ev {
                    SyncEvent::FrameSent {
                        side: Endpoint::Server,
                        worker,
                        ..
                    } => Some(*worker),
                    _ => None,
                })
                .collect();
            let wrong = links
                .iter()
                .copied()
                .find(|w| *w != grant_worker)
                .unwrap_or(grant_worker + 1);
            if let SyncEvent::FrameSent { worker, .. } = &mut out[grant_idx] {
                *worker = wrong;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sent(worker: usize, frame: Frame) -> SyncEvent {
        SyncEvent::FrameSent {
            side: Endpoint::Server,
            worker,
            frame,
        }
    }

    fn received(worker: usize, frame: Frame) -> SyncEvent {
        SyncEvent::FrameReceived {
            side: Endpoint::Server,
            worker,
            frame,
        }
    }

    fn grant(token: u64) -> Frame {
        Frame::Grant {
            token,
            level: 0,
            iteration: 0,
            batch: 4,
            unit_start: 0,
            unit_end: 1,
        }
    }

    fn report(worker: usize, token: u64) -> Frame {
        Frame::Report {
            worker: worker as u32,
            token,
        }
    }

    fn clean_stream() -> Vec<SyncEvent> {
        vec![
            received(0, Frame::Request { worker: 0 }),
            received(1, Frame::Request { worker: 1 }),
            sent(0, grant(0)),
            sent(1, grant(1)),
            received(0, report(0, 0)),
            sent(0, grant(2)),
            received(1, report(1, 1)),
            received(0, report(0, 2)),
            sent(
                0,
                Frame::Iter {
                    iteration: 0,
                    schedule: vec![],
                },
            ),
            sent(0, Frame::End),
            sent(1, Frame::End),
            received(0, Frame::Params { bytes: vec![1, 2] }),
            received(1, Frame::Params { bytes: vec![3] }),
        ]
    }

    #[test]
    fn a_clean_session_verifies() {
        let report = verify_session(&clean_stream(), None);
        assert!(report.ok(), "{:?}", report.violations);
        assert_eq!(report.links, 2);
    }

    #[test]
    fn each_wire_mutation_yields_a_distinct_diagnostic() {
        let stream = clean_stream();
        let dropped = verify_session(
            &mutate_events(&stream, &WireMutation::DropGrant { nth: 0 }),
            None,
        );
        assert!(
            matches!(
                dropped.violations.first(),
                Some(SessionViolation::ReportWithoutGrant {
                    worker: 0,
                    token: 0
                })
            ),
            "{:?}",
            dropped.violations
        );

        let reordered = verify_session(
            &mutate_events(&stream, &WireMutation::ReorderGrantReport { nth: 0 }),
            None,
        );
        assert!(
            matches!(
                reordered.violations.first(),
                Some(SessionViolation::ReportWithoutGrant {
                    worker: 0,
                    token: 0
                })
            ),
            "{:?}",
            reordered.violations
        );

        // Misrouting needs routing intents; fabricate the op log's grant view.
        let mut verifier = SessionVerifier::new();
        verifier.add_grant_intent(0, 0);
        verifier.add_grant_intent(1, 1);
        verifier.add_grant_intent(2, 0);
        for ev in mutate_events(&stream, &WireMutation::MisrouteGrant { nth: 0 }) {
            verifier.observe(&ev);
        }
        let misrouted = verifier.finish();
        assert!(
            matches!(
                misrouted.violations.first(),
                Some(SessionViolation::MisroutedGrant {
                    token: 0,
                    granted_to: 0,
                    delivered_to: 1
                })
            ),
            "{:?}",
            misrouted.violations
        );
    }

    #[test]
    fn wire_mutations_target_grants_inside_batch_frames() {
        use fela_live::WireGrant;
        let wire_grant = |token| WireGrant {
            token,
            level: 0,
            iteration: 0,
            batch: 4,
            unit_start: 0,
            unit_end: 1,
        };
        // A clean pipelined session: the logical grant stream is 0, 1, 2 but
        // every frame is a batch — the mutations must see through the framing.
        let stream = vec![
            received(0, Frame::Request { worker: 0 }),
            sent(
                0,
                Frame::GrantBatch {
                    grants: vec![wire_grant(0), wire_grant(1), wire_grant(2)],
                },
            ),
            received(
                0,
                Frame::ReportBatch {
                    worker: 0,
                    tokens: vec![0, 1, 2],
                },
            ),
        ];
        assert!(verify_session(&stream, None).ok());

        // Dropping the middle grant of the batch leaves its batched report
        // with no grant to match: token 1 was never (observed) granted.
        let dropped = verify_session(
            &mutate_events(&stream, &WireMutation::DropGrant { nth: 1 }),
            None,
        );
        assert!(
            matches!(
                dropped.violations.first(),
                Some(SessionViolation::ReportWithoutGrant {
                    worker: 0,
                    token: 1
                })
            ),
            "{:?}",
            dropped.violations
        );

        // Reordering splits the answering report out of the ReportBatch and
        // moves it ahead of the whole grant batch: a report with no grant.
        let reordered = verify_session(
            &mutate_events(&stream, &WireMutation::ReorderGrantReport { nth: 1 }),
            None,
        );
        assert!(
            matches!(
                reordered.violations.first(),
                Some(SessionViolation::ReportWithoutGrant {
                    worker: 0,
                    token: 1
                })
            ),
            "{:?}",
            reordered.violations
        );
    }

    #[test]
    fn batched_grants_and_reports_verify_like_singles() {
        use fela_live::WireGrant;
        let wire_grant = |token| WireGrant {
            token,
            level: 0,
            iteration: 0,
            batch: 4,
            unit_start: 0,
            unit_end: 1,
        };
        // A clean pipelined session: one GrantBatch, one ReportBatch in FIFO
        // order, then the epilogue.
        let stream = vec![
            received(0, Frame::Request { worker: 0 }),
            sent(
                0,
                Frame::GrantBatch {
                    grants: vec![wire_grant(0), wire_grant(1), wire_grant(2)],
                },
            ),
            received(
                0,
                Frame::ReportBatch {
                    worker: 0,
                    tokens: vec![0, 1, 2],
                },
            ),
            sent(0, Frame::End),
            received(0, Frame::Params { bytes: vec![1] }),
        ];
        let rep = verify_session(&stream, None);
        assert!(rep.ok(), "{:?}", rep.violations);

        // A batch reported out of FIFO order is flagged per token.
        let stream = vec![
            sent(
                0,
                Frame::GrantBatch {
                    grants: vec![wire_grant(0), wire_grant(1)],
                },
            ),
            received(
                0,
                Frame::ReportBatch {
                    worker: 0,
                    tokens: vec![1, 0],
                },
            ),
        ];
        let rep = verify_session(&stream, None);
        assert!(matches!(
            rep.violations.first(),
            Some(SessionViolation::ReportOutOfOrder {
                worker: 0,
                expected: 0,
                got: 1
            })
        ));

        // A batched report with a phantom token is flagged.
        let stream = vec![
            sent(
                0,
                Frame::GrantBatch {
                    grants: vec![wire_grant(0)],
                },
            ),
            received(
                0,
                Frame::ReportBatch {
                    worker: 0,
                    tokens: vec![0, 9],
                },
            ),
        ];
        let rep = verify_session(&stream, None);
        assert!(matches!(
            rep.violations.first(),
            Some(SessionViolation::ReportWithoutGrant {
                worker: 0,
                token: 9
            })
        ));

        // A misrouted grant inside a batch is caught by the routing intents.
        let mut verifier = SessionVerifier::new();
        verifier.add_grant_intent(0, 0);
        verifier.add_grant_intent(1, 1);
        verifier.observe(&sent(
            0,
            Frame::GrantBatch {
                grants: vec![wire_grant(0), wire_grant(1)],
            },
        ));
        let rep = verifier.finish();
        assert!(matches!(
            rep.violations.first(),
            Some(SessionViolation::MisroutedGrant {
                token: 1,
                granted_to: 1,
                delivered_to: 0
            })
        ));

        // A GrantBatch after the epilogue began is still a violation, and a
        // ReportBatch claiming the wrong worker id is flagged.
        let stream = vec![
            sent(
                0,
                Frame::Iter {
                    iteration: 0,
                    schedule: vec![],
                },
            ),
            sent(
                0,
                Frame::GrantBatch {
                    grants: vec![wire_grant(5)],
                },
            ),
            received(
                0,
                Frame::ReportBatch {
                    worker: 3,
                    tokens: vec![5],
                },
            ),
        ];
        let rep = verify_session(&stream, None);
        assert!(rep.violations.iter().any(|v| matches!(
            v,
            SessionViolation::GrantAfterIter {
                worker: 0,
                token: 5
            }
        )));
        assert!(rep.violations.iter().any(|v| matches!(
            v,
            SessionViolation::WrongWorkerId {
                link: 0,
                claimed: 3
            }
        )));
    }

    #[test]
    fn epilogue_discipline_is_enforced() {
        let stream = vec![sent(0, Frame::End), sent(0, grant(7))];
        let rep = verify_session(&stream, None);
        assert!(matches!(
            rep.violations.first(),
            Some(SessionViolation::SendAfterEnd { worker: 0, .. })
        ));

        let stream = vec![received(0, Frame::Params { bytes: vec![] })];
        let rep = verify_session(&stream, None);
        assert!(matches!(
            rep.violations.first(),
            Some(SessionViolation::ParamsBeforeEnd { worker: 0 })
        ));

        let stream = vec![
            sent(0, Frame::End),
            received(0, Frame::Params { bytes: vec![] }),
            received(0, report(0, 3)),
        ];
        let rep = verify_session(&stream, None);
        assert!(matches!(
            rep.violations.first(),
            Some(SessionViolation::FrameAfterParams { worker: 0, .. })
        ));
    }

    #[test]
    fn inbox_conservation_catches_pump_reordering() {
        let stream = vec![
            received(0, Frame::Request { worker: 0 }),
            received(0, report(0, 9)),
            SyncEvent::InboxDequeued {
                worker: 0,
                frame: Some(report(0, 9)),
            },
        ];
        let rep = verify_session(&stream, None);
        assert!(
            rep.violations
                .iter()
                .any(|v| matches!(v, SessionViolation::InboxReorder { worker: 0, .. })),
            "{:?}",
            rep.violations
        );

        let stream = vec![SyncEvent::InboxDequeued {
            worker: 1,
            frame: None,
        }];
        let rep = verify_session(&stream, None);
        assert!(matches!(
            rep.violations.first(),
            Some(SessionViolation::InboxWithoutArrival { worker: 1, .. })
        ));
    }

    #[test]
    fn cost_round_trips_must_match() {
        let q = Frame::CostQuery {
            worker: 0,
            token: 5,
            level: 0,
            unit_start: 0,
            unit_end: 1,
            batch: 4,
            iteration: 0,
        };
        let stream = vec![
            sent(0, q.clone()),
            received(
                0,
                Frame::CostReply {
                    token: 6,
                    secs_bits: 0,
                },
            ),
        ];
        let rep = verify_session(&stream, None);
        assert!(matches!(
            rep.violations.first(),
            Some(SessionViolation::CostReplyMismatch {
                worker: 0,
                expected: Some(5),
                got: 6
            })
        ));
        let stream = vec![sent(0, q.clone()), sent(0, q)];
        let rep = verify_session(&stream, None);
        assert!(matches!(
            rep.violations.first(),
            Some(SessionViolation::NestedCostQuery {
                worker: 0,
                token: 5
            })
        ));
    }

    #[test]
    fn wrong_direction_and_identity_are_flagged() {
        let stream = vec![
            sent(0, report(0, 1)),
            received(0, Frame::Request { worker: 3 }),
        ];
        let rep = verify_session(&stream, None);
        assert!(rep
            .violations
            .iter()
            .any(|v| matches!(v, SessionViolation::WrongDirection { worker: 0, .. })));
        assert!(rep.violations.iter().any(|v| matches!(
            v,
            SessionViolation::WrongWorkerId {
                link: 0,
                claimed: 3
            }
        )));
    }
}
