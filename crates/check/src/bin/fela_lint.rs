//! `fela-lint` — the workspace lint gate.
//!
//! Walks every `crates/*/src` tree, applies the rules in
//! [`fela_check::lint`], filters findings through `fela-lint.allow` at the
//! workspace root, prints the survivors and exits non-zero if any remain.
//!
//! Usage: `fela-lint [workspace-root]` (default: the current directory, or its
//! nearest ancestor containing `crates/`).

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use fela_check::lint::{lint_source, Allowlist, LintFinding};

fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        if dir.join("crates").is_dir() {
            return Some(dir);
        }
        if !dir.pop() {
            return None;
        }
    }
}

/// Collects `.rs` files under `dir`, sorted for deterministic output.
fn rust_files(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            rust_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

fn main() -> ExitCode {
    let root = match std::env::args().nth(1) {
        Some(arg) => PathBuf::from(arg),
        None => {
            let cwd = match std::env::current_dir() {
                Ok(cwd) => cwd,
                Err(e) => {
                    eprintln!("fela-lint: cannot read the current directory: {e}");
                    return ExitCode::from(2);
                }
            };
            match find_workspace_root(&cwd) {
                Some(root) => root,
                None => {
                    eprintln!(
                        "fela-lint: no `crates/` directory found above {}",
                        cwd.display()
                    );
                    return ExitCode::from(2);
                }
            }
        }
    };
    let allow_path = root.join("fela-lint.allow");
    let allow = match std::fs::read_to_string(&allow_path) {
        Ok(content) => Allowlist::parse(&content),
        Err(_) => Allowlist::default(),
    };

    let crates_dir = root.join("crates");
    let mut crate_dirs: Vec<PathBuf> = match std::fs::read_dir(&crates_dir) {
        Ok(rd) => rd.filter_map(|e| e.ok().map(|e| e.path())).collect(),
        Err(e) => {
            eprintln!("fela-lint: cannot read {}: {e}", crates_dir.display());
            return ExitCode::from(2);
        }
    };
    crate_dirs.sort();

    let mut findings: Vec<LintFinding> = Vec::new();
    let mut suppressed = 0usize;
    let mut files_scanned = 0usize;
    for crate_dir in crate_dirs {
        let src = crate_dir.join("src");
        if !src.is_dir() {
            continue;
        }
        let dir_name = crate_dir
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        // Crate package names are `fela-<dir>` throughout the workspace.
        let crate_name = format!("fela-{dir_name}");
        let mut files = Vec::new();
        if let Err(e) = rust_files(&src, &mut files) {
            eprintln!("fela-lint: cannot walk {}: {e}", src.display());
            return ExitCode::from(2);
        }
        for file in files {
            let content = match std::fs::read_to_string(&file) {
                Ok(c) => c,
                Err(e) => {
                    eprintln!("fela-lint: cannot read {}: {e}", file.display());
                    return ExitCode::from(2);
                }
            };
            files_scanned += 1;
            let label = file
                .strip_prefix(&root)
                .unwrap_or(&file)
                .to_string_lossy()
                .into_owned();
            for finding in lint_source(&label, &crate_name, &content) {
                if allow.permits(&finding) {
                    suppressed += 1;
                } else {
                    findings.push(finding);
                }
            }
        }
    }

    for finding in &findings {
        println!("{finding}");
    }
    eprintln!(
        "fela-lint: {} file(s), {} finding(s), {} allowlisted",
        files_scanned,
        findings.len(),
        suppressed
    );
    if findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
