//! Vector-clock happens-before race detection over scheduling traces.
//!
//! The simulator's trace ([`fela_sim::Trace`]) records the scheduling protocol in
//! structured form ([`EventKind`]): grants, completions and parameter syncs. This
//! module replays a trace and rebuilds the *causal* order those events justify —
//! deliberately **without** assuming the Token Server gated token release on
//! parameter commits. The happens-before edges are only:
//!
//! * worker program order (one GPU, sequential tokens);
//! * `Grant(t) → Complete(t)` — a token finishes after it is granted;
//! * `Complete(dep) → Grant(t)` for every dependency `dep` the grant names —
//!   a token starts after the outputs it consumes exist;
//! * `Complete(l, k, ·) → SyncStart(l, k)` — an all-reduce aggregates gradients
//!   that exist;
//! * `SyncStart(l, k) → SyncDone(l, k)` and per-level sync program order.
//!
//! The *barrier* edge — `SyncDone(l, k) → Grant(l, k + 1 + staleness, ·)` — is the
//! property under test, so it is only admitted when the trace itself witnesses the
//! commit before the grant. A scheduler bug that hands out an iteration-`k+1`
//! token while iteration `k`'s parameters are still in flight therefore surfaces
//! as a [`RaceViolation::StaleParameterRead`]: the grant reads the level's
//! parameter chunk concurrently (in happens-before terms) with the chunk's
//! mutation at commit.
//!
//! Vector clocks span `n_workers + n_levels` logical processes (each level's sync
//! pipeline is its own process), so the analysis also exposes true concurrency —
//! e.g. gradient computations of the same level on different workers are
//! concurrent, which tests assert to show the checker does not simply re-serialize
//! the trace.

use std::collections::BTreeMap;

use fela_sim::{EventKind, Trace};

/// A happens-before violation found in a trace.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum RaceViolation {
    /// A token grant read a level's parameters concurrently with (or before) the
    /// commit that must precede it: `SyncDone(level, iteration − 1 − staleness)`
    /// does not happen-before the grant.
    StaleParameterRead {
        /// Level whose parameters were read.
        level: usize,
        /// Iteration of the granted token.
        iteration: u64,
        /// Worker that received the grant.
        worker: usize,
        /// Granted token id.
        token: u64,
    },
    /// A grant names a dependency whose completion the trace has not witnessed.
    UnorderedDependency {
        /// Granted token id.
        token: u64,
        /// The dependency with no happens-before completion.
        dep: u64,
    },
    /// A gradient completion for `(level, iteration)` appeared after that
    /// sync already committed — the all-reduce missed a contribution.
    LateGradient {
        /// Level of the late gradient.
        level: usize,
        /// Iteration whose sync already committed.
        iteration: u64,
        /// The late token.
        token: u64,
    },
    /// A level's parameter commits are out of iteration order.
    UnorderedCommit {
        /// Level with the misordered commits.
        level: usize,
        /// Iteration committed earlier.
        earlier: u64,
        /// Iteration committed at or before `earlier` despite being later.
        later: u64,
    },
    /// A completion was reported for a token the trace never granted.
    CompleteWithoutGrant {
        /// The unexplained token id.
        token: u64,
    },
    /// A sync committed without a matching start event.
    SyncDoneWithoutStart {
        /// Level of the orphan commit.
        level: usize,
        /// Iteration of the orphan commit.
        iteration: u64,
    },
    /// A token was granted a second time without a revocation in between: the
    /// re-grant does not happen-after any `Revoke` of the token, so two
    /// workers may compute the same gradient concurrently.
    RegrantWithoutRevocation {
        /// The twice-granted token.
        token: u64,
    },
}

impl std::fmt::Display for RaceViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RaceViolation::StaleParameterRead {
                level,
                iteration,
                worker,
                token,
            } => write!(
                f,
                "worker {worker} granted token {token} (level {level}, iter {iteration}) concurrently with the level's pending parameter commit"
            ),
            RaceViolation::UnorderedDependency { token, dep } => write!(
                f,
                "token {token} granted before its dependency {dep} completed"
            ),
            RaceViolation::LateGradient {
                level,
                iteration,
                token,
            } => write!(
                f,
                "token {token} completed after sync (level {level}, iter {iteration}) already committed"
            ),
            RaceViolation::UnorderedCommit {
                level,
                earlier,
                later,
            } => write!(
                f,
                "level {level} committed iteration {later} at or before iteration {earlier}"
            ),
            RaceViolation::CompleteWithoutGrant { token } => {
                write!(f, "token {token} completed without a grant")
            }
            RaceViolation::SyncDoneWithoutStart { level, iteration } => {
                write!(f, "sync (level {level}, iter {iteration}) committed without starting")
            }
            RaceViolation::RegrantWithoutRevocation { token } => {
                write!(f, "token {token} re-granted without an intervening revocation")
            }
        }
    }
}

/// Statistics of a clean trace.
#[derive(Clone, Copy, Debug, Default)]
pub struct RaceSummary {
    /// Structured events analysed (generic events are skipped).
    pub events: usize,
    /// Token grants seen.
    pub grants: usize,
    /// Token completions seen.
    pub completions: usize,
    /// Parameter commits seen.
    pub commits: usize,
    /// Lease revocations seen (0 in fault-free traces).
    pub revocations: usize,
    /// Completions discarded because the TS rejected their report as stale
    /// (the gradient was never applied).
    pub discarded_completions: usize,
    /// Logical processes (workers + per-level sync pipelines).
    pub processes: usize,
}

/// The happens-before analysis of one trace: per-event vector clocks plus any
/// violations. Built by [`HbAnalysis::analyze`]; [`check_trace`] is the
/// pass/fail wrapper.
pub struct HbAnalysis {
    /// Indices into the trace's event list, in analysis order (structured
    /// events only).
    pub analyzed: Vec<usize>,
    /// Vector clock of each analysed event, parallel to `analyzed`.
    pub clocks: Vec<Vec<u64>>,
    /// Violations, in trace order.
    pub violations: Vec<RaceViolation>,
    /// Summary counters.
    pub summary: RaceSummary,
    n_workers: usize,
}

impl HbAnalysis {
    /// Replays `trace` and computes vector clocks and violations under the given
    /// SSP `staleness` bound (0 = BSP).
    pub fn analyze(trace: &Trace, staleness: u64) -> HbAnalysis {
        // Infer the process space from the events themselves.
        let mut n_workers = 0usize;
        let mut n_levels = 0usize;
        for e in trace.events() {
            match e.kind {
                EventKind::Grant { worker, level, .. }
                | EventKind::Complete { worker, level, .. } => {
                    n_workers = n_workers.max(worker + 1);
                    n_levels = n_levels.max(level + 1);
                }
                EventKind::SyncStart { level, .. } | EventKind::SyncDone { level, .. } => {
                    n_levels = n_levels.max(level + 1);
                }
                EventKind::Crash { worker }
                | EventKind::Restart { worker }
                | EventKind::Revoke { worker, .. }
                | EventKind::StaleReport { worker, .. } => {
                    n_workers = n_workers.max(worker + 1);
                }
                EventKind::Generic => {}
            }
        }
        let dim = n_workers + n_levels;
        let mut analysis = HbAnalysis {
            analyzed: Vec::new(),
            clocks: Vec::new(),
            violations: Vec::new(),
            summary: RaceSummary {
                processes: dim,
                ..RaceSummary::default()
            },
            n_workers,
        };
        // Current clock of each logical process.
        let mut proc_clock: Vec<Vec<u64>> = vec![vec![0; dim]; dim];
        // Clocks of the events later events join on.
        let mut grant_clock: BTreeMap<u64, Vec<u64>> = BTreeMap::new();
        let mut complete_clock: BTreeMap<u64, Vec<u64>> = BTreeMap::new();
        let mut sync_start_clock: BTreeMap<(usize, u64), Vec<u64>> = BTreeMap::new();
        let mut sync_done_clock: BTreeMap<(usize, u64), Vec<u64>> = BTreeMap::new();
        // Latest revocation clock per token: the edge a re-grant must join.
        let mut revoke_clock: BTreeMap<u64, Vec<u64>> = BTreeMap::new();
        // Highest committed iteration per level, for commit-order checking.
        let mut last_commit: Vec<Option<u64>> = vec![None; n_levels];
        // Completions whose report the TS rejected as stale: those gradients
        // were never applied, so they must not feed sync aggregation or the
        // late-gradient check. Reports arrive in completion order, so stale
        // rejections match the *earliest* unmatched completion of the pair.
        let mut stale_remaining: BTreeMap<(usize, u64), u64> = BTreeMap::new();
        for e in trace.events() {
            if let EventKind::StaleReport { worker, token } = e.kind {
                *stale_remaining.entry((worker, token)).or_insert(0) += 1;
            }
        }

        fn join(into: &mut [u64], from: &[u64]) {
            for (a, b) in into.iter_mut().zip(from) {
                *a = (*a).max(*b);
            }
        }

        for (idx, e) in trace.events().iter().enumerate() {
            let kind = e.kind.clone();
            match kind {
                EventKind::Generic => continue,
                // Membership transitions and stale-report rejections carry no
                // happens-before obligations of their own: the causal content
                // of a crash is the `Revoke` events it emits, and stale
                // reports were folded into `stale_remaining` above.
                EventKind::Crash { .. }
                | EventKind::Restart { .. }
                | EventKind::StaleReport { .. } => continue,
                _ => {}
            }
            analysis.summary.events += 1;
            let clock = match kind {
                EventKind::Grant {
                    worker,
                    token,
                    level,
                    iteration,
                    ref deps,
                } => {
                    analysis.summary.grants += 1;
                    let mut c = proc_clock[worker].clone();
                    // Revocation edge: a re-granted token must happen-after
                    // the revocation that freed it. A second grant with no
                    // revocation in between is two live leases on one token.
                    if grant_clock.contains_key(&token) {
                        match revoke_clock.get(&token) {
                            Some(rc) => join(&mut c, rc),
                            None => analysis
                                .violations
                                .push(RaceViolation::RegrantWithoutRevocation { token }),
                        }
                    }
                    for &dep in deps {
                        match complete_clock.get(&dep) {
                            Some(dc) => join(&mut c, dc),
                            None => analysis
                                .violations
                                .push(RaceViolation::UnorderedDependency { token, dep }),
                        }
                    }
                    // The barrier edge exists only if the trace witnessed the
                    // commit first — this is the property under test.
                    if iteration > staleness {
                        let gate = (level, iteration - 1 - staleness);
                        match sync_done_clock.get(&gate) {
                            Some(sc) => join(&mut c, sc),
                            None => analysis.violations.push(RaceViolation::StaleParameterRead {
                                level,
                                iteration,
                                worker,
                                token,
                            }),
                        }
                    }
                    c[worker] += 1;
                    proc_clock[worker] = c.clone();
                    grant_clock.insert(token, c.clone());
                    c
                }
                EventKind::Complete {
                    worker,
                    token,
                    level,
                    iteration,
                } => {
                    analysis.summary.completions += 1;
                    let mut c = proc_clock[worker].clone();
                    match grant_clock.get(&token) {
                        Some(gc) => join(&mut c, gc),
                        None => analysis
                            .violations
                            .push(RaceViolation::CompleteWithoutGrant { token }),
                    }
                    let discarded = match stale_remaining.get_mut(&(worker, token)) {
                        Some(left) if *left > 0 => {
                            *left -= 1;
                            true
                        }
                        _ => false,
                    };
                    c[worker] += 1;
                    proc_clock[worker] = c.clone();
                    if discarded {
                        // The TS rejected this report: the gradient was never
                        // applied, so it neither feeds sync aggregation nor
                        // counts as late — only worker program order advances.
                        analysis.summary.discarded_completions += 1;
                    } else {
                        if sync_done_clock.contains_key(&(level, iteration)) {
                            analysis.violations.push(RaceViolation::LateGradient {
                                level,
                                iteration,
                                token,
                            });
                        }
                        complete_clock.insert(token, c.clone());
                    }
                    c
                }
                EventKind::SyncStart { level, iteration } => {
                    let proc = n_workers + level;
                    let mut c = proc_clock[proc].clone();
                    // Aggregate every gradient witnessed so far for this
                    // (level, iteration). Late ones are flagged above.
                    for ev in trace.events()[..idx].iter() {
                        if let EventKind::Complete {
                            token,
                            level: cl,
                            iteration: ck,
                            ..
                        } = ev.kind
                        {
                            if cl == level && ck == iteration {
                                if let Some(cc) = complete_clock.get(&token) {
                                    join(&mut c, cc);
                                }
                            }
                        }
                    }
                    c[proc] += 1;
                    proc_clock[proc] = c.clone();
                    sync_start_clock.insert((level, iteration), c.clone());
                    c
                }
                EventKind::SyncDone { level, iteration } => {
                    analysis.summary.commits += 1;
                    let proc = n_workers + level;
                    let mut c = proc_clock[proc].clone();
                    match sync_start_clock.get(&(level, iteration)) {
                        Some(sc) => join(&mut c, sc),
                        None => analysis
                            .violations
                            .push(RaceViolation::SyncDoneWithoutStart { level, iteration }),
                    }
                    if let Some(prev) = last_commit[level] {
                        if iteration <= prev {
                            analysis.violations.push(RaceViolation::UnorderedCommit {
                                level,
                                earlier: prev,
                                later: iteration,
                            });
                        }
                    }
                    last_commit[level] = Some(last_commit[level].unwrap_or(0).max(iteration));
                    c[proc] += 1;
                    proc_clock[proc] = c.clone();
                    sync_done_clock.insert((level, iteration), c.clone());
                    c
                }
                EventKind::Revoke { token, .. } => {
                    analysis.summary.revocations += 1;
                    // The revocation happens-after the grant it kills (and any
                    // earlier revocation of the same token). It lives on the
                    // TS, not on a worker timeline: joining the *victim*'s
                    // clock would fabricate an order between the revocation
                    // and whatever the (possibly hung) victim did after.
                    let mut c = vec![0; dim];
                    if let Some(gc) = grant_clock.get(&token) {
                        join(&mut c, gc);
                    }
                    if let Some(rc) = revoke_clock.get(&token) {
                        join(&mut c, rc);
                    }
                    revoke_clock.insert(token, c.clone());
                    c
                }
                EventKind::Generic
                | EventKind::Crash { .. }
                | EventKind::Restart { .. }
                | EventKind::StaleReport { .. } => unreachable!("filtered above"),
            };
            analysis.analyzed.push(idx);
            analysis.clocks.push(clock);
        }
        analysis
    }

    /// Whether analysed event `a` happens-before analysed event `b` (indices
    /// into [`HbAnalysis::analyzed`]).
    pub fn happens_before(&self, a: usize, b: usize) -> bool {
        let ca = &self.clocks[a];
        let cb = &self.clocks[b];
        ca.iter().zip(cb).all(|(x, y)| x <= y) && ca != cb
    }

    /// Whether analysed events `a` and `b` are causally concurrent.
    pub fn concurrent(&self, a: usize, b: usize) -> bool {
        !self.happens_before(a, b) && !self.happens_before(b, a) && self.clocks[a] != self.clocks[b]
    }

    /// Number of worker processes inferred from the trace.
    pub fn n_workers(&self) -> usize {
        self.n_workers
    }
}

/// Checks a trace for happens-before violations. Returns the summary if the
/// trace is race-free, or every violation found.
pub fn check_trace(trace: &Trace, staleness: u64) -> Result<RaceSummary, Vec<RaceViolation>> {
    let analysis = HbAnalysis::analyze(trace, staleness);
    if analysis.violations.is_empty() {
        Ok(analysis.summary)
    } else {
        Err(analysis.violations)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fela_cluster::Scenario;
    use fela_core::{FelaConfig, FelaRuntime};
    use fela_model::zoo;
    use fela_sim::SimTime;

    fn traced_run(cfg: FelaConfig) -> Trace {
        let scenario = Scenario::paper(zoo::vgg19(), 128).with_iterations(3);
        let (_, trace) = FelaRuntime::new(cfg).run_traced(&scenario);
        trace
    }

    #[test]
    fn real_bsp_run_is_race_free() {
        let trace = traced_run(FelaConfig::new(3).with_weights(vec![1, 2, 4]));
        let summary = check_trace(&trace, 0).unwrap();
        assert_eq!(summary.grants, 14 * 3);
        assert_eq!(summary.completions, 14 * 3);
        // Every (level, iteration) commits exactly once, degenerate or not.
        assert_eq!(summary.commits, 3 * 3);
        assert_eq!(summary.processes, 8 + 3);
    }

    #[test]
    fn ablated_policies_are_still_race_free() {
        for cfg in [
            FelaConfig::new(3)
                .with_weights(vec![1, 2, 4])
                .with_ads(false),
            FelaConfig::new(3)
                .with_weights(vec![1, 2, 4])
                .with_hf(false),
            FelaConfig::new(3).with_weights(vec![1, 2, 4]).with_ctd(4),
            FelaConfig::new(3)
                .with_weights(vec![1, 2, 4])
                .with_pipelining(false),
        ] {
            check_trace(&traced_run(cfg), 0).unwrap();
        }
    }

    #[test]
    fn ssp_run_checks_under_its_staleness_bound() {
        let trace = traced_run(
            FelaConfig::new(3)
                .with_weights(vec![1, 2, 4])
                .with_staleness(1),
        );
        check_trace(&trace, 1).unwrap();
    }

    #[test]
    fn gradient_computations_on_distinct_workers_are_concurrent() {
        let trace = traced_run(FelaConfig::new(3).with_weights(vec![1, 2, 4]));
        let analysis = HbAnalysis::analyze(&trace, 0);
        // Find two iteration-0 level-0 completes on different workers; the
        // checker must see them as causally unordered.
        let mut first: Option<(usize, usize)> = None;
        for (i, &idx) in analysis.analyzed.iter().enumerate() {
            if let EventKind::Complete {
                worker,
                level: 0,
                iteration: 0,
                ..
            } = trace.events()[idx].kind
            {
                match first {
                    None => first = Some((i, worker)),
                    Some((j, w)) if w != worker => {
                        assert!(
                            analysis.concurrent(i, j),
                            "independent gradients must be concurrent"
                        );
                        return;
                    }
                    _ => {}
                }
            }
        }
        panic!("no pair of level-0 completes on distinct workers found");
    }

    fn t(n: u64) -> SimTime {
        SimTime::from_nanos(n)
    }

    /// A hand-built trace where iteration 1's grant precedes iteration 0's
    /// commit: the premature-release bug the checker exists to catch.
    #[test]
    fn premature_grant_is_a_stale_parameter_read() {
        let mut tr = Trace::enabled();
        let grant = |tr: &mut Trace, at, worker, token, iteration| {
            tr.record_kind(
                t(at),
                "ts",
                EventKind::Grant {
                    worker,
                    token,
                    level: 0,
                    iteration,
                    deps: vec![],
                },
                String::new,
            );
        };
        let complete = |tr: &mut Trace, at, worker, token, iteration| {
            tr.record_kind(
                t(at),
                &format!("worker{worker}"),
                EventKind::Complete {
                    worker,
                    token,
                    level: 0,
                    iteration,
                },
                String::new,
            );
        };
        grant(&mut tr, 0, 0, 0, 0);
        complete(&mut tr, 1, 0, 0, 0);
        tr.record_kind(
            t(2),
            "ts",
            EventKind::SyncStart {
                level: 0,
                iteration: 0,
            },
            String::new,
        );
        // BUG: iteration 1 granted before the iteration-0 commit.
        grant(&mut tr, 3, 0, 1, 1);
        tr.record_kind(
            t(4),
            "ts",
            EventKind::SyncDone {
                level: 0,
                iteration: 0,
            },
            String::new,
        );
        complete(&mut tr, 5, 0, 1, 1);
        tr.record_kind(
            t(6),
            "ts",
            EventKind::SyncStart {
                level: 0,
                iteration: 1,
            },
            String::new,
        );
        tr.record_kind(
            t(7),
            "ts",
            EventKind::SyncDone {
                level: 0,
                iteration: 1,
            },
            String::new,
        );

        let violations = check_trace(&tr, 0).unwrap_err();
        assert_eq!(
            violations,
            vec![RaceViolation::StaleParameterRead {
                level: 0,
                iteration: 1,
                worker: 0,
                token: 1,
            }]
        );
        // The same trace is legal under SSP with staleness 1.
        check_trace(&tr, 1).unwrap();
    }

    #[test]
    fn missing_dependency_and_orphan_complete_are_flagged() {
        let mut tr = Trace::enabled();
        tr.record_kind(
            t(0),
            "ts",
            EventKind::Grant {
                worker: 0,
                token: 5,
                level: 1,
                iteration: 0,
                deps: vec![3],
            },
            String::new,
        );
        tr.record_kind(
            t(1),
            "worker1",
            EventKind::Complete {
                worker: 1,
                token: 9,
                level: 0,
                iteration: 0,
            },
            String::new,
        );
        let violations = check_trace(&tr, 0).unwrap_err();
        assert!(violations.contains(&RaceViolation::UnorderedDependency { token: 5, dep: 3 }));
        assert!(violations.contains(&RaceViolation::CompleteWithoutGrant { token: 9 }));
    }

    #[test]
    fn late_gradient_and_unordered_commit_are_flagged() {
        let mut tr = Trace::enabled();
        tr.record_kind(
            t(0),
            "ts",
            EventKind::Grant {
                worker: 0,
                token: 0,
                level: 0,
                iteration: 0,
                deps: vec![],
            },
            String::new,
        );
        tr.record_kind(
            t(1),
            "ts",
            EventKind::SyncStart {
                level: 0,
                iteration: 0,
            },
            String::new,
        );
        tr.record_kind(
            t(2),
            "ts",
            EventKind::SyncDone {
                level: 0,
                iteration: 0,
            },
            String::new,
        );
        // Gradient lands after its sync committed.
        tr.record_kind(
            t(3),
            "worker0",
            EventKind::Complete {
                worker: 0,
                token: 0,
                level: 0,
                iteration: 0,
            },
            String::new,
        );
        // Same iteration commits again: out of order.
        tr.record_kind(
            t(4),
            "ts",
            EventKind::SyncDone {
                level: 0,
                iteration: 0,
            },
            String::new,
        );
        let violations = check_trace(&tr, 0).unwrap_err();
        assert!(violations
            .iter()
            .any(|v| matches!(v, RaceViolation::LateGradient { token: 0, .. })));
        assert!(violations
            .iter()
            .any(|v| matches!(v, RaceViolation::UnorderedCommit { level: 0, .. })));
    }
}
