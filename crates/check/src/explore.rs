//! Bounded exhaustive interleaving exploration of the Token Server.
//!
//! The race detector checks *one* trace. This module checks *all of them* for a
//! small configuration (2 workers × 2 sub-models × 2 micro-batches × 2
//! iterations): a DFS over the Token Server's reachable scheduling states,
//! branching on every nondeterministic input the real runtime feeds it — which
//! worker requests or reports first, and which in-flight parameter sync drains
//! first. The server itself is deterministic given those inputs, so the explored
//! tree covers every schedule the runtime could produce under any timing,
//! straggler pattern or network behaviour.
//!
//! States are memoized by [`ServerSnapshot`] (plus worker holdings and in-flight
//! syncs) — a DPOR-style pruning: two interleavings that converge to the same
//! scheduling state share their futures.
//!
//! Along every path the explorer checks the per-transition safety properties
//! (no grant before its dependencies complete; no grant past the level's
//! staleness bound; no deadlock). Every *terminal* schedule is then handed to
//! `fela-engine`'s [`TokenExecutor`], which executes real token-split SGD in
//! that order: all schedules must produce **bit-identical** parameters, equal
//! within floating-point regrouping tolerance to the serial BSP reference —
//! the paper's Table II reproducibility claim, proved over the whole schedule
//! space instead of sampled seeds.

use std::collections::BTreeSet;

use fela_core::{
    FelaConfig, LevelMeta, LevelPlan, ScheduleError, ServerSnapshot, SyncSpec, TokenId, TokenPlan,
    TokenServer,
};
use fela_engine::{serial_step, EngineLayer, EngineNet, SplitPlan, Tensor, TokenExecutor};
use fela_sim::SimTime;

/// A safety property violated on some explored path.
#[derive(Clone, PartialEq, Debug)]
pub enum ExploreViolation {
    /// A token was granted although a dependency had not been reported.
    UnmetDependency {
        /// The granted token.
        token: u64,
        /// The unreported dependency.
        dep: u64,
    },
    /// A token was granted beyond its level's staleness bound.
    PrematureGrant {
        /// The granted token.
        token: u64,
        /// Its level.
        level: usize,
        /// Its iteration.
        iteration: u64,
        /// Iterations of this level synced when the grant happened.
        synced_upto: u64,
    },
    /// A reachable state has no enabled action but the run is not complete.
    Deadlock {
        /// Tokens reported when the explorer got stuck.
        reports_done: usize,
    },
    /// The server returned a typed error on a legal action sequence.
    SchedulerError {
        /// The error's display form.
        message: String,
    },
    /// Two terminal schedules trained to different parameters, or a schedule
    /// diverged from the serial reference.
    Divergence {
        /// Index of the offending schedule.
        schedule: usize,
        /// What differed.
        detail: String,
    },
}

impl std::fmt::Display for ExploreViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExploreViolation::UnmetDependency { token, dep } => {
                write!(f, "token {token} granted before dependency {dep} reported")
            }
            ExploreViolation::PrematureGrant {
                token,
                level,
                iteration,
                synced_upto,
            } => write!(
                f,
                "token {token} (level {level}, iter {iteration}) granted with only {synced_upto} iterations synced"
            ),
            ExploreViolation::Deadlock { reports_done } => {
                write!(f, "deadlock after {reports_done} reports")
            }
            ExploreViolation::SchedulerError { message } => {
                write!(f, "scheduler error on a legal path: {message}")
            }
            ExploreViolation::Divergence { schedule, detail } => {
                write!(f, "schedule {schedule} diverged: {detail}")
            }
        }
    }
}

/// Result of an exploration.
#[derive(Clone, Debug)]
pub struct ExploreOutcome {
    /// Distinct terminal schedules, as `(level, iteration, seq)` report orders.
    pub schedules: Vec<Vec<(usize, u64, u64)>>,
    /// Distinct states visited.
    pub states_visited: usize,
    /// Safety violations found on any path.
    pub violations: Vec<ExploreViolation>,
    /// True if exploration hit a bound before exhausting the space.
    pub truncated: bool,
}

/// The small configuration under exploration, plus bounds.
pub struct Explorer {
    server: TokenServer,
    staleness: u64,
    /// Stop after this many distinct states (safety net; the 2×2×2 space is
    /// far smaller).
    pub max_states: usize,
    /// Stop after this many distinct terminal schedules.
    pub max_schedules: usize,
}

#[derive(Clone)]
struct State {
    server: TokenServer,
    /// Token currently granted to each worker (None = idle or queued).
    holdings: Vec<Option<TokenId>>,
    /// Non-degenerate syncs in flight.
    pending: Vec<SyncSpec>,
    /// Tokens reported so far (safety-check bookkeeping, independent of the
    /// server's own holder map).
    reported: BTreeSet<u64>,
    /// Report order accumulated along this path.
    order: Vec<(usize, u64, u64)>,
}

type StateKey = (ServerSnapshot, Vec<Option<u64>>, Vec<(usize, u64)>);

#[derive(Clone, Copy, Debug)]
enum Action {
    Request(usize),
    Report(usize),
    FinishSync(usize),
}

impl Explorer {
    /// The canonical small configuration: 2 workers, 2 sub-models with weights
    /// `[1, 2]`, 2 root micro-batches per iteration, 2 iterations, all policies
    /// (ADS + HF) on.
    pub fn small(staleness: u64) -> Explorer {
        let plan = TokenPlan {
            levels: vec![
                LevelPlan {
                    level: 0,
                    tokens_per_iteration: 2,
                    batch_per_token: 4,
                    gen_ratio: 1,
                },
                LevelPlan {
                    level: 1,
                    tokens_per_iteration: 1,
                    batch_per_token: 8,
                    gen_ratio: 2,
                },
            ],
            total_batch: 8,
        };
        let cfg = FelaConfig::new(2)
            .with_weights(vec![1, 2])
            .with_staleness(staleness);
        cfg.validate(2);
        let meta = vec![
            LevelMeta {
                param_bytes: 4096,
                output_bytes_per_sample: 64,
                input_bytes_per_sample: 64,
                comm_intensive: false,
            },
            LevelMeta {
                param_bytes: 8192,
                output_bytes_per_sample: 32,
                input_bytes_per_sample: 64,
                comm_intensive: false,
            },
        ];
        Explorer {
            server: TokenServer::new(plan, cfg, meta, 2, 2),
            staleness,
            max_states: 100_000,
            max_schedules: 256,
        }
    }

    /// The plan driving the exploration.
    pub fn plan(&self) -> &TokenPlan {
        self.server.plan()
    }

    /// The configuration driving the exploration.
    pub fn config(&self) -> &FelaConfig {
        self.server.config()
    }

    /// Explores every interleaving, returning schedules and violations.
    pub fn explore(&self) -> ExploreOutcome {
        let n = self.server.n_workers();
        let mut outcome = ExploreOutcome {
            schedules: Vec::new(),
            states_visited: 0,
            violations: Vec::new(),
            truncated: false,
        };
        let mut schedules: BTreeSet<Vec<(usize, u64, u64)>> = BTreeSet::new();
        let mut visited: BTreeSet<StateKey> = BTreeSet::new();
        let mut stack = vec![State {
            server: self.server.clone(),
            holdings: vec![None; n],
            pending: Vec::new(),
            reported: BTreeSet::new(),
            order: Vec::new(),
        }];
        while let Some(state) = stack.pop() {
            let key = Self::key_of(&state);
            if !visited.insert(key) {
                continue;
            }
            outcome.states_visited += 1;
            if outcome.states_visited >= self.max_states || schedules.len() >= self.max_schedules {
                outcome.truncated = true;
                break;
            }
            if state.server.run_complete()
                && state.pending.is_empty()
                && state.holdings.iter().all(Option::is_none)
            {
                schedules.insert(state.order.clone());
                continue;
            }
            let actions = self.enabled_actions(&state);
            if actions.is_empty() {
                outcome.violations.push(ExploreViolation::Deadlock {
                    reports_done: state.reported.len(),
                });
                continue;
            }
            for action in actions {
                match self.apply(&state, action, &mut outcome.violations) {
                    Ok(next) => stack.push(next),
                    Err(e) => outcome.violations.push(ExploreViolation::SchedulerError {
                        message: e.to_string(),
                    }),
                }
            }
        }
        outcome.schedules = schedules.into_iter().collect();
        outcome
    }

    fn key_of(state: &State) -> StateKey {
        (
            state.server.snapshot(),
            state.holdings.iter().map(|h| h.map(|t| t.0)).collect(),
            state
                .pending
                .iter()
                .map(|s| (s.level, s.iteration))
                .collect(),
        )
    }

    fn enabled_actions(&self, state: &State) -> Vec<Action> {
        let snapshot = state.server.snapshot();
        let mut actions = Vec::new();
        for w in 0..state.holdings.len() {
            match state.holdings[w] {
                Some(_) => actions.push(Action::Report(w)),
                // A queued worker is served by the post-mutation drain; a fresh
                // request from it would be a no-op.
                None if !snapshot.waiting.contains(&w) => actions.push(Action::Request(w)),
                None => {}
            }
        }
        for i in 0..state.pending.len() {
            actions.push(Action::FinishSync(i));
        }
        actions
    }

    fn apply(
        &self,
        state: &State,
        action: Action,
        violations: &mut Vec<ExploreViolation>,
    ) -> Result<State, ScheduleError> {
        let mut next = state.clone();
        match action {
            Action::Request(w) => {
                if let Some(grant) = next.server.request(w, SimTime::ZERO)? {
                    self.check_grant(&next, &grant.token, violations);
                    next.holdings[w] = Some(grant.token.id);
                }
            }
            Action::Report(w) => {
                let token = next.holdings[w].take().expect("report needs a holding");
                let (level, iteration, seq) = {
                    let t = next.server.token(token).expect("held token exists");
                    (t.level, t.iteration, t.seq)
                };
                let syncs = next.server.report(w, token)?;
                next.reported.insert(token.0);
                next.order.push((level, iteration, seq));
                for spec in syncs {
                    if spec.is_degenerate() {
                        // Mirror the runtime: degenerate commits are immediate.
                        next.server.sync_finished(spec.level, spec.iteration)?;
                    } else {
                        next.pending.push(spec);
                    }
                }
                self.drain(&mut next, violations)?;
            }
            Action::FinishSync(i) => {
                let spec = next.pending.remove(i);
                next.server.sync_finished(spec.level, spec.iteration)?;
                self.drain(&mut next, violations)?;
            }
        }
        Ok(next)
    }

    /// Serves queued workers after bucket contents changed, validating each
    /// grant — exactly what the runtime's serve-waiting loop does.
    fn drain(
        &self,
        state: &mut State,
        violations: &mut Vec<ExploreViolation>,
    ) -> Result<(), ScheduleError> {
        while let Some((w, grant)) = state.server.pop_ready_grant(SimTime::ZERO)? {
            self.check_grant(state, &grant.token, violations);
            assert!(state.holdings[w].is_none(), "queued worker held a token");
            state.holdings[w] = Some(grant.token.id);
        }
        Ok(())
    }

    fn check_grant(
        &self,
        state: &State,
        token: &fela_core::Token,
        violations: &mut Vec<ExploreViolation>,
    ) {
        for dep in &token.deps {
            if !state.reported.contains(&dep.0) {
                violations.push(ExploreViolation::UnmetDependency {
                    token: token.id.0,
                    dep: dep.0,
                });
            }
        }
        let synced = state.server.snapshot().synced_upto[token.level];
        if token.iteration > synced + self.staleness {
            violations.push(ExploreViolation::PrematureGrant {
                token: token.id.0,
                level: token.level,
                iteration: token.iteration,
                synced_upto: synced,
            });
        }
    }
}

/// Executes every explored schedule with real token-split SGD and checks that
/// all of them converge to the same parameters — bit-identical to each other
/// and within floating-point regrouping tolerance of serial BSP.
///
/// The engine model mirrors the explored plan: a 3-layer MLP split into the
/// same 2 sub-models with 2 and 1 tokens; schedules are replayed iteration by
/// iteration in report order.
pub fn verify_convergence(
    schedules: &[Vec<(usize, u64, u64)>],
    iterations: u64,
) -> Vec<ExploreViolation> {
    let mut violations = Vec::new();
    if schedules.is_empty() {
        return violations;
    }
    let split = SplitPlan {
        levels: vec![(0, 2), (2, 3)],
        tokens: vec![2, 1],
    };
    let exec = TokenExecutor {
        plan: split.clone(),
        lr: 0.05,
    };
    let net0 = EngineNet::mlp(&[6, 8, 4], 17);
    let x = Tensor::seeded(&[8, 6], 100, 1.0);
    let t = Tensor::seeded(&[8, 4], 200, 1.0);

    // Serial BSP reference.
    let mut serial = net0.clone();
    for _ in 0..iterations {
        serial_step(&mut serial, &x, &t, 0.05);
    }

    let mut reference: Option<EngineNet> = None;
    for (i, schedule) in schedules.iter().enumerate() {
        let mut net = net0.clone();
        for k in 0..iterations {
            let per_iter: Vec<(usize, usize)> = schedule
                .iter()
                .filter(|&&(_, iter, _)| iter == k)
                .map(|&(level, _, seq)| (level, seq as usize))
                .collect();
            exec.step(&mut net, &x, &t, &per_iter);
        }
        match &reference {
            None => reference = Some(net.clone()),
            Some(r) => {
                if &net != r {
                    violations.push(ExploreViolation::Divergence {
                        schedule: i,
                        detail: "parameters differ bit-wise from schedule 0".into(),
                    });
                    continue;
                }
            }
        }
        // Against serial BSP: equal up to gradient-sum re-association.
        for (a, b) in serial.layers().iter().zip(net.layers().iter()) {
            if let (EngineLayer::Dense { weight: wa, .. }, EngineLayer::Dense { weight: wb, .. }) =
                (a, b)
            {
                for (va, vb) in wa.data().iter().zip(wb.data()) {
                    if (va - vb).abs() > 1e-4 * (1.0 + va.abs()) {
                        violations.push(ExploreViolation::Divergence {
                            schedule: i,
                            detail: format!("weight {va} vs serial {vb}"),
                        });
                        break;
                    }
                }
            }
        }
    }
    violations
}

/// Full exhaustive check on the small configuration: explore, safety-check,
/// cross-validate every schedule against the static DAG, and prove
/// convergence. Returns the outcome (with any violations accumulated).
pub fn exhaustive_schedule_check(staleness: u64) -> ExploreOutcome {
    let explorer = Explorer::small(staleness);
    let mut outcome = explorer.explore();
    // Every dynamic schedule must be a linearization of the static DAG.
    let dag = crate::dag::ScheduleDag::build(explorer.plan(), explorer.config(), 2, 2);
    for (i, schedule) in outcome.schedules.iter().enumerate() {
        if dag.accepts_linearization(schedule).is_err() {
            outcome.violations.push(ExploreViolation::Divergence {
                schedule: i,
                detail: "schedule is not a linearization of the static DAG".into(),
            });
        }
    }
    outcome
        .violations
        .extend(verify_convergence(&outcome.schedules, 2));
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bsp_space_is_exhausted_and_safe() {
        let outcome = Explorer::small(0).explore();
        assert!(!outcome.truncated, "2×2×2 space must fit the bounds");
        assert!(outcome.violations.is_empty(), "{:?}", outcome.violations);
        assert!(
            outcome.schedules.len() > 1,
            "the Token Server must admit more than one schedule"
        );
        // Every schedule covers all 6 tokens (3 per iteration × 2 iterations).
        for s in &outcome.schedules {
            assert_eq!(s.len(), 6, "{s:?}");
        }
        assert!(outcome.states_visited > outcome.schedules.len());
    }

    #[test]
    fn all_schedules_converge_to_serial_bsp() {
        let outcome = exhaustive_schedule_check(0);
        assert!(!outcome.truncated);
        assert!(outcome.violations.is_empty(), "{:?}", outcome.violations);
    }

    #[test]
    fn ssp_admits_more_schedules_than_bsp() {
        let bsp = Explorer::small(0).explore();
        let ssp = Explorer::small(1).explore();
        assert!(bsp.violations.is_empty(), "{:?}", bsp.violations);
        assert!(ssp.violations.is_empty(), "{:?}", ssp.violations);
        assert!(
            ssp.schedules.len() >= bsp.schedules.len(),
            "staleness can only widen the schedule space ({} vs {})",
            ssp.schedules.len(),
            bsp.schedules.len()
        );
    }

    #[test]
    fn schedules_respect_dependency_order() {
        let outcome = Explorer::small(0).explore();
        for s in &outcome.schedules {
            // Within an iteration, the level-1 token must come after both
            // level-0 tokens (its generation group).
            for k in 0..2u64 {
                let l1 = s
                    .iter()
                    .position(|&(l, i, _)| l == 1 && i == k)
                    .expect("level-1 token present");
                for seq in 0..2u64 {
                    let l0 = s
                        .iter()
                        .position(|&(l, i, q)| l == 0 && i == k && q == seq)
                        .expect("level-0 token present");
                    assert!(l0 < l1, "dependency out of order in {s:?}");
                }
            }
        }
    }
}
