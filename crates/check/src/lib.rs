//! # fela-check — static schedule verification, trace race detection and lint
//!
//! The workspace's analysis layer. Three independent checkers, all runnable
//! without (or alongside) the simulator:
//!
//! * [`dag`] — builds the full token-dependency DAG of a run from a
//!   [`fela_core::TokenPlan`] + [`fela_core::FelaConfig`] and statically
//!   verifies the invariants the Fela schedule relies on (acyclicity, exact
//!   coverage, gradient dominance, BSP/SSP barrier closure, CTD subset
//!   validity, HF bucket partitioning). Seeded mutations prove each invariant's
//!   diagnostic actually fires.
//! * [`race`] — replays a simulator trace and rebuilds its happens-before
//!   order with vector clocks, flagging parameter reads concurrent with
//!   parameter commits (the premature-release race), unordered dependencies,
//!   late gradients and misordered commits.
//! * [`recovery`] — replays a fault-injected trace through the Token Server's
//!   per-token lease state machine (granted → revoked → re-granted) and proves
//!   the exactly-once gradient property: no double grants, no ghost gradients
//!   from expired leases, no lost micro-batches. Seeded trace mutations prove
//!   each diagnostic fires.
//! * [`explore`] — exhaustively enumerates every Token Server schedule for a
//!   small configuration (DPOR-style state memoization), checks per-transition
//!   safety, and executes every schedule with `fela-engine`'s real token-split
//!   SGD to prove they all converge to serial-BSP parameters.
//! * [`mc`] — the concurrency model checker for the *live* runtime: drives the
//!   real [`fela_core::ControlPlane`] and the real wire [`fela_live::Frame`]s
//!   through every non-equivalent message-delivery / lease-fire interleaving
//!   of a small cluster (memoized DFS, DPOR via eager local steps), checking
//!   deadlock-freedom, lost-wakeup-freedom, exactly-once token application and
//!   per-op linearizability against the monolithic `TokenServer` oracle.
//!   Seeded mutations (dropped grant, reordered Grant/Report, misrouted Grant)
//!   each produce a distinct diagnostic.
//! * [`protocol`] — the frame-protocol session verifier: a per-link state
//!   machine over the server ↔ worker `Frame` dialogue, replayed over recorded
//!   [`fela_live::SyncEvent`] traces (from `RecordingSched`) and over the model
//!   checker's explored executions.
//! * [`elastic`] — elastic-run verification: replays every epoch of a
//!   resized run against its membership (no grants to departed workers),
//!   re-runs the full two-phase search as an oracle against the incremental
//!   boundary re-tune (no re-bin divergence), and composes the race and
//!   recovery checkers per epoch. Seeded mutations prove both elastic
//!   diagnostics fire.
//! * [`wal`] — write-ahead-log verification: replays a Token Server WAL
//!   through an oracle [`fela_core::ControlPlane`], proving the recovered
//!   state is snapshot-equal and no token is applied twice. Seeded log
//!   mutations (dropped, duplicated, reordered record, flipped byte) each
//!   produce a distinct diagnostic.
//! * [`lint`] — the source-level rules behind the determinism and crash-safety
//!   arguments (`no-unwrap`, `no-wallclock`, `no-unseeded-rng`,
//!   `hashmap-order`, `lock-order`, `no-blocking-under-lock`), enforced by the
//!   `fela-lint` binary and CI.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod dag;
pub mod elastic;
pub mod explore;
pub mod lint;
pub mod mc;
pub mod protocol;
pub mod race;
pub mod recovery;
pub mod wal;

pub use dag::{DagNode, DagSummary, DagViolation, Mutation, ScheduleDag};
pub use elastic::{
    check_elastic, mutate_elastic, run_elastic_mutation_matrix, ElasticMutation,
    ElasticMutationRun, ElasticSummary, ElasticViolation,
};
pub use explore::{exhaustive_schedule_check, ExploreOutcome, ExploreViolation, Explorer};
pub use mc::{
    model_check, record_execution, run_mutation_matrix, McConfig, McMutation, McOutcome,
    McViolation, MutationRun,
};
pub use protocol::{
    mutate_events, verify_session, SessionReport, SessionVerifier, SessionViolation, WireMutation,
};
pub use race::{check_trace, HbAnalysis, RaceSummary, RaceViolation};
pub use recovery::{
    check_recovery, mutate_trace, RecoveryMutation, RecoverySummary, RecoveryViolation,
};
pub use wal::{
    check_wal, mutate_wal, reference_logged_run, reference_wal_check, run_wal_mutation_matrix,
    WalMutation, WalMutationRun, WalSummary, WalViolation,
};

use fela_core::{FelaConfig, PlanError, TokenPlan};
use fela_model::Partition;

/// Why a configuration failed verification.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum CheckError {
    /// The plan itself is infeasible (not a schedule bug — the config cannot
    /// produce a token plan at all).
    Plan(PlanError),
    /// The plan produced a DAG that violates schedule invariants.
    Dag(Vec<DagViolation>),
}

impl std::fmt::Display for CheckError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckError::Plan(e) => write!(f, "no feasible token plan: {e}"),
            CheckError::Dag(violations) => {
                writeln!(f, "{} schedule invariant violation(s):", violations.len())?;
                for v in violations {
                    writeln!(f, "  - {v}")?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for CheckError {}

/// End-to-end static verification of one configuration: build the token plan,
/// materialise `iterations` of its dependency DAG, and verify every invariant.
///
/// `cfg` must already satisfy [`FelaConfig::validate`]; plan infeasibility
/// (batch too small, weight too large, …) is reported as [`CheckError::Plan`]
/// so sweeps can distinguish "config impossible" from "schedule broken".
pub fn verify_config(
    partition: &Partition,
    cfg: &FelaConfig,
    total_batch: u64,
    n_workers: usize,
    iterations: u64,
) -> Result<DagSummary, CheckError> {
    let plan =
        TokenPlan::build(partition, cfg, total_batch, n_workers).map_err(CheckError::Plan)?;
    ScheduleDag::build(&plan, cfg, n_workers, iterations)
        .verify()
        .map_err(CheckError::Dag)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fela_model::{bin_partition, zoo, PartitionOptions, ThresholdProfile};

    #[test]
    fn verify_config_end_to_end() {
        let p = bin_partition(
            &zoo::vgg19(),
            &ThresholdProfile::k40c(),
            PartitionOptions::default(),
        );
        let cfg = FelaConfig::new(3).with_weights(vec![1, 2, 4]);
        let summary = verify_config(&p, &cfg, 128, 8, 3).unwrap();
        assert_eq!(summary.train_tokens, 14 * 3);
    }

    #[test]
    fn infeasible_plan_is_distinguished() {
        let p = bin_partition(
            &zoo::vgg19(),
            &ThresholdProfile::k40c(),
            PartitionOptions::default(),
        );
        let cfg = FelaConfig::new(3);
        let err = verify_config(&p, &cfg, 4, 8, 1).unwrap_err();
        assert!(matches!(err, CheckError::Plan(_)), "{err}");
    }
}
