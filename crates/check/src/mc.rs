//! `fela-mc` — the deterministic concurrency model checker for the live
//! runtime and the sharded control plane.
//!
//! The real-clock runtime (`fela-live`) is a single-threaded server over a
//! merged inbox, pump threads forwarding per-worker TCP/channel links, and a
//! timer heap for lease deadlines. Its nondeterminism is therefore exactly:
//! *in which order do worker messages reach the server loop, and when do
//! lease timers fire relative to them*. This module drives the **real**
//! [`ControlPlane`] (monolithic or sharded, per [`McConfig::shards`]) and the
//! **real** wire [`Frame`]s through every non-equivalent such interleaving of
//! a small cluster, with the server logic mirroring `fela-live`'s
//! `handle_frame` statement for statement.
//!
//! **Partial-order reduction.** Worker reactions run *eagerly*: the instant
//! the server sends a `Grant`, the model computes the worker's `Report` and
//! parks it in that worker's link queue. This is sound because a worker's
//! local step is invisible to the server until its message is *delivered* —
//! delaying the reaction commutes with every other transition (Mazurkiewicz
//! equivalence), so only two action kinds branch: `Deliver(worker)` (the
//! server dequeues that worker's oldest in-flight frame) and
//! `Fire(token, attempt)` (an armed lease deadline expires now, adversarially
//! early). States are memoized on [`ServerSnapshot`] + link queues + armed
//! timers — interleavings that converge share their futures, collapsing the
//! factorially many schedules to a small state graph that is still *complete*
//! for every property checked here.
//!
//! **Checked on every explored path:**
//!
//! * **deadlock-freedom** — a state with no enabled action has
//!   `run_complete()`;
//! * **lost-wakeup-freedom** — at quiescence the plane never holds a ready
//!   grant (every mutation is followed by a pump, so a waiting worker whose
//!   token became available is always woken), and every grant the plane
//!   issued was actually delivered;
//! * **exactly-once token application** — each terminal state's Info Mapping
//!   holds every generated token exactly once (stale reports after a lease
//!   revocation are rejected, never double-applied);
//! * **linearizability vs the oracle** — the explored plane records its op
//!   log ([`fela_core::CoordOp`]); each transition replays the new suffix
//!   into a monolithic [`ControlPlane`] oracle in lockstep and compares both
//!   the per-op outcome digests and the full [`ServerSnapshot`]s. Every
//!   explored history of the sharded coordinator is thereby shown equivalent
//!   to a single-server execution — linearizability with the oracle as the
//!   witness order;
//! * **session discipline** — the per-link frame dialogue of every explored
//!   execution is fed through [`crate::protocol::SessionVerifier`].
//!
//! **Seeded mutations** ([`McMutation`] here, [`WireMutation`] in
//! [`crate::protocol`]) follow the crate's mutation-testing convention: each
//! of the three — dropped grant wakeup, reordered Grant/Report, misrouted
//! Grant — must be caught with a *distinct* diagnostic
//! ([`run_mutation_matrix`]).

use std::collections::{BTreeSet, VecDeque};

use fela_core::{
    apply_op, ControlPlane, CoordOp, FelaConfig, Grant, LevelMeta, LevelPlan, OpDivergence,
    RecoveryConfig, ScheduleError, ServerSnapshot, TokenId, TokenPlan,
};
use fela_live::{Endpoint, Frame, SyncEvent};
use fela_sim::SimTime;

use crate::protocol::{verify_session, SessionVerifier, SessionViolation, WireMutation};

/// The small configuration under exploration, plus bounds.
#[derive(Clone, Debug)]
pub struct McConfig {
    /// Cluster size (2–4 keeps the space exhaustive in well under a second).
    pub workers: usize,
    /// Control-plane shards: 1 = the monolithic `TokenServer`, 2 = the
    /// sharded `Coordinator` (checked against the monolithic oracle).
    pub shards: usize,
    /// BSP iterations to run (1–2).
    pub iterations: u64,
    /// SSP staleness bound (0 = BSP).
    pub staleness: u64,
    /// Model lease-based recovery: every grant arms a timer the adversary may
    /// fire at *any* enabled instant.
    pub recovery: bool,
    /// Lease fires modeled per token before the adversary gives up — the
    /// state-space bound (each fire bumps the plane's per-token attempt and
    /// per-worker expiry counters, so an unbounded adversary would make the
    /// space infinite). 1 already covers revocation, re-grant and stale
    /// reports.
    pub max_attempts: u64,
    /// Distinct-state safety net.
    pub max_states: usize,
    /// Seeded model-level mutation, if any.
    pub mutation: Option<McMutation>,
}

impl McConfig {
    /// The canonical acceptance configuration: 2 workers × 2 shards ×
    /// 2 iterations, recovery off.
    pub fn small() -> McConfig {
        McConfig {
            workers: 2,
            shards: 2,
            iterations: 2,
            staleness: 0,
            recovery: false,
            max_attempts: 1,
            max_states: 200_000,
            mutation: None,
        }
    }

    /// Builder: sets the shard count.
    pub fn with_shards(mut self, shards: usize) -> McConfig {
        self.shards = shards;
        self
    }

    /// Builder: enables the lease-expiry adversary.
    pub fn with_recovery(mut self) -> McConfig {
        self.recovery = true;
        self
    }

    /// Builder: seeds a model-level mutation.
    pub fn with_mutation(mut self, mutation: McMutation) -> McConfig {
        self.mutation = Some(mutation);
        self
    }
}

/// A seeded model-level mutation (the wire-level half is
/// [`WireMutation`]).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum McMutation {
    /// The first fresh (attempt-0) `Grant` frame for `worker` is lost in
    /// flight: the plane issued it (and, with recovery on, armed its lease),
    /// but the worker never reacts. Without recovery this is the classic lost
    /// wakeup — the run can never complete; with recovery the lease adversary
    /// revokes and re-grants, and the checker proves the runtime
    /// *self-heals*. (Attempt-0 keeps the site inside the modeled fire budget
    /// [`McConfig::max_attempts`]; a real lease timer is always armed.)
    DropGrant {
        /// Target worker.
        worker: usize,
    },
}

/// A property violated on some explored path.
#[derive(Clone, PartialEq, Debug)]
pub enum McViolation {
    /// A reachable state has no enabled action but the run is not complete.
    Deadlock {
        /// DFS depth (transitions from the initial state) of the stuck state.
        depth: usize,
        /// Human-readable description of what the model was waiting for.
        detail: String,
    },
    /// A grant was issued by the plane but its wakeup never reached the
    /// worker (or a ready grant was never popped at quiescence).
    LostWakeup {
        /// Worker that missed its wakeup.
        worker: usize,
        /// Token whose grant was lost.
        token: u64,
    },
    /// A terminal state's Info Mapping does not hold every generated token
    /// exactly once.
    IncompleteRun {
        /// Generated tokens never applied.
        missing: Vec<u64>,
    },
    /// The explored plane's op history diverged from the monolithic oracle.
    NotLinearizable {
        /// First diverging operation.
        divergence: Box<OpDivergence>,
    },
    /// Op digests matched but the full scheduling states drifted apart —
    /// a deeper-than-digest divergence.
    OracleDrift {
        /// Transitions explored when the drift was detected.
        depth: usize,
    },
    /// The plane returned a typed error on a legal action sequence.
    SchedulerError {
        /// The error's display form.
        message: String,
    },
    /// The frame dialogue of an explored execution broke session discipline.
    Session(SessionViolation),
}

impl std::fmt::Display for McViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            McViolation::Deadlock { depth, detail } => {
                write!(f, "deadlock at depth {depth}: {detail}")
            }
            McViolation::LostWakeup { worker, token } => {
                write!(
                    f,
                    "lost wakeup: grant of token {token} never woke worker {worker}"
                )
            }
            McViolation::IncompleteRun { missing } => {
                write!(f, "terminal state missing token applications: {missing:?}")
            }
            McViolation::NotLinearizable { divergence } => {
                write!(f, "history not linearizable vs oracle: {divergence}")
            }
            McViolation::OracleDrift { depth } => {
                write!(f, "oracle snapshot drift at depth {depth}")
            }
            McViolation::SchedulerError { message } => {
                write!(f, "scheduler error on a legal path: {message}")
            }
            McViolation::Session(v) => write!(f, "session violation: {v}"),
        }
    }
}

/// Result of one exploration.
#[derive(Clone, Debug)]
pub struct McOutcome {
    /// Distinct states visited.
    pub states: usize,
    /// Transitions executed.
    pub transitions: u64,
    /// Distinct terminal (run-complete, quiescent) states reached.
    pub terminals: u64,
    /// Deepest path explored (transitions from the initial state).
    pub deepest: usize,
    /// Lease fires executed across all explored transitions.
    pub lease_fires: u64,
    /// Stale reports (post-revocation) observed across all transitions.
    pub stale_reports: u64,
    /// Distinct violations found on any path.
    pub violations: Vec<McViolation>,
    /// True if exploration hit `max_states` before exhausting the space.
    pub truncated: bool,
}

impl McOutcome {
    /// True when the full space was explored violation-free.
    pub fn ok(&self) -> bool {
        self.violations.is_empty() && !self.truncated
    }
}

/// One row of the seeded-mutation matrix.
#[derive(Clone, Debug)]
pub struct MutationRun {
    /// Mutation name.
    pub name: &'static str,
    /// Whether the checker caught it.
    pub caught: bool,
    /// The (first) diagnostic it produced.
    pub diagnostic: String,
    /// Discriminant of the diagnostic kind, for distinctness assertions.
    pub kind: &'static str,
}

/// The canonical 2-level token plan (same shape as [`crate::Explorer::small`]
/// and the shard-conformance suite): 2 + 1 training tokens and 2 generation
/// tokens per iteration over 8 samples.
fn small_plan() -> TokenPlan {
    TokenPlan {
        levels: vec![
            LevelPlan {
                level: 0,
                tokens_per_iteration: 2,
                batch_per_token: 4,
                gen_ratio: 1,
            },
            LevelPlan {
                level: 1,
                tokens_per_iteration: 1,
                batch_per_token: 8,
                gen_ratio: 2,
            },
        ],
        total_batch: 8,
    }
}

fn meta() -> Vec<LevelMeta> {
    vec![
        LevelMeta {
            param_bytes: 4096,
            output_bytes_per_sample: 64,
            input_bytes_per_sample: 64,
            comm_intensive: false,
        },
        LevelMeta {
            param_bytes: 8192,
            output_bytes_per_sample: 32,
            input_bytes_per_sample: 64,
            comm_intensive: false,
        },
    ]
}

fn build_plane(cfg: &McConfig, shards: usize) -> ControlPlane {
    let mut fc = FelaConfig::new(2)
        .with_weights(vec![1, 2])
        .with_shards(shards);
    fc.staleness = cfg.staleness;
    if cfg.recovery {
        fc.recovery = Some(RecoveryConfig::default());
    }
    fc.validate(cfg.workers);
    ControlPlane::new(small_plan(), fc, meta(), cfg.workers, cfg.iterations)
}

/// One in-flight model state.
#[derive(Clone)]
struct McState {
    /// The plane under check (op log enabled).
    plane: ControlPlane,
    /// The monolithic lockstep oracle.
    oracle: ControlPlane,
    /// Per-worker link queue: frames sent by the worker, not yet delivered.
    queues: Vec<VecDeque<Frame>>,
    /// Armed lease timers `(token, attempt)` the adversary may fire.
    armed: BTreeSet<(u64, u64)>,
    /// Grants issued by the plane but lost in flight `(worker, token)` —
    /// nonempty only under [`McMutation::DropGrant`].
    undelivered: Vec<(usize, u64)>,
    /// Whether the seeded mutation is still waiting to strike.
    mutation_armed: bool,
    /// Per-link session machine over this path's frame dialogue. Not part of
    /// the memoization key: its state is a function of the plane snapshot
    /// plus the link queues (every queued `Report` is an outstanding grant),
    /// so equal keys imply equal session futures.
    verifier: SessionVerifier,
    /// Transitions from the initial state (diagnostics only, not in the key).
    depth: usize,
    /// Ops compared against the oracle so far (diagnostics only).
    ops_applied: usize,
}

/// Memoization key. The oracle is *excluded*: its snapshot is proved equal to
/// the plane's at every transition, so it carries no independent state.
type McKey = (
    ServerSnapshot,
    Vec<Vec<(u8, u64, u64)>>,
    Vec<(u64, u64)>,
    Vec<(usize, u64)>,
    bool,
);

/// Compact key form of an in-flight frame (queues only ever hold worker-type
/// frames: `Request` and `Report`).
fn frame_key(frame: &Frame) -> (u8, u64, u64) {
    match frame {
        Frame::Request { worker } => (1, u64::from(*worker), 0),
        Frame::Report { worker, token } => (2, u64::from(*worker), *token),
        // Unreachable for model-generated queues; still total for safety.
        _ => (0, 0, 0),
    }
}

#[derive(Clone, Copy, Debug)]
enum Action {
    Deliver(usize),
    Fire(u64, u64),
}

/// Shared per-exploration context.
struct Mc<'a> {
    cfg: &'a McConfig,
    outcome: McOutcome,
    violations_seen: BTreeSet<String>,
}

impl Mc<'_> {
    fn push_violation(&mut self, v: McViolation) {
        // Dedup on display form: the same logical violation is typically
        // reachable through many interleavings.
        if self.violations_seen.insert(v.to_string()) {
            self.outcome.violations.push(v);
        }
    }

    /// Applies every plane mutation of one transition to the oracle in
    /// lockstep and compares digests + snapshots.
    fn lockstep(&mut self, state: &mut McState) {
        let ops = state.plane.take_op_log();
        for op in ops {
            let got = apply_op(&mut state.oracle, &op.kind);
            if got != op.outcome {
                self.push_violation(McViolation::NotLinearizable {
                    divergence: Box::new(OpDivergence {
                        index: state.ops_applied,
                        kind: op.kind.clone(),
                        recorded: op.outcome.clone(),
                        oracle: got,
                    }),
                });
            }
            state.ops_applied += 1;
        }
        if state.oracle.snapshot() != state.plane.snapshot() {
            self.push_violation(McViolation::OracleDrift { depth: state.depth });
        }
        for v in state.verifier.take_violations() {
            self.push_violation(McViolation::Session(v));
        }
    }

    /// Models the server issuing `grant` to `worker`: the worker reacts
    /// eagerly, parking its `Report` on the link; with recovery on, the lease
    /// timer arms (bounded by `max_attempts`).
    fn issue_grant(&mut self, state: &mut McState, worker: usize, grant: &Grant) {
        let token = grant.token.id.0;
        let dropped = match self.cfg.mutation {
            Some(McMutation::DropGrant { worker: target })
                if state.mutation_armed && worker == target && grant.attempt == 0 =>
            {
                state.mutation_armed = false;
                state.undelivered.push((worker, token));
                true
            }
            _ => false,
        };
        // Mirror fela-live: the lease arms after the send — a frame lost in
        // flight still has its deadline ticking, which is exactly what makes
        // the dropped wakeup recoverable when recovery is on.
        if state.plane.recovery_on() && grant.attempt < self.cfg.max_attempts {
            state.armed.insert((token, grant.attempt));
        }
        if !dropped {
            state.verifier.add_grant_intent(token, worker);
            state.verifier.observe(&SyncEvent::FrameSent {
                side: Endpoint::Server,
                worker,
                frame: Frame::Grant {
                    token,
                    level: grant.token.level as u32,
                    iteration: grant.token.iteration,
                    batch: grant.token.batch,
                    unit_start: grant.token.level as u32,
                    unit_end: grant.token.level as u32 + 1,
                },
            });
            state.queues[worker].push_back(Frame::Report {
                worker: worker as u32,
                token,
            });
        }
    }

    /// Mirrors `fela-live`'s `pump_grants`.
    fn pump_grants(&mut self, state: &mut McState) {
        loop {
            match state.plane.pop_ready_grant(SimTime::ZERO) {
                Ok(Some((worker, grant))) => self.issue_grant(state, worker, &grant),
                Ok(None) => break,
                Err(e) => {
                    self.push_violation(McViolation::SchedulerError {
                        message: e.to_string(),
                    });
                    break;
                }
            }
        }
    }

    /// Mirrors `fela-live`'s `handle_frame`.
    fn deliver(&mut self, state: &mut McState, worker: usize) {
        let Some(frame) = state.queues[worker].pop_front() else {
            return;
        };
        state.verifier.observe(&SyncEvent::FrameReceived {
            side: Endpoint::Server,
            worker,
            frame: frame.clone(),
        });
        match frame {
            Frame::Request { .. } => match state.plane.request(worker, SimTime::ZERO) {
                Ok(Some(grant)) => self.issue_grant(state, worker, &grant),
                Ok(None) => {}
                Err(ScheduleError::WorkerUnavailable { .. }) => {}
                Err(e) => self.push_violation(McViolation::SchedulerError {
                    message: e.to_string(),
                }),
            },
            Frame::Report { token, .. } => {
                match state.plane.report(worker, TokenId(token)) {
                    Ok(syncs) => {
                        // Control-plane runtime: every sync commits degenerately.
                        for spec in syncs {
                            if let Err(e) = state.plane.sync_finished(spec.level, spec.iteration) {
                                self.push_violation(McViolation::SchedulerError {
                                    message: e.to_string(),
                                });
                            }
                        }
                    }
                    Err(ScheduleError::StaleReport { .. }) => self.outcome.stale_reports += 1,
                    Err(e) => self.push_violation(McViolation::SchedulerError {
                        message: e.to_string(),
                    }),
                }
                // Piggybacked pull, exactly like the live server.
                match state.plane.request(worker, SimTime::ZERO) {
                    Ok(Some(grant)) => self.issue_grant(state, worker, &grant),
                    Ok(None) => {}
                    Err(ScheduleError::WorkerUnavailable { .. }) => {}
                    Err(e) => self.push_violation(McViolation::SchedulerError {
                        message: e.to_string(),
                    }),
                }
                self.pump_grants(state);
            }
            other => self.push_violation(McViolation::SchedulerError {
                message: format!("model queue held a non-worker frame: {other:?}"),
            }),
        }
    }

    /// Mirrors `fela-live`'s lease-timer fire.
    fn fire(&mut self, state: &mut McState, token: u64, attempt: u64) {
        state.armed.remove(&(token, attempt));
        self.outcome.lease_fires += 1;
        match state.plane.lease_expired(TokenId(token), attempt) {
            Ok(Some(expired)) => {
                // The plane walked away from these grants; in-flight drops of
                // them are healed (their reports would be stale anyway).
                state
                    .undelivered
                    .retain(|(_, t)| !expired.revoked.iter().any(|r| r.0 == *t));
            }
            Ok(None) => {}
            Err(e) => self.push_violation(McViolation::SchedulerError {
                message: e.to_string(),
            }),
        }
        self.pump_grants(state);
    }

    /// Drops armed timers whose lease the plane has already superseded —
    /// firing them is a plane no-op followed by an empty pump, so pruning
    /// them is sound and keeps the space small.
    fn gc_armed(state: &mut McState) {
        let plane = &state.plane;
        state
            .armed
            .retain(|(t, a)| plane.lease_of(TokenId(*t)).is_some_and(|l| l.attempt == *a));
    }

    fn key_of(state: &McState) -> McKey {
        (
            state.plane.snapshot(),
            state
                .queues
                .iter()
                .map(|q| q.iter().map(frame_key).collect())
                .collect(),
            state.armed.iter().copied().collect(),
            state.undelivered.clone(),
            state.mutation_armed,
        )
    }

    fn enabled(state: &McState) -> Vec<Action> {
        let mut actions: Vec<Action> = (0..state.queues.len())
            .filter(|w| !state.queues[*w].is_empty())
            .map(Action::Deliver)
            .collect();
        actions.extend(state.armed.iter().map(|(t, a)| Action::Fire(*t, *a)));
        actions
    }

    /// Checks a quiescent state (no enabled action).
    fn check_quiescent(&mut self, state: &McState) {
        // A ready grant at quiescence means a pump was skipped somewhere.
        let mut probe = state.plane.clone();
        if let Ok(Some((worker, grant))) = probe.pop_ready_grant(SimTime::ZERO) {
            self.push_violation(McViolation::LostWakeup {
                worker,
                token: grant.token.id.0,
            });
            return;
        }
        if let Some((worker, token)) = state.undelivered.first().copied() {
            self.push_violation(McViolation::LostWakeup { worker, token });
            return;
        }
        if state.plane.run_complete() {
            self.outcome.terminals += 1;
            // Exactly-once: every generated token applied exactly once. The
            // Info Mapping is a map, so "at most once" is structural; check
            // coverage.
            let holder: BTreeSet<u64> = state
                .plane
                .snapshot()
                .holder
                .iter()
                .map(|(t, _)| *t)
                .collect();
            let missing: Vec<u64> = state
                .plane
                .tokens()
                .keys()
                .map(|id| id.0)
                .filter(|id| !holder.contains(id))
                .collect();
            if !missing.is_empty() {
                self.push_violation(McViolation::IncompleteRun { missing });
            }
        } else {
            let queued: usize = state.queues.iter().map(VecDeque::len).sum();
            self.push_violation(McViolation::Deadlock {
                depth: state.depth,
                detail: format!(
                    "{queued} frames in flight, {} timers armed, {}/{} iterations complete",
                    state.armed.len(),
                    state.plane.completed_iterations(),
                    state.plane.max_iterations(),
                ),
            });
        }
    }
}

/// Exhaustively explores every non-equivalent interleaving of `cfg`.
pub fn model_check(cfg: &McConfig) -> McOutcome {
    let mut plane = build_plane(cfg, cfg.shards);
    plane.enable_op_log();
    let oracle = build_plane(cfg, 1);
    let mut mc = Mc {
        cfg,
        outcome: McOutcome {
            states: 0,
            transitions: 0,
            terminals: 0,
            deepest: 0,
            lease_fires: 0,
            stale_reports: 0,
            violations: Vec::new(),
            truncated: false,
        },
        violations_seen: BTreeSet::new(),
    };
    // Pull protocol: every worker opens with a Request.
    let queues = (0..cfg.workers)
        .map(|w| {
            let mut q = VecDeque::new();
            q.push_back(Frame::Request { worker: w as u32 });
            q
        })
        .collect();
    let initial = McState {
        plane,
        oracle,
        queues,
        armed: BTreeSet::new(),
        undelivered: Vec::new(),
        mutation_armed: cfg.mutation.is_some(),
        verifier: SessionVerifier::new(),
        depth: 0,
        ops_applied: 0,
    };
    let mut visited: BTreeSet<McKey> = BTreeSet::new();
    let mut stack = vec![initial];
    while let Some(state) = stack.pop() {
        if !visited.insert(Mc::key_of(&state)) {
            continue;
        }
        mc.outcome.states += 1;
        mc.outcome.deepest = mc.outcome.deepest.max(state.depth);
        if mc.outcome.states >= cfg.max_states {
            mc.outcome.truncated = true;
            break;
        }
        let actions = Mc::enabled(&state);
        if actions.is_empty() {
            mc.check_quiescent(&state);
            continue;
        }
        for action in actions {
            let mut next = state.clone();
            next.depth += 1;
            mc.outcome.transitions += 1;
            match action {
                Action::Deliver(w) => mc.deliver(&mut next, w),
                Action::Fire(t, a) => mc.fire(&mut next, t, a),
            }
            mc.lockstep(&mut next);
            Mc::gc_armed(&mut next);
            stack.push(next);
        }
    }
    mc.outcome
}

/// Runs one deterministic round-robin execution of `cfg`'s model (lowest
/// nonempty link first, no adversarial lease fires) and returns the
/// synthesized server-side [`SyncEvent`] stream plus the op log — the input
/// to the protocol session verifier and its wire-mutation matrix.
pub fn record_execution(cfg: &McConfig) -> (Vec<SyncEvent>, Vec<CoordOp>) {
    let mut plane = build_plane(cfg, cfg.shards);
    plane.enable_op_log();
    let mut queues: Vec<VecDeque<Frame>> = (0..cfg.workers)
        .map(|w| {
            let mut q = VecDeque::new();
            q.push_back(Frame::Request { worker: w as u32 });
            q
        })
        .collect();
    let mut events = Vec::new();
    let mut ops = Vec::new();
    let mut guard = 0usize;
    while !plane.run_complete() && guard < 100_000 {
        guard += 1;
        let Some(w) = (0..cfg.workers).find(|w| !queues[*w].is_empty()) else {
            break;
        };
        let Some(frame) = queues[w].pop_front() else {
            break;
        };
        events.push(SyncEvent::FrameReceived {
            side: Endpoint::Server,
            worker: w,
            frame: frame.clone(),
        });
        let mut issued: Vec<(usize, Grant)> = Vec::new();
        match frame {
            Frame::Request { .. } => {
                if let Ok(Some(grant)) = plane.request(w, SimTime::ZERO) {
                    issued.push((w, grant));
                }
            }
            Frame::Report { token, .. } => {
                if let Ok(syncs) = plane.report(w, TokenId(token)) {
                    for spec in syncs {
                        let _ = plane.sync_finished(spec.level, spec.iteration);
                    }
                }
                if let Ok(Some(grant)) = plane.request(w, SimTime::ZERO) {
                    issued.push((w, grant));
                }
                while let Ok(Some((v, grant))) = plane.pop_ready_grant(SimTime::ZERO) {
                    issued.push((v, grant));
                }
            }
            _ => {}
        }
        for (v, grant) in issued {
            let token = grant.token.id.0;
            events.push(SyncEvent::FrameSent {
                side: Endpoint::Server,
                worker: v,
                frame: Frame::Grant {
                    token,
                    level: grant.token.level as u32,
                    iteration: grant.token.iteration,
                    batch: grant.token.batch,
                    unit_start: grant.token.level as u32,
                    unit_end: grant.token.level as u32 + 1,
                },
            });
            queues[v].push_back(Frame::Report {
                worker: v as u32,
                token,
            });
        }
        ops.append(&mut plane.take_op_log());
    }
    // Epilogue: End down every link, Params back up — the session close.
    for w in 0..cfg.workers {
        events.push(SyncEvent::FrameSent {
            side: Endpoint::Server,
            worker: w,
            frame: Frame::End,
        });
    }
    for w in 0..cfg.workers {
        events.push(SyncEvent::FrameReceived {
            side: Endpoint::Server,
            worker: w,
            frame: Frame::Params { bytes: Vec::new() },
        });
    }
    (events, ops)
}

/// Runs the full seeded-mutation matrix: every mutation must be caught, each
/// with a distinct diagnostic kind.
pub fn run_mutation_matrix() -> Vec<MutationRun> {
    let mut rows = Vec::new();

    // 1. Dropped grant wakeup, recovery off → the model-level lost-wakeup
    //    diagnostic.
    let cfg = McConfig::small().with_mutation(McMutation::DropGrant { worker: 1 });
    let outcome = model_check(&cfg);
    let hit = outcome
        .violations
        .iter()
        .find(|v| matches!(v, McViolation::LostWakeup { .. }));
    rows.push(MutationRun {
        name: "drop-grant",
        caught: hit.is_some(),
        diagnostic: hit.map(|v| v.to_string()).unwrap_or_default(),
        kind: "LostWakeup",
    });

    // 2 & 3. Wire-level mutations over a recorded execution.
    let (events, ops) = record_execution(&McConfig::small());
    let reordered = verify_session(
        &crate::protocol::mutate_events(&events, &WireMutation::ReorderGrantReport { nth: 0 }),
        Some(&ops),
    );
    let hit = reordered
        .violations
        .iter()
        .find(|v| matches!(v, SessionViolation::ReportWithoutGrant { .. }));
    rows.push(MutationRun {
        name: "reorder-grant-report",
        caught: hit.is_some(),
        diagnostic: hit.map(|v| v.to_string()).unwrap_or_default(),
        kind: "ReportWithoutGrant",
    });

    let misrouted = verify_session(
        &crate::protocol::mutate_events(&events, &WireMutation::MisrouteGrant { nth: 0 }),
        Some(&ops),
    );
    let hit = misrouted
        .violations
        .iter()
        .find(|v| matches!(v, SessionViolation::MisroutedGrant { .. }));
    rows.push(MutationRun {
        name: "misroute-grant",
        caught: hit.is_some(),
        diagnostic: hit.map(|v| v.to_string()).unwrap_or_default(),
        kind: "MisroutedGrant",
    });

    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_monolithic_small_config_is_clean() {
        let outcome = model_check(&McConfig::small().with_shards(1));
        assert!(outcome.ok(), "{:?}", outcome.violations);
        assert!(outcome.terminals >= 1);
        assert!(outcome.states > 10, "space too small to mean anything");
    }

    #[test]
    fn the_sharded_small_config_is_clean_and_linearizable() {
        let outcome = model_check(&McConfig::small());
        assert!(outcome.ok(), "{:?}", outcome.violations);
        assert!(outcome.terminals >= 1);
        assert!(!outcome
            .violations
            .iter()
            .any(|v| matches!(v, McViolation::NotLinearizable { .. })),);
    }

    #[test]
    fn the_lease_adversary_explores_revocation_and_stays_clean() {
        let outcome = model_check(&McConfig::small().with_recovery());
        assert!(outcome.ok(), "{:?}", outcome.violations);
        assert!(outcome.lease_fires > 0, "adversary never fired a lease");
        assert!(
            outcome.stale_reports > 0,
            "no explored path raced a stale report against a revocation"
        );
    }

    #[test]
    fn three_workers_explore_clean() {
        let mut cfg = McConfig::small();
        cfg.workers = 3;
        cfg.iterations = 1;
        let outcome = model_check(&cfg);
        assert!(outcome.ok(), "{:?}", outcome.violations);
    }

    #[test]
    fn a_dropped_grant_without_recovery_is_a_lost_wakeup() {
        let cfg = McConfig::small().with_mutation(McMutation::DropGrant { worker: 1 });
        let outcome = model_check(&cfg);
        assert!(
            outcome
                .violations
                .iter()
                .any(|v| matches!(v, McViolation::LostWakeup { worker: 1, .. })),
            "{:?}",
            outcome.violations
        );
    }

    #[test]
    fn a_dropped_grant_with_recovery_self_heals() {
        let cfg = McConfig::small()
            .with_recovery()
            .with_mutation(McMutation::DropGrant { worker: 1 });
        let outcome = model_check(&cfg);
        assert!(
            !outcome
                .violations
                .iter()
                .any(|v| matches!(v, McViolation::LostWakeup { .. })),
            "recovery should heal the dropped wakeup: {:?}",
            outcome.violations
        );
        assert!(outcome.terminals >= 1, "no path completed the run");
    }

    #[test]
    fn recorded_executions_are_session_clean_and_replay_against_the_oracle() {
        for shards in [1, 2] {
            let cfg = McConfig::small().with_shards(shards);
            let (events, ops) = record_execution(&cfg);
            let report = verify_session(&events, Some(&ops));
            assert!(report.ok(), "shards={shards}: {:?}", report.violations);
            let mut oracle = build_plane(&cfg, 1);
            fela_core::replay_oplog(&ops, &mut oracle).expect("history must replay");
        }
    }

    #[test]
    fn the_mutation_matrix_is_fully_caught_with_distinct_diagnostics() {
        let rows = run_mutation_matrix();
        assert_eq!(rows.len(), 3);
        for row in &rows {
            assert!(row.caught, "mutation {} escaped", row.name);
            assert!(!row.diagnostic.is_empty());
        }
        let kinds: BTreeSet<&str> = rows.iter().map(|r| r.kind).collect();
        assert_eq!(kinds.len(), 3, "diagnostics must be distinct: {rows:?}");
    }
}
