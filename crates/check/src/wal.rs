//! Write-ahead-log verification: durable recovery is exactly-once.
//!
//! The [`crate::recovery`] module proves the lease protocol over *traces*;
//! this module proves the complementary durability property over the *log
//! itself*: a Token Server WAL, replayed from its `Begin` record through an
//! oracle [`ControlPlane`], reproduces exactly the outcomes it recorded —
//! every grant, report, sync, revocation and lease fire once each, in order,
//! with every checkpoint snapshot-equal to the oracle at that point. A log
//! that passes [`check_wal`] is a log the crashed server can recover from
//! with no token applied twice and no token lost.
//!
//! [`mutate_wal`] applies seeded corruptions ([`WalMutation`]) to a real log,
//! proving each diagnostic actually fires — a dropped record, a duplicated
//! record and a reordered record each produce a *distinct* [`WalViolation`].

use fela_core::wal::{encode_record, read_log};
use fela_core::{
    apply_op, ControlPlane, FelaConfig, LevelMeta, LevelPlan, MemWal, OpKind, OpOutcome,
    ServerSnapshot, TokenId, TokenPlan, WalRecord,
};
use fela_sim::SimTime;
use std::collections::BTreeSet;

/// A durability violation found while replaying a WAL.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum WalViolation {
    /// The log bytes do not parse (bad checksum, oversized record, unknown
    /// tag, missing or mismatched `Begin`, …).
    Corrupt {
        /// The decoder's diagnostic.
        detail: String,
    },
    /// The sequence chain jumped forward: at least one record is missing.
    DroppedRecord {
        /// The sequence number the chain expected next.
        expected: u64,
        /// The sequence number actually found.
        found: u64,
    },
    /// The same sequence number appeared twice in a row.
    DuplicatedRecord {
        /// The repeated sequence number.
        seq: u64,
    },
    /// A record arrived after a later one (out of append order).
    ReorderedRecord {
        /// The sequence number seen immediately before.
        prev: u64,
        /// The out-of-order sequence number.
        seq: u64,
    },
    /// Replaying a record's inputs on the oracle produced a different
    /// outcome than the log recorded.
    OutcomeDivergence {
        /// Sequence number of the diverging record.
        seq: u64,
    },
    /// An accepted report for a token that an earlier record had already
    /// applied — replaying this log would apply the gradient twice.
    DoubleApply {
        /// The doubly-applied token id.
        token: u64,
        /// Sequence number of the second application.
        seq: u64,
    },
    /// A checkpoint's stored state differs from the oracle's state at that
    /// point in the replay.
    CheckpointDiverged {
        /// The checkpoint's sequence number.
        seq: u64,
    },
    /// The fully replayed log does not end in the expected final state.
    SnapshotDiverged,
}

impl std::fmt::Display for WalViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WalViolation::Corrupt { detail } => write!(f, "log does not parse: {detail}"),
            WalViolation::DroppedRecord { expected, found } => write!(
                f,
                "sequence chain expected record {expected} but found {found}: a record was dropped"
            ),
            WalViolation::DuplicatedRecord { seq } => {
                write!(f, "record {seq} appears twice in a row")
            }
            WalViolation::ReorderedRecord { prev, seq } => {
                write!(
                    f,
                    "record {seq} arrived after record {prev}: append order broken"
                )
            }
            WalViolation::OutcomeDivergence { seq } => write!(
                f,
                "record {seq}: oracle replay produced a different outcome than the log recorded"
            ),
            WalViolation::DoubleApply { token, seq } => write!(
                f,
                "record {seq}: token {token} applied a second time — exactly-once broken"
            ),
            WalViolation::CheckpointDiverged { seq } => write!(
                f,
                "checkpoint at record {seq} disagrees with the oracle's replayed state"
            ),
            WalViolation::SnapshotDiverged => {
                write!(f, "replayed final state differs from the expected snapshot")
            }
        }
    }
}

/// Statistics of a clean WAL replay.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WalSummary {
    /// Records in the log (including `Begin` and checkpoints).
    pub records: usize,
    /// Logged operations replayed.
    pub ops: usize,
    /// Checkpoints verified against the oracle.
    pub checkpoints: usize,
    /// Accepted reports (gradients applied exactly once each).
    pub applied: usize,
    /// Bytes of torn tail dropped by the reader (a crash mid-append).
    pub torn_bytes: usize,
}

/// Replays `bytes` through an oracle [`ControlPlane`] built from the same
/// inputs the writer had, verifying the sequence chain, every recorded
/// outcome, every checkpoint, and the exactly-once property. When `expected`
/// is given, the oracle's final state must equal it.
///
/// Returns the summary if the log is sound, or every violation found. The
/// replay continues past violations (resynchronizing the chain after a gap)
/// so one corruption yields its own diagnostic rather than a parse abort.
pub fn check_wal(
    bytes: &[u8],
    plan: &TokenPlan,
    cfg: &FelaConfig,
    meta: &[LevelMeta],
    n_workers: usize,
    max_iterations: u64,
    expected: Option<&ServerSnapshot>,
) -> Result<WalSummary, Vec<WalViolation>> {
    let log = match read_log(bytes) {
        Ok(log) => log,
        Err(e) => {
            return Err(vec![WalViolation::Corrupt {
                detail: e.to_string(),
            }])
        }
    };
    let mut summary = WalSummary {
        records: log.records.len(),
        torn_bytes: log.torn_bytes,
        ..WalSummary::default()
    };
    let mut violations = Vec::new();

    let mut records = log.records.iter();
    match records.next() {
        Some(WalRecord::Begin {
            shards,
            n_workers: w,
            max_iterations: m,
        }) => {
            let want = cfg.shards.max(1) as u32;
            if *shards != want || *w as usize != n_workers || *m != max_iterations {
                violations.push(WalViolation::Corrupt {
                    detail: format!(
                        "Begin({shards} shards, {w} workers, {m} iterations) describes a \
                         different plane than ({want}, {n_workers}, {max_iterations})"
                    ),
                });
            }
        }
        Some(_) | None => {
            return Err(vec![WalViolation::Corrupt {
                detail: "log does not open with a Begin record".to_string(),
            }])
        }
    }

    let mut oracle = ControlPlane::new(
        plan.clone(),
        cfg.clone(),
        meta.to_vec(),
        n_workers,
        max_iterations,
    );
    let mut next_seq: u64 = 0;
    let mut last_seq: Option<u64> = None;
    let mut applied: BTreeSet<u64> = BTreeSet::new();

    for record in records {
        match record {
            WalRecord::Begin { .. } => violations.push(WalViolation::Corrupt {
                detail: "second Begin record mid-log".to_string(),
            }),
            WalRecord::Op { seq, op } => {
                summary.ops += 1;
                let mut skip_apply = false;
                if *seq > next_seq {
                    violations.push(WalViolation::DroppedRecord {
                        expected: next_seq,
                        found: *seq,
                    });
                    next_seq = seq + 1; // resync and keep checking the suffix
                } else if *seq < next_seq {
                    if Some(*seq) == last_seq {
                        violations.push(WalViolation::DuplicatedRecord { seq: *seq });
                        skip_apply = true; // a recovering server skips it too
                    } else {
                        violations.push(WalViolation::ReorderedRecord {
                            prev: last_seq.unwrap_or(0),
                            seq: *seq,
                        });
                    }
                } else {
                    next_seq += 1;
                }
                last_seq = Some(*seq);
                // Exactly-once: an accepted report's token must never be
                // accepted again, wherever the record sits in the chain.
                if let (OpKind::Report { token, .. }, OpOutcome::Synced { .. }) =
                    (&op.kind, &op.outcome)
                {
                    if !applied.insert(*token) {
                        violations.push(WalViolation::DoubleApply {
                            token: *token,
                            seq: *seq,
                        });
                    } else {
                        summary.applied += 1;
                    }
                }
                if !skip_apply && apply_op(&mut oracle, &op.kind) != op.outcome {
                    violations.push(WalViolation::OutcomeDivergence { seq: *seq });
                }
            }
            // check_wal verifies one fixed-membership segment; a resize
            // marker belongs *between* segments (fela-core's recover_elastic
            // splits on it), so inside one it is corruption.
            WalRecord::Resize { .. } => violations.push(WalViolation::Corrupt {
                detail: "Resize record inside a fixed-membership segment".to_string(),
            }),
            WalRecord::Checkpoint {
                seq,
                tokens,
                snapshot,
                ..
            } => {
                summary.checkpoints += 1;
                let oracle_tokens: Vec<_> = oracle.tokens().values().cloned().collect();
                if *seq != next_seq || **snapshot != oracle.snapshot() || *tokens != oracle_tokens {
                    violations.push(WalViolation::CheckpointDiverged { seq: *seq });
                }
            }
        }
    }

    if let Some(expected) = expected {
        if oracle.snapshot() != *expected {
            violations.push(WalViolation::SnapshotDiverged);
        }
    }

    if violations.is_empty() {
        Ok(summary)
    } else {
        Err(violations)
    }
}

fn reference_plan() -> TokenPlan {
    TokenPlan {
        levels: vec![
            LevelPlan {
                level: 0,
                tokens_per_iteration: 2,
                batch_per_token: 4,
                gen_ratio: 1,
            },
            LevelPlan {
                level: 1,
                tokens_per_iteration: 1,
                batch_per_token: 8,
                gen_ratio: 2,
            },
        ],
        total_batch: 8,
    }
}

fn reference_meta() -> Vec<LevelMeta> {
    vec![
        LevelMeta {
            param_bytes: 4096,
            output_bytes_per_sample: 64,
            input_bytes_per_sample: 64,
            comm_intensive: false,
        },
        LevelMeta {
            param_bytes: 8192,
            output_bytes_per_sample: 32,
            input_bytes_per_sample: 64,
            comm_intensive: false,
        },
    ]
}

fn reference_cfg(shards: usize) -> FelaConfig {
    FelaConfig::new(2)
        .with_weights(vec![1, 2])
        .with_shards(shards)
}

fn report_and_sync(
    plane: &mut ControlPlane,
    worker: usize,
    token: TokenId,
    checkpoint_every: u64,
    synced: &mut u64,
) {
    let syncs = match plane.report(worker, token) {
        Ok(syncs) => syncs,
        Err(e) => panic!("reference report must be accepted: {e:?}"),
    };
    for s in syncs {
        if let Err(e) = plane.sync_finished(s.level, s.iteration) {
            panic!("reference sync must succeed: {e:?}");
        }
        *synced += 1;
        if checkpoint_every > 0 && (*synced).is_multiple_of(checkpoint_every) {
            if let Err(e) = plane.checkpoint_wal(&[]) {
                panic!("an in-memory checkpoint cannot fail: {e}");
            }
        }
    }
}

/// Drives a WAL-attached two-worker × two-iteration plane to completion and
/// returns the log bytes plus the final snapshot. The reference fixture
/// behind `fela check --wal`, [`run_wal_mutation_matrix`] and this module's
/// tests: small enough to replay instantly, large enough to exercise grants,
/// deferred grants, syncs and (optionally) checkpoints on both the
/// monolithic and the sharded plane.
pub fn reference_logged_run(shards: usize, checkpoint_every: u64) -> (Vec<u8>, ServerSnapshot) {
    let mem = MemWal::new();
    let mut plane = ControlPlane::new(
        reference_plan(),
        reference_cfg(shards),
        reference_meta(),
        2,
        2,
    );
    if let Err(e) = plane.attach_wal(Box::new(mem.clone())) {
        panic!("an in-memory WAL cannot fail to attach: {e}");
    }
    let now = SimTime::ZERO;
    let mut synced = 0u64;
    while !plane.run_complete() {
        let mut progressed = false;
        for w in 0..2 {
            if let Ok(Some(grant)) = plane.request(w, now) {
                report_and_sync(&mut plane, w, grant.token.id, checkpoint_every, &mut synced);
                progressed = true;
            }
        }
        while let Ok(Some((w, grant))) = plane.pop_ready_grant(now) {
            report_and_sync(&mut plane, w, grant.token.id, checkpoint_every, &mut synced);
            progressed = true;
        }
        if !progressed {
            panic!("reference run stalled before completion");
        }
    }
    (mem.bytes(), plane.snapshot())
}

/// Runs [`reference_logged_run`] and replays its own log through
/// [`check_wal`], with the run's final snapshot as the expected state.
pub fn reference_wal_check(
    shards: usize,
    checkpoint_every: u64,
) -> Result<WalSummary, Vec<WalViolation>> {
    let (bytes, last) = reference_logged_run(shards, checkpoint_every);
    check_wal(
        &bytes,
        &reference_plan(),
        &reference_cfg(shards),
        &reference_meta(),
        2,
        2,
        Some(&last),
    )
}

/// One row of [`run_wal_mutation_matrix`]: a seeded log corruption, whether
/// the replay caught it, and the diagnostic that fired.
#[derive(Clone, Debug)]
pub struct WalMutationRun {
    /// Human-readable mutation name.
    pub name: &'static str,
    /// The violation kind this mutation must produce — distinct per row.
    pub kind: &'static str,
    /// Whether [`check_wal`] rejected the mutated log with that kind.
    pub caught: bool,
    /// The matching diagnostic (or the first violation found instead).
    pub diagnostic: String,
}

/// Applies every [`WalMutation`] to the reference log and replays each
/// mutated log through [`check_wal`], recording whether the expected —
/// and *distinct* — [`WalViolation`] fired. `fela check --wal` renders
/// these rows and fails if any mutation is missed or two rows share a kind.
pub fn run_wal_mutation_matrix() -> Vec<WalMutationRun> {
    /// One matrix row: `(name, kind, mutation, expected-violation matcher)`.
    type MutationCase = (
        &'static str,
        &'static str,
        WalMutation,
        fn(&WalViolation) -> bool,
    );
    let (bytes, _) = reference_logged_run(1, 0);
    let cases: [MutationCase; 4] = [
        (
            "dropped record",
            "dropped-record",
            WalMutation::DropRecord { seed: 3 },
            |v| matches!(v, WalViolation::DroppedRecord { .. }),
        ),
        (
            "duplicated record",
            "duplicated-record",
            WalMutation::DuplicateRecord { seed: 3 },
            |v| matches!(v, WalViolation::DuplicatedRecord { .. }),
        ),
        (
            "reordered record",
            "reordered-record",
            WalMutation::SwapWithNext { seed: 3 },
            |v| matches!(v, WalViolation::ReorderedRecord { .. }),
        ),
        (
            "flipped byte",
            "corrupt",
            WalMutation::CorruptByte { seed: 17 },
            |v| matches!(v, WalViolation::Corrupt { .. }),
        ),
    ];
    let mut rows = Vec::new();
    for (name, kind, mutation, expect) in cases {
        let mutated = mutate_wal(&bytes, mutation);
        let row = match check_wal(
            &mutated,
            &reference_plan(),
            &reference_cfg(1),
            &reference_meta(),
            2,
            2,
            None,
        ) {
            Ok(_) => WalMutationRun {
                name,
                kind,
                caught: false,
                diagnostic: "mutated log replayed cleanly".to_string(),
            },
            Err(violations) => {
                let hit = violations.iter().find(|v| expect(v));
                WalMutationRun {
                    name,
                    kind,
                    caught: hit.is_some(),
                    diagnostic: hit
                        .or(violations.first())
                        .map(|v| v.to_string())
                        .unwrap_or_default(),
                }
            }
        };
        rows.push(row);
    }
    rows
}

/// A seeded log corruption for mutation-testing [`check_wal`]. Each variant
/// models a distinct durability failure and must yield a distinct diagnostic.
#[derive(Clone, Copy, Debug)]
pub enum WalMutation {
    /// Delete one op record (→ [`WalViolation::DroppedRecord`]).
    DropRecord {
        /// Picks which op, deterministically.
        seed: u64,
    },
    /// Append a second copy of one op record right after the original
    /// (→ [`WalViolation::DuplicatedRecord`], plus
    /// [`WalViolation::DoubleApply`] when the op is an accepted report).
    DuplicateRecord {
        /// Picks which op, deterministically.
        seed: u64,
    },
    /// Swap one op record with its successor
    /// (→ [`WalViolation::ReorderedRecord`]).
    SwapWithNext {
        /// Picks which op, deterministically.
        seed: u64,
    },
    /// Flip one byte inside a record body (→ [`WalViolation::Corrupt`] —
    /// the checksum rejects the log before replay starts).
    CorruptByte {
        /// Picks which byte, deterministically.
        seed: u64,
    },
}

/// Rebuilds the log with `mutation` applied, re-encoding every record. A
/// mutation whose precondition the log lacks (e.g. no second op to swap
/// with) returns the bytes unchanged. Panics if `bytes` is not a parseable
/// log — mutations corrupt *sound* logs.
pub fn mutate_wal(bytes: &[u8], mutation: WalMutation) -> Vec<u8> {
    if let WalMutation::CorruptByte { seed } = mutation {
        // Flip a byte inside a record *body* — never in framing. Damaging a
        // length prefix reads as a torn tail, which is a legitimate crash
        // artifact, not a violation; body damage trips the checksum.
        let mut out = bytes.to_vec();
        let mut bodies: Vec<usize> = Vec::new();
        let mut off = 0usize;
        while off + 8 <= out.len() {
            let len =
                u32::from_le_bytes([out[off], out[off + 1], out[off + 2], out[off + 3]]) as usize;
            if off + 8 + len > out.len() {
                break;
            }
            bodies.extend(off + 8..off + 8 + len);
            off += 8 + len;
        }
        if !bodies.is_empty() {
            out[bodies[(seed as usize) % bodies.len()]] ^= 0x40;
        }
        return out;
    }
    let log = match read_log(bytes) {
        Ok(log) => log,
        Err(e) => panic!("mutate_wal needs a sound log: {e}"),
    };
    let ops: Vec<usize> = (0..log.records.len())
        .filter(|&i| matches!(log.records[i], WalRecord::Op { .. }))
        .collect();
    let mut records = log.records;
    match mutation {
        WalMutation::DropRecord { seed } => {
            if !ops.is_empty() {
                records.remove(ops[(seed as usize) % ops.len()]);
            }
        }
        WalMutation::DuplicateRecord { seed } => {
            if !ops.is_empty() {
                let at = ops[(seed as usize) % ops.len()];
                let copy = records[at].clone();
                records.insert(at + 1, copy);
            }
        }
        WalMutation::SwapWithNext { seed } => {
            // Only adjacent op pairs swap cleanly (swapping across a
            // checkpoint would also move the checkpoint boundary).
            let pairs: Vec<usize> = ops
                .iter()
                .copied()
                .filter(|&i| {
                    i + 1 < records.len() && matches!(records[i + 1], WalRecord::Op { .. })
                })
                .collect();
            if !pairs.is_empty() {
                let at = pairs[(seed as usize) % pairs.len()];
                records.swap(at, at + 1);
            }
        }
        WalMutation::CorruptByte { .. } => unreachable!("handled above"),
    }
    let mut out = Vec::new();
    for record in &records {
        out.extend_from_slice(&encode_record(record));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn logged_run(shards: usize, checkpoint_every: u64) -> (Vec<u8>, ServerSnapshot) {
        reference_logged_run(shards, checkpoint_every)
    }

    fn check(
        bytes: &[u8],
        shards: usize,
        last: Option<&ServerSnapshot>,
    ) -> Result<WalSummary, Vec<WalViolation>> {
        check_wal(
            bytes,
            &reference_plan(),
            &reference_cfg(shards),
            &reference_meta(),
            2,
            2,
            last,
        )
    }

    #[test]
    fn a_sound_log_replays_cleanly_on_both_plane_shapes() {
        for shards in [1usize, 2] {
            let (bytes, last) = logged_run(shards, 0);
            let s = check(&bytes, shards, Some(&last)).expect("sound log");
            assert!(s.ops > 0);
            assert_eq!(
                s.applied,
                2 * 3,
                "three tokens per iteration, two iterations"
            );
            assert_eq!(s.torn_bytes, 0);
        }
    }

    #[test]
    fn checkpoints_verify_against_the_oracle() {
        let (bytes, last) = logged_run(1, 1);
        let s = check(&bytes, 1, Some(&last)).expect("sound log");
        assert!(s.checkpoints >= 1);
    }

    #[test]
    fn a_dropped_record_is_diagnosed_as_a_drop() {
        for seed in [0u64, 3, 9] {
            let (bytes, _) = logged_run(1, 0);
            let mutated = mutate_wal(&bytes, WalMutation::DropRecord { seed });
            let violations = check(&mutated, 1, None).expect_err("drop must be caught");
            assert!(
                violations
                    .iter()
                    .any(|v| matches!(v, WalViolation::DroppedRecord { .. })),
                "seed {seed}: {violations:?}"
            );
            assert!(
                !violations
                    .iter()
                    .any(|v| matches!(v, WalViolation::DuplicatedRecord { .. })),
                "seed {seed}: a drop must not read as a duplicate"
            );
        }
    }

    #[test]
    fn a_duplicated_record_is_diagnosed_as_a_duplicate() {
        for seed in [0u64, 3, 9] {
            let (bytes, _) = logged_run(1, 0);
            let mutated = mutate_wal(&bytes, WalMutation::DuplicateRecord { seed });
            let violations = check(&mutated, 1, None).expect_err("duplicate must be caught");
            assert!(
                violations
                    .iter()
                    .any(|v| matches!(v, WalViolation::DuplicatedRecord { .. })),
                "seed {seed}: {violations:?}"
            );
            assert!(
                !violations
                    .iter()
                    .any(|v| matches!(v, WalViolation::DroppedRecord { .. })),
                "seed {seed}: a duplicate must not read as a drop"
            );
        }
    }

    #[test]
    fn a_duplicated_report_is_also_a_double_apply() {
        let (bytes, _) = logged_run(1, 0);
        let log = read_log(&bytes).expect("sound log");
        // Find an op index (among ops) holding an accepted report.
        let mut report_seed = None;
        let mut op_index = 0u64;
        for record in &log.records {
            if let WalRecord::Op { op, .. } = record {
                if matches!(
                    (&op.kind, &op.outcome),
                    (OpKind::Report { .. }, OpOutcome::Synced { .. })
                ) {
                    report_seed = Some(op_index);
                    break;
                }
                op_index += 1;
            }
        }
        let seed = report_seed.expect("a completed run has accepted reports");
        let mutated = mutate_wal(&bytes, WalMutation::DuplicateRecord { seed });
        let violations = check(&mutated, 1, None).expect_err("duplicate must be caught");
        assert!(
            violations
                .iter()
                .any(|v| matches!(v, WalViolation::DoubleApply { .. })),
            "{violations:?}"
        );
    }

    #[test]
    fn a_reordered_record_is_diagnosed_as_a_reorder() {
        for seed in [0u64, 3, 9] {
            let (bytes, _) = logged_run(1, 0);
            let mutated = mutate_wal(&bytes, WalMutation::SwapWithNext { seed });
            let violations = check(&mutated, 1, None).expect_err("reorder must be caught");
            assert!(
                violations
                    .iter()
                    .any(|v| matches!(v, WalViolation::ReorderedRecord { .. })),
                "seed {seed}: {violations:?}"
            );
        }
    }

    #[test]
    fn a_flipped_byte_is_diagnosed_as_corruption() {
        let (bytes, _) = logged_run(1, 0);
        let mutated = mutate_wal(&bytes, WalMutation::CorruptByte { seed: 17 });
        let violations = check(&mutated, 1, None).expect_err("corruption must be caught");
        assert!(
            violations
                .iter()
                .any(|v| matches!(v, WalViolation::Corrupt { .. })),
            "{violations:?}"
        );
    }

    #[test]
    fn a_wrong_final_snapshot_is_diagnosed() {
        let (bytes, _) = logged_run(1, 0);
        let fresh = ControlPlane::new(reference_plan(), reference_cfg(1), reference_meta(), 2, 2)
            .snapshot();
        let violations = check(&bytes, 1, Some(&fresh)).expect_err("final state must differ");
        assert!(
            violations
                .iter()
                .any(|v| matches!(v, WalViolation::SnapshotDiverged)),
            "{violations:?}"
        );
    }

    #[test]
    fn the_mutation_matrix_is_caught_with_distinct_kinds() {
        let rows = run_wal_mutation_matrix();
        assert_eq!(rows.len(), 4);
        let mut kinds = BTreeSet::new();
        for row in &rows {
            assert!(
                row.caught,
                "mutation '{}' was missed: {}",
                row.name, row.diagnostic
            );
            assert!(kinds.insert(row.kind), "kind '{}' repeats", row.kind);
        }
    }

    #[test]
    fn the_reference_check_is_clean_on_both_plane_shapes() {
        for shards in [1usize, 2] {
            let s = reference_wal_check(shards, 1).expect("sound log");
            assert!(s.checkpoints >= 1);
        }
    }

    #[test]
    fn a_log_for_a_different_plane_shape_is_rejected() {
        let (bytes, _) = logged_run(2, 0);
        let violations = check(&bytes, 1, None).expect_err("shape mismatch must be caught");
        assert!(
            violations
                .iter()
                .any(|v| matches!(v, WalViolation::Corrupt { .. })),
            "{violations:?}"
        );
    }
}
