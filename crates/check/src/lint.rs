//! Workspace source lint: the rules the simulator's determinism and
//! crash-safety arguments depend on.
//!
//! The rules are deliberately narrow — this is not a general style checker but
//! a guard for three repository invariants:
//!
//! * **`no-unwrap`** — runtime crates (`core`, `sim`, `net`, `cluster`) must not
//!   call `.unwrap()` / `.expect(...)` outside tests: scheduler faults must
//!   surface as typed [`fela_core::ScheduleError`]s or deliberate
//!   invariant-message panics, not anonymous option/result unwraps.
//! * **`no-wallclock`** — no workspace crate may read host time
//!   (`SystemTime`, `Instant::now`): simulations are virtual-time-only, and a
//!   wall-clock read silently breaks run-to-run reproducibility. Crates whose
//!   purpose is real time (the live runtime's real-clock mode) are exempted
//!   with a crate-scoped `crate:no-wallclock <crate>` allowlist entry.
//! * **`no-unseeded-rng`** — `sim` and `core` must not use ambient-entropy
//!   randomness (`thread_rng`, `rand::random`, `from_entropy`); all randomness
//!   flows from explicit seeds recorded in run artifacts.
//! * **`hashmap-order`** — iterating a `HashMap`/`HashSet` local feeds
//!   nondeterministic order into whatever consumes it; containers that are
//!   iterated must be `BTreeMap`/`BTreeSet` (or the iteration must be
//!   allowlisted with a justification).
//! * **`lock-order`** — mutex acquisitions in the concurrency crates
//!   (`live`, `core`) must follow the declared total order [`LOCK_ORDER`]
//!   while another guard is live, and every mutex must be *in* the table:
//!   an undeclared lock is itself a finding, so the order stays complete as
//!   code grows. This is the static half of the deadlock-freedom argument
//!   the `fela-mc` model checker makes dynamically.
//! * **`no-blocking-under-lock`** — no `read_frame`/`write_frame`/`sleep`
//!   while a `MutexGuard` is live: a blocking wire read under a lock turns a
//!   slow peer into a stalled server. (`Condvar::wait` is fine — it releases
//!   the guard.)
//! * **`no-unflushed-wal`** — every `WalWriter` append
//!   (`.append_op`/`.append_begin`/`.append_checkpoint`) in the durability
//!   crates must be followed by a `.commit(` (the fsync-discipline call)
//!   before its enclosing block closes: a staged-but-uncommitted record is
//!   state the server believes durable that a crash would silently lose.
//!
//! The checker is line-based and intentionally simple: it strips `//` comments
//! and string literals, skips `#[cfg(test)]` modules by brace counting, and
//! matches fixed patterns. False positives are handled by `fela-lint.allow`
//! (see [`Allowlist`]), never by weakening a rule.

use std::collections::BTreeSet;

/// One lint finding.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct LintFinding {
    /// Rule identifier (e.g. `no-unwrap`).
    pub rule: &'static str,
    /// Crate the finding belongs to (package name, e.g. `fela-live`) — the
    /// scope crate-scoped allowlist entries match against.
    pub krate: String,
    /// Path label the finding is reported under.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// The offending source line, trimmed.
    pub snippet: String,
}

impl std::fmt::Display for LintFinding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path, self.line, self.rule, self.snippet
        )
    }
}

/// Crates whose non-test code must be free of `.unwrap()` / `.expect(...)`.
/// `fela-check` is included because its verifiers (race, recovery, schedule)
/// gate CI: a malformed trace must surface as a reported violation, never as
/// an anonymous panic inside the checker itself. `fela-live` is included
/// because its server/worker threads run unsupervised: a panic there deadlocks
/// the peer ends of the wire protocol instead of failing loudly.
pub const NO_UNWRAP_CRATES: &[&str] = &[
    "fela-core",
    "fela-sim",
    "fela-net",
    "fela-cluster",
    "fela-check",
    "fela-live",
];
/// Crates that must not use ambient-entropy randomness. (`no-wallclock` is
/// enforced **workspace-wide**: a wall-clock read anywhere silently undermines
/// the reproducibility argument. Crates whose job *is* real time — the live
/// runtime's real-clock mode, the harness's stderr-only timing — opt out with
/// a crate-scoped allowlist entry, never by weakening the rule.)
pub const DETERMINISM_CRATES: &[&str] = &["fela-core", "fela-sim"];

/// Crates whose mutex usage is held to the lock discipline (`lock-order`,
/// `no-blocking-under-lock`). The live runtime is *mutex-free by design*
/// outside its scheduler seam (threads communicate through channels), so the
/// table below is tiny — these rules exist to keep it that way.
pub const LOCK_DISCIPLINE_CRATES: &[&str] = &["fela-live", "fela-core"];

/// Crates whose `WalWriter` usage is held to the fsync discipline
/// (`no-unflushed-wal`): only these touch the control plane's write-ahead
/// log, and every append they stage must be committed before the staging
/// scope ends — otherwise a grant can become externally visible backed by a
/// record that only exists in memory.
pub const WAL_DISCIPLINE_CRATES: &[&str] = &["fela-core", "fela-live"];

/// The declared total acquisition order of every named mutex in the
/// lock-discipline crates, outermost first. A lock may only be taken while
/// guards strictly *earlier* in this table are held; taking one out of order
/// — or taking a mutex not listed here at all — is a `lock-order` finding.
///
/// Current table (all in `fela-live`'s scheduler seam):
/// `events` (RecordingSched buffer), then `seen` (GateSched observation log),
/// then `open` (GateSched gate flag, held across `Condvar::wait`).
pub const LOCK_ORDER: &[&str] = &["events", "seen", "open"];

/// Parsed `fela-lint.allow` file: lines of `<rule> <path-suffix> [substring]`,
/// `#`-comments and blanks ignored. A finding is suppressed when a rule+path
/// entry matches and (if given) the substring occurs in the offending line.
///
/// A rule written as `crate:<rule>` is **crate-scoped**: its second field is a
/// crate package name (matched exactly against [`LintFinding::krate`]) instead
/// of a path suffix, exempting a whole crate from one rule — e.g.
/// `crate:no-wallclock fela-live` lets the live runtime's real-clock mode read
/// `Instant::now` while every unlisted crate still fails the gate.
#[derive(Clone, Debug, Default)]
pub struct Allowlist {
    entries: Vec<(String, String, Option<String>)>,
}

impl Allowlist {
    /// Parses the allowlist format.
    pub fn parse(content: &str) -> Allowlist {
        let mut entries = Vec::new();
        for line in content.lines() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.splitn(3, char::is_whitespace);
            if let (Some(rule), Some(path)) = (parts.next(), parts.next()) {
                entries.push((
                    rule.to_owned(),
                    path.to_owned(),
                    parts.next().map(|s| s.trim().to_owned()),
                ));
            }
        }
        Allowlist { entries }
    }

    /// Whether `finding` is suppressed.
    pub fn permits(&self, finding: &LintFinding) -> bool {
        self.entries.iter().any(|(rule, scope, needle)| {
            let scope_match = match rule.strip_prefix("crate:") {
                // Crate-scoped entry: the scope is a crate name, matched
                // exactly — `fela-live` must not also exempt `fela-live-x`.
                Some(rule) => rule == finding.rule && finding.krate == *scope,
                None => rule == finding.rule && finding.path.ends_with(scope.as_str()),
            };
            scope_match
                && needle
                    .as_ref()
                    .is_none_or(|n| finding.snippet.contains(n.as_str()))
        })
    }

    /// Number of entries (for reporting).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no entries are present.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// Strips `//` comments, string-literal contents and char literals from a
/// line, so patterns never match inside them and brace counting is not
/// confused by `'{'`-style literals. Keeps the double quotes so syntax still
/// reads plausibly.
fn scrubbed(line: &str) -> String {
    let chars: Vec<char> = line.chars().collect();
    let mut out = String::with_capacity(line.len());
    let mut i = 0;
    while i < chars.len() {
        match chars[i] {
            '"' => {
                out.push('"');
                i += 1;
                while i < chars.len() {
                    match chars[i] {
                        '\\' => i += 2,
                        '"' => {
                            out.push('"');
                            i += 1;
                            break;
                        }
                        _ => i += 1,
                    }
                }
            }
            '/' if chars.get(i + 1) == Some(&'/') => break,
            '\'' => {
                // Char literal: `'x'` or `'\x'`. Lifetime markers (`'a`) have
                // no closing quote and pass through.
                if chars.get(i + 1) == Some(&'\\') && chars.get(i + 3) == Some(&'\'') {
                    i += 4;
                } else if chars.get(i + 1).is_some() && chars.get(i + 2) == Some(&'\'') {
                    i += 3;
                } else {
                    out.push('\'');
                    i += 1;
                }
            }
            c => {
                out.push(c);
                i += 1;
            }
        }
    }
    out
}

/// Lints one source file. `crate_name` selects which rules apply; `path` only
/// labels findings.
pub fn lint_source(path: &str, crate_name: &str, content: &str) -> Vec<LintFinding> {
    let unwrap_rule = NO_UNWRAP_CRATES.contains(&crate_name);
    let determinism_rule = DETERMINISM_CRATES.contains(&crate_name);
    let mut findings = Vec::new();

    // Pass 1: find `#[cfg(test)]`-gated regions by brace counting, and collect
    // identifiers bound to hash containers.
    let lines: Vec<&str> = content.lines().collect();
    let scrubbed_lines: Vec<String> = lines.iter().map(|l| scrubbed(l)).collect();
    let mut in_test = vec![false; lines.len()];
    let mut pending_cfg_test = false;
    let mut depth_stack: Vec<i64> = Vec::new(); // brace depth at which each test region opened
    let mut depth: i64 = 0;
    for (i, line) in scrubbed_lines.iter().enumerate() {
        let trimmed = line.trim();
        if trimmed.contains("#[cfg(test)]") {
            pending_cfg_test = true;
        }
        in_test[i] = !depth_stack.is_empty() || pending_cfg_test;
        for c in line.chars() {
            match c {
                '{' => {
                    if pending_cfg_test {
                        depth_stack.push(depth);
                        pending_cfg_test = false;
                    }
                    depth += 1;
                }
                '}' => {
                    depth -= 1;
                    if depth_stack.last() == Some(&depth) {
                        depth_stack.pop();
                    }
                }
                _ => {}
            }
        }
    }

    let mut hash_idents: BTreeSet<String> = BTreeSet::new();
    for (i, line) in scrubbed_lines.iter().enumerate() {
        if in_test[i] {
            continue;
        }
        // `let seen: HashMap<...>` / `let seen = HashMap::new()` / struct
        // fields `seen: HashMap<...>`; HashSet alike.
        for container in ["HashMap", "HashSet"] {
            if let Some(pos) = line.find(container) {
                let before = &line[..pos];
                if let Some(ident) = binding_ident(before) {
                    hash_idents.insert(ident);
                }
            }
        }
    }

    // Pass 2: per-line rules.
    for (i, line) in scrubbed_lines.iter().enumerate() {
        if in_test[i] {
            continue;
        }
        let mut push = |rule: &'static str| {
            findings.push(LintFinding {
                rule,
                krate: crate_name.to_owned(),
                path: path.to_owned(),
                line: i + 1,
                snippet: lines[i].trim().to_owned(),
            });
        };
        if unwrap_rule && (line.contains(".unwrap()") || line.contains(".expect(")) {
            push("no-unwrap");
        }
        // Workspace-global: any crate reading the wall clock needs a
        // crate-scoped allowlist entry (see [`Allowlist`]).
        if line.contains("SystemTime") || line.contains("Instant::now") {
            push("no-wallclock");
        }
        if determinism_rule
            && (line.contains("thread_rng(")
                || line.contains("rand::random")
                || line.contains("from_entropy"))
        {
            push("no-unseeded-rng");
        }
        // Ordered iteration over a hash container local.
        for method in [
            ".iter()",
            ".iter_mut()",
            ".keys()",
            ".values()",
            ".values_mut()",
            ".into_iter()",
        ] {
            if let Some(pos) = line.find(method) {
                let receiver = receiver_ident(&line[..pos]);
                if let Some(r) = receiver {
                    if hash_idents.contains(&r) {
                        push("hashmap-order");
                        break;
                    }
                }
            }
        }
    }

    // Pass 3 (lock-discipline crates only): track live `MutexGuard`s by brace
    // depth and check acquisition order plus blocking calls under a guard.
    if LOCK_DISCIPLINE_CRATES.contains(&crate_name) {
        // Live let-bound guards: (brace depth at binding, lock name, binding name).
        let mut guards: Vec<(i64, String, String)> = Vec::new();
        let mut depth: i64 = 0;
        for (i, line) in scrubbed_lines.iter().enumerate() {
            if !in_test[i] {
                let mut push = |rule: &'static str| {
                    findings.push(LintFinding {
                        rule,
                        krate: crate_name.to_owned(),
                        path: path.to_owned(),
                        line: i + 1,
                        snippet: lines[i].trim().to_owned(),
                    });
                };
                // `drop(guard)` releases a guard early.
                if let Some(pos) = line.find("drop(") {
                    let inner: String = line[pos + 5..]
                        .chars()
                        .take_while(|c| c.is_alphanumeric() || *c == '_')
                        .collect();
                    guards.retain(|(_, _, binding)| *binding != inner);
                }
                if let Some(pos) = line.find(".lock()") {
                    match receiver_ident(&line[..pos]) {
                        Some(lock) => match LOCK_ORDER.iter().position(|l| *l == lock) {
                            None => push("lock-order"),
                            Some(idx) => {
                                let held_out_of_order = guards.iter().any(|(_, held, _)| {
                                    LOCK_ORDER
                                        .iter()
                                        .position(|l| l == held)
                                        .is_some_and(|h| h >= idx)
                                });
                                if held_out_of_order {
                                    push("lock-order");
                                }
                                // A `let`-bound guard lives to the end of its
                                // block; a temporary dies at the statement.
                                if line[..pos].contains("let ") {
                                    let binding = line[..pos]
                                        .rfind("let ")
                                        .map(|l| {
                                            line[l + 4..]
                                                .trim_start()
                                                .trim_start_matches("mut ")
                                                .chars()
                                                .take_while(|c| c.is_alphanumeric() || *c == '_')
                                                .collect::<String>()
                                        })
                                        .unwrap_or_default();
                                    guards.push((depth, lock, binding));
                                }
                            }
                        },
                        None => push("lock-order"),
                    }
                }
                if !guards.is_empty()
                    && ["read_frame(", "write_frame(", "sleep("]
                        .iter()
                        .any(|p| line.contains(p))
                {
                    push("no-blocking-under-lock");
                }
            }
            for c in line.chars() {
                match c {
                    '{' => depth += 1,
                    '}' => {
                        depth -= 1;
                        guards.retain(|(d, _, _)| *d <= depth);
                    }
                    _ => {}
                }
            }
        }
    }

    // Pass 4 (WAL-discipline crates only): every staged WalWriter append must
    // be committed before its enclosing block closes. `.commit(` flushes the
    // whole staged batch, so one commit clears every pending append; an
    // append whose scope ends first was never made durable.
    if WAL_DISCIPLINE_CRATES.contains(&crate_name) {
        let mut pending: Vec<(usize, i64)> = Vec::new(); // (line idx, depth at append)
        let mut depth: i64 = 0;
        for (i, line) in scrubbed_lines.iter().enumerate() {
            if !in_test[i] {
                let append_at = [".append_op(", ".append_begin(", ".append_checkpoint("]
                    .iter()
                    .filter_map(|p| line.find(p))
                    .min();
                let commit_at = line.find(".commit(");
                if commit_at.is_some() {
                    pending.clear();
                }
                if let Some(at) = append_at {
                    // `append(..); commit()` on one line is already flushed.
                    if commit_at.is_none_or(|c| c <= at) {
                        pending.push((i, depth));
                    }
                }
            }
            for c in line.chars() {
                match c {
                    '{' => depth += 1,
                    '}' => {
                        depth -= 1;
                        while let Some(pos) = pending.iter().position(|&(_, d)| d > depth) {
                            let (l, _) = pending.remove(pos);
                            findings.push(LintFinding {
                                rule: "no-unflushed-wal",
                                krate: crate_name.to_owned(),
                                path: path.to_owned(),
                                line: l + 1,
                                snippet: lines[l].trim().to_owned(),
                            });
                        }
                    }
                    _ => {}
                }
            }
        }
        for (l, _) in pending {
            findings.push(LintFinding {
                rule: "no-unflushed-wal",
                krate: crate_name.to_owned(),
                path: path.to_owned(),
                line: l + 1,
                snippet: lines[l].trim().to_owned(),
            });
        }
    }
    findings
}

/// Extracts the identifier being bound before a container type mention:
/// `let foo: HashMap` / `foo = HashMap::new` / struct field `foo: HashMap<`.
fn binding_ident(before: &str) -> Option<String> {
    let before = before.trim_end();
    let before = before
        .strip_suffix(':')
        .or_else(|| before.strip_suffix('='))
        .unwrap_or(before)
        .trim_end();
    // Drop a type annotation between the name and `=`: `let x: Foo =`.
    let name_part = before.split(':').next()?.trim_end();
    let ident: String = name_part
        .chars()
        .rev()
        .take_while(|c| c.is_alphanumeric() || *c == '_')
        .collect::<String>()
        .chars()
        .rev()
        .collect();
    let ident = ident
        .trim_start_matches(|c: char| c.is_numeric())
        .to_owned();
    if ident.is_empty() || ident == "mut" || ident == "let" {
        None
    } else {
        Some(ident)
    }
}

/// Extracts the receiver identifier of a method call: `self.seen.iter()` → `seen`.
fn receiver_ident(before: &str) -> Option<String> {
    let ident: String = before
        .chars()
        .rev()
        .take_while(|c| c.is_alphanumeric() || *c == '_')
        .collect::<String>()
        .chars()
        .rev()
        .collect();
    if ident.is_empty() {
        None
    } else {
        Some(ident)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rules(findings: &[LintFinding]) -> Vec<&'static str> {
        findings.iter().map(|f| f.rule).collect()
    }

    #[test]
    fn unwrap_flagged_in_runtime_crates_only() {
        let src = "fn f(x: Option<u8>) -> u8 { x.unwrap() }\n";
        assert_eq!(rules(&lint_source("a.rs", "fela-core", src)), ["no-unwrap"]);
        assert!(lint_source("a.rs", "fela-bench", src).is_empty());
    }

    #[test]
    fn expect_flagged() {
        let src = "let v = map.get(&k).expect(\"present\");\n";
        assert_eq!(rules(&lint_source("a.rs", "fela-sim", src)), ["no-unwrap"]);
    }

    #[test]
    fn test_modules_are_skipped() {
        let src = "\
fn ok() {}
#[cfg(test)]
mod tests {
    #[test]
    fn t() { Some(1).unwrap(); }
}
fn also_ok() {}
";
        assert!(lint_source("a.rs", "fela-core", src).is_empty());
    }

    #[test]
    fn code_after_test_module_is_linted_again() {
        let src = "\
#[cfg(test)]
mod tests {
    fn t() { Some(1).unwrap(); }
}
fn bad() { Some(1).unwrap(); }
";
        let findings = lint_source("a.rs", "fela-core", src);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].line, 5);
    }

    #[test]
    fn comments_and_strings_do_not_match() {
        let src = "\
// calling .unwrap() here would be bad
let msg = \"never .unwrap() in prod\";
";
        assert!(lint_source("a.rs", "fela-core", src).is_empty());
    }

    #[test]
    fn wallclock_flagged_in_every_crate() {
        // no-wallclock is workspace-global: exemptions go through crate-scoped
        // allowlist entries, not through the rule's crate list.
        let src = "let t = std::time::Instant::now();\n";
        for krate in ["fela-sim", "fela-net", "fela-live", "fela-bench"] {
            assert_eq!(
                rules(&lint_source("a.rs", krate, src)),
                ["no-wallclock"],
                "{krate}"
            );
        }
        let finding = &lint_source("a.rs", "fela-live", src)[0];
        assert_eq!(finding.krate, "fela-live");
    }

    #[test]
    fn crate_scoped_allowlist_exempts_only_the_listed_crate() {
        let allow = Allowlist::parse(
            "# real-clock mode is fela-live's whole point\ncrate:no-wallclock fela-live\n",
        );
        let src = "let t = std::time::Instant::now();\n";
        let live = &lint_source("a.rs", "fela-live", src)[0];
        assert!(allow.permits(live));
        // An unlisted crate with the identical finding still fails the gate.
        let net = &lint_source("a.rs", "fela-net", src)[0];
        assert!(!allow.permits(net));
        // Exact crate-name match: no prefix bleed.
        let lookalike = LintFinding {
            krate: "fela-live-extras".into(),
            ..live.clone()
        };
        assert!(!allow.permits(&lookalike));
        // A crate-scoped entry does not suppress other rules in that crate.
        let other_rule = LintFinding {
            rule: "no-unwrap",
            ..live.clone()
        };
        assert!(!allow.permits(&other_rule));
    }

    #[test]
    fn crate_scoped_entry_with_substring_narrows_the_exemption() {
        let allow = Allowlist::parse("crate:no-wallclock fela-harness Instant::now\n");
        let timing = &lint_source(
            "sweep.rs",
            "fela-harness",
            "let started = Instant::now();\n",
        )[0];
        assert!(allow.permits(timing));
        let systime = &lint_source("sweep.rs", "fela-harness", "let t = SystemTime::now();\n")[0];
        assert!(!allow.permits(systime), "substring must still gate");
    }

    #[test]
    fn unseeded_rng_flagged() {
        let src = "let mut rng = rand::thread_rng();\n";
        assert_eq!(
            rules(&lint_source("a.rs", "fela-core", src)),
            ["no-unseeded-rng"]
        );
    }

    #[test]
    fn hashmap_iteration_flagged() {
        let src = "\
use std::collections::HashMap;
let mut seen: HashMap<u64, u64> = HashMap::new();
for (k, v) in seen.iter() { out.push((k, v)); }
";
        let findings = lint_source("a.rs", "fela-metrics", src);
        assert_eq!(rules(&findings), ["hashmap-order"]);
        assert_eq!(findings[0].line, 3);
    }

    #[test]
    fn hashset_membership_without_iteration_is_fine() {
        let src = "\
let mut seen: HashSet<u64> = HashSet::new();
if seen.insert(x) { work(x); }
";
        assert!(lint_source("a.rs", "fela-metrics", src).is_empty());
    }

    #[test]
    fn btreemap_iteration_is_fine() {
        let src = "\
let mut seen: BTreeMap<u64, u64> = BTreeMap::new();
for (k, v) in seen.iter() { out.push((k, v)); }
";
        assert!(lint_source("a.rs", "fela-core", src).is_empty());
    }

    #[test]
    fn allowlist_suppresses_by_rule_path_and_substring() {
        let finding = LintFinding {
            rule: "no-unwrap",
            krate: "fela-sim".into(),
            path: "crates/sim/src/time.rs".into(),
            line: 10,
            snippet: "self.nanos.checked_add(d.nanos).expect(\"overflow\")".into(),
        };
        let allow = Allowlist::parse(
            "# overflow guards are deliberate\nno-unwrap sim/src/time.rs checked_add\n",
        );
        assert_eq!(allow.len(), 1);
        assert!(allow.permits(&finding));
        // Different rule or non-matching substring: not suppressed.
        let other = LintFinding {
            rule: "no-wallclock",
            ..finding.clone()
        };
        assert!(!allow.permits(&other));
        let different_line = LintFinding {
            snippet: "x.expect(\"other\")".into(),
            ..finding
        };
        assert!(!allow.permits(&different_line));
    }

    #[test]
    fn lock_order_violation_is_flagged() {
        // `open` precedes `seen` in LOCK_ORDER — acquiring `seen` while the
        // `open` guard is live inverts the declared order.
        let src = "\
fn f(&self) {
    let mut open = self.open.lock().unwrap_or_else(|p| p.into_inner());
    let mut seen = self.seen.lock().unwrap_or_else(|p| p.into_inner());
}
";
        let findings = lint_source("a.rs", "fela-live", src);
        assert_eq!(rules(&findings), ["lock-order"]);
        assert_eq!(findings[0].line, 3);
        // The correct order is clean.
        let src = "\
fn f(&self) {
    let mut seen = self.seen.lock().unwrap_or_else(|p| p.into_inner());
    let mut open = self.open.lock().unwrap_or_else(|p| p.into_inner());
}
";
        assert!(lint_source("a.rs", "fela-live", src).is_empty());
    }

    #[test]
    fn undeclared_mutex_is_a_lock_order_finding() {
        let src = "let g = self.mystery.lock().unwrap_or_else(|p| p.into_inner());\n";
        assert_eq!(
            rules(&lint_source("a.rs", "fela-live", src)),
            ["lock-order"]
        );
        // Outside the discipline crates the rule does not apply.
        assert!(lint_source("a.rs", "fela-harness", src).is_empty());
    }

    #[test]
    fn scoped_guards_end_at_their_block() {
        // sched.rs's actual shape: the `seen` guard dies with its block, so
        // the later `open` acquisition is a fresh (ordered) one.
        let src = "\
fn reached(&self) {
    {
        let mut seen = self.seen.lock().unwrap_or_else(|p| p.into_inner());
        seen.push(1);
    }
    let mut open = self.open.lock().unwrap_or_else(|p| p.into_inner());
}
";
        assert!(lint_source("a.rs", "fela-live", src).is_empty());
    }

    #[test]
    fn dropping_a_guard_releases_it() {
        let src = "\
fn f(&self) {
    let g = self.open.lock().unwrap_or_else(|p| p.into_inner());
    drop(g);
    let s = self.seen.lock().unwrap_or_else(|p| p.into_inner());
}
";
        assert!(lint_source("a.rs", "fela-live", src).is_empty());
    }

    #[test]
    fn blocking_under_a_live_guard_is_flagged() {
        let src = "\
fn f(&self) {
    let g = self.events.lock().unwrap_or_else(|p| p.into_inner());
    let frame = read_frame(&mut stream);
}
";
        let findings = lint_source("a.rs", "fela-live", src);
        assert_eq!(rules(&findings), ["no-blocking-under-lock"]);
        let src = "\
fn f(&self) {
    let g = self.events.lock().unwrap_or_else(|p| p.into_inner());
    std::thread::sleep(d);
}
";
        assert_eq!(
            rules(&lint_source("a.rs", "fela-live", src)),
            ["no-blocking-under-lock"]
        );
        // A transient guard (temporary, dies at the statement) does not hold
        // anything across the next line.
        let src = "\
fn f(&self) {
    self.events.lock().unwrap_or_else(|p| p.into_inner()).push(e);
    std::thread::sleep(d);
}
";
        assert!(lint_source("a.rs", "fela-live", src).is_empty());
    }

    #[test]
    fn lock_rules_are_allowlistable() {
        let src = "let g = self.mystery.lock().unwrap_or_else(|p| p.into_inner());\n";
        let finding = &lint_source("src/x.rs", "fela-live", src)[0];
        let allow = Allowlist::parse("lock-order src/x.rs mystery\n");
        assert!(allow.permits(finding));
    }

    #[test]
    fn unflushed_wal_append_is_flagged() {
        let src = "\
fn record(&mut self) {
    if let Some(wal) = self.wal.as_mut() {
        wal.append_op(&op);
    }
}
";
        let findings = lint_source("a.rs", "fela-core", src);
        assert_eq!(rules(&findings), ["no-unflushed-wal"]);
        assert_eq!(findings[0].line, 3);
    }

    #[test]
    fn committed_wal_append_is_clean() {
        let src = "\
fn record(&mut self) {
    if let Some(wal) = self.wal.as_mut() {
        wal.append_op(&op);
        if let Err(e) = wal.commit() {
            panic!(\"WAL append failed: {e}\");
        }
    }
}
";
        assert!(lint_source("a.rs", "fela-core", src).is_empty());
        // Same-line append + commit is also flushed.
        let src = "fn f(w: &mut WalWriter) { w.append_op(&op); w.commit().ok(); }\n";
        assert!(lint_source("a.rs", "fela-live", src).is_empty());
    }

    #[test]
    fn a_commit_before_the_append_does_not_count() {
        let src = "\
fn f(w: &mut WalWriter) {
    w.commit().ok();
    w.append_checkpoint(payload, &tokens, &snapshot);
}
";
        assert_eq!(
            rules(&lint_source("a.rs", "fela-core", src)),
            ["no-unflushed-wal"]
        );
    }

    #[test]
    fn unflushed_wal_rule_scopes_to_the_durability_crates() {
        let src = "fn f(w: &mut WalWriter) { w.append_begin(1, 2, 3); }\n";
        assert_eq!(
            rules(&lint_source("a.rs", "fela-core", src)),
            ["no-unflushed-wal"]
        );
        assert!(lint_source("a.rs", "fela-bench", src).is_empty());
        // Definitions don't trip the receiver-dot patterns.
        let def = "pub fn append_op(&mut self, op: &CoordOp) {\n    self.staged.push(0);\n}\n";
        assert!(lint_source("a.rs", "fela-core", def).is_empty());
    }

    #[test]
    fn unflushed_wal_findings_are_allowlistable() {
        let src = "fn f(w: &mut WalWriter) { w.append_op(&op); }\n";
        let finding = &lint_source("src/x.rs", "fela-core", src)[0];
        let allow = Allowlist::parse("no-unflushed-wal src/x.rs append_op\n");
        assert!(allow.permits(finding));
    }

    #[test]
    fn nested_test_module_brace_counting() {
        let src = "\
mod outer {
    #[cfg(test)]
    mod tests {
        mod inner {
            fn t() { Some(1).unwrap(); }
        }
    }
    fn bad() { Some(1).unwrap(); }
}
";
        let findings = lint_source("a.rs", "fela-core", src);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].line, 8);
    }
}
