//! Static token-dependency DAG construction and verification.
//!
//! Given a [`TokenPlan`] and a [`FelaConfig`], this module materialises the
//! *entire* dependency DAG of a run — every training token and every
//! weight-update commit for every iteration — without executing anything, and
//! checks the invariants Fela's correctness argument rests on:
//!
//! 1. **Acyclicity** — the schedule admits a topological order at all.
//! 2. **Coverage** — every `(sub-model, micro-batch)` pair of every iteration is
//!    trained by exactly one token: no sample trained twice, none dropped.
//! 3. **Dependency completeness** — every non-root token consumes exactly the
//!    `gen_ratio` outputs of the level below that cover its sample rows.
//! 4. **Gradient dominance** — every weight update is reachable from *all* of
//!    its level's gradient tokens (no update commits with a gradient missing).
//! 5. **BSP barrier closure** — no token of iteration `k + 1 + staleness` can be
//!    ordered before iteration `k`'s update of its own level commits.
//! 6. **No time travel** — no edge points from a later iteration into an earlier
//!    one.
//! 7. **CTD subset validity** — the conditional subset is a nonempty power of
//!    two no larger than the cluster.
//! 8. **HF bucket partition** — root tokens' sample affinities partition the
//!    root set across workers with no overlap and no gap.
//!
//! Each violated invariant yields a distinct [`DagViolation`] variant, so the
//! mutation tests can assert *which* diagnostic a seeded corruption triggers.

use std::collections::{BTreeMap, BTreeSet};

use fela_core::{FelaConfig, TokenPlan};

/// A node of the schedule DAG.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum DagNode {
    /// Training token `seq` of `level` in `iteration`.
    Train {
        /// Sub-model level.
        level: usize,
        /// BSP iteration.
        iteration: u64,
        /// Token sequence number within the level and iteration.
        seq: u64,
    },
    /// The weight-update commit of `level` in `iteration` (the sync).
    Update {
        /// Sub-model level.
        level: usize,
        /// BSP iteration.
        iteration: u64,
    },
}

impl DagNode {
    /// The iteration the node belongs to.
    pub fn iteration(&self) -> u64 {
        match *self {
            DagNode::Train { iteration, .. } | DagNode::Update { iteration, .. } => iteration,
        }
    }
}

impl std::fmt::Display for DagNode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            DagNode::Train {
                level,
                iteration,
                seq,
            } => write!(f, "train(level {level}, iter {iteration}, seq {seq})"),
            DagNode::Update { level, iteration } => {
                write!(f, "update(level {level}, iter {iteration})")
            }
        }
    }
}

/// A violated schedule invariant. Every variant is a distinct diagnostic.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum DagViolation {
    /// The DAG contains a cycle through the named node.
    Cycle {
        /// A node on the cycle.
        node: DagNode,
    },
    /// A `(level, iteration, seq)` micro-batch has no training token.
    CoverageGap {
        /// Sub-model level.
        level: usize,
        /// Iteration.
        iteration: u64,
        /// Missing sequence number.
        seq: u64,
    },
    /// A `(level, iteration, seq)` micro-batch is trained by more than one token.
    DuplicateToken {
        /// Sub-model level.
        level: usize,
        /// Iteration.
        iteration: u64,
        /// Duplicated sequence number.
        seq: u64,
    },
    /// A non-root token lacks (or has extra) dependencies on the level below.
    MissingDependency {
        /// Sub-model level of the under-fed token.
        level: usize,
        /// Iteration.
        iteration: u64,
        /// Its sequence number.
        seq: u64,
        /// Dependencies the plan requires.
        expected: usize,
        /// Dependencies present in the DAG.
        found: usize,
    },
    /// A weight update is not reachable from every gradient token of its level.
    GradientDominance {
        /// Sub-model level of the update.
        level: usize,
        /// Iteration.
        iteration: u64,
        /// Gradient tokens with no path to the update.
        missing: usize,
    },
    /// A token of iteration `k + 1 + staleness` is orderable before iteration
    /// `k`'s update of its level commits.
    BarrierViolation {
        /// Sub-model level.
        level: usize,
        /// Iteration of the unprotected token.
        iteration: u64,
        /// Its sequence number.
        seq: u64,
    },
    /// An edge points from a later iteration into an earlier one.
    CrossIterationEdge {
        /// Edge source.
        from: DagNode,
        /// Edge target (earlier iteration).
        to: DagNode,
    },
    /// The CTD subset is invalid for the cluster.
    CtdInvalid {
        /// Configured subset size.
        subset: usize,
        /// Cluster size.
        n_workers: usize,
    },
    /// Root sample affinities do not partition the root tokens across STBs.
    HfPartitionViolation {
        /// Root sequence number with the wrong owner.
        seq: u64,
        /// Owner found.
        owner: usize,
        /// Owner the round-robin partition requires.
        expected: usize,
    },
}

impl std::fmt::Display for DagViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DagViolation::Cycle { node } => write!(f, "dependency cycle through {node}"),
            DagViolation::CoverageGap {
                level,
                iteration,
                seq,
            } => write!(
                f,
                "no token trains micro-batch {seq} of level {level} in iteration {iteration}"
            ),
            DagViolation::DuplicateToken {
                level,
                iteration,
                seq,
            } => write!(
                f,
                "micro-batch {seq} of level {level} iteration {iteration} is trained by more than one token"
            ),
            DagViolation::MissingDependency {
                level,
                iteration,
                seq,
                expected,
                found,
            } => write!(
                f,
                "token (level {level}, iter {iteration}, seq {seq}) has {found} dependencies, plan requires {expected}"
            ),
            DagViolation::GradientDominance {
                level,
                iteration,
                missing,
            } => write!(
                f,
                "update (level {level}, iter {iteration}) misses {missing} gradient token(s)"
            ),
            DagViolation::BarrierViolation {
                level,
                iteration,
                seq,
            } => write!(
                f,
                "token (level {level}, iter {iteration}, seq {seq}) not gated on its level's prior update"
            ),
            DagViolation::CrossIterationEdge { from, to } => {
                write!(f, "edge from {from} back into {to}")
            }
            DagViolation::CtdInvalid { subset, n_workers } => {
                write!(f, "CTD subset {subset} invalid for {n_workers} workers")
            }
            DagViolation::HfPartitionViolation {
                seq,
                owner,
                expected,
            } => write!(
                f,
                "root token {seq} assigned to STB {owner}, round-robin partition requires {expected}"
            ),
        }
    }
}

/// A seeded corruption for mutation-testing the verifier.
#[derive(Clone, Copy, Debug)]
pub enum Mutation {
    /// Remove one inter-level dependency edge (→ [`DagViolation::MissingDependency`]).
    DropDependencyEdge {
        /// Picks which edge, deterministically.
        seed: u64,
    },
    /// Duplicate one training token (→ [`DagViolation::DuplicateToken`]).
    DuplicateToken {
        /// Picks which token, deterministically.
        seed: u64,
    },
    /// Add an edge from a later iteration into an earlier one
    /// (→ [`DagViolation::CrossIterationEdge`]).
    CrossIterationEdge {
        /// Picks which pair, deterministically.
        seed: u64,
    },
}

/// Statistics of a successfully verified DAG.
#[derive(Clone, Copy, Debug)]
pub struct DagSummary {
    /// Total nodes (training tokens + updates).
    pub nodes: usize,
    /// Total dependency edges.
    pub edges: usize,
    /// Training tokens.
    pub train_tokens: usize,
    /// Weight-update commits.
    pub updates: usize,
}

/// The materialised schedule DAG of a whole run.
pub struct ScheduleDag {
    plan: TokenPlan,
    cfg: FelaConfig,
    n_workers: usize,
    iterations: u64,
    nodes: Vec<DagNode>,
    /// Adjacency list: `edges[from]` → targets. Parallel to `nodes`.
    edges: Vec<Vec<usize>>,
    /// Root STB owners: `root_owner[seq]` for iteration-independent affinity.
    root_owner: Vec<usize>,
}

impl ScheduleDag {
    /// Builds the full dependency DAG for `iterations` BSP iterations of `plan`
    /// under `cfg`, as the Token Server would generate it:
    ///
    /// * train → train edges follow the generation grouping (each level-`l`
    ///   token `j` consumes level-`l−1` tokens `j·ratio .. (j+1)·ratio`);
    /// * every train token of a level feeds that level's update;
    /// * each level's update of iteration `k` gates the level's tokens of
    ///   iteration `k + 1 + staleness` (the BSP/SSP barrier).
    pub fn build(plan: &TokenPlan, cfg: &FelaConfig, n_workers: usize, iterations: u64) -> Self {
        let mut dag = ScheduleDag {
            plan: plan.clone(),
            cfg: cfg.clone(),
            n_workers,
            iterations,
            nodes: Vec::new(),
            edges: Vec::new(),
            root_owner: (0..plan.levels[0].tokens_per_iteration)
                .map(|seq| (seq % n_workers as u64) as usize)
                .collect(),
        };
        let mut index: BTreeMap<DagNode, usize> = BTreeMap::new();
        for k in 0..iterations {
            for lp in &plan.levels {
                for seq in 0..lp.tokens_per_iteration {
                    let node = DagNode::Train {
                        level: lp.level,
                        iteration: k,
                        seq,
                    };
                    index.insert(node, dag.push_node(node));
                }
                let node = DagNode::Update {
                    level: lp.level,
                    iteration: k,
                };
                index.insert(node, dag.push_node(node));
            }
        }
        for k in 0..iterations {
            for lp in &plan.levels {
                let update = index[&DagNode::Update {
                    level: lp.level,
                    iteration: k,
                }];
                for seq in 0..lp.tokens_per_iteration {
                    let me = index[&DagNode::Train {
                        level: lp.level,
                        iteration: k,
                        seq,
                    }];
                    // Generation-group dependencies on the level below.
                    if lp.level > 0 {
                        let ratio = lp.gen_ratio;
                        for r in 0..ratio {
                            let dep = index[&DagNode::Train {
                                level: lp.level - 1,
                                iteration: k,
                                seq: seq * ratio + r,
                            }];
                            dag.edges[dep].push(me);
                        }
                    }
                    // Gradient dominance: every token feeds its level's update.
                    dag.edges[me].push(update);
                    // Barrier: the level's earlier update gates this token.
                    if k > cfg.staleness {
                        let gate = index[&DagNode::Update {
                            level: lp.level,
                            iteration: k - 1 - cfg.staleness,
                        }];
                        dag.edges[gate].push(me);
                    }
                }
            }
        }
        dag
    }

    fn push_node(&mut self, node: DagNode) -> usize {
        self.nodes.push(node);
        self.edges.push(Vec::new());
        self.nodes.len() - 1
    }

    /// Nodes of the DAG (includes duplicates after a
    /// [`Mutation::DuplicateToken`]).
    pub fn nodes(&self) -> &[DagNode] {
        &self.nodes
    }

    /// Total edge count.
    pub fn edge_count(&self) -> usize {
        self.edges.iter().map(Vec::len).sum()
    }

    /// Applies a seeded corruption (for mutation-testing the verifier).
    pub fn mutate(&mut self, mutation: Mutation) {
        match mutation {
            Mutation::DropDependencyEdge { seed } => {
                // Collect train→train edges and drop the seed-picked one.
                let mut candidates = Vec::new();
                for (from, outs) in self.edges.iter().enumerate() {
                    if !matches!(self.nodes[from], DagNode::Train { .. }) {
                        continue;
                    }
                    for (slot, &to) in outs.iter().enumerate() {
                        if matches!(self.nodes[to], DagNode::Train { .. }) {
                            candidates.push((from, slot));
                        }
                    }
                }
                if candidates.is_empty() {
                    return;
                }
                let (from, slot) = candidates[(seed as usize) % candidates.len()];
                self.edges[from].remove(slot);
            }
            Mutation::DuplicateToken { seed } => {
                let trains: Vec<usize> = (0..self.nodes.len())
                    .filter(|&i| matches!(self.nodes[i], DagNode::Train { .. }))
                    .collect();
                if trains.is_empty() {
                    return;
                }
                let victim = trains[(seed as usize) % trains.len()];
                let node = self.nodes[victim];
                let copy = self.push_node(node);
                // The double-trained micro-batch feeds the same update twice.
                if let DagNode::Train {
                    level, iteration, ..
                } = node
                {
                    if let Some(update) = self.find_node(DagNode::Update { level, iteration }) {
                        self.edges[copy].push(update);
                    }
                }
            }
            Mutation::CrossIterationEdge { seed } => {
                if self.iterations < 2 {
                    return;
                }
                // An edge from some iteration-(k+1) token back into iteration k.
                let late: Vec<usize> = (0..self.nodes.len())
                    .filter(|&i| {
                        matches!(self.nodes[i], DagNode::Train { iteration, .. } if iteration > 0)
                    })
                    .collect();
                if late.is_empty() {
                    return;
                }
                let from = late[(seed as usize) % late.len()];
                let k = self.nodes[from].iteration() - 1;
                let Some(to) = self.find_node(DagNode::Train {
                    level: 0,
                    iteration: k,
                    seq: 0,
                }) else {
                    return;
                };
                self.edges[from].push(to);
            }
        }
    }

    fn find_node(&self, node: DagNode) -> Option<usize> {
        self.nodes.iter().position(|&n| n == node)
    }

    /// Checks every invariant; returns the summary or all violations found.
    pub fn verify(&self) -> Result<DagSummary, Vec<DagViolation>> {
        let mut violations = Vec::new();
        self.check_config(&mut violations);
        self.check_coverage(&mut violations);
        self.check_dependencies(&mut violations);
        self.check_cross_iteration(&mut violations);
        self.check_gradient_dominance(&mut violations);
        self.check_barrier(&mut violations);
        self.check_acyclic(&mut violations);
        self.check_hf_partition(&mut violations);
        if violations.is_empty() {
            Ok(DagSummary {
                nodes: self.nodes.len(),
                edges: self.edge_count(),
                train_tokens: self
                    .nodes
                    .iter()
                    .filter(|n| matches!(n, DagNode::Train { .. }))
                    .count(),
                updates: self
                    .nodes
                    .iter()
                    .filter(|n| matches!(n, DagNode::Update { .. }))
                    .count(),
            })
        } else {
            Err(violations)
        }
    }

    fn check_config(&self, out: &mut Vec<DagViolation>) {
        if let Some(ctd) = self.cfg.ctd {
            let s = ctd.subset_size;
            if s == 0 || s > self.n_workers || !s.is_power_of_two() {
                out.push(DagViolation::CtdInvalid {
                    subset: s,
                    n_workers: self.n_workers,
                });
            }
        }
    }

    fn check_coverage(&self, out: &mut Vec<DagViolation>) {
        let mut counts: BTreeMap<(usize, u64, u64), usize> = BTreeMap::new();
        for node in &self.nodes {
            if let DagNode::Train {
                level,
                iteration,
                seq,
            } = *node
            {
                *counts.entry((level, iteration, seq)).or_insert(0) += 1;
            }
        }
        for k in 0..self.iterations {
            for lp in &self.plan.levels {
                for seq in 0..lp.tokens_per_iteration {
                    match counts.get(&(lp.level, k, seq)).copied().unwrap_or(0) {
                        0 => out.push(DagViolation::CoverageGap {
                            level: lp.level,
                            iteration: k,
                            seq,
                        }),
                        1 => {}
                        _ => out.push(DagViolation::DuplicateToken {
                            level: lp.level,
                            iteration: k,
                            seq,
                        }),
                    }
                }
            }
        }
    }

    fn check_dependencies(&self, out: &mut Vec<DagViolation>) {
        // Count train→train in-edges per *first* occurrence of each token key
        // (duplicates are already reported by coverage).
        let mut indeg: BTreeMap<(usize, u64, u64), usize> = BTreeMap::new();
        for (from, outs) in self.edges.iter().enumerate() {
            if !matches!(self.nodes[from], DagNode::Train { .. }) {
                continue;
            }
            for &to in outs {
                if let DagNode::Train {
                    level,
                    iteration,
                    seq,
                } = self.nodes[to]
                {
                    *indeg.entry((level, iteration, seq)).or_insert(0) += 1;
                }
            }
        }
        for k in 0..self.iterations {
            for lp in &self.plan.levels {
                if lp.level == 0 {
                    continue;
                }
                let expected = lp.gen_ratio as usize;
                for seq in 0..lp.tokens_per_iteration {
                    let found = indeg.get(&(lp.level, k, seq)).copied().unwrap_or(0);
                    if found != expected {
                        out.push(DagViolation::MissingDependency {
                            level: lp.level,
                            iteration: k,
                            seq,
                            expected,
                            found,
                        });
                    }
                }
            }
        }
    }

    fn check_cross_iteration(&self, out: &mut Vec<DagViolation>) {
        for (from, outs) in self.edges.iter().enumerate() {
            for &to in outs {
                if self.nodes[from].iteration() > self.nodes[to].iteration() {
                    out.push(DagViolation::CrossIterationEdge {
                        from: self.nodes[from],
                        to: self.nodes[to],
                    });
                }
            }
        }
    }

    fn check_gradient_dominance(&self, out: &mut Vec<DagViolation>) {
        // Direct-edge check: every train token of (level, k) must have an edge to
        // Update(level, k). Reachability through longer paths does not count —
        // the commit consumes the gradient itself, not a derivative of it.
        let mut feeds: BTreeMap<(usize, u64), BTreeSet<u64>> = BTreeMap::new();
        for (from, outs) in self.edges.iter().enumerate() {
            let DagNode::Train {
                level,
                iteration,
                seq,
            } = self.nodes[from]
            else {
                continue;
            };
            for &to in outs {
                if self.nodes[to] == (DagNode::Update { level, iteration }) {
                    feeds.entry((level, iteration)).or_default().insert(seq);
                }
            }
        }
        for k in 0..self.iterations {
            for lp in &self.plan.levels {
                let have = feeds.get(&(lp.level, k)).map(BTreeSet::len).unwrap_or(0);
                let need = lp.tokens_per_iteration as usize;
                if have < need {
                    out.push(DagViolation::GradientDominance {
                        level: lp.level,
                        iteration: k,
                        missing: need - have,
                    });
                }
            }
        }
    }

    fn check_barrier(&self, out: &mut Vec<DagViolation>) {
        // Every token of iteration k ≥ 1 + staleness needs an incoming edge from
        // its level's iteration-(k − 1 − staleness) update.
        let mut gated: BTreeSet<(usize, u64, u64)> = BTreeSet::new();
        for (from, outs) in self.edges.iter().enumerate() {
            let DagNode::Update {
                level: ul,
                iteration: uk,
            } = self.nodes[from]
            else {
                continue;
            };
            for &to in outs {
                if let DagNode::Train {
                    level,
                    iteration,
                    seq,
                } = self.nodes[to]
                {
                    if level == ul && iteration == uk + 1 + self.cfg.staleness {
                        gated.insert((level, iteration, seq));
                    }
                }
            }
        }
        for k in (1 + self.cfg.staleness)..self.iterations {
            for lp in &self.plan.levels {
                for seq in 0..lp.tokens_per_iteration {
                    if !gated.contains(&(lp.level, k, seq)) {
                        out.push(DagViolation::BarrierViolation {
                            level: lp.level,
                            iteration: k,
                            seq,
                        });
                    }
                }
            }
        }
    }

    fn check_acyclic(&self, out: &mut Vec<DagViolation>) {
        // Kahn's algorithm; any node never drained sits on (or behind) a cycle.
        let n = self.nodes.len();
        let mut indeg = vec![0usize; n];
        for outs in &self.edges {
            for &to in outs {
                indeg[to] += 1;
            }
        }
        let mut queue: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
        let mut drained = 0usize;
        while let Some(i) = queue.pop() {
            drained += 1;
            for &to in &self.edges[i] {
                indeg[to] -= 1;
                if indeg[to] == 0 {
                    queue.push(to);
                }
            }
        }
        if drained < n {
            if let Some(i) = (0..n).find(|&i| indeg[i] > 0) {
                out.push(DagViolation::Cycle {
                    node: self.nodes[i],
                });
            }
        }
    }

    fn check_hf_partition(&self, out: &mut Vec<DagViolation>) {
        // Sample affinity must be the round-robin partition (every root token in
        // exactly one worker's STB, load spread evenly).
        for (seq, &owner) in self.root_owner.iter().enumerate() {
            let expected = seq % self.n_workers;
            if owner != expected {
                out.push(DagViolation::HfPartitionViolation {
                    seq: seq as u64,
                    owner,
                    expected,
                });
            }
        }
    }

    /// Checks that `order` — `(level, iteration, seq)` in observed completion
    /// order — is a linearization consistent with the DAG's train→train edges.
    /// Ties the dynamic explorer and race checker back to the static DAG.
    pub fn accepts_linearization(&self, order: &[(usize, u64, u64)]) -> Result<(), DagViolation> {
        let pos: BTreeMap<(usize, u64, u64), usize> =
            order.iter().enumerate().map(|(i, &k)| (k, i)).collect();
        for (from, outs) in self.edges.iter().enumerate() {
            let DagNode::Train {
                level: fl,
                iteration: fk,
                seq: fs,
            } = self.nodes[from]
            else {
                continue;
            };
            for &to in outs {
                let DagNode::Train {
                    level: tl,
                    iteration: tk,
                    seq: ts,
                } = self.nodes[to]
                else {
                    continue;
                };
                if let (Some(&pf), Some(&pt)) = (pos.get(&(fl, fk, fs)), pos.get(&(tl, tk, ts))) {
                    if pf >= pt {
                        return Err(DagViolation::CrossIterationEdge {
                            from: self.nodes[from],
                            to: self.nodes[to],
                        });
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fela_model::{bin_partition, zoo, PartitionOptions, ThresholdProfile};

    fn vgg_dag(iters: u64) -> ScheduleDag {
        let p = bin_partition(
            &zoo::vgg19(),
            &ThresholdProfile::k40c(),
            PartitionOptions::default(),
        );
        let cfg = FelaConfig::new(3).with_weights(vec![1, 2, 4]);
        let plan = TokenPlan::build(&p, &cfg, 128, 8).unwrap();
        ScheduleDag::build(&plan, &cfg, 8, iters)
    }

    #[test]
    fn clean_dag_verifies() {
        let dag = vgg_dag(3);
        let summary = dag.verify().unwrap();
        // 14 train tokens + 3 updates per iteration × 3 iterations.
        assert_eq!(summary.train_tokens, 14 * 3);
        assert_eq!(summary.updates, 3 * 3);
        assert_eq!(summary.nodes, 17 * 3);
        assert!(summary.edges > 0);
    }

    #[test]
    fn dropped_dependency_is_diagnosed() {
        for seed in [0u64, 3, 17, 2024] {
            let mut dag = vgg_dag(2);
            dag.mutate(Mutation::DropDependencyEdge { seed });
            let violations = dag.verify().unwrap_err();
            assert!(
                violations
                    .iter()
                    .any(|v| matches!(v, DagViolation::MissingDependency { .. })),
                "seed {seed}: {violations:?}"
            );
        }
    }

    #[test]
    fn duplicated_token_is_diagnosed() {
        for seed in [0u64, 5, 101] {
            let mut dag = vgg_dag(2);
            dag.mutate(Mutation::DuplicateToken { seed });
            let violations = dag.verify().unwrap_err();
            assert!(
                violations
                    .iter()
                    .any(|v| matches!(v, DagViolation::DuplicateToken { .. })),
                "seed {seed}: {violations:?}"
            );
        }
    }

    #[test]
    fn cross_iteration_edge_is_diagnosed() {
        for seed in [0u64, 9, 77] {
            let mut dag = vgg_dag(2);
            dag.mutate(Mutation::CrossIterationEdge { seed });
            let violations = dag.verify().unwrap_err();
            assert!(
                violations
                    .iter()
                    .any(|v| matches!(v, DagViolation::CrossIterationEdge { .. })),
                "seed {seed}: {violations:?}"
            );
        }
    }

    #[test]
    fn mutations_yield_distinct_diagnostics() {
        let kinds: Vec<&'static str> = [
            Mutation::DropDependencyEdge { seed: 1 },
            Mutation::DuplicateToken { seed: 1 },
            Mutation::CrossIterationEdge { seed: 1 },
        ]
        .into_iter()
        .map(|m| {
            let mut dag = vgg_dag(2);
            dag.mutate(m);
            let violations = dag.verify().unwrap_err();
            match violations.first() {
                Some(DagViolation::MissingDependency { .. }) => "missing-dep",
                Some(DagViolation::DuplicateToken { .. }) => "duplicate",
                Some(DagViolation::CrossIterationEdge { .. }) => "cross-iter",
                other => panic!("unexpected first violation {other:?}"),
            }
        })
        .collect();
        assert_eq!(kinds, vec!["missing-dep", "duplicate", "cross-iter"]);
    }

    #[test]
    fn invalid_ctd_is_diagnosed() {
        let p = bin_partition(
            &zoo::vgg19(),
            &ThresholdProfile::k40c(),
            PartitionOptions::default(),
        );
        let good = FelaConfig::new(3).with_weights(vec![1, 2, 4]);
        let plan = TokenPlan::build(&p, &good, 128, 8).unwrap();
        // Bypass FelaConfig::validate (which would panic) by setting the field.
        let mut bad = good.clone();
        bad.ctd = Some(fela_core::CtdConfig { subset_size: 3 });
        let dag = ScheduleDag::build(&plan, &bad, 8, 1);
        let violations = dag.verify().unwrap_err();
        assert!(matches!(
            violations[0],
            DagViolation::CtdInvalid {
                subset: 3,
                n_workers: 8
            }
        ));
    }

    #[test]
    fn staleness_shifts_the_barrier() {
        let p = bin_partition(
            &zoo::vgg19(),
            &ThresholdProfile::k40c(),
            PartitionOptions::default(),
        );
        let cfg = FelaConfig::new(3)
            .with_weights(vec![1, 2, 4])
            .with_staleness(1);
        let plan = TokenPlan::build(&p, &cfg, 128, 8).unwrap();
        let dag = ScheduleDag::build(&plan, &cfg, 8, 4);
        dag.verify().unwrap();
    }

    #[test]
    fn linearization_checking() {
        let dag = vgg_dag(1);
        // Roots first, then generated levels in seq order — a valid order.
        let mut order = Vec::new();
        for level in 0..3usize {
            let n = dag.plan.levels[level].tokens_per_iteration;
            for seq in 0..n {
                order.push((level, 0u64, seq));
            }
        }
        dag.accepts_linearization(&order).unwrap();
        // Swap a dependent before its dependency.
        let bad: Vec<_> = order.iter().rev().copied().collect();
        assert!(dag.accepts_linearization(&bad).is_err());
    }
}
