//! A minimal dense tensor for the reproducibility engine.
//!
//! Deliberately simple: contiguous `f32` storage, row-major, shape checked at the
//! operation level. No SIMD, no blocking — bit-exact, portable arithmetic is the
//! point here, not speed.

/// A dense row-major `f32` tensor.
#[derive(Clone, Debug, PartialEq)]
pub struct Tensor {
    shape: Vec<usize>,
    data: Vec<f32>,
}

impl Tensor {
    /// Creates a zero-filled tensor.
    pub fn zeros(shape: &[usize]) -> Self {
        let len = shape.iter().product();
        Tensor {
            shape: shape.to_vec(),
            data: vec![0.0; len],
        }
    }

    /// Creates a tensor from raw data.
    ///
    /// # Panics
    /// Panics if the data length does not match the shape.
    pub fn from_vec(shape: &[usize], data: Vec<f32>) -> Self {
        assert_eq!(
            shape.iter().product::<usize>(),
            data.len(),
            "shape/data mismatch"
        );
        Tensor {
            shape: shape.to_vec(),
            data,
        }
    }

    /// Deterministically pseudo-random tensor in `[-scale, scale]` from a seed
    /// (SplitMix64 → uniform float; platform-independent).
    pub fn seeded(shape: &[usize], seed: u64, scale: f32) -> Self {
        let len: usize = shape.iter().product();
        let mut state = seed;
        let data = (0..len)
            .map(|_| {
                state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^= z >> 31;
                let unit = (z >> 11) as f32 / (1u64 << 53) as f32; // [0,1)
                (unit * 2.0 - 1.0) * scale
            })
            .collect();
        Tensor {
            shape: shape.to_vec(),
            data,
        }
    }

    /// The shape.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Total element count.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if the tensor has no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable element access.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable element access.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Adds `other` element-wise into `self`.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn add_assign(&mut self, other: &Tensor) {
        assert_eq!(self.shape, other.shape, "add_assign shape mismatch");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// `self -= lr * other` (the SGD update).
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn saxpy_neg(&mut self, lr: f32, other: &Tensor) {
        assert_eq!(self.shape, other.shape, "saxpy shape mismatch");
        for (a, g) in self.data.iter_mut().zip(&other.data) {
            *a -= lr * g;
        }
    }

    /// Splits a batched tensor (first dimension = batch) into row ranges,
    /// returning the sub-tensor for rows `[start, end)`.
    ///
    /// # Panics
    /// Panics if the range exceeds the batch dimension.
    pub fn slice_rows(&self, start: usize, end: usize) -> Tensor {
        let batch = self.shape[0];
        assert!(start <= end && end <= batch, "row range out of bounds");
        let row_elems: usize = self.shape[1..].iter().product();
        let mut shape = self.shape.clone();
        shape[0] = end - start;
        Tensor {
            shape,
            data: self.data[start * row_elems..end * row_elems].to_vec(),
        }
    }

    /// Concatenates tensors along the batch (first) dimension.
    ///
    /// # Panics
    /// Panics if trailing shapes differ or the list is empty.
    pub fn cat_rows(parts: &[&Tensor]) -> Tensor {
        assert!(!parts.is_empty(), "cat of nothing");
        let tail = &parts[0].shape[1..];
        let mut batch = 0;
        let mut data = Vec::new();
        for p in parts {
            assert_eq!(&p.shape[1..], tail, "cat trailing-shape mismatch");
            batch += p.shape[0];
            data.extend_from_slice(&p.data);
        }
        let mut shape = parts[0].shape.clone();
        shape[0] = batch;
        Tensor { shape, data }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_from_vec() {
        let z = Tensor::zeros(&[2, 3]);
        assert_eq!(z.len(), 6);
        assert!(z.data().iter().all(|&x| x == 0.0));
        let t = Tensor::from_vec(&[2, 2], vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(t.shape(), &[2, 2]);
    }

    #[test]
    #[should_panic(expected = "shape/data mismatch")]
    fn from_vec_checks_length() {
        Tensor::from_vec(&[2, 2], vec![1.0]);
    }

    #[test]
    fn seeded_is_deterministic_and_bounded() {
        let a = Tensor::seeded(&[4, 4], 42, 0.5);
        let b = Tensor::seeded(&[4, 4], 42, 0.5);
        assert_eq!(a, b);
        assert!(a.data().iter().all(|&x| (-0.5..=0.5).contains(&x)));
        let c = Tensor::seeded(&[4, 4], 43, 0.5);
        assert_ne!(a, c);
    }

    #[test]
    fn add_and_saxpy() {
        let mut a = Tensor::from_vec(&[2], vec![1.0, 2.0]);
        let b = Tensor::from_vec(&[2], vec![10.0, 20.0]);
        a.add_assign(&b);
        assert_eq!(a.data(), &[11.0, 22.0]);
        a.saxpy_neg(0.1, &b);
        assert_eq!(a.data(), &[10.0, 20.0]);
    }

    #[test]
    fn slice_and_cat_round_trip() {
        let t = Tensor::from_vec(&[4, 2], (0..8).map(|x| x as f32).collect());
        let a = t.slice_rows(0, 1);
        let b = t.slice_rows(1, 3);
        let c = t.slice_rows(3, 4);
        assert_eq!(a.shape(), &[1, 2]);
        assert_eq!(b.shape(), &[2, 2]);
        let back = Tensor::cat_rows(&[&a, &b, &c]);
        assert_eq!(back, t);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn slice_bounds_checked() {
        Tensor::zeros(&[2, 2]).slice_rows(0, 3);
    }
}
