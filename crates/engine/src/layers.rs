//! Differentiable layers: dense, ReLU, and a small 2-D convolution.
//!
//! Each layer implements explicit `forward` / `backward` with plain loops in a
//! fixed deterministic order. Per-sample mathematics is strictly independent
//! across the batch dimension — the property that makes Fela's token-splitting an
//! *exact* algebraic refactoring of full-batch training rather than an
//! approximation (no batch-norm-style cross-sample coupling here, matching the
//! paper's BSP-equivalence claim).

use crate::tensor::Tensor;

/// Gradients produced by one backward pass.
#[derive(Clone, Debug, PartialEq)]
pub struct LayerGrads {
    /// Gradient w.r.t. the layer's weights (empty tensor for parameter-free
    /// layers).
    pub weight: Tensor,
    /// Gradient w.r.t. the bias.
    pub bias: Tensor,
    /// Gradient w.r.t. the layer input (propagated upstream).
    pub input: Tensor,
}

/// A trainable layer.
#[derive(Clone, Debug, PartialEq)]
pub enum EngineLayer {
    /// Fully connected: `y = x·Wᵀ + b`, `x: [B, in]`, `W: [out, in]`.
    Dense {
        /// Weight matrix `[out, in]`.
        weight: Tensor,
        /// Bias `[out]`.
        bias: Tensor,
    },
    /// Element-wise `max(0, x)`.
    Relu,
    /// 2-D convolution, stride 1, same padding, square kernel.
    /// `x: [B, C_in, H, W]`, `weight: [C_out, C_in, K, K]`.
    Conv2d {
        /// Kernel tensor `[C_out, C_in, K, K]`.
        weight: Tensor,
        /// Bias `[C_out]`.
        bias: Tensor,
    },
}

impl EngineLayer {
    /// A seeded dense layer.
    pub fn dense(in_features: usize, out_features: usize, seed: u64) -> Self {
        let scale = (1.0 / in_features as f32).sqrt();
        EngineLayer::Dense {
            weight: Tensor::seeded(&[out_features, in_features], seed, scale),
            bias: Tensor::zeros(&[out_features]),
        }
    }

    /// A seeded convolution layer.
    pub fn conv2d(c_in: usize, c_out: usize, kernel: usize, seed: u64) -> Self {
        let scale = (1.0 / (c_in * kernel * kernel) as f32).sqrt();
        EngineLayer::Conv2d {
            weight: Tensor::seeded(&[c_out, c_in, kernel, kernel], seed, scale),
            bias: Tensor::zeros(&[c_out]),
        }
    }

    /// Whether the layer has trainable parameters.
    pub fn has_params(&self) -> bool {
        !matches!(self, EngineLayer::Relu)
    }

    /// Forward pass.
    pub fn forward(&self, x: &Tensor) -> Tensor {
        match self {
            EngineLayer::Dense { weight, bias } => {
                let (b, n_in) = (x.shape()[0], x.shape()[1]);
                let n_out = weight.shape()[0];
                assert_eq!(n_in, weight.shape()[1], "dense input width mismatch");
                let mut y = Tensor::zeros(&[b, n_out]);
                for i in 0..b {
                    for o in 0..n_out {
                        let mut acc = bias.data()[o];
                        for k in 0..n_in {
                            acc += x.data()[i * n_in + k] * weight.data()[o * n_in + k];
                        }
                        y.data_mut()[i * n_out + o] = acc;
                    }
                }
                y
            }
            EngineLayer::Relu => {
                let mut y = x.clone();
                for v in y.data_mut() {
                    if *v < 0.0 {
                        *v = 0.0;
                    }
                }
                y
            }
            EngineLayer::Conv2d { weight, bias } => {
                let (b, c_in, h, w) = (x.shape()[0], x.shape()[1], x.shape()[2], x.shape()[3]);
                let (c_out, k) = (weight.shape()[0], weight.shape()[2]);
                assert_eq!(c_in, weight.shape()[1], "conv channel mismatch");
                let pad = k / 2;
                let mut y = Tensor::zeros(&[b, c_out, h, w]);
                for i in 0..b {
                    for co in 0..c_out {
                        for oy in 0..h {
                            for ox in 0..w {
                                let mut acc = bias.data()[co];
                                for ci in 0..c_in {
                                    for ky in 0..k {
                                        for kx in 0..k {
                                            let iy = oy + ky;
                                            let ix = ox + kx;
                                            if iy < pad || ix < pad {
                                                continue;
                                            }
                                            let (iy, ix) = (iy - pad, ix - pad);
                                            if iy >= h || ix >= w {
                                                continue;
                                            }
                                            let xv = x.data()[((i * c_in + ci) * h + iy) * w + ix];
                                            let wv =
                                                weight.data()[((co * c_in + ci) * k + ky) * k + kx];
                                            acc += xv * wv;
                                        }
                                    }
                                }
                                y.data_mut()[((i * c_out + co) * h + oy) * w + ox] = acc;
                            }
                        }
                    }
                }
                y
            }
        }
    }

    /// Backward pass given the layer input and the gradient w.r.t. the output.
    pub fn backward(&self, x: &Tensor, grad_out: &Tensor) -> LayerGrads {
        match self {
            EngineLayer::Dense { weight, .. } => {
                let (b, n_in) = (x.shape()[0], x.shape()[1]);
                let n_out = weight.shape()[0];
                let mut gw = Tensor::zeros(&[n_out, n_in]);
                let mut gb = Tensor::zeros(&[n_out]);
                let mut gx = Tensor::zeros(&[b, n_in]);
                for i in 0..b {
                    for o in 0..n_out {
                        let go = grad_out.data()[i * n_out + o];
                        gb.data_mut()[o] += go;
                        for k in 0..n_in {
                            gw.data_mut()[o * n_in + k] += go * x.data()[i * n_in + k];
                            gx.data_mut()[i * n_in + k] += go * weight.data()[o * n_in + k];
                        }
                    }
                }
                LayerGrads {
                    weight: gw,
                    bias: gb,
                    input: gx,
                }
            }
            EngineLayer::Relu => {
                let mut gx = grad_out.clone();
                for (g, &v) in gx.data_mut().iter_mut().zip(x.data()) {
                    if v <= 0.0 {
                        *g = 0.0;
                    }
                }
                LayerGrads {
                    weight: Tensor::zeros(&[0]),
                    bias: Tensor::zeros(&[0]),
                    input: gx,
                }
            }
            EngineLayer::Conv2d { weight, .. } => {
                let (b, c_in, h, w) = (x.shape()[0], x.shape()[1], x.shape()[2], x.shape()[3]);
                let (c_out, k) = (weight.shape()[0], weight.shape()[2]);
                let pad = k / 2;
                let mut gw = Tensor::zeros(&[c_out, c_in, k, k]);
                let mut gb = Tensor::zeros(&[c_out]);
                let mut gx = Tensor::zeros(&[b, c_in, h, w]);
                for i in 0..b {
                    for co in 0..c_out {
                        for oy in 0..h {
                            for ox in 0..w {
                                let go = grad_out.data()[((i * c_out + co) * h + oy) * w + ox];
                                gb.data_mut()[co] += go;
                                for ci in 0..c_in {
                                    for ky in 0..k {
                                        for kx in 0..k {
                                            let iy = oy + ky;
                                            let ix = ox + kx;
                                            if iy < pad || ix < pad {
                                                continue;
                                            }
                                            let (iy, ix) = (iy - pad, ix - pad);
                                            if iy >= h || ix >= w {
                                                continue;
                                            }
                                            let xi = ((i * c_in + ci) * h + iy) * w + ix;
                                            let wi = ((co * c_in + ci) * k + ky) * k + kx;
                                            gw.data_mut()[wi] += go * x.data()[xi];
                                            gx.data_mut()[xi] += go * weight.data()[wi];
                                        }
                                    }
                                }
                            }
                        }
                    }
                }
                LayerGrads {
                    weight: gw,
                    bias: gb,
                    input: gx,
                }
            }
        }
    }

    /// Applies an SGD step with learning rate `lr`.
    ///
    /// # Panics
    /// Panics if called on a parameter-free layer with non-empty grads.
    pub fn apply(&mut self, grads_w: &Tensor, grads_b: &Tensor, lr: f32) {
        match self {
            EngineLayer::Dense { weight, bias } | EngineLayer::Conv2d { weight, bias } => {
                weight.saxpy_neg(lr, grads_w);
                bias.saxpy_neg(lr, grads_b);
            }
            EngineLayer::Relu => {
                assert!(grads_w.is_empty() && grads_b.is_empty());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finite_diff_check(layer: &EngineLayer, x: &Tensor) {
        // Loss = sum of outputs; analytic input gradient vs central differences.
        let y = layer.forward(x);
        let grad_out = Tensor::from_vec(y.shape(), vec![1.0; y.len()]);
        let grads = layer.backward(x, &grad_out);
        let eps = 1e-3f32;
        for idx in 0..x.len().min(8) {
            let mut xp = x.clone();
            xp.data_mut()[idx] += eps;
            let mut xm = x.clone();
            xm.data_mut()[idx] -= eps;
            let fp: f32 = layer.forward(&xp).data().iter().sum();
            let fm: f32 = layer.forward(&xm).data().iter().sum();
            let numeric = (fp - fm) / (2.0 * eps);
            let analytic = grads.input.data()[idx];
            assert!(
                (numeric - analytic).abs() < 2e-2 * (1.0 + analytic.abs()),
                "idx {idx}: numeric {numeric} vs analytic {analytic}"
            );
        }
    }

    #[test]
    fn dense_gradient_matches_finite_differences() {
        let layer = EngineLayer::dense(5, 3, 7);
        let x = Tensor::seeded(&[2, 5], 11, 1.0);
        finite_diff_check(&layer, &x);
    }

    #[test]
    fn conv_gradient_matches_finite_differences() {
        let layer = EngineLayer::conv2d(2, 3, 3, 9);
        let x = Tensor::seeded(&[1, 2, 4, 4], 13, 1.0);
        finite_diff_check(&layer, &x);
    }

    #[test]
    fn relu_masks_negative_inputs() {
        let layer = EngineLayer::Relu;
        let x = Tensor::from_vec(&[1, 4], vec![-1.0, 0.0, 0.5, 2.0]);
        let y = layer.forward(&x);
        assert_eq!(y.data(), &[0.0, 0.0, 0.5, 2.0]);
        let g = layer.backward(&x, &Tensor::from_vec(&[1, 4], vec![1.0; 4]));
        assert_eq!(g.input.data(), &[0.0, 0.0, 1.0, 1.0]);
        assert!(!layer.has_params());
    }

    #[test]
    fn dense_weight_grad_shape_and_accumulation() {
        let layer = EngineLayer::dense(3, 2, 1);
        let x = Tensor::seeded(&[4, 3], 2, 1.0);
        let y = layer.forward(&x);
        let g = layer.backward(&x, &Tensor::from_vec(y.shape(), vec![1.0; y.len()]));
        assert_eq!(g.weight.shape(), &[2, 3]);
        // Bias grad = batch size (each sample contributes 1.0 per output).
        assert!(g.bias.data().iter().all(|&b| (b - 4.0).abs() < 1e-6));
    }

    #[test]
    fn conv_preserves_shape_with_same_padding() {
        let layer = EngineLayer::conv2d(1, 2, 3, 3);
        let x = Tensor::seeded(&[2, 1, 5, 5], 4, 1.0);
        let y = layer.forward(&x);
        assert_eq!(y.shape(), &[2, 2, 5, 5]);
    }

    #[test]
    fn per_sample_independence() {
        // The algebraic foundation of token splitting: forward of a 2-batch equals
        // the concatenation of two 1-batch forwards, exactly.
        for layer in [
            EngineLayer::dense(6, 4, 21),
            EngineLayer::Relu,
            EngineLayer::conv2d(2, 2, 3, 22),
        ] {
            let x = if matches!(layer, EngineLayer::Conv2d { .. }) {
                Tensor::seeded(&[2, 2, 4, 4], 23, 1.0)
            } else {
                Tensor::seeded(&[2, 6], 23, 1.0)
            };
            let full = layer.forward(&x);
            let a = layer.forward(&x.slice_rows(0, 1));
            let b = layer.forward(&x.slice_rows(1, 2));
            assert_eq!(full, Tensor::cat_rows(&[&a, &b]), "{layer:?}");
        }
    }

    #[test]
    fn sgd_apply_moves_weights() {
        let mut layer = EngineLayer::dense(2, 2, 5);
        let before = match &layer {
            EngineLayer::Dense { weight, .. } => weight.clone(),
            _ => unreachable!(),
        };
        let gw = Tensor::from_vec(&[2, 2], vec![1.0; 4]);
        let gb = Tensor::from_vec(&[2], vec![1.0; 2]);
        layer.apply(&gw, &gb, 0.5);
        match &layer {
            EngineLayer::Dense { weight, .. } => {
                for (a, b) in weight.data().iter().zip(before.data()) {
                    assert!((a - (b - 0.5)).abs() < 1e-6);
                }
            }
            _ => unreachable!(),
        }
    }
}
