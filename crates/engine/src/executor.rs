//! Token-scheduled training vs. the serial reference — the reproducibility proof.
//!
//! The paper's Table II credits Fela with *algorithm reproducibility*: unlike
//! ASP/SSP systems, its token scheduling is a pure re-ordering of the same BSP
//! computation. This module makes that claim checkable:
//!
//! * [`TokenExecutor::step`] trains one iteration by splitting the model into
//!   sub-models and the batch into tokens per a [`SplitPlan`], executing tokens in
//!   an arbitrary caller-supplied schedule (any topological order of the token
//!   DAG), and reducing gradients in canonical token-sequence order;
//! * [`serial_step`] trains the same iteration conventionally (one full-batch
//!   pass).
//!
//! Two token schedules produce **bit-identical** parameters (asserted in tests and
//! property tests): per-sample forward independence plus canonical reduction order
//! make the result schedule-invariant. Against the serial reference, results are
//! identical in exact arithmetic and agree to floating-point regrouping tolerance
//! (the partial sums associate differently) — with one token the match is exact.

use crate::network::EngineNet;
use crate::tensor::Tensor;

/// How a model and batch decompose into tokens.
#[derive(Clone, Debug)]
pub struct SplitPlan {
    /// Sub-model boundaries: `levels[l] = (start_layer, end_layer)`.
    pub levels: Vec<(usize, usize)>,
    /// Tokens per level; `tokens[l]` must divide `tokens[0]` (nondecreasing
    /// per-token batches, as in the paper).
    pub tokens: Vec<usize>,
}

impl SplitPlan {
    /// Validates against a network and batch size.
    ///
    /// # Panics
    /// Panics if boundaries do not tile the network, token counts are invalid, or
    /// the batch does not divide evenly.
    pub fn validate(&self, net: &EngineNet, batch: usize) {
        assert_eq!(self.levels.len(), self.tokens.len());
        assert!(!self.levels.is_empty());
        assert_eq!(self.levels[0].0, 0, "first sub-model starts at layer 0");
        assert_eq!(
            self.levels.last().unwrap().1,
            net.len(),
            "last sub-model ends at the last layer"
        );
        for w in self.levels.windows(2) {
            assert_eq!(w[0].1, w[1].0, "sub-models must tile the network");
        }
        for (l, &t) in self.tokens.iter().enumerate() {
            assert!(t > 0, "level {l} has zero tokens");
            assert_eq!(
                self.tokens[0] % t,
                0,
                "level {l} token count must divide the root count"
            );
            assert_eq!(batch % t, 0, "batch must divide into level {l} tokens");
        }
    }

    /// All `(level, index)` pairs — the token DAG's nodes.
    pub fn all_tokens(&self) -> Vec<(usize, usize)> {
        self.tokens
            .iter()
            .enumerate()
            .flat_map(|(l, &n)| (0..n).map(move |j| (l, j)))
            .collect()
    }

    /// Dependencies of token `(level, j)`: the level-`(l−1)` tokens covering the
    /// same sample rows.
    pub fn deps(&self, level: usize, j: usize) -> Vec<(usize, usize)> {
        if level == 0 {
            return vec![];
        }
        let ratio = self.tokens[level - 1] / self.tokens[level];
        (0..ratio).map(|k| (level - 1, j * ratio + k)).collect()
    }
}

/// Mean-squared-error gradient: `d/dy ½·mean‖y − t‖²` per element, scaled by the
/// *full* batch size so token splitting keeps the same objective.
fn mse_grad(y: &Tensor, target: &Tensor, full_batch: usize) -> Tensor {
    assert_eq!(y.shape(), target.shape());
    let scale = 1.0 / (full_batch as f32);
    let data = y
        .data()
        .iter()
        .zip(target.data())
        .map(|(a, b)| (a - b) * scale)
        .collect();
    Tensor::from_vec(y.shape(), data)
}

/// MSE loss value (for convergence tests).
pub fn mse_loss(y: &Tensor, target: &Tensor) -> f32 {
    let n = y.shape()[0] as f32;
    y.data()
        .iter()
        .zip(target.data())
        .map(|(a, b)| (a - b) * (a - b))
        .sum::<f32>()
        / (2.0 * n)
}

/// One conventional full-batch SGD step (the reference).
pub fn serial_step(net: &mut EngineNet, x: &Tensor, target: &Tensor, lr: f32) {
    let (inputs, y) = net.forward_range(0, net.len(), x);
    let grad = mse_grad(&y, target, x.shape()[0]);
    let grads = net.backward_range(0, net.len(), &inputs, &grad);
    net.apply_range(0, &grads.per_layer, lr);
}

/// Token-scheduled executor over one network.
pub struct TokenExecutor {
    /// The decomposition in force.
    pub plan: SplitPlan,
    /// SGD learning rate.
    pub lr: f32,
}

impl TokenExecutor {
    /// Trains one iteration executing tokens in `schedule` order.
    ///
    /// `schedule` must be a permutation of [`SplitPlan::all_tokens`] that respects
    /// dependencies (checked).
    ///
    /// # Panics
    /// Panics if the schedule is not a valid topological order of the token DAG.
    pub fn step(
        &self,
        net: &mut EngineNet,
        x: &Tensor,
        target: &Tensor,
        schedule: &[(usize, usize)],
    ) {
        let batch = x.shape()[0];
        self.plan.validate(net, batch);
        let m = self.plan.levels.len();
        assert_eq!(
            schedule.len(),
            self.plan.all_tokens().len(),
            "schedule must cover every token exactly once"
        );

        // Forward phase, in schedule order.
        let mut outputs: Vec<Vec<Option<Tensor>>> =
            self.plan.tokens.iter().map(|&n| vec![None; n]).collect();
        let mut stored_inputs: Vec<Vec<Option<Vec<Tensor>>>> =
            self.plan.tokens.iter().map(|&n| vec![None; n]).collect();
        for &(level, j) in schedule {
            assert!(
                outputs[level][j].is_none(),
                "token ({level},{j}) scheduled twice"
            );
            let (start, end) = self.plan.levels[level];
            let input = if level == 0 {
                let per = batch / self.plan.tokens[0];
                x.slice_rows(j * per, (j + 1) * per)
            } else {
                let parts: Vec<&Tensor> = self
                    .plan
                    .deps(level, j)
                    .into_iter()
                    .map(|(dl, dj)| {
                        outputs[dl][dj]
                            .as_ref()
                            .expect("schedule violates token dependencies")
                    })
                    .collect();
                Tensor::cat_rows(&parts)
            };
            let (inputs, out) = net.forward_range(start, end, &input);
            stored_inputs[level][j] = Some(inputs);
            outputs[level][j] = Some(out);
        }

        // Backward phase: top level down, tokens in sequence order; gradients
        // reduce canonically so the result is schedule-invariant.
        let mut grad_out: Vec<Vec<Option<Tensor>>> =
            self.plan.tokens.iter().map(|&n| vec![None; n]).collect();
        let last = m - 1;
        let per_last = batch / self.plan.tokens[last];
        for j in 0..self.plan.tokens[last] {
            let y = outputs[last][j].as_ref().expect("all tokens ran");
            let t = target.slice_rows(j * per_last, (j + 1) * per_last);
            grad_out[last][j] = Some(mse_grad(y, &t, batch));
        }
        for level in (0..m).rev() {
            let (start, end) = self.plan.levels[level];
            // Canonical accumulator per layer of this level.
            let mut acc: Option<Vec<(Tensor, Tensor)>> = None;
            for j in 0..self.plan.tokens[level] {
                let inputs = stored_inputs[level][j].as_ref().expect("token ran");
                let go = grad_out[level][j].as_ref().expect("grad available");
                let grads = net.backward_range(start, end, inputs, go);
                match &mut acc {
                    None => acc = Some(grads.per_layer.clone()),
                    Some(a) => {
                        for ((aw, ab), (gw, gb)) in a.iter_mut().zip(&grads.per_layer) {
                            if !gw.is_empty() {
                                aw.add_assign(gw);
                                ab.add_assign(gb);
                            }
                        }
                    }
                }
                // Split the input gradient back to the dependency tokens.
                if level > 0 {
                    let deps = self.plan.deps(level, j);
                    let dep_rows = grads.input.shape()[0] / deps.len();
                    for (k, (dl, dj)) in deps.into_iter().enumerate() {
                        let mut slice = grads.input.slice_rows(k * dep_rows, (k + 1) * dep_rows);
                        // Match the stored output shape of the dep (conv layers keep
                        // 4-D shapes; the flatten boundary reshapes lazily).
                        let dep_shape = outputs[dl][dj].as_ref().expect("ran").shape().to_vec();
                        if slice.shape() != dep_shape.as_slice() {
                            slice = Tensor::from_vec(&dep_shape, slice.data().to_vec());
                        }
                        grad_out[dl][dj] = Some(slice);
                    }
                }
            }
            net.apply_range(start, &acc.expect("level has tokens"), self.lr);
        }
    }
}

/// Builds a valid topological schedule from a permutation seed: repeatedly picks
/// the next ready token, choosing among ready ones pseudo-randomly.
pub fn seeded_schedule(plan: &SplitPlan, seed: u64) -> Vec<(usize, usize)> {
    let mut ready: Vec<(usize, usize)> = Vec::new();
    let mut done: Vec<Vec<bool>> = plan.tokens.iter().map(|&n| vec![false; n]).collect();
    let mut remaining: Vec<(usize, usize)> = plan.all_tokens();
    let mut out = Vec::with_capacity(remaining.len());
    let mut state = seed;
    let mut next_rand = |bound: usize| {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        (z ^ (z >> 31)) as usize % bound
    };
    while !remaining.is_empty() || !ready.is_empty() {
        // Move newly ready tokens out of `remaining`.
        let mut i = 0;
        while i < remaining.len() {
            let (l, j) = remaining[i];
            if plan.deps(l, j).iter().all(|&(dl, dj)| done[dl][dj]) {
                ready.push(remaining.swap_remove(i));
            } else {
                i += 1;
            }
        }
        assert!(!ready.is_empty(), "token DAG has a cycle?!");
        let pick = next_rand(ready.len());
        let (l, j) = ready.swap_remove(pick);
        done[l][j] = true;
        out.push((l, j));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mlp_plan() -> (EngineNet, SplitPlan) {
        let net = EngineNet::mlp(&[6, 8, 8, 4], 17);
        // Layers: dense relu dense relu dense = 5 units; split 0..2, 2..4, 4..5.
        let plan = SplitPlan {
            levels: vec![(0, 2), (2, 4), (4, 5)],
            tokens: vec![4, 2, 1],
        };
        (net, plan)
    }

    fn data(batch: usize) -> (Tensor, Tensor) {
        (
            Tensor::seeded(&[batch, 6], 100, 1.0),
            Tensor::seeded(&[batch, 4], 200, 1.0),
        )
    }

    #[test]
    fn schedules_are_topological() {
        let (_, plan) = mlp_plan();
        for seed in 0..10 {
            let sched = seeded_schedule(&plan, seed);
            assert_eq!(sched.len(), 7);
            let mut seen = std::collections::HashSet::new();
            for (l, j) in sched {
                for dep in plan.deps(l, j) {
                    assert!(seen.contains(&dep), "dep {dep:?} after ({l},{j})");
                }
                seen.insert((l, j));
            }
        }
    }

    #[test]
    fn different_schedules_bit_identical() {
        let (net0, plan) = mlp_plan();
        let (x, t) = data(8);
        let exec = TokenExecutor {
            plan: plan.clone(),
            lr: 0.05,
        };
        let mut results = Vec::new();
        for seed in [1u64, 7, 42, 1337] {
            let mut net = net0.clone();
            for _ in 0..3 {
                let sched = seeded_schedule(&plan, seed);
                exec.step(&mut net, &x, &t, &sched);
            }
            results.push(net);
        }
        for r in &results[1..] {
            assert_eq!(
                r, &results[0],
                "token scheduling must not change the trained model bit-for-bit"
            );
        }
    }

    #[test]
    fn single_token_plan_equals_serial_exactly() {
        let net0 = EngineNet::mlp(&[5, 7, 3], 3);
        let plan = SplitPlan {
            levels: vec![(0, 2), (2, 3)],
            tokens: vec![1, 1],
        };
        let (x, t) = (
            Tensor::seeded(&[4, 5], 300, 1.0),
            Tensor::seeded(&[4, 3], 301, 1.0),
        );
        let mut serial = net0.clone();
        let mut tokened = net0.clone();
        let exec = TokenExecutor {
            plan: plan.clone(),
            lr: 0.1,
        };
        for _ in 0..5 {
            serial_step(&mut serial, &x, &t, 0.1);
            let sched = seeded_schedule(&plan, 9);
            exec.step(&mut tokened, &x, &t, &sched);
        }
        assert_eq!(
            serial, tokened,
            "one token per level is literally serial BSP"
        );
    }

    #[test]
    fn token_split_matches_serial_within_fp_regrouping() {
        let (net0, plan) = mlp_plan();
        let (x, t) = data(8);
        let mut serial = net0.clone();
        let mut tokened = net0.clone();
        let exec = TokenExecutor {
            plan: plan.clone(),
            lr: 0.05,
        };
        for step in 0..3 {
            serial_step(&mut serial, &x, &t, 0.05);
            exec.step(&mut tokened, &x, &t, &seeded_schedule(&plan, step));
        }
        // Same computation up to floating-point re-association of the gradient
        // partial sums: agreement to ~1e-5 relative.
        for (a, b) in serial.layers().iter().zip(tokened.layers().iter()) {
            if let (
                crate::layers::EngineLayer::Dense { weight: wa, .. },
                crate::layers::EngineLayer::Dense { weight: wb, .. },
            ) = (a, b)
            {
                for (va, vb) in wa.data().iter().zip(wb.data()) {
                    assert!((va - vb).abs() <= 1e-4 * (1.0 + va.abs()), "{va} vs {vb}");
                }
            }
        }
    }

    #[test]
    fn training_converges() {
        let (net0, plan) = mlp_plan();
        let (x, t) = data(8);
        let exec = TokenExecutor {
            plan: plan.clone(),
            lr: 0.2,
        };
        let mut net = net0;
        let initial = {
            let (_, y) = net.forward_range(0, net.len(), &x);
            mse_loss(&y, &t)
        };
        for step in 0..50 {
            exec.step(&mut net, &x, &t, &seeded_schedule(&plan, step));
        }
        let final_loss = {
            let (_, y) = net.forward_range(0, net.len(), &x);
            mse_loss(&y, &t)
        };
        assert!(
            final_loss < 0.5 * initial,
            "loss {initial} → {final_loss}: token-scheduled SGD must converge"
        );
    }

    #[test]
    fn cnn_token_training_is_schedule_invariant() {
        let net0 = EngineNet::small_cnn(1, 4, 4, 2, 51);
        let plan = SplitPlan {
            levels: vec![(0, 2), (2, 4), (4, 5)],
            tokens: vec![2, 2, 1],
        };
        let x = Tensor::seeded(&[4, 1, 4, 4], 400, 1.0);
        let t = Tensor::seeded(&[4, 2], 401, 1.0);
        let exec = TokenExecutor {
            plan: plan.clone(),
            lr: 0.05,
        };
        let mut a = net0.clone();
        let mut b = net0.clone();
        exec.step(&mut a, &x, &t, &seeded_schedule(&plan, 1));
        exec.step(&mut b, &x, &t, &seeded_schedule(&plan, 99));
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "scheduled twice")]
    fn duplicate_schedule_rejected() {
        let (mut net, plan) = mlp_plan();
        let (x, t) = data(8);
        let exec = TokenExecutor {
            plan: plan.clone(),
            lr: 0.1,
        };
        let mut sched = seeded_schedule(&plan, 0);
        let first = sched[0];
        sched[1] = first;
        exec.step(&mut net, &x, &t, &sched);
    }

    #[test]
    #[should_panic(expected = "must tile")]
    fn plan_validation_catches_gaps() {
        let (net, _) = mlp_plan();
        let bad = SplitPlan {
            levels: vec![(0, 2), (3, 5)],
            tokens: vec![1, 1],
        };
        bad.validate(&net, 8);
    }
}
