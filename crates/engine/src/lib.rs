//! # fela-engine — the reproducibility proof engine
//!
//! A small real CPU training stack (tensors, dense/conv layers, SGD) whose only
//! job is to make the paper's Table II "Algorithm Reproducibility ✓" claim a
//! checkable theorem instead of an assertion: token-scheduled training
//! ([`TokenExecutor`]) is a pure re-ordering of serial BSP training
//! ([`serial_step`]). Any two valid token schedules produce **bit-identical**
//! models; a single-token plan reproduces the serial reference exactly; and
//! multi-token plans agree with it up to floating-point re-association.
//!
//! The timing simulator (`fela-core`) and this engine are two projections of the
//! same system: one reproduces the paper's *performance* numbers, the other its
//! *semantics* guarantee.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod executor;
mod layers;
mod network;
mod tensor;

pub use executor::{mse_loss, seeded_schedule, serial_step, SplitPlan, TokenExecutor};
pub use layers::{EngineLayer, LayerGrads};
pub use network::{EngineNet, NetGrads};
pub use tensor::Tensor;
