//! Layer stacks and sub-model splits for the reproducibility engine.

use crate::layers::{EngineLayer, LayerGrads};
use crate::tensor::Tensor;

/// A sequential network.
#[derive(Clone, Debug, PartialEq)]
pub struct EngineNet {
    layers: Vec<EngineLayer>,
}

/// Per-layer parameter gradients for a (sub-)network pass.
#[derive(Clone, Debug, PartialEq)]
pub struct NetGrads {
    /// One entry per layer in the range (parameter-free layers carry empties).
    pub per_layer: Vec<(Tensor, Tensor)>,
    /// Gradient w.r.t. the range input.
    pub input: Tensor,
}

impl EngineNet {
    /// Builds a network from layers.
    ///
    /// # Panics
    /// Panics if empty.
    pub fn new(layers: Vec<EngineLayer>) -> Self {
        assert!(!layers.is_empty(), "network needs layers");
        EngineNet { layers }
    }

    /// A dense MLP with ReLU between layers: `dims = [in, h1, …, out]`.
    pub fn mlp(dims: &[usize], seed: u64) -> Self {
        assert!(dims.len() >= 2, "mlp needs at least in/out dims");
        let mut layers = Vec::new();
        for (i, w) in dims.windows(2).enumerate() {
            layers.push(EngineLayer::dense(w[0], w[1], seed.wrapping_add(i as u64)));
            if i + 2 < dims.len() {
                layers.push(EngineLayer::Relu);
            }
        }
        EngineNet::new(layers)
    }

    /// A small CNN: conv→relu→conv→relu→dense over `c×h×w` inputs, mirroring the
    /// CONV-then-FC structure whose heterogeneity motivates Fela.
    pub fn small_cnn(c: usize, h: usize, w: usize, classes: usize, seed: u64) -> Self {
        EngineNet::new(vec![
            EngineLayer::conv2d(c, 4, 3, seed),
            EngineLayer::Relu,
            EngineLayer::conv2d(4, 4, 3, seed + 1),
            EngineLayer::Relu,
            EngineLayer::dense(4 * h * w, classes, seed + 2),
        ])
    }

    /// Number of layers.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// True if there are no layers (never constructed that way).
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// Read access to the layers.
    pub fn layers(&self) -> &[EngineLayer] {
        &self.layers
    }

    /// Forward through layers `[start, end)`. A 4-D conv input is flattened
    /// automatically when a dense layer follows.
    ///
    /// Returns the per-layer inputs (needed for backward) and the final output.
    pub fn forward_range(&self, start: usize, end: usize, x: &Tensor) -> (Vec<Tensor>, Tensor) {
        let mut inputs = Vec::with_capacity(end - start);
        let mut cur = x.clone();
        for layer in &self.layers[start..end] {
            if let EngineLayer::Dense { .. } = layer {
                if cur.shape().len() > 2 {
                    let b = cur.shape()[0];
                    let rest: usize = cur.shape()[1..].iter().product();
                    cur = Tensor::from_vec(&[b, rest], cur.data().to_vec());
                }
            }
            inputs.push(cur.clone());
            cur = layer.forward(&cur);
        }
        (inputs, cur)
    }

    /// Backward through layers `[start, end)` given the stored inputs and the
    /// gradient w.r.t. the range output.
    pub fn backward_range(
        &self,
        start: usize,
        end: usize,
        inputs: &[Tensor],
        grad_out: &Tensor,
    ) -> NetGrads {
        assert_eq!(inputs.len(), end - start, "stored inputs mismatch");
        let mut per_layer = vec![(Tensor::zeros(&[0]), Tensor::zeros(&[0])); end - start];
        let mut grad = grad_out.clone();
        for (offset, layer) in self.layers[start..end].iter().enumerate().rev() {
            let x = &inputs[offset];
            // Re-shape the gradient back to the stored input's view if the forward
            // pass flattened after this layer (handled by shape of x vs grad on
            // the *input* side below).
            let LayerGrads {
                weight,
                bias,
                input,
            } = layer.backward(x, &grad);
            per_layer[offset] = (weight, bias);
            grad = input;
        }
        NetGrads {
            per_layer,
            input: grad,
        }
    }

    /// Applies accumulated gradients for layers `[start, end)`.
    pub fn apply_range(&mut self, start: usize, grads: &[(Tensor, Tensor)], lr: f32) {
        for (offset, (gw, gb)) in grads.iter().enumerate() {
            let layer = &mut self.layers[start + offset];
            if layer.has_params() {
                layer.apply(gw, gb, lr);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mlp_structure() {
        let net = EngineNet::mlp(&[4, 8, 3], 1);
        // dense, relu, dense.
        assert_eq!(net.len(), 3);
        assert!(net.layers()[0].has_params());
        assert!(!net.layers()[1].has_params());
    }

    #[test]
    fn forward_range_splits_consistently() {
        let net = EngineNet::mlp(&[4, 8, 8, 3], 2);
        let x = Tensor::seeded(&[5, 4], 3, 1.0);
        let (_, full) = net.forward_range(0, net.len(), &x);
        let (_, mid) = net.forward_range(0, 2, &x);
        let (_, out) = net.forward_range(2, net.len(), &mid);
        assert_eq!(full, out, "composing ranges equals the full pass");
    }

    #[test]
    fn cnn_flattens_before_dense() {
        let net = EngineNet::small_cnn(1, 4, 4, 3, 7);
        let x = Tensor::seeded(&[2, 1, 4, 4], 8, 1.0);
        let (_, y) = net.forward_range(0, net.len(), &x);
        assert_eq!(y.shape(), &[2, 3]);
    }

    #[test]
    fn backward_range_produces_grads_for_every_param_layer() {
        let net = EngineNet::mlp(&[4, 6, 2], 5);
        let x = Tensor::seeded(&[3, 4], 6, 1.0);
        let (inputs, y) = net.forward_range(0, net.len(), &x);
        let g = net.backward_range(
            0,
            net.len(),
            &inputs,
            &Tensor::from_vec(y.shape(), vec![1.0; y.len()]),
        );
        assert_eq!(g.per_layer.len(), 3);
        assert!(!g.per_layer[0].0.is_empty());
        assert!(g.per_layer[1].0.is_empty(), "relu has no params");
        assert_eq!(g.input.shape(), &[3, 4]);
    }

    #[test]
    fn apply_changes_only_param_layers() {
        let mut net = EngineNet::mlp(&[2, 2], 9);
        let before = net.clone();
        let grads = vec![(
            Tensor::from_vec(&[2, 2], vec![1.0; 4]),
            Tensor::from_vec(&[2], vec![1.0; 2]),
        )];
        net.apply_range(0, &grads, 0.1);
        assert_ne!(net, before);
    }
}
