//! Adaptive per-epoch batch sizing.
//!
//! When the cluster grows, keeping the global batch fixed shrinks each
//! worker's share and starves the pipeline; when it shrinks, a fixed batch
//! overloads the survivors. The elastic controller therefore scales the
//! global batch with the worker count — linearly, then rounded to the
//! nearest power of two so token splitting by power-of-two weights stays
//! exact — and clamps the result to a bounded window around the operator's
//! baseline so statistical efficiency is never silently destroyed.

use serde::Serialize;

/// How the per-epoch global batch tracks the worker count.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default, Serialize)]
pub enum BatchPolicy {
    /// Keep the scenario's batch in every epoch (what a non-elastic system
    /// does).
    Fixed,
    /// Scale linearly with `n_workers / base_workers`, rounded to the nearest
    /// power of two (ties toward the smaller batch) and clamped to
    /// `[base/4, base×4]`.
    #[default]
    Proportional,
}

/// The per-epoch batch schedule.
#[derive(Clone, Copy, Debug, Serialize)]
pub struct BatchSchedule {
    /// The operator's baseline global batch.
    pub base_batch: u64,
    /// Worker count the baseline batch was chosen for.
    pub base_workers: usize,
    /// Scaling policy.
    pub policy: BatchPolicy,
}

impl BatchSchedule {
    /// A schedule rooted at the scenario's batch and initial cluster size.
    pub fn new(base_batch: u64, base_workers: usize, policy: BatchPolicy) -> Self {
        BatchSchedule {
            base_batch,
            base_workers,
            policy,
        }
    }

    /// The global batch for an epoch running on `n_workers` workers.
    pub fn batch_for(&self, n_workers: usize) -> u64 {
        match self.policy {
            BatchPolicy::Fixed => self.base_batch,
            BatchPolicy::Proportional => {
                if self.base_workers == 0 || n_workers == self.base_workers {
                    return self.base_batch;
                }
                let scaled = self.base_batch as f64 * n_workers as f64 / self.base_workers as f64;
                let lo = (self.base_batch / 4).max(1);
                let hi = self.base_batch.saturating_mul(4);
                round_pow2(scaled).clamp(lo, hi)
            }
        }
    }
}

/// Rounds a positive value to the nearest power of two, ties toward the
/// smaller power (so the schedule never inflates the batch on a knife-edge).
fn round_pow2(x: f64) -> u64 {
    if x <= 1.0 {
        return 1;
    }
    let hi = (x.ceil() as u64).next_power_of_two();
    let lo = hi / 2;
    if x - lo as f64 <= hi as f64 - x {
        lo.max(1)
    } else {
        hi
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_policy_never_moves() {
        let s = BatchSchedule::new(256, 8, BatchPolicy::Fixed);
        assert_eq!(s.batch_for(2), 256);
        assert_eq!(s.batch_for(64), 256);
    }

    #[test]
    fn proportional_scales_and_rounds_to_powers_of_two() {
        let s = BatchSchedule::new(256, 8, BatchPolicy::Proportional);
        assert_eq!(s.batch_for(8), 256);
        assert_eq!(s.batch_for(16), 512);
        assert_eq!(s.batch_for(4), 128);
        // 9/8 × 256 = 288 → nearest pow2 is 256.
        assert_eq!(s.batch_for(9), 256);
        // 12/8 × 256 = 384 → equidistant between 256 and 512 → ties low.
        assert_eq!(s.batch_for(12), 256);
        assert_eq!(s.batch_for(13), 512);
    }

    #[test]
    fn proportional_clamps_to_a_4x_window() {
        let s = BatchSchedule::new(256, 8, BatchPolicy::Proportional);
        assert_eq!(s.batch_for(1), 64, "floor at base/4");
        assert_eq!(s.batch_for(64), 1024, "ceiling at base×4");
    }

    #[test]
    fn round_pow2_edges() {
        assert_eq!(round_pow2(0.4), 1);
        assert_eq!(round_pow2(1.0), 1);
        assert_eq!(round_pow2(3.0), 2, "ties toward the smaller power");
        assert_eq!(round_pow2(3.1), 4);
        assert_eq!(round_pow2(1024.0), 1024);
    }

    #[test]
    fn every_schedule_output_is_a_power_of_two_times_clamp() {
        let s = BatchSchedule::new(256, 8, BatchPolicy::Proportional);
        for n in 1..=64 {
            let b = s.batch_for(n);
            assert!(b.is_power_of_two(), "batch_for({n}) = {b} not a power of 2");
            assert!((64..=1024).contains(&b));
        }
    }
}
