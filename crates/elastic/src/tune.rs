//! Incremental two-phase re-tuning across resize boundaries.
//!
//! At every resize the controller must re-run Fela's two-phase configuration
//! search (§IV-B) for the new worker count and batch. Running the full
//! search from scratch at each boundary wastes most of its profiling budget:
//! churny clusters revisit worker counts they have already seen, and a
//! profiled case's per-iteration time is a **pure function** of
//! `(worker set, batch, weights, subset)` — the simulator is deterministic.
//!
//! [`IncrementalTuner`] therefore memoises every profiled case across
//! epochs. It enumerates *exactly* the same candidates in *exactly* the same
//! order as [`Tuner::tune_with_jobs`] and calls *the same*
//! [`Tuner::profile`] on cache misses, so its [`TuningOutcome`] is
//! bit-identical to a fresh full search — the full search is kept as a
//! byte-identity oracle in the tests — while cache hits skip the profiling
//! entirely. [`RetuneStats`] reports how much simulated search time the
//! cache saved.

use std::collections::BTreeMap;

use fela_cluster::Scenario;
use fela_core::{FelaConfig, FelaRuntime};
use fela_tuning::{
    phase1_candidates, phase2_candidates, CaseResult, Tuner, TuningCase, TuningOutcome,
};
use serde::Serialize;

/// Everything a profiled case's time depends on, in hashable form. The
/// speed-factor bits matter: two epochs with equal worker counts but
/// different surviving stragglers must not share profiles.
type CacheKey = (usize, u64, Vec<u64>, Vec<u64>, Option<usize>);

/// Cost accounting for one incremental re-tune.
#[derive(Clone, Copy, PartialEq, Debug, Default, Serialize)]
pub struct RetuneStats {
    /// Cases profiled from scratch (cache misses).
    pub profiled: usize,
    /// Cases answered from the cross-epoch cache.
    pub reused: usize,
    /// Simulated seconds spent profiling the missed cases
    /// (`profile_iterations × per-iteration time`, summed over feasible
    /// misses). This is the search cost an elastic run pays at the boundary.
    pub search_secs: f64,
}

/// A [`Tuner`] with a cross-epoch profile cache.
#[derive(Clone, Debug)]
pub struct IncrementalTuner {
    /// The underlying tuner (its `profile_iterations` sets the per-case
    /// budget, as in the paper's 5-iteration probes).
    pub tuner: Tuner,
    cache: BTreeMap<CacheKey, Option<u64>>,
}

impl IncrementalTuner {
    /// A fresh tuner profiling `profile_iterations` per case.
    pub fn new(profile_iterations: u64) -> Self {
        IncrementalTuner {
            tuner: Tuner { profile_iterations },
            cache: BTreeMap::new(),
        }
    }

    /// Number of cached case profiles.
    pub fn cached_cases(&self) -> usize {
        self.cache.len()
    }

    fn key(scenario: &Scenario, weights: &[u64], subset: Option<usize>) -> CacheKey {
        (
            scenario.cluster.nodes,
            scenario.total_batch,
            scenario
                .cluster
                .speed_factors
                .iter()
                .map(|f| f.to_bits())
                .collect(),
            weights.to_vec(),
            subset,
        )
    }

    /// Profiles one case through the cache, recording hit/miss in `stats`.
    fn profile_cached(
        &mut self,
        scenario: &Scenario,
        config: &FelaConfig,
        weights: &[u64],
        subset: Option<usize>,
        stats: &mut RetuneStats,
    ) -> Option<f64> {
        let key = Self::key(scenario, weights, subset);
        if let Some(bits) = self.cache.get(&key) {
            stats.reused += 1;
            return bits.map(f64::from_bits);
        }
        let time = self.tuner.profile(scenario, config);
        stats.profiled += 1;
        if let Some(t) = time {
            stats.search_secs += t * self.tuner.profile_iterations as f64;
        }
        self.cache.insert(key, time.map(f64::to_bits));
        time
    }

    /// Runs the two-phase search for `scenario`, reusing cached profiles.
    ///
    /// The returned [`TuningOutcome`] is bit-identical to
    /// [`Tuner::tune_with_jobs`] on the same scenario — same candidate
    /// enumeration, same order, same [`Tuner::profile`] on misses, and
    /// determinism of the simulator makes a cached value equal to a fresh
    /// one.
    ///
    /// # Panics
    /// Panics if no Phase-1 case is feasible (the all-ones weight vector
    /// always is, matching the full tuner's invariant).
    pub fn tune(&mut self, scenario: &Scenario) -> (TuningOutcome, RetuneStats) {
        let mut stats = RetuneStats::default();
        let n = scenario.cluster.nodes;
        let m = {
            let runtime = FelaRuntime::new(FelaConfig::new(1));
            runtime.partition_for(scenario).len()
        };
        let phase1 = phase1_candidates(m, n);
        let mut cases: Vec<CaseResult> = phase1
            .into_iter()
            .enumerate()
            .map(|(id, weights)| {
                let config = FelaConfig::new(m).with_weights(weights.clone());
                let time = self.profile_cached(scenario, &config, &weights, None, &mut stats);
                CaseResult {
                    case: TuningCase {
                        id,
                        phase: 1,
                        weights,
                        subset: None,
                    },
                    per_iteration_secs: time,
                }
            })
            .collect();
        let phase1_best = cases
            .iter()
            .enumerate()
            .filter_map(|(i, c)| c.per_iteration_secs.map(|t| (i, t)))
            .min_by(|a, b| a.1.total_cmp(&b.1))
            .map(|(i, _)| i)
            .expect("at least one feasible Phase-1 case (all-ones always is)");
        let best_weights = cases[phase1_best].case.weights.clone();
        let base = cases.len();
        cases.extend(
            phase2_candidates(n)
                .into_iter()
                .enumerate()
                .map(|(i, subset)| {
                    let config = FelaConfig::new(m)
                        .with_weights(best_weights.clone())
                        .with_ctd(subset);
                    let time = self.profile_cached(
                        scenario,
                        &config,
                        &best_weights,
                        Some(subset),
                        &mut stats,
                    );
                    CaseResult {
                        case: TuningCase {
                            id: base + i,
                            phase: 2,
                            weights: best_weights.clone(),
                            subset: Some(subset),
                        },
                        per_iteration_secs: time,
                    }
                }),
        );
        let best = cases
            .iter()
            .enumerate()
            .filter_map(|(i, c)| c.per_iteration_secs.map(|t| (i, t)))
            .min_by(|a, b| a.1.total_cmp(&b.1))
            .map(|(i, _)| i)
            .expect("a best case exists");
        let best_case = &cases[best].case;
        let mut best_config = FelaConfig::new(m).with_weights(best_case.weights.clone());
        if let Some(s) = best_case.subset {
            if s < n {
                best_config = best_config.with_ctd(s);
            }
        }
        let outcome = TuningOutcome {
            cases,
            phase1_best,
            best,
            best_config,
            profile_iterations: self.tuner.profile_iterations,
        };
        (outcome, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fela_model::zoo;

    fn scenario(batch: u64) -> Scenario {
        Scenario::paper(zoo::googlenet(), batch).with_iterations(4)
    }

    fn assert_outcomes_bit_identical(a: &TuningOutcome, b: &TuningOutcome) {
        let ja = serde_json::to_string(a).expect("serializes");
        let jb = serde_json::to_string(b).expect("serializes");
        assert_eq!(ja, jb, "incremental and full search must agree to the bit");
    }

    #[test]
    fn cold_cache_matches_the_full_search_exactly() {
        let sc = scenario(256);
        let mut inc = IncrementalTuner::new(2);
        let (outcome, stats) = inc.tune(&sc);
        let oracle = Tuner {
            profile_iterations: 2,
        }
        .tune_with_jobs(&sc, 1);
        assert_outcomes_bit_identical(&outcome, &oracle);
        assert_eq!(stats.reused, 0);
        assert_eq!(stats.profiled, outcome.cases.len());
        assert!(stats.search_secs > 0.0);
    }

    #[test]
    fn warm_cache_reuses_and_still_matches_the_oracle() {
        let sc = scenario(256);
        let mut inc = IncrementalTuner::new(2);
        let (first, cold) = inc.tune(&sc);
        let (second, warm) = inc.tune(&sc);
        assert_outcomes_bit_identical(&first, &second);
        assert_eq!(warm.profiled, 0, "everything must come from the cache");
        assert_eq!(warm.reused, cold.profiled);
        assert!((warm.search_secs - 0.0).abs() < f64::EPSILON);
    }

    #[test]
    fn cache_distinguishes_batches() {
        let mut inc = IncrementalTuner::new(1);
        let (_, s1) = inc.tune(&scenario(256));
        let (out2, s2) = inc.tune(&scenario(512));
        assert!(s2.profiled > 0, "a new batch must profile fresh cases");
        assert!(s1.profiled > 0);
        let oracle = Tuner {
            profile_iterations: 1,
        }
        .tune_with_jobs(&scenario(512), 1);
        assert_outcomes_bit_identical(&out2, &oracle);
    }

    #[test]
    fn cache_distinguishes_speed_factors() {
        let mut inc = IncrementalTuner::new(1);
        let sc = scenario(256);
        let mut slow = scenario(256);
        slow.cluster.speed_factors[3] = 2.0;
        inc.tune(&sc);
        let (out, stats) = inc.tune(&slow);
        assert!(stats.profiled > 0, "different hardware must re-profile");
        let oracle = Tuner {
            profile_iterations: 1,
        }
        .tune_with_jobs(&slow, 1);
        assert_outcomes_bit_identical(&out, &oracle);
    }
}
