//! Deterministic transition-cost models for resize boundaries.
//!
//! Everything here is **simulated seconds** — a pure function of the plan —
//! never wall-clock, so elastic runs stay byte-reproducible for any `--jobs`
//! value (the workspace-wide `no-wallclock` lint applies to this crate too).
//!
//! Two models are charged at each boundary:
//!
//! * **Fela** pauses at the iteration boundary, re-bins and re-tunes
//!   incrementally, rebalances the control plane and syncs parameters to
//!   joiners. Its cost is the incremental search time actually spent
//!   ([`crate::RetuneStats::search_secs`]) plus a small control-plane
//!   rebind constant plus the joiners' parameter fetch.
//! * **Stop-and-restart** systems (DP/HP without elasticity support)
//!   checkpoint, tear the job down, relaunch at the new scale and restore —
//!   a fixed relaunch cost plus a full checkpoint save *and* restore on the
//!   lock-step critical path.

use crate::tune::RetuneStats;

/// Control-plane rebind at a Fela resize boundary: re-binning (cached
/// partition application), shard rebalancing and lease migration. A small
/// constant — the paper's thesis is that this path is cheap.
pub const REBIND_SECS: f64 = 2.0;

/// Fixed cost of tearing down and relaunching a non-elastic job: scheduler
/// round-trip, process start, framework re-initialisation.
pub const STOP_RESTART_SECS: f64 = 60.0;

/// Simulated seconds Fela spends at one resize boundary.
///
/// `joiners` is the number of workers joining at the boundary (0 for a pure
/// leave); each must fetch the full parameter set through the server's NIC,
/// so the fetch serialises at `joiners × param_bytes / bandwidth`.
pub fn fela_transition_secs(
    retune: &RetuneStats,
    joiners: usize,
    param_bytes: u64,
    link_bandwidth: f64,
) -> f64 {
    REBIND_SECS + retune.search_secs + joiners as f64 * param_bytes as f64 / link_bandwidth
}

/// Simulated seconds a stop-and-restart system spends at one resize
/// boundary: relaunch plus checkpoint save and restore of the full
/// parameter set (both transfers sit on the lock-step critical path).
pub fn stop_restart_transition_secs(param_bytes: u64, link_bandwidth: f64) -> f64 {
    STOP_RESTART_SECS + 2.0 * param_bytes as f64 / link_bandwidth
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fela_pure_leave_costs_only_rebind_and_search() {
        let retune = RetuneStats {
            profiled: 3,
            reused: 10,
            search_secs: 1.5,
        };
        let secs = fela_transition_secs(&retune, 0, 1 << 30, 1.0e9);
        assert!((secs - (REBIND_SECS + 1.5)).abs() < 1e-12);
    }

    #[test]
    fn fela_join_adds_param_sync_per_joiner() {
        let retune = RetuneStats::default();
        let one = fela_transition_secs(&retune, 1, 1_000_000_000, 1.0e9);
        let two = fela_transition_secs(&retune, 2, 1_000_000_000, 1.0e9);
        assert!((one - (REBIND_SECS + 1.0)).abs() < 1e-12);
        assert!((two - one - 1.0).abs() < 1e-12);
    }

    #[test]
    fn stop_restart_dwarfs_fela_for_cached_retunes() {
        let retune = RetuneStats {
            search_secs: 0.0,
            ..RetuneStats::default()
        };
        let fela = fela_transition_secs(&retune, 1, 500_000_000, 0.875e9);
        let restart = stop_restart_transition_secs(500_000_000, 0.875e9);
        assert!(restart > 10.0 * fela / 3.0, "restart must cost far more");
    }
}
