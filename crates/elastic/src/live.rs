//! Live elasticity: per-epoch live sessions over a real wire protocol.
//!
//! A live elastic run executes each planned epoch as its own live session:
//! a **fresh transport** is established per epoch, so joiners genuinely
//! perform the `Hello` handshake when their epoch begins (over TCP this is
//! a real connect + handshake), and leavers drain through the `End`-frame
//! epilogue of the epoch they depart — the wire-level counterpart of the
//! simulator's iteration-boundary drain.
//!
//! Conformance: every epoch's live report is byte-identical to the
//! simulator's for the same epoch (that is [`fela_live::run_virtual`]'s
//! contract), so the stitched elastic live report is byte-identical to
//! [`crate::ElasticRuntime::run_elastic`]'s — the sim-vs-live elastic
//! conformance tests pin this across both transports.

use std::io;

use fela_cluster::Scenario;
use fela_live::{run_virtual, transport_by_name, LiveOutcome};
use fela_metrics::RunReport;

use crate::controller::{ElasticOptions, ElasticPlan};
use crate::run::{stitch_reports, ElasticRuntime};

/// Result of a live elastic run.
pub struct ElasticLiveOutcome {
    /// The stitched report — byte-identical to the simulated elastic run.
    pub report: RunReport,
    /// The plan the run executed.
    pub plan: ElasticPlan,
    /// Per-epoch live outcomes (report, trace, final parameters).
    pub epochs: Vec<LiveOutcome>,
}

/// Runs `scenario` elastically in virtual-clock live mode, one live session
/// per epoch over transport `transport_name` (`"chan"` / `"tcp"`).
///
/// # Errors
/// Fails on an unknown transport, an invalid resize model, or any wire-level
/// error inside an epoch session.
pub fn run_live_elastic(
    options: ElasticOptions,
    scenario: &Scenario,
    transport_name: &str,
) -> io::Result<ElasticLiveOutcome> {
    let plan = ElasticRuntime::new(options)
        .plan(scenario)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e.to_string()))?;
    let mut epochs = Vec::with_capacity(plan.epochs.len());
    let mut reports = Vec::with_capacity(plan.epochs.len());
    for e in &plan.epochs {
        let mut transport = transport_by_name(transport_name).ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("unknown transport {transport_name:?}"),
            )
        })?;
        let outcome = run_virtual(&e.config, &e.scenario, transport.as_mut())?;
        reports.push(outcome.report.clone());
        epochs.push(outcome);
    }
    let report = stitch_reports(scenario, &plan, reports, "fela-elastic");
    Ok(ElasticLiveOutcome {
        report,
        plan,
        epochs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use fela_cluster::{ResizeAction, ResizeEvent, ResizeModel};
    use fela_model::zoo;

    fn scenario() -> Scenario {
        Scenario::paper(zoo::googlenet(), 256)
            .with_iterations(4)
            .with_resize(ResizeModel::Scripted(vec![
                ResizeEvent {
                    iteration: 2,
                    action: ResizeAction::Join(1),
                },
                ResizeEvent {
                    iteration: 3,
                    action: ResizeAction::Leave(vec![2]),
                },
            ]))
    }

    fn options() -> ElasticOptions {
        ElasticOptions {
            profile_iterations: 1,
            ..ElasticOptions::default()
        }
    }

    #[test]
    fn live_elastic_over_chan_matches_the_simulated_run_bytewise() {
        let sc = scenario();
        let live = run_live_elastic(options(), &sc, "chan").expect("live run");
        let sim = ElasticRuntime::new(options())
            .run_elastic(&sc)
            .expect("sim run");
        assert_eq!(
            serde_json::to_string(&live.report).expect("serializes"),
            serde_json::to_string(&sim.report).expect("serializes"),
            "live elastic must conform to the simulator bytewise"
        );
        assert_eq!(live.epochs.len(), 3);
        // Every epoch produced agreed-upon final parameters.
        for e in &live.epochs {
            assert!(!e.params.is_empty());
        }
    }

    #[test]
    fn unknown_transport_is_a_clean_error() {
        let err = run_live_elastic(options(), &scenario(), "carrier-pigeon")
            .err()
            .expect("must fail");
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
    }
}
