//! # fela-elastic — planned scale-up/scale-down mid-training
//!
//! Fela's token abstraction makes the worker set a *scheduling* concern, not
//! a *model* concern: the bin partition (§IV-A) is independent of the worker
//! count, and the two-phase configuration search (§IV-B) is cheap enough to
//! re-run online. This crate exploits both to let a training job change its
//! cluster size at BSP iteration boundaries without a stop-and-restart:
//!
//! * [`ResizeModel`](fela_cluster::ResizeModel) (in `fela-cluster`, so every
//!   layer can see it) describes *when* the cluster resizes — scripted
//!   events or seed-hashed churn, deterministic across `--jobs` exactly like
//!   the fault and straggler models.
//! * [`plan_epochs`] segments a run into constant-membership **epochs** with
//!   stable cross-epoch worker identities.
//! * [`IncrementalTuner`] re-runs the two-phase weight search at each
//!   boundary with a cross-epoch profile cache; its outcome is bit-identical
//!   to the full offline search (kept as an oracle and property-tested), so
//!   elasticity never changes *what* is chosen, only how fast.
//! * [`BatchSchedule`] adapts the global batch to the worker count.
//! * [`ElasticController`] resolves all of the above into an
//!   [`ElasticPlan`]; [`ElasticRuntime`] executes it through the ordinary
//!   `FelaRuntime` — resize-free scenarios delegate byte-exactly — and
//!   [`StopRestartRuntime`] gives the non-elastic comparison point.
//! * [`run_live_elastic`] executes the same plan as per-epoch live sessions:
//!   joiners hot-join via the `Hello` handshake of a fresh transport,
//!   leavers drain through the epoch's `End` epilogue.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod batch;
mod controller;
pub mod cost;
mod epoch;
mod live;
mod run;
mod tune;

pub use batch::{BatchPolicy, BatchSchedule};
pub use controller::{ElasticController, ElasticOptions, ElasticPlan, EpochPlan, EpochSummary};
pub use epoch::{cluster_for, plan_epochs, EpochSpec, WorkerSet};
pub use live::{run_live_elastic, ElasticLiveOutcome};
pub use run::{ElasticOutcome, ElasticRuntime, StopRestartRuntime, ELASTIC_COUNTERS};
pub use tune::{IncrementalTuner, RetuneStats};

/// Elastic planning failures.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ElasticError {
    /// The scenario's resize model failed validation.
    InvalidResizeModel(String),
    /// A leave named a rank outside the current membership.
    LeaveOutOfRange {
        /// The offending rank.
        rank: usize,
        /// Members at the boundary.
        n_workers: usize,
    },
    /// A leave would remove every worker.
    WouldEmptyCluster {
        /// Workers leaving.
        leaving: usize,
        /// Members at the boundary.
        n_workers: usize,
    },
    /// The scenario has zero iterations.
    EmptyRun,
}

impl std::fmt::Display for ElasticError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ElasticError::InvalidResizeModel(why) => write!(f, "invalid resize model: {why}"),
            ElasticError::LeaveOutOfRange { rank, n_workers } => write!(
                f,
                "leave names rank {rank} but the epoch has {n_workers} workers"
            ),
            ElasticError::WouldEmptyCluster { leaving, n_workers } => write!(
                f,
                "leave of {leaving} worker(s) would empty a {n_workers}-worker cluster"
            ),
            ElasticError::EmptyRun => write!(f, "cannot plan a zero-iteration run"),
        }
    }
}

impl std::error::Error for ElasticError {}
