//! The elastic controller: epochs → per-epoch configs, batches and costs.
//!
//! [`ElasticController::plan`] performs every boundary decision **ahead of
//! the run**, deterministically: it segments the scenario into epochs
//! ([`crate::plan_epochs`]), re-bins (the partition is independent of the
//! worker count, so re-binning is a cached application — the property tests
//! pin this), re-tunes incrementally ([`crate::IncrementalTuner`]), picks
//! each epoch's global batch ([`crate::BatchSchedule`]) and prices each
//! transition ([`crate::cost`]). The resulting [`ElasticPlan`] is everything
//! a runtime — simulated or live — needs to execute the elastic run.

use fela_cluster::Scenario;
use fela_core::{FelaConfig, FelaRuntime};
use fela_tuning::TuningOutcome;
use serde::Serialize;

use crate::batch::{BatchPolicy, BatchSchedule};
use crate::cost;
use crate::epoch::{cluster_for, plan_epochs, EpochSpec};
use crate::tune::{IncrementalTuner, RetuneStats};
use crate::ElasticError;

/// Controller knobs.
#[derive(Clone, Copy, Debug)]
pub struct ElasticOptions {
    /// Iterations profiled per tuning case (the paper uses 5).
    pub profile_iterations: u64,
    /// Per-epoch batch policy.
    pub batch_policy: BatchPolicy,
}

impl Default for ElasticOptions {
    fn default() -> Self {
        ElasticOptions {
            profile_iterations: 5,
            batch_policy: BatchPolicy::Proportional,
        }
    }
}

/// One epoch, fully resolved and ready to run.
#[derive(Clone, Debug)]
pub struct EpochPlan {
    /// Membership and iteration range.
    pub spec: EpochSpec,
    /// The resize-free sub-scenario the epoch executes (epoch-local
    /// iteration numbering; straggler and fault models carry over).
    pub scenario: Scenario,
    /// The tuned configuration for this epoch's shape.
    pub config: FelaConfig,
    /// The winning weight vector.
    pub weights: Vec<u64>,
    /// The winning CTD subset (`None` = full cluster).
    pub subset: Option<usize>,
    /// Cache accounting for this epoch's re-tune.
    pub retune: RetuneStats,
    /// Simulated seconds charged *before* the epoch starts (0 for epoch 0 —
    /// initial tuning is out-of-band, as in the fixed-membership runs).
    pub transition_secs: f64,
}

/// A complete elastic execution plan.
#[derive(Clone, Debug)]
pub struct ElasticPlan {
    /// Epochs in execution order; their iteration counts tile the run.
    pub epochs: Vec<EpochPlan>,
    /// Total parameter bytes of the (worker-count-independent) partition.
    pub param_bytes: u64,
    /// Sum of all transition costs.
    pub total_transition_secs: f64,
}

impl ElasticPlan {
    /// Number of resize boundaries taken (epochs − 1).
    pub fn resizes(&self) -> usize {
        self.epochs.len() - 1
    }

    /// Aggregate retune accounting across every epoch after the first.
    pub fn retune_totals(&self) -> RetuneStats {
        let mut total = RetuneStats::default();
        for e in self.epochs.iter().skip(1) {
            total.profiled += e.retune.profiled;
            total.reused += e.retune.reused;
            total.search_secs += e.retune.search_secs;
        }
        total
    }
}

/// Summary of one planned epoch, for artifacts and diagnostics.
#[derive(Clone, Debug, Serialize)]
pub struct EpochSummary {
    /// Epoch index.
    pub index: usize,
    /// First global iteration.
    pub start_iteration: u64,
    /// Iteration count.
    pub iterations: u64,
    /// Worker count.
    pub n_workers: usize,
    /// Global batch.
    pub total_batch: u64,
    /// Winning weights.
    pub weights: Vec<u64>,
    /// Winning CTD subset.
    pub subset: Option<usize>,
    /// Cases profiled at the boundary.
    pub retune_profiled: usize,
    /// Cases served from the cross-epoch cache.
    pub retune_reused: usize,
    /// Transition cost in simulated seconds.
    pub transition_secs: f64,
}

impl EpochPlan {
    /// A serialisable summary of the epoch.
    pub fn summary(&self) -> EpochSummary {
        EpochSummary {
            index: self.spec.index,
            start_iteration: self.spec.start_iteration,
            iterations: self.spec.iterations,
            n_workers: self.spec.n_workers(),
            total_batch: self.scenario.total_batch,
            weights: self.weights.clone(),
            subset: self.subset,
            retune_profiled: self.retune.profiled,
            retune_reused: self.retune.reused,
            transition_secs: self.transition_secs,
        }
    }
}

/// Plans elastic runs.
#[derive(Clone, Debug, Default)]
pub struct ElasticController {
    /// Controller knobs.
    pub options: ElasticOptions,
}

impl ElasticController {
    /// A controller with the given options.
    pub fn new(options: ElasticOptions) -> Self {
        ElasticController { options }
    }

    /// Builds the epoch sub-scenario for `spec` at `batch`.
    fn epoch_scenario(base: &Scenario, spec: &EpochSpec, batch: u64) -> Scenario {
        let mut sc = base.clone().with_iterations(spec.iterations);
        sc.total_batch = batch;
        sc.cluster = cluster_for(&base.cluster, &spec.workers);
        sc.resize = fela_cluster::ResizeModel::None;
        sc
    }

    /// Plans the whole elastic run for `scenario`.
    ///
    /// # Errors
    /// Propagates epoch-planning failures (invalid resize model, bad leave).
    pub fn plan(&self, scenario: &Scenario) -> Result<ElasticPlan, ElasticError> {
        let specs = plan_epochs(scenario)?;
        let schedule = BatchSchedule::new(
            scenario.total_batch,
            scenario.cluster.nodes,
            self.options.batch_policy,
        );
        let param_bytes = {
            let runtime = FelaRuntime::new(FelaConfig::new(1));
            runtime.partition_for(scenario).total_param_bytes()
        };
        let mut tuner = IncrementalTuner::new(self.options.profile_iterations);
        let mut epochs = Vec::with_capacity(specs.len());
        let mut total_transition_secs = 0.0;
        for spec in specs {
            let batch = schedule.batch_for(spec.n_workers());
            let epoch_scenario = Self::epoch_scenario(scenario, &spec, batch);
            let (outcome, retune) = tuner.tune(&epoch_scenario);
            let (weights, subset) = best_case(&outcome);
            let transition_secs = if spec.index == 0 {
                0.0
            } else {
                cost::fela_transition_secs(
                    &retune,
                    spec.joined_ranks().len(),
                    param_bytes,
                    scenario.cluster.network.link_bandwidth,
                )
            };
            total_transition_secs += transition_secs;
            epochs.push(EpochPlan {
                spec,
                scenario: epoch_scenario,
                config: outcome.best_config.clone(),
                weights,
                subset,
                retune,
                transition_secs,
            });
        }
        Ok(ElasticPlan {
            epochs,
            param_bytes,
            total_transition_secs,
        })
    }
}

fn best_case(outcome: &TuningOutcome) -> (Vec<u64>, Option<usize>) {
    let case = &outcome.cases[outcome.best].case;
    (case.weights.clone(), case.subset)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fela_cluster::{ResizeAction, ResizeEvent, ResizeModel};
    use fela_model::zoo;

    fn elastic_scenario() -> Scenario {
        Scenario::paper(zoo::googlenet(), 256)
            .with_iterations(6)
            .with_resize(ResizeModel::Scripted(vec![
                ResizeEvent {
                    iteration: 2,
                    action: ResizeAction::Join(2),
                },
                ResizeEvent {
                    iteration: 4,
                    action: ResizeAction::Leave(vec![9]),
                },
            ]))
    }

    fn controller() -> ElasticController {
        ElasticController::new(ElasticOptions {
            profile_iterations: 1,
            batch_policy: BatchPolicy::Proportional,
        })
    }

    #[test]
    fn plan_resolves_every_epoch() {
        let plan = controller().plan(&elastic_scenario()).expect("plans");
        assert_eq!(plan.resizes(), 2);
        assert_eq!(
            plan.epochs
                .iter()
                .map(|e| (e.spec.n_workers(), e.scenario.total_batch))
                .collect::<Vec<_>>(),
            // 10/8 × 256 = 320 → nearest pow2 = 256; 9/8 × 256 = 288 → 256.
            vec![(8, 256), (10, 256), (9, 256)]
        );
        for e in &plan.epochs {
            e.config.validate(e.spec.n_workers());
            assert_eq!(e.scenario.iterations, e.spec.iterations);
            assert!(e.scenario.resize.is_none());
        }
        assert!((plan.epochs[0].transition_secs - 0.0).abs() < 1e-12);
        assert!(plan.epochs[1].transition_secs > 0.0);
        assert!(plan.total_transition_secs > 0.0);
        assert!(plan.param_bytes > 0);
    }

    #[test]
    fn plans_are_deterministic() {
        let a = controller().plan(&elastic_scenario()).expect("plans");
        let b = controller().plan(&elastic_scenario()).expect("plans");
        let sa: Vec<_> = a.epochs.iter().map(EpochPlan::summary).collect();
        let sb: Vec<_> = b.epochs.iter().map(EpochPlan::summary).collect();
        assert_eq!(
            serde_json::to_string(&sa).expect("serializes"),
            serde_json::to_string(&sb).expect("serializes"),
        );
    }

    #[test]
    fn returning_to_a_seen_shape_reuses_the_cache() {
        // 8 → 9 → 8: the final epoch has the original shape minus one joiner;
        // since the survivor set is the original 8 workers at nominal speed,
        // every case is already cached.
        let sc = Scenario::paper(zoo::googlenet(), 256)
            .with_iterations(6)
            .with_resize(ResizeModel::Scripted(vec![
                ResizeEvent {
                    iteration: 2,
                    action: ResizeAction::Join(1),
                },
                ResizeEvent {
                    iteration: 4,
                    action: ResizeAction::Leave(vec![8]),
                },
            ]));
        let plan = controller().plan(&sc).expect("plans");
        let last = &plan.epochs[2];
        assert_eq!(last.retune.profiled, 0, "shape 8 was fully cached");
        assert!(last.retune.reused > 0);
        assert!(
            last.transition_secs < plan.epochs[1].transition_secs,
            "cached retune + no joiner must be cheaper than the join"
        );
    }
}
