//! Epoch planning: turning a [`ResizeModel`] into a segmented run.
//!
//! Resizes take effect only at BSP iteration boundaries — mid-iteration the
//! worker set is immutable, exactly as in the fixed-membership runtimes. An
//! elastic run is therefore a sequence of **epochs**: maximal iteration
//! ranges with a constant worker set, separated by the resize actions that
//! transform one set into the next.
//!
//! Workers carry **stable ids** across epochs. A worker that survives a
//! resize keeps its id (and its persistent speed factor); ranks are
//! re-compacted per epoch so every runtime still sees dense worker indices
//! `0..n`. Joiners receive fresh ids and nominal speed.

use fela_cluster::{ClusterSpec, ResizeAction, Scenario};
use fela_net::NetworkConfig;
use serde::Serialize;

use crate::ElasticError;

/// The worker membership of one epoch, with stable cross-epoch identities.
#[derive(Clone, PartialEq, Debug, Serialize)]
pub struct WorkerSet {
    /// Stable ids in rank order: `ids[rank]` is the global identity of the
    /// worker the epoch's runtime addresses as `rank`.
    pub ids: Vec<u64>,
    /// Per-rank persistent speed factors (parallel to `ids`).
    pub speed_factors: Vec<f64>,
    next_id: u64,
}

impl WorkerSet {
    /// The initial membership: ranks `0..n` with ids `0..n` and the
    /// scenario's speed factors.
    pub fn initial(speed_factors: &[f64]) -> Self {
        WorkerSet {
            ids: (0..speed_factors.len() as u64).collect(),
            speed_factors: speed_factors.to_vec(),
            next_id: speed_factors.len() as u64,
        }
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Whether the set is empty (never true for a valid epoch plan).
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Applies a resize action, producing the next epoch's membership.
    ///
    /// `Leave` ranks refer to the *current* epoch's ranks; survivors are
    /// compacted in rank order and keep their ids and speed factors. `Join`
    /// appends workers with fresh ids at nominal speed.
    ///
    /// # Errors
    /// Rejects leaves that name an out-of-range rank or would empty the
    /// cluster.
    pub fn apply(&self, action: &ResizeAction) -> Result<WorkerSet, ElasticError> {
        match action {
            ResizeAction::Join(k) => {
                let mut next = self.clone();
                for i in 0..*k as u64 {
                    next.ids.push(self.next_id + i);
                    next.speed_factors.push(1.0);
                }
                next.next_id += *k as u64;
                Ok(next)
            }
            ResizeAction::Leave(ranks) => {
                if let Some(&bad) = ranks.iter().find(|&&r| r >= self.len()) {
                    return Err(ElasticError::LeaveOutOfRange {
                        rank: bad,
                        n_workers: self.len(),
                    });
                }
                if ranks.len() >= self.len() {
                    return Err(ElasticError::WouldEmptyCluster {
                        leaving: ranks.len(),
                        n_workers: self.len(),
                    });
                }
                let mut next = WorkerSet {
                    ids: Vec::with_capacity(self.len() - ranks.len()),
                    speed_factors: Vec::with_capacity(self.len() - ranks.len()),
                    next_id: self.next_id,
                };
                for rank in 0..self.len() {
                    if !ranks.contains(&rank) {
                        next.ids.push(self.ids[rank]);
                        next.speed_factors.push(self.speed_factors[rank]);
                    }
                }
                Ok(next)
            }
        }
    }
}

/// One epoch of an elastic run: a constant-membership iteration range.
#[derive(Clone, Debug, Serialize)]
pub struct EpochSpec {
    /// Epoch index (0-based).
    pub index: usize,
    /// First global iteration of the epoch.
    pub start_iteration: u64,
    /// Number of iterations in the epoch (≥ 1).
    pub iterations: u64,
    /// Membership during the epoch.
    pub workers: WorkerSet,
    /// The resize action that created this epoch (`None` for epoch 0).
    pub resize_in: Option<ResizeAction>,
}

impl EpochSpec {
    /// Worker count during the epoch.
    pub fn n_workers(&self) -> usize {
        self.workers.len()
    }

    /// Ranks of workers that joined at this epoch's boundary (fresh ids).
    pub fn joined_ranks(&self) -> Vec<usize> {
        match &self.resize_in {
            Some(ResizeAction::Join(k)) => (self.workers.len() - k..self.workers.len()).collect(),
            _ => Vec::new(),
        }
    }
}

/// Splits `scenario` into epochs by walking its [`ResizeModel`] across every
/// iteration boundary.
///
/// Resize-free scenarios yield exactly one epoch covering the whole run.
/// Scripted events beyond the final iteration never fire (there is no
/// boundary left to take them at).
///
/// # Errors
/// Propagates [`ResizeModel::validate`](fela_cluster::ResizeModel::validate)
/// failures and structurally invalid leaves (out-of-range rank, emptying the
/// cluster).
pub fn plan_epochs(scenario: &Scenario) -> Result<Vec<EpochSpec>, ElasticError> {
    scenario
        .resize
        .validate()
        .map_err(ElasticError::InvalidResizeModel)?;
    if scenario.iterations == 0 {
        return Err(ElasticError::EmptyRun);
    }
    let mut epochs = Vec::new();
    let mut current = WorkerSet::initial(&scenario.cluster.speed_factors);
    let mut pending_action: Option<ResizeAction> = None;
    let mut start = 0u64;
    for it in 1..scenario.iterations {
        if let Some(action) = scenario.resize.action_for(it, current.len()) {
            let next = current.apply(&action)?;
            epochs.push(EpochSpec {
                index: epochs.len(),
                start_iteration: start,
                iterations: it - start,
                workers: current,
                resize_in: pending_action.take(),
            });
            current = next;
            pending_action = Some(action);
            start = it;
        }
    }
    epochs.push(EpochSpec {
        index: epochs.len(),
        start_iteration: start,
        iterations: scenario.iterations - start,
        workers: current,
        resize_in: pending_action,
    });
    Ok(epochs)
}

/// Builds the cluster hardware spec for one epoch: the base scenario's GPU
/// and network models, resized to the epoch's membership with the survivors'
/// speed factors.
pub fn cluster_for(base: &ClusterSpec, workers: &WorkerSet) -> ClusterSpec {
    let n = workers.len();
    ClusterSpec {
        nodes: n,
        compute: base.compute.clone(),
        memory: base.memory.clone(),
        network: NetworkConfig {
            nodes: n,
            ..base.network
        },
        speed_factors: workers.speed_factors.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fela_cluster::{ResizeEvent, ResizeModel};
    use fela_model::zoo;

    fn base(iterations: u64) -> Scenario {
        Scenario::paper(zoo::googlenet(), 256).with_iterations(iterations)
    }

    fn scripted(events: Vec<(u64, ResizeAction)>) -> ResizeModel {
        ResizeModel::Scripted(
            events
                .into_iter()
                .map(|(iteration, action)| ResizeEvent { iteration, action })
                .collect(),
        )
    }

    #[test]
    fn resize_free_scenario_is_one_epoch() {
        let epochs = plan_epochs(&base(10)).expect("plans");
        assert_eq!(epochs.len(), 1);
        assert_eq!(epochs[0].start_iteration, 0);
        assert_eq!(epochs[0].iterations, 10);
        assert_eq!(epochs[0].n_workers(), 8);
        assert!(epochs[0].resize_in.is_none());
        assert_eq!(epochs[0].workers.ids, (0..8).collect::<Vec<u64>>());
    }

    #[test]
    fn join_then_leave_segments_and_keeps_stable_ids() {
        let sc = base(10).with_resize(scripted(vec![
            (3, ResizeAction::Join(2)),
            (7, ResizeAction::Leave(vec![0, 4])),
        ]));
        let epochs = plan_epochs(&sc).expect("plans");
        assert_eq!(epochs.len(), 3);
        assert_eq!(
            epochs
                .iter()
                .map(|e| (e.start_iteration, e.iterations, e.n_workers()))
                .collect::<Vec<_>>(),
            vec![(0, 3, 8), (3, 4, 10), (7, 3, 8)]
        );
        // Joiners got fresh ids 8, 9.
        assert_eq!(epochs[1].workers.ids, (0..10).collect::<Vec<u64>>());
        assert_eq!(epochs[1].joined_ranks(), vec![8, 9]);
        // Leaving ranks 0 and 4 removes ids 0 and 4; survivors compact.
        assert_eq!(epochs[2].workers.ids, vec![1, 2, 3, 5, 6, 7, 8, 9]);
        assert_eq!(epochs[2].joined_ranks(), Vec::<usize>::new());
    }

    #[test]
    fn survivors_keep_speed_factors_joiners_get_nominal() {
        let mut sc = base(6).with_resize(scripted(vec![
            (2, ResizeAction::Join(1)),
            (4, ResizeAction::Leave(vec![1])),
        ]));
        sc.cluster.speed_factors = vec![1.0, 2.0, 1.5, 1.0, 1.0, 1.0, 1.0, 3.0];
        let epochs = plan_epochs(&sc).expect("plans");
        assert_eq!(epochs[1].workers.speed_factors.len(), 9);
        assert!((epochs[1].workers.speed_factors[8] - 1.0).abs() < 1e-12);
        // Rank 1 (factor 2.0) left; the slow worker at rank 7 (id 7) survives.
        let e2 = &epochs[2].workers;
        assert!(!e2.ids.contains(&1));
        let slow_rank = e2.ids.iter().position(|&id| id == 7).expect("id 7 stays");
        assert!((e2.speed_factors[slow_rank] - 3.0).abs() < 1e-12);
        let cluster = cluster_for(&sc.cluster, e2);
        cluster.validate();
        assert_eq!(cluster.nodes, 8);
        assert_eq!(cluster.network.nodes, 8);
    }

    #[test]
    fn event_at_final_boundary_never_fires() {
        // iteration == iterations has no boundary left; the run just ends.
        let sc = base(5).with_resize(scripted(vec![(5, ResizeAction::Join(1))]));
        let epochs = plan_epochs(&sc).expect("plans");
        assert_eq!(epochs.len(), 1);
    }

    #[test]
    fn leave_out_of_range_is_rejected() {
        let sc = base(5).with_resize(scripted(vec![(2, ResizeAction::Leave(vec![8]))]));
        assert!(matches!(
            plan_epochs(&sc),
            Err(ElasticError::LeaveOutOfRange { rank: 8, .. })
        ));
    }

    #[test]
    fn emptying_the_cluster_is_rejected() {
        let mut sc = base(5).with_resize(scripted(vec![(2, ResizeAction::Leave(vec![0, 1]))]));
        sc.cluster = ClusterSpec::k40c_cluster(2);
        assert!(matches!(
            plan_epochs(&sc),
            Err(ElasticError::WouldEmptyCluster {
                leaving: 2,
                n_workers: 2
            })
        ));
    }

    #[test]
    fn churn_walks_deterministically() {
        let sc = base(40).with_resize(ResizeModel::Churn {
            rate: 0.5,
            seed: 11,
        });
        let a = plan_epochs(&sc).expect("plans");
        let b = plan_epochs(&sc).expect("plans");
        assert!(a.len() > 1, "rate 0.5 over 40 iterations must resize");
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.workers, y.workers);
            assert_eq!(x.start_iteration, y.start_iteration);
        }
        // Epoch boundaries tile the run exactly.
        let total: u64 = a.iter().map(|e| e.iterations).sum();
        assert_eq!(total, 40);
    }
}
