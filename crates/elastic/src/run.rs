//! Executing elastic plans: the segmented runtime and its baselines.
//!
//! [`ElasticRuntime`] runs each epoch through the ordinary
//! [`FelaRuntime`] — the same code path every fixed-membership experiment
//! uses — and stitches the per-epoch reports into one [`RunReport`],
//! charging the planned transition costs between epochs. On a resize-free
//! scenario the plan has exactly one epoch and zero transitions, so the
//! returned report is **byte-identical** to a plain tuned Fela run (the
//! conformance tests pin this).
//!
//! [`StopRestartRuntime`] wraps any fixed-membership runtime (DP, HP) into
//! the same segmented shape, but charges the stop-and-restart transition
//! model — what a non-elastic system pays to change scale.

use std::collections::BTreeMap;

use fela_cluster::{ResizeAction, Scenario, TrainingRuntime};
use fela_core::FelaRuntime;
use fela_metrics::RunReport;
use fela_sim::Trace;

use crate::controller::{ElasticController, ElasticOptions, ElasticPlan};
use crate::cost;
use crate::epoch::{cluster_for, plan_epochs};
use crate::ElasticError;

/// Names of the gated elastic counters added to stitched reports. Only
/// present when at least one resize was taken, so resize-free reports stay
/// byte-identical to plain runs.
pub const ELASTIC_COUNTERS: [&str; 5] = [
    "elastic_resizes",
    "elastic_joins",
    "elastic_leaves",
    "elastic_retune_profiled",
    "elastic_retune_reused",
];

/// The elastic training runtime.
#[derive(Clone, Debug, Default)]
pub struct ElasticRuntime {
    /// Controller knobs (profiling budget, batch policy).
    pub options: ElasticOptions,
}

/// An executed elastic run: the stitched report plus the plan it followed.
#[derive(Clone, Debug)]
pub struct ElasticOutcome {
    /// The stitched run report.
    pub report: RunReport,
    /// The plan the run executed.
    pub plan: ElasticPlan,
}

impl ElasticRuntime {
    /// A runtime with the given options.
    pub fn new(options: ElasticOptions) -> Self {
        ElasticRuntime { options }
    }

    /// Plans the elastic run for `scenario` without executing it.
    ///
    /// # Errors
    /// Propagates planning failures.
    pub fn plan(&self, scenario: &Scenario) -> Result<ElasticPlan, ElasticError> {
        ElasticController::new(self.options).plan(scenario)
    }

    /// Runs `scenario` elastically, returning the stitched report and plan.
    ///
    /// # Errors
    /// Propagates planning failures.
    pub fn run_elastic(&self, scenario: &Scenario) -> Result<ElasticOutcome, ElasticError> {
        let plan = self.plan(scenario)?;
        let reports: Vec<RunReport> = plan
            .epochs
            .iter()
            .map(|e| FelaRuntime::new(e.config.clone()).run(&e.scenario))
            .collect();
        let report = stitch_reports(scenario, &plan, reports, "fela-elastic");
        Ok(ElasticOutcome { report, plan })
    }

    /// Like [`ElasticRuntime::run_elastic`] but also returning each epoch's
    /// simulator trace (for conformance checking and `fela check`).
    ///
    /// # Errors
    /// Propagates planning failures.
    pub fn run_elastic_traced(
        &self,
        scenario: &Scenario,
    ) -> Result<(ElasticOutcome, Vec<Trace>), ElasticError> {
        let plan = self.plan(scenario)?;
        let mut reports = Vec::with_capacity(plan.epochs.len());
        let mut traces = Vec::with_capacity(plan.epochs.len());
        for e in &plan.epochs {
            let (report, trace) = FelaRuntime::new(e.config.clone()).run_traced(&e.scenario);
            reports.push(report);
            traces.push(trace);
        }
        let report = stitch_reports(scenario, &plan, reports, "fela-elastic");
        Ok((ElasticOutcome { report, plan }, traces))
    }
}

impl TrainingRuntime for ElasticRuntime {
    fn name(&self) -> &'static str {
        "fela-elastic"
    }

    /// # Panics
    /// Panics if the scenario's resize model is invalid (the CLI validates
    /// resize specs at parse time, so this indicates a programming error).
    fn run(&self, scenario: &Scenario) -> RunReport {
        self.run_elastic(scenario)
            .unwrap_or_else(|e| panic!("elastic plan failed: {e}"))
            .report
    }
}

/// A stop-and-restart wrapper around a fixed-membership runtime.
///
/// Runs the same epochs as the elastic controller (same memberships, same
/// iteration split) with the scenario's **fixed** batch — conventional
/// systems do not adapt it — and charges
/// [`cost::stop_restart_transition_secs`] at every boundary.
pub struct StopRestartRuntime<R> {
    /// The wrapped runtime, run once per epoch.
    pub inner: R,
    /// Report label, e.g. `"dp-restart"`.
    pub label: &'static str,
}

impl<R: TrainingRuntime> StopRestartRuntime<R> {
    /// Wraps `inner` under `label`.
    pub fn new(inner: R, label: &'static str) -> Self {
        StopRestartRuntime { inner, label }
    }
}

impl<R: TrainingRuntime> TrainingRuntime for StopRestartRuntime<R> {
    fn name(&self) -> &'static str {
        self.label
    }

    /// # Panics
    /// Panics if the scenario's resize model is invalid.
    fn run(&self, scenario: &Scenario) -> RunReport {
        let specs = plan_epochs(scenario).unwrap_or_else(|e| panic!("elastic plan failed: {e}"));
        let param_bytes = {
            let runtime = FelaRuntime::new(fela_core::FelaConfig::new(1));
            runtime.partition_for(scenario).total_param_bytes()
        };
        // Resize-free: no segmentation, no transitions — delegate outright.
        if specs.len() == 1 {
            return self.inner.run(scenario);
        }
        let mut reports = Vec::with_capacity(specs.len());
        let mut total_transition = 0.0;
        let mut transitions = Vec::with_capacity(specs.len());
        for spec in &specs {
            let mut sc = scenario.clone().with_iterations(spec.iterations);
            sc.cluster = cluster_for(&scenario.cluster, &spec.workers);
            sc.resize = fela_cluster::ResizeModel::None;
            // Restarted systems re-shard the batch evenly across the new
            // worker count (DP requires exact divisibility); the batch is
            // rounded down to the nearest multiple, as launch scripts do.
            let n = spec.n_workers() as u64;
            sc.total_batch = (scenario.total_batch / n).max(1) * n;
            let transition = if spec.index == 0 {
                0.0
            } else {
                cost::stop_restart_transition_secs(
                    param_bytes,
                    scenario.cluster.network.link_bandwidth,
                )
            };
            total_transition += transition;
            transitions.push(transition);
            reports.push(self.inner.run(&sc));
        }
        let worker_sets: Vec<&crate::WorkerSet> = specs.iter().map(|s| &s.workers).collect();
        let mut report = merge_epoch_reports(scenario, &worker_sets, reports, self.label);
        report.total_time_secs += total_transition;
        if specs.len() > 1 {
            if let Some(first) = transitions.get(1) {
                // Surface the per-boundary cost (identical at every boundary)
                // in whole milliseconds for table output.
                report.bump(
                    "elastic_transition_millis",
                    (first * 1e3).round() as u64 * (specs.len() as u64 - 1),
                );
            }
            report.bump("elastic_resizes", specs.len() as u64 - 1);
        }
        report
    }
}

/// Stitches per-epoch reports into one, charging the plan's transitions and
/// adding the gated elastic counters.
pub(crate) fn stitch_reports(
    base: &Scenario,
    plan: &ElasticPlan,
    reports: Vec<RunReport>,
    label: &str,
) -> RunReport {
    let worker_sets: Vec<&crate::WorkerSet> = plan.epochs.iter().map(|e| &e.spec.workers).collect();
    // Single-epoch plans are resize-free runs: return the inner report
    // untouched so delegation is byte-exact (runtime name and all).
    if plan.epochs.len() == 1 {
        let mut reports = reports;
        return reports.remove(0);
    }
    let mut report = merge_epoch_reports(base, &worker_sets, reports, label);
    report.total_time_secs += plan.total_transition_secs;
    let (mut joins, mut leaves) = (0u64, 0u64);
    for e in plan.epochs.iter().skip(1) {
        match e.spec.resize_in {
            Some(ResizeAction::Join(_)) => joins += 1,
            Some(ResizeAction::Leave(_)) => leaves += 1,
            None => {}
        }
    }
    let retune = plan.retune_totals();
    report.bump("elastic_resizes", plan.resizes() as u64);
    report.bump("elastic_joins", joins);
    report.bump("elastic_leaves", leaves);
    report.bump("elastic_retune_profiled", retune.profiled as u64);
    report.bump("elastic_retune_reused", retune.reused as u64);
    report
}

/// Merges per-epoch reports: concatenated iteration times, summed bytes and
/// counters, busy time accumulated by **stable worker id** (so a worker that
/// changes rank across epochs keeps one busy-time entry).
fn merge_epoch_reports(
    base: &Scenario,
    worker_sets: &[&crate::WorkerSet],
    reports: Vec<RunReport>,
    label: &str,
) -> RunReport {
    let mut out = RunReport::new(label.to_owned(), base.model.name.clone(), base.total_batch);
    let mut busy: BTreeMap<u64, f64> = BTreeMap::new();
    let mut samples = 0u64;
    for (set, r) in worker_sets.iter().zip(reports) {
        out.iterations += r.iterations;
        out.total_time_secs += r.total_time_secs;
        out.per_iteration_secs.extend(r.per_iteration_secs);
        out.network_bytes += r.network_bytes;
        samples += r.total_batch * r.iterations;
        for (rank, secs) in r.worker_busy_secs.iter().enumerate() {
            *busy.entry(set.ids[rank]).or_insert(0.0) += secs;
        }
        for (k, v) in r.counters {
            *out.counters.entry(k).or_insert(0) += v;
        }
    }
    out.worker_busy_secs = busy.into_values().collect();
    out.bump("elastic_samples", samples);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use fela_baselines::DpRuntime;
    use fela_cluster::{ResizeEvent, ResizeModel};
    use fela_model::zoo;
    use fela_tuning::Tuner;

    fn options() -> ElasticOptions {
        ElasticOptions {
            profile_iterations: 1,
            ..ElasticOptions::default()
        }
    }

    fn scripted() -> ResizeModel {
        ResizeModel::Scripted(vec![
            ResizeEvent {
                iteration: 2,
                action: ResizeAction::Join(2),
            },
            ResizeEvent {
                iteration: 4,
                action: ResizeAction::Leave(vec![0]),
            },
        ])
    }

    #[test]
    fn resize_free_run_is_byte_identical_to_plain_tuned_fela() {
        let sc = Scenario::paper(zoo::googlenet(), 256).with_iterations(3);
        let tuner = Tuner {
            profile_iterations: 1,
        };
        let plain = FelaRuntime::new(tuner.tune_with_jobs(&sc, 1).best_config).run(&sc);
        let elastic = ElasticRuntime::new(options()).run(&sc);
        assert_eq!(
            serde_json::to_string(&plain).expect("serializes"),
            serde_json::to_string(&elastic).expect("serializes"),
            "resize-free elastic runs must delegate byte-exactly"
        );
        assert_eq!(elastic.counter("elastic_resizes"), 0);
        assert!(!elastic.counters.contains_key("elastic_samples"));
    }

    #[test]
    fn resized_run_stitches_iterations_and_counts_membership_changes() {
        let sc = Scenario::paper(zoo::googlenet(), 256)
            .with_iterations(6)
            .with_resize(scripted());
        let rt = ElasticRuntime::new(options());
        let outcome = rt.run_elastic(&sc).expect("runs");
        let r = &outcome.report;
        assert_eq!(r.runtime, "fela-elastic");
        assert_eq!(r.iterations, 6);
        assert_eq!(r.per_iteration_secs.len(), 6);
        assert_eq!(r.counter("elastic_resizes"), 2);
        assert_eq!(r.counter("elastic_joins"), 1);
        assert_eq!(r.counter("elastic_leaves"), 1);
        // 11 distinct workers ever participated: 8 initial + 2 joiners, one
        // left (still counted — it did work in epochs 0 and 1).
        assert_eq!(r.worker_busy_secs.len(), 10);
        let epoch_time: f64 = outcome.plan.epochs.iter().map(|e| e.transition_secs).sum();
        assert!(r.total_time_secs > epoch_time, "compute time dominates");
    }

    #[test]
    fn elastic_run_is_deterministic() {
        let sc = Scenario::paper(zoo::googlenet(), 128)
            .with_iterations(6)
            .with_resize(ResizeModel::Churn { rate: 0.5, seed: 7 });
        let rt = ElasticRuntime::new(options());
        let a = rt.run(&sc);
        let b = rt.run(&sc);
        assert_eq!(
            serde_json::to_string(&a).expect("serializes"),
            serde_json::to_string(&b).expect("serializes"),
        );
    }

    #[test]
    fn stop_restart_baseline_charges_more_per_boundary() {
        let sc = Scenario::paper(zoo::googlenet(), 256)
            .with_iterations(6)
            .with_resize(scripted());
        let elastic = ElasticRuntime::new(options()).run(&sc);
        let restart = StopRestartRuntime::new(DpRuntime::default(), "dp-restart").run(&sc);
        assert_eq!(restart.iterations, 6);
        assert_eq!(restart.counter("elastic_resizes"), 2);
        // Each boundary costs ≥ STOP_RESTART_SECS for the baseline; Fela's
        // transition total must be far below the baseline's.
        let fela_overhead = elastic.counter("elastic_resizes") as f64 * cost::STOP_RESTART_SECS;
        assert!(restart.total_time_secs > fela_overhead);
        let millis = restart.counter("elastic_transition_millis");
        assert!(millis as f64 / 1e3 >= 2.0 * cost::STOP_RESTART_SECS);
    }

    #[test]
    fn traced_run_yields_one_trace_per_epoch() {
        let sc = Scenario::paper(zoo::googlenet(), 256)
            .with_iterations(6)
            .with_resize(scripted());
        let (outcome, traces) = ElasticRuntime::new(options())
            .run_elastic_traced(&sc)
            .expect("runs");
        assert_eq!(traces.len(), outcome.plan.epochs.len());
        assert_eq!(traces.len(), 3);
    }
}
