//! Structured per-run artifacts.
//!
//! Every harness run produces one [`RunRecord`] — the scenario coordinates,
//! a hash of the full configuration, the seed override, the complete
//! [`RunReport`] and an optional pointer to a saved [`fela_sim::Trace`] file.
//! Records are written as JSON Lines under the results directory, one file
//! per experiment, so downstream tooling can join ASCII tables with raw data.
//!
//! Records deliberately contain **no wall-clock fields**: everything in a
//! record is a deterministic function of the sweep spec, which is what makes
//! parallel and sequential sweeps byte-identical. Wall-clock timing is
//! reported separately on stderr.

use std::io::Write as _;
use std::path::{Path, PathBuf};

use fela_cluster::{FaultModel, ResizeModel, Scenario, StragglerModel};
use fela_metrics::RunReport;
use serde::{Deserialize, Serialize};

/// One experiment run, fully described.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RunRecord {
    /// Experiment (sweep) name, e.g. `"fig8"`.
    pub experiment: String,
    /// Runtime label, e.g. `"fela"` or `"dp"`.
    pub runtime: String,
    /// Scenario label within the sweep, e.g. `"vgg19/b256"`.
    pub scenario: String,
    /// FNV-1a hash of the full serialized scenario (model, batch, iterations,
    /// cluster, straggler) — two records with equal hashes ran equal configs.
    pub config_hash: u64,
    /// Seed override applied to the scenario's straggler and fault models,
    /// if any.
    pub seed: Option<u64>,
    /// Model name, e.g. `"VGG19"`.
    pub model: String,
    /// Total batch size.
    pub total_batch: u64,
    /// Iteration count.
    pub iterations: u64,
    /// Cluster node count.
    pub nodes: usize,
    /// Straggler scenario the run executed under.
    pub straggler: StragglerModel,
    /// Fault scenario the run executed under. Skipped when `None` so
    /// fault-free artifacts stay byte-identical to pre-fault-injection ones.
    #[serde(default, skip_serializing_if = "FaultModel::is_none")]
    pub fault: FaultModel,
    /// Resize scenario the run executed under. Skipped when `None` so
    /// resize-free artifacts stay byte-identical to pre-elasticity ones.
    #[serde(default, skip_serializing_if = "ResizeModel::is_none")]
    pub resize: ResizeModel,
    /// Simulated makespan in seconds (copy of `report.total_time_secs`).
    pub sim_time_secs: f64,
    /// The runtime's full report.
    pub report: RunReport,
    /// Path to a saved simulator trace, when one was captured.
    pub trace_path: Option<String>,
}

impl RunRecord {
    /// Builds a record from a finished run.
    pub fn new(
        experiment: &str,
        runtime: &str,
        scenario_label: &str,
        scenario: &Scenario,
        seed: Option<u64>,
        report: RunReport,
    ) -> Self {
        RunRecord {
            experiment: experiment.to_owned(),
            runtime: runtime.to_owned(),
            scenario: scenario_label.to_owned(),
            config_hash: config_hash(scenario),
            seed,
            model: scenario.model.name.clone(),
            total_batch: scenario.total_batch,
            iterations: scenario.iterations,
            nodes: scenario.cluster.nodes,
            straggler: scenario.straggler,
            fault: scenario.fault,
            resize: scenario.resize.clone(),
            sim_time_secs: report.total_time_secs,
            report,
            trace_path: None,
        }
    }
}

/// FNV-1a hash of the scenario's serialized form.
///
/// The hash covers everything that affects a run's outcome — model
/// architecture, batch, iterations, cluster spec (via its serializable
/// summary), straggler model and fault model — so equal hashes mean
/// comparable runs.
pub fn config_hash(scenario: &Scenario) -> u64 {
    // ClusterSpec does not implement Serialize (its compute/memory models are
    // closed types); hash its observable configuration instead.
    let cluster_summary = (
        scenario.cluster.nodes as u64,
        scenario.cluster.network.nodes as u64,
        &scenario.cluster.speed_factors,
    );
    let key = (
        &scenario.model,
        scenario.total_batch,
        scenario.iterations,
        cluster_summary,
        scenario.straggler,
    );
    // Fault- and resize-free hashes must stay byte-identical to
    // pre-injection artifacts, so `FaultModel::None` / `ResizeModel::None`
    // contribute nothing to the key.
    let json = match (scenario.fault.is_none(), scenario.resize.is_none()) {
        (true, true) => serde_json::to_string(&key),
        (false, true) => serde_json::to_string(&(key, scenario.fault)),
        (true, false) => serde_json::to_string(&(key, (), &scenario.resize)),
        (false, false) => serde_json::to_string(&(key, scenario.fault, &scenario.resize)),
    }
    .expect("scenario serializes");
    fnv1a(json.as_bytes())
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// The artifact directory: `$FELA_RESULTS_DIR`, defaulting to `results/`.
pub fn results_dir() -> PathBuf {
    std::env::var_os("FELA_RESULTS_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("results"))
}

/// Serializes records to JSON Lines (one compact JSON object per line).
pub fn to_jsonl(records: &[RunRecord]) -> String {
    let mut out = String::new();
    for r in records {
        out.push_str(&serde_json::to_string(r).expect("record serializes"));
        out.push('\n');
    }
    out
}

/// Writes `records` to `<results_dir>/<experiment>.jsonl`, returning the path.
///
/// # Errors
/// Propagates filesystem errors (directory creation, write).
pub fn write_jsonl(experiment: &str, records: &[RunRecord]) -> std::io::Result<PathBuf> {
    let dir = results_dir();
    write_jsonl_to(&dir, experiment, records)
}

/// Like [`write_jsonl`] but with an explicit directory.
///
/// # Errors
/// Propagates filesystem errors (directory creation, write).
pub fn write_jsonl_to(
    dir: &Path,
    experiment: &str,
    records: &[RunRecord],
) -> std::io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("{experiment}.jsonl"));
    let mut file = std::fs::File::create(&path)?;
    file.write_all(to_jsonl(records).as_bytes())?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use fela_cluster::FaultKind;
    use fela_model::zoo;
    use fela_sim::SimDuration;

    use super::*;

    fn scenario() -> Scenario {
        Scenario::paper(zoo::vgg19(), 128).with_iterations(3)
    }

    fn record_for(scenario: &Scenario) -> RunRecord {
        let report = RunReport::new("fela", &scenario.model.name, scenario.total_batch);
        RunRecord::new("exp", "fela", "vgg19/b128", scenario, None, report)
    }

    #[test]
    fn fault_free_records_serialize_without_a_fault_key() {
        // Byte-identity with pre-fault-injection artifacts: the `fault` field
        // must vanish from the JSON when the scenario is fault-free.
        let line = to_jsonl(&[record_for(&scenario())]);
        assert!(!line.contains("\"fault\""), "unexpected fault key: {line}");
        assert!(line.contains("\"straggler\""));
    }

    #[test]
    fn faulted_records_serialize_and_round_trip_the_fault() {
        let sc = scenario().with_fault(FaultModel::Scripted {
            worker: 2,
            iteration: 1,
            kind: FaultKind::CrashRestart {
                down: SimDuration::from_secs(5),
            },
        });
        let line = to_jsonl(&[record_for(&sc)]);
        assert!(line.contains("\"fault\""), "missing fault key: {line}");
        let parsed: RunRecord =
            serde_json::from_str(line.trim_end()).expect("faulted record parses");
        assert_eq!(parsed.fault, sc.fault);
    }

    #[test]
    fn fault_free_records_parse_even_without_a_fault_key() {
        // Old artifacts (written before fault injection existed) have no
        // `fault` key; `#[serde(default)]` must fill in `FaultModel::None`.
        let line = to_jsonl(&[record_for(&scenario())]);
        let parsed: RunRecord =
            serde_json::from_str(line.trim_end()).expect("fault-free record parses");
        assert_eq!(parsed.fault, FaultModel::None);
    }

    #[test]
    fn resize_free_records_serialize_without_a_resize_key() {
        // Byte-identity with pre-elasticity artifacts: the `resize` field must
        // vanish from the JSON when the scenario has a fixed worker set.
        let line = to_jsonl(&[record_for(&scenario())]);
        assert!(
            !line.contains("\"resize\""),
            "unexpected resize key: {line}"
        );
    }

    #[test]
    fn resized_records_serialize_and_round_trip_the_resize_model() {
        use fela_cluster::{ResizeAction, ResizeEvent, ResizeModel};
        let sc = scenario().with_resize(ResizeModel::Scripted(vec![ResizeEvent {
            iteration: 2,
            action: ResizeAction::Join(1),
        }]));
        let line = to_jsonl(&[record_for(&sc)]);
        assert!(line.contains("\"resize\""), "missing resize key: {line}");
        let parsed: RunRecord =
            serde_json::from_str(line.trim_end()).expect("resized record parses");
        assert_eq!(parsed.resize, sc.resize);
    }

    #[test]
    fn config_hash_ignores_resize_none_but_not_real_resizes() {
        use fela_cluster::ResizeModel;
        let plain = scenario();
        let churn = scenario().with_resize(ResizeModel::Churn {
            rate: 0.1,
            seed: 42,
        });
        // ResizeModel::None must contribute nothing (hash equality with any
        // pre-elasticity artifact), while a real resize model must change the
        // hash so elastic and fixed-membership runs are never conflated.
        assert_eq!(config_hash(&plain), config_hash(&scenario()));
        assert_ne!(config_hash(&plain), config_hash(&churn));
        assert_ne!(
            config_hash(&churn),
            config_hash(&scenario().with_resize(ResizeModel::Churn {
                rate: 0.1,
                seed: 43,
            }))
        );
    }

    #[test]
    fn config_hash_ignores_fault_none_but_not_real_faults() {
        let plain = scenario();
        let chaos = scenario().with_fault(FaultModel::Chaos {
            p: 0.1,
            down: SimDuration::from_secs(4),
            seed: 42,
        });
        // FaultModel::None must contribute nothing (hash equality with any
        // pre-fault-injection artifact), while a real fault model must change
        // the hash so faulted and fault-free runs are never conflated.
        assert_eq!(config_hash(&plain), config_hash(&scenario()));
        assert_ne!(config_hash(&plain), config_hash(&chaos));
        assert_ne!(
            config_hash(&chaos),
            config_hash(&scenario().with_fault(FaultModel::Chaos {
                p: 0.1,
                down: SimDuration::from_secs(4),
                seed: 43,
            }))
        );
    }
}
