//! Structured per-run artifacts.
//!
//! Every harness run produces one [`RunRecord`] — the scenario coordinates,
//! a hash of the full configuration, the seed override, the complete
//! [`RunReport`] and an optional pointer to a saved [`fela_sim::Trace`] file.
//! Records are written as JSON Lines under the results directory, one file
//! per experiment, so downstream tooling can join ASCII tables with raw data.
//!
//! Records deliberately contain **no wall-clock fields**: everything in a
//! record is a deterministic function of the sweep spec, which is what makes
//! parallel and sequential sweeps byte-identical. Wall-clock timing is
//! reported separately on stderr.

use std::io::Write as _;
use std::path::{Path, PathBuf};

use fela_cluster::{Scenario, StragglerModel};
use fela_metrics::RunReport;
use serde::{Deserialize, Serialize};

/// One experiment run, fully described.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RunRecord {
    /// Experiment (sweep) name, e.g. `"fig8"`.
    pub experiment: String,
    /// Runtime label, e.g. `"fela"` or `"dp"`.
    pub runtime: String,
    /// Scenario label within the sweep, e.g. `"vgg19/b256"`.
    pub scenario: String,
    /// FNV-1a hash of the full serialized scenario (model, batch, iterations,
    /// cluster, straggler) — two records with equal hashes ran equal configs.
    pub config_hash: u64,
    /// Seed override applied to the scenario's straggler model, if any.
    pub seed: Option<u64>,
    /// Model name, e.g. `"VGG19"`.
    pub model: String,
    /// Total batch size.
    pub total_batch: u64,
    /// Iteration count.
    pub iterations: u64,
    /// Cluster node count.
    pub nodes: usize,
    /// Straggler scenario the run executed under.
    pub straggler: StragglerModel,
    /// Simulated makespan in seconds (copy of `report.total_time_secs`).
    pub sim_time_secs: f64,
    /// The runtime's full report.
    pub report: RunReport,
    /// Path to a saved simulator trace, when one was captured.
    pub trace_path: Option<String>,
}

impl RunRecord {
    /// Builds a record from a finished run.
    pub fn new(
        experiment: &str,
        runtime: &str,
        scenario_label: &str,
        scenario: &Scenario,
        seed: Option<u64>,
        report: RunReport,
    ) -> Self {
        RunRecord {
            experiment: experiment.to_owned(),
            runtime: runtime.to_owned(),
            scenario: scenario_label.to_owned(),
            config_hash: config_hash(scenario),
            seed,
            model: scenario.model.name.clone(),
            total_batch: scenario.total_batch,
            iterations: scenario.iterations,
            nodes: scenario.cluster.nodes,
            straggler: scenario.straggler,
            sim_time_secs: report.total_time_secs,
            report,
            trace_path: None,
        }
    }
}

/// FNV-1a hash of the scenario's serialized form.
///
/// The hash covers everything that affects a run's outcome — model
/// architecture, batch, iterations, cluster spec (via its serializable
/// summary) and straggler model — so equal hashes mean comparable runs.
pub fn config_hash(scenario: &Scenario) -> u64 {
    // ClusterSpec does not implement Serialize (its compute/memory models are
    // closed types); hash its observable configuration instead.
    let cluster_summary = (
        scenario.cluster.nodes as u64,
        scenario.cluster.network.nodes as u64,
        &scenario.cluster.speed_factors,
    );
    let key = (
        &scenario.model,
        scenario.total_batch,
        scenario.iterations,
        cluster_summary,
        scenario.straggler,
    );
    let json = serde_json::to_string(&key).expect("scenario serializes");
    fnv1a(json.as_bytes())
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// The artifact directory: `$FELA_RESULTS_DIR`, defaulting to `results/`.
pub fn results_dir() -> PathBuf {
    std::env::var_os("FELA_RESULTS_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("results"))
}

/// Serializes records to JSON Lines (one compact JSON object per line).
pub fn to_jsonl(records: &[RunRecord]) -> String {
    let mut out = String::new();
    for r in records {
        out.push_str(&serde_json::to_string(r).expect("record serializes"));
        out.push('\n');
    }
    out
}

/// Writes `records` to `<results_dir>/<experiment>.jsonl`, returning the path.
///
/// # Errors
/// Propagates filesystem errors (directory creation, write).
pub fn write_jsonl(experiment: &str, records: &[RunRecord]) -> std::io::Result<PathBuf> {
    let dir = results_dir();
    write_jsonl_to(&dir, experiment, records)
}

/// Like [`write_jsonl`] but with an explicit directory.
///
/// # Errors
/// Propagates filesystem errors (directory creation, write).
pub fn write_jsonl_to(
    dir: &Path,
    experiment: &str,
    records: &[RunRecord],
) -> std::io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("{experiment}.jsonl"));
    let mut file = std::fs::File::create(&path)?;
    file.write_all(to_jsonl(records).as_bytes())?;
    Ok(path)
}
