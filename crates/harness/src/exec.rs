//! Deterministic parallel execution of independent jobs.
//!
//! The executor distributes `n` index-addressed jobs over a pool of scoped
//! threads pulling from a shared atomic counter, then slots every result back
//! into its job's index. The output vector is therefore a pure function of the
//! job closure — identical for `--jobs 1` and `--jobs 32` regardless of thread
//! scheduling — which is what lets sweep output be byte-identical across
//! parallelism levels.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Runs `f(0..n)` across `jobs` worker threads and returns the results in
/// index order.
///
/// With `jobs <= 1` (or fewer than two items) the jobs run inline on the
/// calling thread, in order; no threads are spawned. The parallel path
/// guarantees the same output ordering.
///
/// # Panics
/// Propagates a panic from any job.
pub fn run_indexed<T, F>(n: usize, jobs: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let jobs = jobs.clamp(1, n.max(1));
    if jobs == 1 {
        return (0..n).map(f).collect();
    }

    let next = AtomicUsize::new(0);
    let mut slots: Vec<Option<T>> = (0..n).map(|_| None).collect();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..jobs)
            .map(|_| {
                scope.spawn(|| {
                    let mut produced = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        produced.push((i, f(i)));
                    }
                    produced
                })
            })
            .collect();
        for handle in handles {
            for (i, value) in handle.join().expect("sweep worker thread panicked") {
                slots[i] = Some(value);
            }
        }
    });
    slots
        .into_iter()
        .map(|s| s.expect("every job index produces exactly one result"))
        .collect()
}

/// The default worker count: `FELA_JOBS` if set, else the machine's available
/// parallelism, else 1.
pub fn default_jobs() -> usize {
    if let Ok(v) = std::env::var("FELA_JOBS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            return n.max(1);
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_and_parallel_agree() {
        let f = |i: usize| i * i + 1;
        let seq = run_indexed(37, 1, f);
        for jobs in [2, 3, 8, 64] {
            assert_eq!(run_indexed(37, jobs, f), seq, "jobs={jobs}");
        }
    }

    #[test]
    fn empty_and_single() {
        assert_eq!(run_indexed(0, 4, |i| i), Vec::<usize>::new());
        assert_eq!(run_indexed(1, 4, |i| i + 10), vec![10]);
    }

    #[test]
    fn order_is_index_order_not_completion_order() {
        // Make early indices slow so completion order inverts index order.
        let out = run_indexed(8, 4, |i| {
            if i < 4 {
                std::thread::sleep(std::time::Duration::from_millis(20 - 4 * i as u64));
            }
            i
        });
        assert_eq!(out, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn jobs_are_clamped() {
        assert_eq!(run_indexed(3, 100, |i| i), vec![0, 1, 2]);
        assert_eq!(run_indexed(3, 0, |i| i), vec![0, 1, 2]);
    }
}
