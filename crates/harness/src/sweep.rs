//! Declarative sweeps: a runtime factory axis × a scenario axis.
//!
//! A [`SweepSpec`] names the experiment, lists labeled runtime factories and
//! labeled scenarios, and expands into the full cross product of independent
//! [`RunJob`]s. [`SweepSpec::run`] executes the jobs — in parallel when asked —
//! and returns a [`SweepResult`] whose record stream is always in expansion
//! order, so output is byte-identical for any `--jobs` value.
//!
//! Runtimes are constructed *per job* from factories rather than shared, so a
//! factory may do per-scenario work (e.g. run the tuner for the job's batch
//! size) inside the parallel region.

use std::sync::Arc;
use std::time::{Duration, Instant};

use fela_cluster::{Scenario, TrainingRuntime};
use fela_metrics::RunReport;

use crate::exec;
use crate::record::{self, RunRecord};

/// Builds the runtime for one job, given the job's (seed-adjusted) scenario.
pub type RuntimeFactory = Arc<dyn Fn(&Scenario) -> Box<dyn TrainingRuntime> + Send + Sync>;

/// A factory around an already-built runtime: every job shares the one
/// instance (runtimes take `&self`, so a thread-safe runtime needs no
/// per-job reconstruction). Useful when construction is expensive — e.g. a
/// Fela runtime whose configuration was already tuned.
pub fn share_runtime<R>(runtime: R) -> RuntimeFactory
where
    R: TrainingRuntime + Send + Sync + 'static,
{
    struct Shared<R>(Arc<R>);
    impl<R: TrainingRuntime> TrainingRuntime for Shared<R> {
        fn name(&self) -> &'static str {
            self.0.name()
        }
        fn run(&self, scenario: &Scenario) -> RunReport {
            self.0.run(scenario)
        }
    }
    let shared = Arc::new(runtime);
    Arc::new(move |_: &Scenario| Box::new(Shared(Arc::clone(&shared))))
}

/// A declarative experiment sweep.
#[derive(Clone)]
pub struct SweepSpec {
    /// Experiment name; also the JSONL artifact stem.
    pub name: String,
    /// Labeled runtime factories (the first sweep axis).
    pub runtimes: Vec<(String, RuntimeFactory)>,
    /// Labeled scenarios (the second sweep axis).
    pub scenarios: Vec<(String, Scenario)>,
    /// Optional seed override, re-rooting each scenario's straggler, fault
    /// and resize realisations via [`fela_cluster::StragglerModel::with_seed`],
    /// [`fela_cluster::FaultModel::with_seed`] and
    /// [`fela_cluster::ResizeModel::with_seed`]. Applied per scenario, so all
    /// runtimes still compare under one realisation.
    pub seed: Option<u64>,
}

/// One expanded (runtime, scenario) cell of a sweep.
pub struct RunJob {
    /// Position in expansion order (scenario-major, then runtime).
    pub index: usize,
    /// Runtime label.
    pub runtime: String,
    /// Scenario label.
    pub scenario_label: String,
    /// The scenario, with any sweep seed already applied.
    pub scenario: Scenario,
    factory: RuntimeFactory,
}

impl RunJob {
    /// Executes the job: builds the runtime, runs the scenario.
    pub fn execute(&self) -> RunReport {
        let runtime = (self.factory)(&self.scenario);
        runtime.run(&self.scenario)
    }
}

impl SweepSpec {
    /// An empty sweep named `name`.
    pub fn new(name: impl Into<String>) -> Self {
        SweepSpec {
            name: name.into(),
            runtimes: Vec::new(),
            scenarios: Vec::new(),
            seed: None,
        }
    }

    /// Adds a runtime axis entry from a factory closure (builder style).
    #[must_use]
    pub fn runtime<F>(mut self, label: impl Into<String>, factory: F) -> Self
    where
        F: Fn(&Scenario) -> Box<dyn TrainingRuntime> + Send + Sync + 'static,
    {
        self.runtimes.push((label.into(), Arc::new(factory)));
        self
    }

    /// Adds a pre-built factory under a label (builder style).
    #[must_use]
    pub fn runtime_factory(mut self, label: impl Into<String>, factory: RuntimeFactory) -> Self {
        self.runtimes.push((label.into(), factory));
        self
    }

    /// Adds a labeled scenario (builder style).
    #[must_use]
    pub fn scenario(mut self, label: impl Into<String>, scenario: Scenario) -> Self {
        self.scenarios.push((label.into(), scenario));
        self
    }

    /// Sets the seed override (builder style). `None` keeps scenario seeds.
    #[must_use]
    pub fn with_seed(mut self, seed: Option<u64>) -> Self {
        self.seed = seed;
        self
    }

    /// Expands the grid into independent jobs, scenario-major: all runtimes
    /// for scenario 0, then all runtimes for scenario 1, and so on. This
    /// ordering groups comparison partners together in the record stream.
    pub fn expand(&self) -> Vec<RunJob> {
        let mut jobs = Vec::with_capacity(self.runtimes.len() * self.scenarios.len());
        for (scenario_label, scenario) in &self.scenarios {
            let scenario = match self.seed {
                Some(seed) => scenario
                    .clone()
                    .with_straggler(scenario.straggler.with_seed(seed))
                    .with_fault(scenario.fault.with_seed(seed))
                    .with_resize(scenario.resize.clone().with_seed(seed)),
                None => scenario.clone(),
            };
            for (runtime_label, factory) in &self.runtimes {
                jobs.push(RunJob {
                    index: jobs.len(),
                    runtime: runtime_label.clone(),
                    scenario_label: scenario_label.clone(),
                    scenario: scenario.clone(),
                    factory: Arc::clone(factory),
                });
            }
        }
        jobs
    }

    /// Runs every job on `jobs` worker threads and collects records in
    /// expansion order. Purely deterministic: the record stream does not
    /// depend on `jobs`.
    pub fn run(&self, jobs: usize) -> SweepResult {
        let expanded = self.expand();
        let started = Instant::now();
        let records = exec::run_indexed(expanded.len(), jobs, |i| {
            let job = &expanded[i];
            let report = job.execute();
            RunRecord::new(
                &self.name,
                &job.runtime,
                &job.scenario_label,
                &job.scenario,
                self.seed,
                report,
            )
        });
        SweepResult {
            experiment: self.name.clone(),
            records,
            wall: started.elapsed(),
        }
    }
}

/// The outcome of a sweep: records in expansion order plus wall-clock timing.
pub struct SweepResult {
    /// Sweep name (JSONL artifact stem).
    pub experiment: String,
    /// One record per job, in expansion order.
    pub records: Vec<RunRecord>,
    /// Wall-clock duration of the whole sweep (not part of any record).
    pub wall: Duration,
}

impl SweepResult {
    /// The record for a (runtime, scenario) cell.
    pub fn record(&self, runtime: &str, scenario: &str) -> Option<&RunRecord> {
        self.records
            .iter()
            .find(|r| r.runtime == runtime && r.scenario == scenario)
    }

    /// The report for a (runtime, scenario) cell.
    ///
    /// # Panics
    /// Panics if the cell is not present in the sweep.
    pub fn report(&self, runtime: &str, scenario: &str) -> &RunReport {
        &self
            .record(runtime, scenario)
            .unwrap_or_else(|| panic!("no record for runtime={runtime} scenario={scenario}"))
            .report
    }

    /// All records for one scenario label, in runtime-axis order.
    pub fn scenario_records(&self, scenario: &str) -> Vec<&RunRecord> {
        self.records
            .iter()
            .filter(|r| r.scenario == scenario)
            .collect()
    }

    /// Writes the record stream to `<results_dir>/<experiment>.jsonl` and
    /// notes wall-clock timing on stderr (never in the artifact).
    ///
    /// # Errors
    /// Propagates filesystem errors.
    pub fn write_artifacts(&self) -> std::io::Result<std::path::PathBuf> {
        self.write_artifacts_to(&record::results_dir())
    }

    /// Like [`Self::write_artifacts`] but with an explicit directory (the
    /// `--results-dir` flag).
    ///
    /// # Errors
    /// Propagates filesystem errors.
    pub fn write_artifacts_to(&self, dir: &std::path::Path) -> std::io::Result<std::path::PathBuf> {
        let path = record::write_jsonl_to(dir, &self.experiment, &self.records)?;
        eprintln!(
            "[{}] {} runs in {:.2?} -> {}",
            self.experiment,
            self.records.len(),
            self.wall,
            path.display()
        );
        Ok(path)
    }
}
