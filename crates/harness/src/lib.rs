//! # fela-harness — the unified experiment harness
//!
//! Every experiment in this repository — the figure/table binaries, the CLI's
//! compare path and the elastic tuner's candidate search — runs through this
//! crate instead of hand-rolled runtime × scenario loops. It provides:
//!
//! * **Declarative sweeps** ([`SweepSpec`]): a labeled runtime-factory axis
//!   crossed with a labeled scenario axis, expanded into independent
//!   [`RunJob`]s.
//! * **Parallel execution** ([`exec::run_indexed`]): scoped threads pulling
//!   from a shared queue, with results slotted by job index so the output is
//!   byte-identical to a sequential run — `--jobs` changes wall-clock time,
//!   never results.
//! * **Structured artifacts** ([`RunRecord`]): one JSON-Lines record per run
//!   under `results/` (override with `FELA_RESULTS_DIR`), carrying the config
//!   hash, seed, scenario coordinates, the full `RunReport` and an optional
//!   trace pointer. Records hold no wall-clock fields; timing goes to stderr.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod exec;
pub mod record;
pub mod sweep;

pub use exec::{default_jobs, run_indexed};
pub use record::{config_hash, results_dir, to_jsonl, write_jsonl, write_jsonl_to, RunRecord};
pub use sweep::{share_runtime, RunJob, RuntimeFactory, SweepResult, SweepSpec};
