//! # fela-tuning — runtime configuration tuning (§IV-B, Figure 6)
//!
//! Fela's elastic tuning runs in two phases at the start of training:
//!
//! * **Phase 1 — parallelism degrees.** With `w_1 = 1` as the base, the tuner
//!   profiles every nondecreasing power-of-two weight vector
//!   `{w_2, …, w_M} ⊆ {1, 2, …, 2^⌊log₂N⌋}` (10 cases for `M = 3`, `N = 8`) for a
//!   few iterations each and keeps the one with the lowest per-iteration time.
//! * **Phase 2 — conditional subset.** Holding the Phase-1 winner fixed, it halves
//!   the CTD subset (`N, N/2, …, 1`), adding `log₂N` further cases, of which the
//!   full-cluster case is the Phase-1 winner itself — hence the paper's
//!   `10 + 4 − 1 = 13` total cases on 8 nodes.
//!
//! Profiling reuses the full simulation stack, so every number the tuner sees is
//! the same per-iteration time an experiment would report. The paper's headline
//! (Figure 6(b)) is that the best case beats the worst by 8.51–66.78%, i.e. tuning
//! is not optional; [`TuningOutcome::overall_saving`] reproduces that quantity.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use fela_cluster::{Scenario, TrainingRuntime};
use fela_core::{FelaConfig, FelaRuntime, TokenPlan};
use fela_metrics::stats;
use serde::Serialize;

/// One configuration the tuner profiles.
#[derive(Clone, PartialEq, Eq, Debug, Serialize)]
pub struct TuningCase {
    /// Case index as plotted on Figure 6's x-axis (0-based).
    pub id: usize,
    /// Tuning phase (1 or 2).
    pub phase: u8,
    /// Weight vector `w`.
    pub weights: Vec<u64>,
    /// CTD subset size (`None` = no conditional distribution, i.e. subset = N).
    pub subset: Option<usize>,
}

/// Result of profiling one case.
#[derive(Clone, Debug, Serialize)]
pub struct CaseResult {
    /// The configuration profiled.
    pub case: TuningCase,
    /// Mean per-iteration time over the profiling iterations, in seconds.
    /// `None` if the case is infeasible for this workload (e.g. a weight larger
    /// than the root token count).
    pub per_iteration_secs: Option<f64>,
}

/// Outcome of the two-phase search.
#[derive(Clone, Debug, Serialize)]
pub struct TuningOutcome {
    /// Every profiled case in x-axis order (Phase 1 then Phase 2).
    pub cases: Vec<CaseResult>,
    /// Index (into `cases`) of the Phase-1 winner.
    pub phase1_best: usize,
    /// Index (into `cases`) of the overall winner.
    pub best: usize,
    /// The winning configuration, ready to train with.
    pub best_config: FelaConfig,
    /// Iterations profiled per case.
    pub profile_iterations: u64,
}

impl TuningOutcome {
    /// Per-iteration times of the feasible cases, in case order.
    pub fn times(&self) -> Vec<f64> {
        self.cases
            .iter()
            .filter_map(|c| c.per_iteration_secs)
            .collect()
    }

    /// Figure 6(a) normalisation of the feasible cases' times to `[0, 1]`.
    pub fn normalized_times(&self) -> Vec<f64> {
        stats::normalize_unit(&self.times())
    }

    fn phase_times(&self, phase: u8) -> Vec<f64> {
        let mut times: Vec<f64> = self
            .cases
            .iter()
            .filter(|c| c.case.phase == phase)
            .filter_map(|c| c.per_iteration_secs)
            .collect();
        if phase == 2 {
            // The paper counts the Phase-1 winner among the Phase-2 cases (it is
            // the subset-size-N configuration).
            if let Some(t) = self.cases[self.phase1_best].per_iteration_secs {
                times.push(t);
            }
        }
        times
    }

    /// Figure 6(b): fraction of per-iteration time the best Phase-1 case saves
    /// over the worst Phase-1 case.
    pub fn phase1_saving(&self) -> f64 {
        stats::best_worst_saving(&self.phase_times(1))
    }

    /// Figure 6(b): saving among Phase-2 cases (including the Phase-1 winner).
    pub fn phase2_saving(&self) -> f64 {
        stats::best_worst_saving(&self.phase_times(2))
    }

    /// Figure 6(b): saving of the overall best over the overall worst case.
    pub fn overall_saving(&self) -> f64 {
        stats::best_worst_saving(&self.times())
    }
}

/// Enumerates Phase-1 weight vectors: `w_1 = 1`, nondecreasing powers of two up
/// to `2^⌊log₂ n_workers⌋`, for `m` sub-models.
pub fn phase1_candidates(m: usize, n_workers: usize) -> Vec<Vec<u64>> {
    assert!(m >= 1, "at least one sub-model");
    let cap_exp = usize::BITS - 1 - n_workers.leading_zeros();
    let values: Vec<u64> = (0..=cap_exp).map(|e| 1u64 << e).collect();

    fn rec(values: &[u64], current: &mut Vec<u64>, idx: usize, min: u64, out: &mut Vec<Vec<u64>>) {
        if idx == current.len() {
            out.push(current.clone());
            return;
        }
        for &v in values.iter().filter(|&&v| v >= min) {
            current[idx] = v;
            rec(values, current, idx + 1, v, out);
        }
    }

    let mut out = Vec::new();
    let mut current = vec![1u64; m];
    rec(&values, &mut current, 1, 1, &mut out);
    out
}

/// Enumerates Phase-2 subset sizes by halving: `N/2, N/4, …, 1` (the size-`N`
/// case is the Phase-1 winner itself).
pub fn phase2_candidates(n_workers: usize) -> Vec<usize> {
    let mut out = Vec::new();
    let mut s = n_workers.next_power_of_two() / 2;
    while s >= 1 {
        out.push(s);
        if s == 1 {
            break;
        }
        s /= 2;
    }
    out
}

/// The two-phase configuration tuner.
#[derive(Clone, Debug)]
pub struct Tuner {
    /// Iterations profiled per case (the paper uses 5).
    pub profile_iterations: u64,
}

impl Default for Tuner {
    fn default() -> Self {
        Tuner {
            profile_iterations: 5,
        }
    }
}

impl Tuner {
    /// Profiles one candidate config for [`Tuner::profile_iterations`]
    /// iterations; `None` if the config is infeasible for this workload.
    ///
    /// Public so the elastic controller's incremental re-tuner can profile
    /// through *exactly* this code path — bit-equality between incremental and
    /// full searches rests on both sides calling the same function.
    pub fn profile(&self, scenario: &Scenario, config: &FelaConfig) -> Option<f64> {
        let runtime = FelaRuntime::new(config.clone());
        let partition = runtime.partition_for(scenario);
        // Skip infeasible weight/batch combinations up front.
        TokenPlan::build(
            &partition,
            config,
            scenario.total_batch,
            scenario.cluster.nodes,
        )
        .ok()?;
        let probe = scenario.clone().with_iterations(self.profile_iterations);
        let report = runtime.run(&probe);
        Some(report.mean_iteration_secs())
    }

    /// Runs the two-phase search on `scenario` (its iteration count is ignored;
    /// each case runs for [`Tuner::profile_iterations`]).
    ///
    /// Profiling parallelism defaults to the harness's job count; results are
    /// identical for any job count (see [`Tuner::tune_with_jobs`]).
    pub fn tune(&self, scenario: &Scenario) -> TuningOutcome {
        self.tune_with_jobs(scenario, fela_harness::default_jobs())
    }

    /// [`Tuner::tune`] with an explicit worker-thread count.
    ///
    /// Each phase's candidate set is profiled through the harness executor
    /// ([`fela_harness::run_indexed`]), which preserves candidate order, so
    /// the outcome is byte-identical for `jobs = 1` and `jobs = 32`. Phase 2
    /// still starts only after Phase 1 completes — its candidates depend on
    /// the Phase-1 winner.
    pub fn tune_with_jobs(&self, scenario: &Scenario, jobs: usize) -> TuningOutcome {
        let n = scenario.cluster.nodes;
        let m = {
            let runtime = FelaRuntime::new(FelaConfig::new(1));
            runtime.partition_for(scenario).len()
        };
        // Phase 1: all weight-vector candidates are independent.
        let phase1 = phase1_candidates(m, n);
        let phase1_times = fela_harness::run_indexed(phase1.len(), jobs, |i| {
            let config = FelaConfig::new(m).with_weights(phase1[i].clone());
            self.profile(scenario, &config)
        });
        let mut cases: Vec<CaseResult> = phase1
            .into_iter()
            .zip(phase1_times)
            .enumerate()
            .map(|(id, (weights, time))| CaseResult {
                case: TuningCase {
                    id,
                    phase: 1,
                    weights,
                    subset: None,
                },
                per_iteration_secs: time,
            })
            .collect();
        let phase1_best = cases
            .iter()
            .enumerate()
            .filter_map(|(i, c)| c.per_iteration_secs.map(|t| (i, t)))
            .min_by(|a, b| a.1.total_cmp(&b.1))
            .map(|(i, _)| i)
            .expect("at least one feasible Phase-1 case (all-ones always is)");
        let best_weights = cases[phase1_best].case.weights.clone();
        // Phase 2: subset candidates depend on the Phase-1 winner but are
        // independent of one another.
        let phase2 = phase2_candidates(n);
        let phase2_times = fela_harness::run_indexed(phase2.len(), jobs, |i| {
            let config = FelaConfig::new(m)
                .with_weights(best_weights.clone())
                .with_ctd(phase2[i]);
            self.profile(scenario, &config)
        });
        let base = cases.len();
        cases.extend(phase2.into_iter().zip(phase2_times).enumerate().map(
            |(i, (subset, time))| CaseResult {
                case: TuningCase {
                    id: base + i,
                    phase: 2,
                    weights: best_weights.clone(),
                    subset: Some(subset),
                },
                per_iteration_secs: time,
            },
        ));
        let best = cases
            .iter()
            .enumerate()
            .filter_map(|(i, c)| c.per_iteration_secs.map(|t| (i, t)))
            .min_by(|a, b| a.1.total_cmp(&b.1))
            .map(|(i, _)| i)
            .expect("a best case exists");
        let best_case = &cases[best].case;
        let mut best_config = FelaConfig::new(m).with_weights(best_case.weights.clone());
        if let Some(s) = best_case.subset {
            if s < n {
                best_config = best_config.with_ctd(s);
            }
        }
        TuningOutcome {
            cases,
            phase1_best,
            best,
            best_config,
            profile_iterations: self.profile_iterations,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fela_model::zoo;

    #[test]
    fn phase1_space_is_10_cases_for_m3_n8() {
        let c = phase1_candidates(3, 8);
        assert_eq!(c.len(), 10, "paper: 4+3+2+1 = 10 cases");
        assert!(c.iter().all(|w| w[0] == 1));
        assert!(c.iter().all(|w| w.windows(2).all(|p| p[0] <= p[1])));
        assert!(c.contains(&vec![1, 1, 4]), "paper's batch-64 winner");
        assert!(c.contains(&vec![1, 8, 8]), "paper's batch-1024 winner");
    }

    #[test]
    fn phase2_space_halves() {
        assert_eq!(phase2_candidates(8), vec![4, 2, 1]);
        assert_eq!(phase2_candidates(2), vec![1]);
    }

    #[test]
    fn total_search_is_13_cases() {
        // 10 Phase-1 + 3 Phase-2 = 13 profiled cases; the paper counts the same
        // 13 by including the Phase-1 winner among 4 Phase-2 cases.
        assert_eq!(
            phase1_candidates(3, 8).len() + phase2_candidates(8).len(),
            13
        );
    }

    #[test]
    fn tune_googlenet_quickly() {
        let scenario = Scenario::paper(zoo::googlenet(), 256);
        let tuner = Tuner {
            profile_iterations: 2,
        };
        let outcome = tuner.tune(&scenario);
        assert_eq!(outcome.cases.len(), 13);
        assert!(outcome.cases[outcome.best].per_iteration_secs.is_some());
        outcome.best_config.validate(8);
        // Normalised times span [0, 1].
        let norm = outcome.normalized_times();
        assert!(norm.iter().cloned().fold(f64::NAN, f64::min).abs() < 1e-12);
        assert!((norm.iter().cloned().fold(f64::NAN, f64::max) - 1.0).abs() < 1e-12);
        // Savings are consistent: overall ≥ each phase's.
        assert!(outcome.overall_saving() >= outcome.phase1_saving() - 1e-12);
        assert!(outcome.overall_saving() >= outcome.phase2_saving() - 1e-12);
        assert!(outcome.overall_saving() > 0.0, "tuning must matter");
    }

    #[test]
    fn best_config_round_trips_to_a_run() {
        use fela_cluster::TrainingRuntime as _;
        let scenario = Scenario::paper(zoo::googlenet(), 128).with_iterations(2);
        let tuner = Tuner {
            profile_iterations: 1,
        };
        let outcome = tuner.tune(&scenario);
        let report = FelaRuntime::new(outcome.best_config.clone()).run(&scenario);
        assert_eq!(report.iterations, 2);
    }

    #[test]
    fn profile_returns_time_for_valid_config() {
        let tuner = Tuner {
            profile_iterations: 1,
        };
        let scenario = Scenario::paper(zoo::googlenet(), 16);
        let t = tuner.profile(&scenario, &FelaConfig::new(3).with_weights(vec![1, 1, 1]));
        assert!(t.is_some());
        assert!(t.unwrap() > 0.0);
    }
}
