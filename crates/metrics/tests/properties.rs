//! Property tests for the paper's two headline metrics (Equations 3 and 4)
//! and a golden test pinning the ASCII table renderer's exact output.

use fela_metrics::{per_iteration_delay, speedup, RunReport, Table};
use proptest::prelude::*;

fn report(secs: f64, iters: u64, batch: u64) -> RunReport {
    let mut r = RunReport::new("fela", "VGG19", batch);
    r.iterations = iters;
    r.total_time_secs = secs;
    r
}

proptest! {
    #[test]
    fn speedup_is_positive_for_non_degenerate_runs(
        secs_a in 0.001f64..1e4,
        secs_b in 0.001f64..1e4,
        iters in 1u64..200,
        batch in 1u64..2048,
    ) {
        let ours = report(secs_a, iters, batch);
        let base = report(secs_b, iters, batch);
        let s = speedup(&ours, &base);
        prop_assert!(s > 0.0, "speedup {s} must be positive");
        prop_assert!(s.is_finite(), "speedup {s} must be finite");
        // Inverting the comparison inverts the ratio.
        prop_assert!((s * speedup(&base, &ours) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn speedup_is_exactly_one_at_equal_throughput(
        secs in 0.001f64..1e4,
        iters in 1u64..200,
        batch in 1u64..2048,
    ) {
        // Equal throughput — including a report compared against itself —
        // must yield exactly 1.0, not approximately: AT/AT is an exact
        // division of identical floats.
        let a = report(secs, iters, batch);
        prop_assert_eq!(speedup(&a, &a), 1.0);
        let b = report(secs, iters, batch);
        prop_assert_eq!(speedup(&a, &b), 1.0);
    }

    #[test]
    fn per_iteration_delay_is_zero_at_equal_time_and_positive_under_stragglers(
        base_secs in 0.001f64..1e4,
        extra in 0.0f64..1e3,
        iters in 1u64..200,
        batch in 1u64..2048,
    ) {
        let baseline = report(base_secs, iters, batch);
        prop_assert_eq!(per_iteration_delay(&baseline, &baseline), 0.0);
        // A straggler run is never faster than its own baseline, so PID ≥ 0,
        // and it is bounded by the total extra time spread over iterations.
        let straggler = report(base_secs + extra, iters, batch);
        let pid = per_iteration_delay(&straggler, &baseline);
        prop_assert!(pid >= 0.0, "PID {pid} must be non-negative");
        prop_assert!(pid <= extra / iters as f64 + 1e-9);
    }

    #[test]
    fn average_throughput_scales_linearly_in_batch(
        secs in 0.001f64..1e4,
        iters in 1u64..200,
        batch in 1u64..1024,
    ) {
        let single = report(secs, iters, batch);
        let double = report(secs, iters, batch * 2);
        let ratio = double.average_throughput() / single.average_throughput();
        prop_assert!((ratio - 2.0).abs() < 1e-9, "ratio {ratio}");
    }
}

#[test]
fn table_render_golden() {
    let mut t = Table::new("Demo — speedups", &["runtime", "samples/s", "speedup"]);
    t.row(vec!["fela".into(), "1286.40".into(), "-".into()]);
    t.row(vec!["dp".into(), "400.00".into(), "3.22×".into()]);
    assert_eq!(
        t.render(),
        "\
== Demo — speedups ==
+---------+-----------+---------+
| runtime | samples/s | speedup |
+---------+-----------+---------+
| fela    | 1286.40   | -       |
| dp      | 400.00    | 3.22×   |
+---------+-----------+---------+
"
    );
}

#[test]
fn table_csv_golden_escapes_commas_and_quotes() {
    let mut t = Table::new("ignored in CSV", &["name", "note"]);
    t.row(vec!["a,b".into(), "says \"hi\"".into()]);
    t.row(vec!["plain".into(), "ok".into()]);
    assert_eq!(
        t.to_csv(),
        "name,note\n\"a,b\",\"says \"\"hi\"\"\"\nplain,ok\n"
    );
}
