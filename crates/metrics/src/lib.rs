//! # fela-metrics — metrics, statistics and reporting
//!
//! The shared vocabulary of the evaluation: [`RunReport`] (what every runtime
//! returns), the paper's Equation 3 ([`RunReport::average_throughput`]) and
//! Equation 4 ([`per_iteration_delay`]), the Figure 6 normalisation helpers in
//! [`stats`], and the ASCII/CSV [`Table`] renderer used by every experiment binary.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod stats;

mod report;
mod table;

pub use report::{format_speedup, per_iteration_delay, speedup, RunReport};
pub use table::{f2, f3, Table};
