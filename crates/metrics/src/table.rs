//! ASCII-table and CSV rendering for experiment output.
//!
//! Every experiment binary prints the same rows/series the paper reports, using
//! this tiny renderer, and optionally dumps machine-readable CSV/JSON next to it so
//! EXPERIMENTS.md stays regenerable.

use std::fmt::Write as _;

/// A simple right-padded ASCII table.
#[derive(Clone, Debug, Default)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: impl Into<String>, header: &[&str]) -> Self {
        Table {
            title: title.into(),
            header: header.iter().map(|s| (*s).to_owned()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    /// Panics if the row width differs from the header width.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.header.len(),
            "row width must match header width"
        );
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        if !self.title.is_empty() {
            let _ = writeln!(out, "== {} ==", self.title);
        }
        let fmt_row = |cells: &[String], widths: &[usize]| {
            let mut line = String::new();
            for (cell, w) in cells.iter().zip(widths) {
                let _ = write!(line, "| {cell:<w$} ");
            }
            line.push('|');
            line
        };
        let head = fmt_row(&self.header, &widths);
        let rule: String = head
            .chars()
            .map(|c| if c == '|' { '+' } else { '-' })
            .collect();
        let _ = writeln!(out, "{rule}");
        let _ = writeln!(out, "{head}");
        let _ = writeln!(out, "{rule}");
        for row in &self.rows {
            let _ = writeln!(out, "{}", fmt_row(row, &widths));
        }
        let _ = writeln!(out, "{rule}");
        out
    }

    /// Renders as CSV (header + rows, comma-separated, quotes around cells that
    /// contain commas or quotes).
    pub fn to_csv(&self) -> String {
        let esc = |cell: &str| {
            if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_owned()
            }
        };
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{}",
            self.header
                .iter()
                .map(|c| esc(c))
                .collect::<Vec<_>>()
                .join(",")
        );
        for row in &self.rows {
            let _ = writeln!(
                out,
                "{}",
                row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(",")
            );
        }
        out
    }
}

/// Formats a float with 2 decimal places (the paper's usual precision).
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Formats a float with 3 decimal places.
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_table() {
        let mut t = Table::new("Demo", &["name", "value"]);
        t.row(vec!["alpha".into(), "1".into()]);
        t.row(vec!["b".into(), "22.5".into()]);
        let s = t.render();
        assert!(s.contains("== Demo =="));
        assert!(s.contains("| alpha | 1     |"));
        assert!(s.contains("| b     | 22.5  |"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_rejected() {
        Table::new("x", &["a", "b"]).row(vec!["only one".into()]);
    }

    #[test]
    fn csv_escaping() {
        let mut t = Table::new("", &["a", "b"]);
        t.row(vec!["plain".into(), "with, comma".into()]);
        t.row(vec!["with \"quote\"".into(), "x".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("plain,\"with, comma\""));
        assert!(csv.contains("\"with \"\"quote\"\"\",x"));
    }

    #[test]
    fn float_formatters() {
        assert_eq!(f2(3.139), "3.14");
        assert_eq!(f3(2.0), "2.000");
    }
}
