//! Run reports and the paper's two headline metrics.
//!
//! Every runtime (Fela, DP, MP, HP) produces a [`RunReport`]. The comparison
//! metrics are exactly the paper's:
//!
//! * **Average throughput** (Equation 3):
//!   `AT = total_batch_size × iter_n / total_time`;
//! * **Per-iteration delay** (Equation 4):
//!   `PID = (total_time_s − total_time_0) / iter_n`, where `total_time_s` is the
//!   straggler-scenario time and `total_time_0` the non-straggler time of the same
//!   runtime and workload.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

/// The outcome of one training run (fixed number of iterations, as in §V-A).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RunReport {
    /// Runtime that produced the run (`"fela"`, `"dp"`, `"mp"`, `"hp"`).
    pub runtime: String,
    /// Benchmark model name.
    pub model: String,
    /// Total batch size per iteration.
    pub total_batch: u64,
    /// Number of iterations executed.
    pub iterations: u64,
    /// Wall time to complete all iterations, in (virtual) seconds.
    pub total_time_secs: f64,
    /// Per-iteration completion times in seconds (length = `iterations`).
    pub per_iteration_secs: Vec<f64>,
    /// Total bytes moved across the network.
    pub network_bytes: u64,
    /// Per-worker GPU busy time in seconds.
    pub worker_busy_secs: Vec<f64>,
    /// Runtime-specific counters (tokens trained, conflicts, remote fetches…).
    pub counters: BTreeMap<String, u64>,
}

impl RunReport {
    /// Creates an empty report skeleton.
    pub fn new(runtime: impl Into<String>, model: impl Into<String>, total_batch: u64) -> Self {
        RunReport {
            runtime: runtime.into(),
            model: model.into(),
            total_batch,
            iterations: 0,
            total_time_secs: 0.0,
            per_iteration_secs: Vec::new(),
            network_bytes: 0,
            worker_busy_secs: Vec::new(),
            counters: BTreeMap::new(),
        }
    }

    /// Average throughput in samples/second (Equation 3).
    ///
    /// Returns 0 for a zero-length run.
    pub fn average_throughput(&self) -> f64 {
        if self.total_time_secs <= 0.0 {
            return 0.0;
        }
        (self.total_batch * self.iterations) as f64 / self.total_time_secs
    }

    /// Mean per-iteration time in seconds.
    pub fn mean_iteration_secs(&self) -> f64 {
        if self.iterations == 0 {
            return 0.0;
        }
        self.total_time_secs / self.iterations as f64
    }

    /// Mean GPU utilisation across workers over the run, in `[0, 1]` — the
    /// work-conservation measure behind Table II's comparison.
    pub fn mean_utilization(&self) -> f64 {
        if self.worker_busy_secs.is_empty() || self.total_time_secs <= 0.0 {
            return 0.0;
        }
        let mean_busy: f64 =
            self.worker_busy_secs.iter().sum::<f64>() / self.worker_busy_secs.len() as f64;
        mean_busy / self.total_time_secs
    }

    /// Increment a named counter.
    pub fn bump(&mut self, name: &str, by: u64) {
        *self.counters.entry(name.to_owned()).or_insert(0) += by;
    }

    /// Read a named counter (0 if absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }
}

/// Per-iteration delay in seconds (Equation 4).
///
/// # Panics
/// Panics if the two reports ran different iteration counts — the metric is only
/// defined for equal-length runs.
pub fn per_iteration_delay(straggler_run: &RunReport, baseline_run: &RunReport) -> f64 {
    assert_eq!(
        straggler_run.iterations, baseline_run.iterations,
        "PID requires equal iteration counts"
    );
    assert!(straggler_run.iterations > 0, "PID of an empty run");
    (straggler_run.total_time_secs - baseline_run.total_time_secs) / straggler_run.iterations as f64
}

/// Speedup of `ours` over `baseline` in average throughput, expressed the way the
/// paper does: values below 2 read as a percentage improvement ("+28.6%"), values
/// of 2 or more as a multiplier ("3.23×").
pub fn speedup(ours: &RunReport, baseline: &RunReport) -> f64 {
    let b = baseline.average_throughput();
    if b <= 0.0 {
        return f64::INFINITY;
    }
    ours.average_throughput() / b
}

/// Formats a speedup ratio in the paper's style: `1.286` → `"28.6%"`,
/// `3.23` → `"3.23×"` (improvements of less than 2× print as percentages).
pub fn format_speedup(ratio: f64) -> String {
    if ratio >= 2.0 {
        format!("{ratio:.2}×")
    } else {
        format!("{:.2}%", (ratio - 1.0) * 100.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(secs: f64, iters: u64, batch: u64) -> RunReport {
        let mut r = RunReport::new("fela", "VGG19", batch);
        r.iterations = iters;
        r.total_time_secs = secs;
        r.per_iteration_secs = (0..iters).map(|_| secs / iters as f64).collect();
        r
    }

    #[test]
    fn equation3_average_throughput() {
        // 128 samples × 100 iters / 50 s = 256 samples/s.
        let r = report(50.0, 100, 128);
        assert!((r.average_throughput() - 256.0).abs() < 1e-9);
    }

    #[test]
    fn zero_time_throughput_is_zero() {
        assert_eq!(report(0.0, 0, 128).average_throughput(), 0.0);
    }

    #[test]
    fn equation4_per_iteration_delay() {
        let base = report(50.0, 100, 128);
        let slow = report(80.0, 100, 128);
        assert!((per_iteration_delay(&slow, &base) - 0.3).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "equal iteration counts")]
    fn pid_rejects_mismatched_runs() {
        per_iteration_delay(&report(1.0, 10, 8), &report(1.0, 20, 8));
    }

    #[test]
    fn speedup_and_formatting() {
        let fast = report(25.0, 100, 128);
        let slow = report(80.75, 100, 128);
        let s = speedup(&fast, &slow);
        assert!((s - 3.23).abs() < 1e-9);
        assert_eq!(format_speedup(s), "3.23×");
        assert_eq!(format_speedup(1.286), "28.60%");
    }

    #[test]
    fn utilization_mean() {
        let mut r = report(10.0, 10, 64);
        r.worker_busy_secs = vec![10.0, 5.0];
        assert!((r.mean_utilization() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn counters_bump_and_read() {
        let mut r = report(1.0, 1, 1);
        assert_eq!(r.counter("conflicts"), 0);
        r.bump("conflicts", 2);
        r.bump("conflicts", 3);
        assert_eq!(r.counter("conflicts"), 5);
    }

    #[test]
    fn report_serializes() {
        let r = report(1.0, 2, 3);
        let json = serde_json::to_string(&r).unwrap();
        let back: RunReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back.iterations, 2);
    }
}
