//! Small statistics helpers shared by the experiment harnesses.

/// Arithmetic mean; 0 for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Minimum; `None` for an empty slice (NaNs are ignored).
pub fn min(xs: &[f64]) -> Option<f64> {
    xs.iter().copied().filter(|x| !x.is_nan()).reduce(f64::min)
}

/// Maximum; `None` for an empty slice (NaNs are ignored).
pub fn max(xs: &[f64]) -> Option<f64> {
    xs.iter().copied().filter(|x| !x.is_nan()).reduce(f64::max)
}

/// The paper's Figure 6(a) normalisation: maps each value to
/// `(x − min) / (max − min)` so the best case reads 0 and the worst reads 1.
/// A constant series maps to all zeros.
pub fn normalize_unit(xs: &[f64]) -> Vec<f64> {
    let (Some(lo), Some(hi)) = (min(xs), max(xs)) else {
        return Vec::new();
    };
    let span = hi - lo;
    if span <= 0.0 {
        return vec![0.0; xs.len()];
    }
    xs.iter().map(|x| (x - lo) / span).collect()
}

/// Best-vs-worst saving, the Figure 6(b) quantity: `(max − min) / max`, i.e. the
/// fraction of per-iteration time the best configuration saves relative to the
/// worst. 0 for empty or constant input.
pub fn best_worst_saving(xs: &[f64]) -> f64 {
    match (min(xs), max(xs)) {
        (Some(lo), Some(hi)) if hi > 0.0 => (hi - lo) / hi,
        _ => 0.0,
    }
}

/// Sample standard deviation; 0 for fewer than two points.
pub fn stddev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    let var = xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / (xs.len() - 1) as f64;
    var.sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_min_max_basics() {
        let xs = [3.0, 1.0, 2.0];
        assert_eq!(mean(&xs), 2.0);
        assert_eq!(min(&xs), Some(1.0));
        assert_eq!(max(&xs), Some(3.0));
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(min(&[]), None);
    }

    #[test]
    fn normalize_maps_to_unit_interval() {
        let n = normalize_unit(&[10.0, 20.0, 15.0]);
        assert_eq!(n, vec![0.0, 1.0, 0.5]);
    }

    #[test]
    fn normalize_constant_series() {
        assert_eq!(normalize_unit(&[5.0, 5.0]), vec![0.0, 0.0]);
    }

    #[test]
    fn best_worst_saving_matches_paper_example() {
        // If the worst case takes 2.0 s and the best 1.0 s the best saves 50%.
        assert!((best_worst_saving(&[1.0, 1.5, 2.0]) - 0.5).abs() < 1e-12);
        assert_eq!(best_worst_saving(&[]), 0.0);
    }

    #[test]
    fn stddev_basics() {
        assert_eq!(stddev(&[1.0]), 0.0);
        assert!((stddev(&[2.0, 4.0]) - std::f64::consts::SQRT_2).abs() < 1e-12);
    }
}
