//! Hand-rolled argument parsing for the `fela` CLI (kept dependency-free).

use fela_cluster::{FaultKind, FaultModel, ResizeAction, ResizeEvent, ResizeModel, StragglerModel};
use fela_sim::SimDuration;

/// Parsed command line.
#[derive(Clone, Debug, PartialEq)]
pub enum Command {
    /// `fela run …` — one Fela training run.
    Run(RunArgs),
    /// `fela tune …` — the §IV-B two-phase search.
    Tune(CommonArgs),
    /// `fela compare …` — Fela vs DP/MP/HP on one scenario.
    Compare(CommonArgs),
    /// `fela check …` — static schedule verification + trace race detection.
    Check(CheckArgs),
    /// `fela live …` — a real threaded run over the wire protocol.
    Live(LiveArgs),
    /// `fela models` — the Table I zoo.
    Models,
    /// `fela help`.
    Help,
}

/// Options for `fela check`.
#[derive(Clone, Debug, PartialEq)]
pub struct CheckArgs {
    /// Shared scenario options.
    pub common: CommonArgs,
    /// Policy preset: `full` (default), `ads`, `hf`, `ctd` or `none`.
    pub policy: String,
    /// Weight vector override (`--weights 1,2,4`); `None` = verify every
    /// Phase-1 candidate vector.
    pub weights: Option<Vec<u64>>,
    /// CTD subset size override (with `--policy ctd`; default `nodes/2`).
    pub ctd: Option<usize>,
    /// SSP staleness bound for the barrier invariants.
    pub staleness: u64,
    /// Verify the whole model zoo × all policies × all candidate weights.
    pub all: bool,
    /// Run the live-runtime concurrency model checker (`--mc`): exhaustive
    /// interleaving exploration of small clusters plus the seeded-mutation
    /// matrix.
    pub mc: bool,
    /// Run the frame-protocol session verifier (`--protocol`) over recorded
    /// executions.
    pub protocol: bool,
    /// Run the write-ahead-log replay verifier (`--wal`): replay a logged
    /// control-plane run through the oracle, prove snapshot equality and
    /// exactly-once token application, and run the seeded log-mutation matrix.
    pub wal: bool,
    /// Run the elastic-run verifier (`--elastic`): check traced resized runs
    /// against their per-epoch membership and the full-search re-tune oracle,
    /// then run the seeded elastic mutation matrix.
    pub elastic: bool,
}

/// Options for `fela live`.
#[derive(Clone, Debug, PartialEq)]
pub struct LiveArgs {
    /// Shared scenario options.
    pub common: CommonArgs,
    /// Parallelism weight vector (`--weights 1,2,4`); `None` = uniform.
    pub weights: Option<Vec<u64>>,
    /// Worker-thread count override (`--workers`); `None` = `--nodes`.
    pub workers: Option<usize>,
    /// Transport name: `chan` (in-process channels) or `tcp` (loopback).
    pub transport: String,
    /// Clock mode: `virtual` (deterministic, sim-conformant) or `real`.
    pub mode: String,
    /// Real seconds slept per modeled second in real-clock mode.
    pub time_scale: f64,
    /// Control-plane shard count (`--shards`); `None` = `FELA_SHARDS`/1.
    pub shards: Option<usize>,
    /// Emit the outcome as JSON instead of a table.
    pub json: bool,
}

/// Options shared by every scenario-running subcommand.
#[derive(Clone, Debug, PartialEq)]
pub struct CommonArgs {
    /// Zoo model name (`vgg19`, `googlenet`, …).
    pub model: String,
    /// Total batch size per iteration.
    pub batch: u64,
    /// Iteration count.
    pub iters: u64,
    /// Cluster size.
    pub nodes: usize,
    /// Straggler injection.
    pub straggler: StragglerModel,
    /// Fault injection.
    pub fault: FaultModel,
    /// Planned elasticity (`--resize`, repeatable; `FELA_RESIZE` fallback).
    pub resize: ResizeModel,
    /// Seed override re-rooting the straggler/fault/resize realisations
    /// (`--seed`).
    pub seed: Option<u64>,
    /// Harness worker threads (`--jobs`); `None` = `FELA_JOBS`/auto.
    pub jobs: Option<usize>,
    /// Artifact directory override (`--results-dir`); `None` =
    /// `FELA_RESULTS_DIR`/`results`.
    pub results_dir: Option<String>,
    /// Durable control plane: directory for the write-ahead log
    /// (`--wal-dir`); `None` = in-memory WAL when durability is needed.
    pub wal_dir: Option<String>,
    /// Checkpoint cadence in completed iterations (`--checkpoint-every`);
    /// `None` = the default cadence (1), `Some(0)` = log-only.
    pub checkpoint_every: Option<u64>,
}

impl Default for CommonArgs {
    fn default() -> Self {
        CommonArgs {
            model: "vgg19".into(),
            batch: 256,
            iters: 100,
            nodes: 8,
            straggler: StragglerModel::None,
            fault: FaultModel::None,
            resize: ResizeModel::None,
            seed: None,
            jobs: None,
            results_dir: None,
            wal_dir: None,
            checkpoint_every: None,
        }
    }
}

/// Options for `fela run`.
#[derive(Clone, Debug, PartialEq)]
pub struct RunArgs {
    /// Shared scenario options.
    pub common: CommonArgs,
    /// Parallelism weight vector (`--weights 1,2,4`); `None` = run the tuner.
    pub weights: Option<Vec<u64>>,
    /// CTD subset size.
    pub ctd: Option<usize>,
    /// SSP staleness bound.
    pub staleness: u64,
    /// Disable cross-iteration pipelining.
    pub no_pipelining: bool,
    /// Control-plane shard count (`--shards`); `None` = `FELA_SHARDS`/1.
    pub shards: Option<usize>,
    /// Emit the full report as JSON instead of a table.
    pub json: bool,
}

/// A parse failure with a user-facing message.
#[derive(Clone, Debug, PartialEq)]
pub struct ParseError(pub String);

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

fn err<T>(msg: impl Into<String>) -> Result<T, ParseError> {
    Err(ParseError(msg.into()))
}

fn take_value<'a>(
    flag: &str,
    it: &mut impl Iterator<Item = &'a str>,
) -> Result<&'a str, ParseError> {
    it.next()
        .ok_or_else(|| ParseError(format!("{flag} expects a value")))
}

/// Parses a duration given as (possibly fractional) seconds, rejecting
/// non-finite and negative values at parse time rather than panicking deep in
/// the simulator.
fn parse_secs(what: &str, s: &str) -> Result<SimDuration, ParseError> {
    let secs: f64 = s
        .parse()
        .map_err(|_| ParseError(format!("bad {what} '{s}'")))?;
    if !secs.is_finite() || secs < 0.0 {
        return err(format!("{what} {secs} must be finite and non-negative"));
    }
    Ok(SimDuration::from_secs_f64(secs))
}

/// Parses `--straggler` values: `none`, `round-robin:<d_secs>` or
/// `prob:<p>:<d_secs>[:<seed>]`. Delays may be fractional seconds; `p` must
/// lie in `[0, 1]` and delays must be finite and non-negative.
pub fn parse_straggler(spec: &str) -> Result<StragglerModel, ParseError> {
    let parts: Vec<&str> = spec.split(':').collect();
    match parts.as_slice() {
        ["none"] => Ok(StragglerModel::None),
        ["round-robin", d] => Ok(StragglerModel::RoundRobin {
            delay: parse_secs("delay", d)?,
        }),
        ["prob", p, d] | ["prob", p, d, _] => {
            let p: f64 = p.parse().map_err(|_| ParseError(format!("bad probability '{p}'")))?;
            if !(0.0..=1.0).contains(&p) {
                return err(format!("probability {p} out of [0,1]"));
            }
            let delay = parse_secs("delay", d)?;
            let seed = parts
                .get(3)
                .map(|s| s.parse().map_err(|_| ParseError(format!("bad seed '{s}'"))))
                .transpose()?
                .unwrap_or(42);
            Ok(StragglerModel::Probabilistic { p, delay, seed })
        }
        _ => err(format!(
            "unknown straggler spec '{spec}' (use none, round-robin:<secs> or prob:<p>:<secs>[:<seed>])"
        )),
    }
}

/// Parses `--fault` values: `none`, `crash:<iter>:<worker>`,
/// `crash-restart:<iter>:<worker>:<down_secs>`, `hang:<iter>:<worker>:<secs>`,
/// `link-down:<iter>:<worker>:<secs>`, `chaos:<p>:<down_secs>[:<seed>]` or
/// `server-crash-restart:<iter>:<down_secs>` (kills the Token Server itself;
/// the run recovers from the write-ahead log).
pub fn parse_fault(spec: &str) -> Result<FaultModel, ParseError> {
    let parts: Vec<&str> = spec.split(':').collect();
    let cell = |it: &str, w: &str| -> Result<(u64, usize), ParseError> {
        let iteration = it
            .parse()
            .map_err(|_| ParseError(format!("bad iteration '{it}'")))?;
        let worker = w
            .parse()
            .map_err(|_| ParseError(format!("bad worker '{w}'")))?;
        Ok((iteration, worker))
    };
    let scripted = |it: &str, w: &str, kind: FaultKind| -> Result<FaultModel, ParseError> {
        let (iteration, worker) = cell(it, w)?;
        Ok(FaultModel::Scripted {
            worker,
            iteration,
            kind,
        })
    };
    match parts.as_slice() {
        ["none"] => Ok(FaultModel::None),
        ["crash", it, w] => scripted(it, w, FaultKind::Crash),
        ["crash-restart", it, w, d] => scripted(
            it,
            w,
            FaultKind::CrashRestart {
                down: parse_secs("downtime", d)?,
            },
        ),
        ["hang", it, w, d] => scripted(
            it,
            w,
            FaultKind::Hang {
                stall: parse_secs("stall", d)?,
            },
        ),
        ["link-down", it, w, d] => scripted(
            it,
            w,
            FaultKind::LinkDown {
                down: parse_secs("outage", d)?,
            },
        ),
        ["server-crash-restart", it, d] => {
            let iteration = it
                .parse()
                .map_err(|_| ParseError(format!("bad iteration '{it}'")))?;
            let model = FaultModel::ServerCrashRestart {
                iteration,
                down: parse_secs("downtime", d)?,
            };
            model.validate().map_err(ParseError)?;
            Ok(model)
        }
        ["chaos", p, d] | ["chaos", p, d, _] => {
            let p: f64 = p
                .parse()
                .map_err(|_| ParseError(format!("bad probability '{p}'")))?;
            let down = parse_secs("downtime", d)?;
            let seed = parts
                .get(3)
                .map(|s| s.parse().map_err(|_| ParseError(format!("bad seed '{s}'"))))
                .transpose()?
                .unwrap_or(42);
            let model = FaultModel::Chaos { p, down, seed };
            model.validate().map_err(ParseError)?;
            Ok(model)
        }
        _ => err(format!(
            "unknown fault spec '{spec}' (use none, crash:<iter>:<worker>, \
             crash-restart:<iter>:<worker>:<down_secs>, hang:<iter>:<worker>:<secs>, \
             link-down:<iter>:<worker>:<secs>, chaos:<p>:<down_secs>[:<seed>] or \
             server-crash-restart:<iter>:<down_secs>)"
        )),
    }
}

/// Parses one `--resize` value: `none`, `join:<iter>:<n>`,
/// `leave:<iter>:<w,…>` or `churn:<rate>[:<seed>]`. Every spec is validated
/// at parse time through [`ResizeModel::validate`], so a bad script fails
/// before any run starts.
pub fn parse_resize(spec: &str) -> Result<ResizeModel, ParseError> {
    let parts: Vec<&str> = spec.split(':').collect();
    let iter_of = |it: &str| -> Result<u64, ParseError> {
        it.parse()
            .map_err(|_| ParseError(format!("bad iteration '{it}'")))
    };
    let model = match parts.as_slice() {
        ["none"] => ResizeModel::None,
        ["join", it, n] => {
            let n: usize = n
                .parse()
                .map_err(|_| ParseError(format!("bad join count '{n}'")))?;
            ResizeModel::Scripted(vec![ResizeEvent {
                iteration: iter_of(it)?,
                action: ResizeAction::Join(n),
            }])
        }
        ["leave", it, ws] => {
            let ranks: Result<Vec<usize>, _> = ws.split(',').map(str::parse).collect();
            let ranks =
                ranks.map_err(|_| ParseError(format!("bad worker list '{ws}' (use e.g. 0,3)")))?;
            ResizeModel::Scripted(vec![ResizeEvent {
                iteration: iter_of(it)?,
                action: ResizeAction::Leave(ranks),
            }])
        }
        ["churn", rate] | ["churn", rate, _] => {
            let rate: f64 = rate
                .parse()
                .map_err(|_| ParseError(format!("bad churn rate '{rate}'")))?;
            let seed = parts
                .get(2)
                .map(|s| s.parse().map_err(|_| ParseError(format!("bad seed '{s}'"))))
                .transpose()?
                .unwrap_or(42);
            ResizeModel::Churn { rate, seed }
        }
        _ => {
            return err(format!(
                "unknown resize spec '{spec}' (use none, join:<iter>:<n>, \
                 leave:<iter>:<w,…> or churn:<rate>[:<seed>])"
            ))
        }
    };
    model.validate().map_err(ParseError)?;
    Ok(model)
}

/// Folds a freshly parsed `--resize` value into the model accumulated so far:
/// repeated scripted specs compose into one sorted script; `churn` stands
/// alone; `none` resets.
pub fn merge_resize(base: ResizeModel, next: ResizeModel) -> Result<ResizeModel, ParseError> {
    let merged = match (base, next) {
        (_, ResizeModel::None) => ResizeModel::None,
        (ResizeModel::None, next) => next,
        (ResizeModel::Scripted(mut events), ResizeModel::Scripted(more)) => {
            events.extend(more);
            events.sort_by_key(|e| e.iteration);
            ResizeModel::Scripted(events)
        }
        (ResizeModel::Churn { .. }, _) | (_, ResizeModel::Churn { .. }) => {
            return err("churn cannot combine with other resize specs");
        }
    };
    // Re-validate the composition: two scripted specs may collide on an
    // iteration, which a single parse cannot see.
    merged.validate().map_err(ParseError)?;
    Ok(merged)
}

/// Resolves the resize model for a command: `--resize` flags win; otherwise
/// `FELA_RESIZE` (whitespace-separated specs, composed exactly like repeated
/// flags) is consulted; otherwise no resizes.
pub fn resolve_resize(explicit: &ResizeModel) -> Result<ResizeModel, ParseError> {
    let env = std::env::var("FELA_RESIZE").ok();
    resolve_resize_with(explicit, env.as_deref())
}

fn resolve_resize_with(
    explicit: &ResizeModel,
    env: Option<&str>,
) -> Result<ResizeModel, ParseError> {
    if !explicit.is_none() {
        return Ok(explicit.clone());
    }
    let Some(specs) = env else {
        return Ok(ResizeModel::None);
    };
    let mut model = ResizeModel::None;
    for spec in specs.split_whitespace() {
        let next = parse_resize(spec).map_err(|e| ParseError(format!("FELA_RESIZE: {e}")))?;
        model = merge_resize(model, next).map_err(|e| ParseError(format!("FELA_RESIZE: {e}")))?;
    }
    Ok(model)
}

/// Resolves the worker-thread count for a command: `--jobs` (already validated
/// at parse time), else `FELA_JOBS`, else available parallelism. A `FELA_JOBS`
/// that is set but not a positive integer is rejected here rather than silently
/// clamped by the harness — `FELA_JOBS=0` used to reach the thread pool.
pub fn resolve_jobs(explicit: Option<usize>) -> Result<usize, ParseError> {
    let env = std::env::var("FELA_JOBS").ok();
    resolve_jobs_with(explicit, env.as_deref())
}

fn resolve_jobs_with(explicit: Option<usize>, env: Option<&str>) -> Result<usize, ParseError> {
    if let Some(jobs) = explicit {
        return Ok(jobs);
    }
    match env {
        Some(v) => match v.trim().parse::<usize>() {
            Ok(n) if n >= 1 => Ok(n),
            _ => err(format!("FELA_JOBS must be a positive integer, got '{v}'")),
        },
        None => Ok(fela_harness::default_jobs()),
    }
}

/// Resolves the control-plane shard count for a command: `--shards` (already
/// validated as non-zero at parse time), else `FELA_SHARDS`, else 1 (the
/// monolithic Token Server). Shard counts above the partition's level count
/// are rejected here — a shard owns at least one level's token state, so a
/// larger count cannot be honoured and silently clamping would misreport the
/// control-plane layout the user asked to measure.
pub fn resolve_shards(explicit: Option<usize>, levels: usize) -> Result<usize, ParseError> {
    let env = std::env::var("FELA_SHARDS").ok();
    resolve_shards_with(explicit, env.as_deref(), levels)
}

fn resolve_shards_with(
    explicit: Option<usize>,
    env: Option<&str>,
    levels: usize,
) -> Result<usize, ParseError> {
    let shards = match (explicit, env) {
        (Some(s), _) => s,
        (None, Some(v)) => match v.trim().parse::<usize>() {
            Ok(n) if n >= 1 => n,
            _ => return err(format!("FELA_SHARDS must be a positive integer, got '{v}'")),
        },
        (None, None) => 1,
    };
    if shards > levels {
        return err(format!(
            "--shards {shards} exceeds this model's {levels}-level partition \
             (a shard owns at least one level's token state)"
        ));
    }
    Ok(shards)
}

/// Resolves the artifact directory for a command: `--results-dir` wins over
/// `FELA_RESULTS_DIR`, which wins over the `results/` default — so a flag on
/// the command line always beats ambient environment.
pub fn resolve_results_dir(explicit: Option<&str>) -> std::path::PathBuf {
    let env = std::env::var("FELA_RESULTS_DIR").ok();
    resolve_results_dir_with(explicit, env.as_deref())
}

fn resolve_results_dir_with(explicit: Option<&str>, env: Option<&str>) -> std::path::PathBuf {
    match (explicit, env) {
        (Some(dir), _) => std::path::PathBuf::from(dir),
        (None, Some(dir)) => std::path::PathBuf::from(dir),
        (None, None) => std::path::PathBuf::from("results"),
    }
}

fn parse_common<'a>(
    common: &mut CommonArgs,
    flag: &str,
    it: &mut impl Iterator<Item = &'a str>,
) -> Result<bool, ParseError> {
    match flag {
        "--model" => common.model = take_value(flag, it)?.to_owned(),
        "--batch" => {
            common.batch = take_value(flag, it)?
                .parse()
                .map_err(|_| ParseError("--batch expects an integer".into()))?
        }
        "--iters" => {
            common.iters = take_value(flag, it)?
                .parse()
                .map_err(|_| ParseError("--iters expects an integer".into()))?
        }
        "--nodes" => {
            common.nodes = take_value(flag, it)?
                .parse()
                .map_err(|_| ParseError("--nodes expects an integer".into()))?
        }
        "--straggler" => common.straggler = parse_straggler(take_value(flag, it)?)?,
        "--fault" => common.fault = parse_fault(take_value(flag, it)?)?,
        "--resize" => {
            let next = parse_resize(take_value(flag, it)?)?;
            let base = std::mem::take(&mut common.resize);
            common.resize = merge_resize(base, next)?;
        }
        "--seed" => {
            common.seed = Some(
                take_value(flag, it)?
                    .parse()
                    .map_err(|_| ParseError("--seed expects an integer".into()))?,
            )
        }
        "--jobs" => {
            let jobs: usize = take_value(flag, it)?
                .parse()
                .map_err(|_| ParseError("--jobs expects a positive integer".into()))?;
            if jobs == 0 {
                return err("--jobs must be at least 1");
            }
            common.jobs = Some(jobs);
        }
        "--results-dir" => {
            let dir = take_value(flag, it)?;
            if dir.is_empty() {
                return err("--results-dir expects a non-empty path");
            }
            common.results_dir = Some(dir.to_owned());
        }
        "--wal-dir" => {
            let dir = take_value(flag, it)?;
            if dir.is_empty() {
                return err("--wal-dir expects a non-empty path");
            }
            common.wal_dir = Some(dir.to_owned());
        }
        "--checkpoint-every" => {
            common.checkpoint_every = Some(take_value(flag, it)?.parse().map_err(|_| {
                ParseError("--checkpoint-every expects a non-negative integer".into())
            })?);
        }
        _ => return Ok(false),
    }
    Ok(true)
}

/// Parses the full argument list (without the program name).
pub fn parse(args: &[&str]) -> Result<Command, ParseError> {
    let Some((&cmd, rest)) = args.split_first() else {
        return Ok(Command::Help);
    };
    let mut it = rest.iter().copied();
    match cmd {
        "models" => Ok(Command::Models),
        "help" | "--help" | "-h" => Ok(Command::Help),
        "tune" | "compare" => {
            let mut common = CommonArgs::default();
            while let Some(flag) = it.next() {
                if !parse_common(&mut common, flag, &mut it)? {
                    return err(format!("unknown flag '{flag}' for '{cmd}'"));
                }
            }
            Ok(if cmd == "tune" {
                Command::Tune(common)
            } else {
                Command::Compare(common)
            })
        }
        "run" => {
            let mut run = RunArgs {
                common: CommonArgs::default(),
                weights: None,
                ctd: None,
                staleness: 0,
                no_pipelining: false,
                shards: None,
                json: false,
            };
            while let Some(flag) = it.next() {
                if parse_common(&mut run.common, flag, &mut it)? {
                    continue;
                }
                match flag {
                    "--weights" => {
                        let spec = take_value(flag, &mut it)?;
                        let ws: Result<Vec<u64>, _> = spec.split(',').map(str::parse).collect();
                        run.weights = Some(ws.map_err(|_| {
                            ParseError(format!("bad weight list '{spec}' (use e.g. 1,2,4)"))
                        })?);
                    }
                    "--ctd" => {
                        run.ctd = Some(take_value(flag, &mut it)?.parse().map_err(|_| {
                            ParseError("--ctd expects an integer subset size".into())
                        })?)
                    }
                    "--staleness" => {
                        run.staleness = take_value(flag, &mut it)?
                            .parse()
                            .map_err(|_| ParseError("--staleness expects an integer".into()))?
                    }
                    "--no-pipelining" => run.no_pipelining = true,
                    "--shards" => {
                        let shards: usize = take_value(flag, &mut it)?.parse().map_err(|_| {
                            ParseError("--shards expects a positive integer".into())
                        })?;
                        if shards == 0 {
                            return err("--shards must be at least 1");
                        }
                        run.shards = Some(shards);
                    }
                    "--json" => run.json = true,
                    other => return err(format!("unknown flag '{other}' for 'run'")),
                }
            }
            Ok(Command::Run(run))
        }
        "live" => {
            let mut live = LiveArgs {
                common: CommonArgs {
                    iters: 10,
                    nodes: 4,
                    ..CommonArgs::default()
                },
                weights: None,
                workers: None,
                transport: "chan".into(),
                mode: "virtual".into(),
                time_scale: 1e-3,
                shards: None,
                json: false,
            };
            while let Some(flag) = it.next() {
                if parse_common(&mut live.common, flag, &mut it)? {
                    continue;
                }
                match flag {
                    "--weights" => {
                        let spec = take_value(flag, &mut it)?;
                        let ws: Result<Vec<u64>, _> = spec.split(',').map(str::parse).collect();
                        live.weights = Some(ws.map_err(|_| {
                            ParseError(format!("bad weight list '{spec}' (use e.g. 1,2,4)"))
                        })?);
                    }
                    "--workers" => {
                        let workers: usize = take_value(flag, &mut it)?
                            .parse()
                            .map_err(|_| ParseError("--workers expects an integer".into()))?;
                        if workers == 0 {
                            return err("--workers must be at least 1");
                        }
                        live.workers = Some(workers);
                    }
                    "--transport" => {
                        let transport = take_value(flag, &mut it)?;
                        if !["chan", "tcp"].contains(&transport) {
                            return err(format!(
                                "unknown transport '{transport}' (use chan or tcp)"
                            ));
                        }
                        live.transport = transport.to_owned();
                    }
                    "--mode" => {
                        let mode = take_value(flag, &mut it)?;
                        if !["virtual", "real"].contains(&mode) {
                            return err(format!("unknown mode '{mode}' (use virtual or real)"));
                        }
                        live.mode = mode.to_owned();
                    }
                    "--time-scale" => {
                        let scale: f64 = take_value(flag, &mut it)?
                            .parse()
                            .map_err(|_| ParseError("--time-scale expects a number".into()))?;
                        if !scale.is_finite() || scale <= 0.0 {
                            return err(format!(
                                "--time-scale {scale} must be finite and positive"
                            ));
                        }
                        live.time_scale = scale;
                    }
                    "--shards" => {
                        let shards: usize = take_value(flag, &mut it)?.parse().map_err(|_| {
                            ParseError("--shards expects a positive integer".into())
                        })?;
                        if shards == 0 {
                            return err("--shards must be at least 1");
                        }
                        live.shards = Some(shards);
                    }
                    "--json" => live.json = true,
                    other => return err(format!("unknown flag '{other}' for 'live'")),
                }
            }
            Ok(Command::Live(live))
        }
        "check" => {
            let mut check = CheckArgs {
                common: CommonArgs {
                    iters: 3,
                    ..CommonArgs::default()
                },
                policy: "full".into(),
                weights: None,
                ctd: None,
                staleness: 0,
                all: false,
                mc: false,
                protocol: false,
                wal: false,
                elastic: false,
            };
            while let Some(flag) = it.next() {
                if parse_common(&mut check.common, flag, &mut it)? {
                    continue;
                }
                match flag {
                    "--policy" => {
                        let policy = take_value(flag, &mut it)?;
                        if !["full", "ads", "hf", "ctd", "none"].contains(&policy) {
                            return err(format!(
                                "unknown policy '{policy}' (use full, ads, hf, ctd or none)"
                            ));
                        }
                        check.policy = policy.to_owned();
                    }
                    "--weights" => {
                        let spec = take_value(flag, &mut it)?;
                        let ws: Result<Vec<u64>, _> = spec.split(',').map(str::parse).collect();
                        check.weights = Some(ws.map_err(|_| {
                            ParseError(format!("bad weight list '{spec}' (use e.g. 1,2,4)"))
                        })?);
                    }
                    "--ctd" => {
                        check.ctd = Some(take_value(flag, &mut it)?.parse().map_err(|_| {
                            ParseError("--ctd expects an integer subset size".into())
                        })?)
                    }
                    "--staleness" => {
                        check.staleness = take_value(flag, &mut it)?
                            .parse()
                            .map_err(|_| ParseError("--staleness expects an integer".into()))?
                    }
                    "--all" => check.all = true,
                    "--mc" => check.mc = true,
                    "--protocol" => check.protocol = true,
                    "--wal" => check.wal = true,
                    "--elastic" => check.elastic = true,
                    other => return err(format!("unknown flag '{other}' for 'check'")),
                }
            }
            Ok(Command::Check(check))
        }
        other => err(format!("unknown command '{other}' (try 'fela help')")),
    }
}

/// The help text.
pub const HELP: &str = "fela — token-scheduled hybrid-parallel DML training (simulated testbed)

USAGE:
  fela run     --model <name> --batch <n> [--iters <n>] [--nodes <n>]
               [--weights w1,w2,…] [--ctd <size>] [--staleness <s>]
               [--no-pipelining] [--shards <n>] [--straggler <spec>]
               [--fault <spec>] [--resize <spec>]… [--json]
               (omit --weights to auto-tune first; with --resize the elastic
                controller re-bins and re-tunes at every resize boundary)
  fela tune    --model <name> --batch <n> [--iters <n>] [--nodes <n>]
  fela compare --model <name> --batch <n> [--iters <n>] [--straggler <spec>]
               [--fault <spec>] [--resize <spec>]…
               (with --resize: elastic Fela vs stop-and-restart DP/HP)
  fela check   --model <name> [--policy full|ads|hf|ctd|none] [--batch <n>]
               [--weights w1,w2,…] [--ctd <size>] [--staleness <s>]
               (static DAG verification + race-checking a traced run;
                omit --weights to verify every Phase-1 candidate vector)
  fela check   --all   (verify the whole zoo × all policies × all candidates)
  fela check   --mc [--protocol]
               (model-check the live runtime: explore every non-equivalent
                message-delivery/lease-fire interleaving of small clusters,
                check deadlock- and lost-wakeup-freedom plus linearizability
                against the monolithic oracle, and prove the seeded-mutation
                matrix is caught; --protocol additionally replays recorded
                executions through the frame-session verifier)
  fela check   --wal
               (replay a logged control-plane run through the oracle: the
                recovered state must be snapshot-equal with no token applied
                twice, and every seeded log mutation — dropped, duplicated,
                reordered record, flipped byte — must be caught with a
                distinct diagnostic)
  fela check   --elastic
               (verify traced resized runs: every grant within its epoch's
                membership, the incremental boundary re-tune bit-identical to
                the full two-phase search, the lease protocol clean across
                boundaries; the seeded elastic mutation matrix — a grant to a
                departed worker, a diverged re-bin — must be caught)
  fela live    --model <name> [--workers <n>] [--transport chan|tcp]
               [--mode virtual|real] [--time-scale <s>] [--weights w1,w2,…]
               [--shards <n>] [--straggler <spec>] [--fault <spec>]
               [--resize <spec>]… [--json]
               (run the Token Server and workers as real threads over the
                wire protocol; virtual mode is byte-identical to the
                simulator, real mode races the wall clock; with --resize each
                epoch is its own live session — joiners hot-join via the
                Hello handshake, leavers drain at the epoch boundary)
  fela models
  fela help

COMMON FLAGS:
  --seed <n>   re-root the straggler/fault realisations (recorded in run
               artifacts)
  --jobs <n>   worker threads for tuning/comparison sweeps
               (default: FELA_JOBS or available parallelism; results are
               identical for every value)
  --results-dir <dir>
               where run artifacts land (default: FELA_RESULTS_DIR or
               results/; the flag wins over the environment)
  --shards <n> control-plane shards for run/live (default: FELA_SHARDS or 1;
               1 = the monolithic token server, >1 = the sharded coordinator
               — schedules are byte-identical either way, only control-plane
               cost changes; must not exceed the model's level count)
  --wal-dir <dir>
               durable control plane: write the Token Server's write-ahead
               log to <dir>/fela.wal (default: in-memory WAL, attached
               automatically when a server fault is declared)
  --checkpoint-every <n>
               checkpoint the control-plane state every <n> completed
               iterations (default 1; 0 = log-only, replay from Begin)

RESIZE SPECS (planned elasticity; takes effect at the start of <iter>):
  none | join:<iter>:<n> | leave:<iter>:<w,…> | churn:<rate>[:<seed>]
  --resize is repeatable: scripted join/leave specs compose into one script
  (one event per iteration); churn stands alone. FELA_RESIZE holds
  whitespace-separated specs as a fallback when no flag is given.
  e.g.  fela run --model googlenet --batch 256 --iters 10 \\
            --resize join:3:2 --resize leave:7:0,4

STRAGGLER SPECS:
  none | round-robin:<delay_secs> | prob:<p>:<delay_secs>[:<seed>]

FAULT SPECS (crashed workers lose their leases; Fela re-grants the tokens):
  none | crash:<iter>:<worker> | crash-restart:<iter>:<worker>:<down_secs>
       | hang:<iter>:<worker>:<secs> | link-down:<iter>:<worker>:<secs>
       | chaos:<p>:<down_secs>[:<seed>]
       | server-crash-restart:<iter>:<down_secs>
         (kills the Token Server itself mid-iteration; the run recovers
          from the write-ahead log and resumes where it left off)
  e.g.  fela run --model vgg19 --batch 128 --iters 10 \\
            --weights 1,2,4 --fault crash-restart:3:2:30

MODELS:
  vgg19 (default), vgg16, googlenet, alexnet, lenet-5, zf-net, resnet-152
";

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_is_help() {
        assert_eq!(parse(&[]).unwrap(), Command::Help);
        assert_eq!(parse(&["help"]).unwrap(), Command::Help);
    }

    #[test]
    fn run_with_everything() {
        let cmd = parse(&[
            "run",
            "--model",
            "googlenet",
            "--batch",
            "512",
            "--iters",
            "20",
            "--nodes",
            "16",
            "--weights",
            "1,2,8",
            "--ctd",
            "2",
            "--staleness",
            "1",
            "--no-pipelining",
            "--straggler",
            "round-robin:4",
            "--json",
        ])
        .unwrap();
        let Command::Run(run) = cmd else { panic!() };
        assert_eq!(run.common.model, "googlenet");
        assert_eq!(run.common.batch, 512);
        assert_eq!(run.common.iters, 20);
        assert_eq!(run.common.nodes, 16);
        assert_eq!(run.weights, Some(vec![1, 2, 8]));
        assert_eq!(run.ctd, Some(2));
        assert_eq!(run.staleness, 1);
        assert!(run.no_pipelining);
        assert!(run.json);
        assert!(matches!(
            run.common.straggler,
            StragglerModel::RoundRobin { .. }
        ));
    }

    #[test]
    fn defaults_are_paper_defaults() {
        let Command::Run(run) = parse(&["run"]).unwrap() else {
            panic!()
        };
        assert_eq!(run.common.model, "vgg19");
        assert_eq!(run.common.batch, 256);
        assert_eq!(run.common.iters, 100);
        assert_eq!(run.common.nodes, 8);
        assert!(run.weights.is_none(), "no weights → tuner runs");
    }

    #[test]
    fn straggler_specs() {
        assert_eq!(parse_straggler("none").unwrap(), StragglerModel::None);
        assert!(matches!(
            parse_straggler("round-robin:6").unwrap(),
            StragglerModel::RoundRobin { .. }
        ));
        match parse_straggler("prob:0.3:6:7").unwrap() {
            StragglerModel::Probabilistic { p, seed, .. } => {
                assert_eq!(p, 0.3);
                assert_eq!(seed, 7);
            }
            _ => panic!(),
        }
        assert!(parse_straggler("prob:1.5:6").is_err());
        assert!(parse_straggler("sometimes").is_err());
    }

    #[test]
    fn straggler_delays_must_be_finite_and_non_negative() {
        for bad in ["inf", "NaN", "-1", "-0.5", "1e400"] {
            assert!(
                parse_straggler(&format!("round-robin:{bad}")).is_err(),
                "{bad}"
            );
            assert!(
                parse_straggler(&format!("prob:0.5:{bad}")).is_err(),
                "{bad}"
            );
        }
        // Fractional delays are fine.
        match parse_straggler("round-robin:0.5").unwrap() {
            StragglerModel::RoundRobin { delay } => {
                assert_eq!(delay, SimDuration::from_millis(500));
            }
            _ => panic!(),
        }
        assert!(parse_straggler("prob:nan:6").is_err(), "NaN probability");
    }

    #[test]
    fn fault_specs() {
        assert_eq!(parse_fault("none").unwrap(), FaultModel::None);
        assert_eq!(
            parse_fault("crash:3:2").unwrap(),
            FaultModel::Scripted {
                worker: 2,
                iteration: 3,
                kind: FaultKind::Crash,
            }
        );
        assert_eq!(
            parse_fault("crash-restart:1:0:30").unwrap(),
            FaultModel::Scripted {
                worker: 0,
                iteration: 1,
                kind: FaultKind::CrashRestart {
                    down: SimDuration::from_secs(30),
                },
            }
        );
        assert!(matches!(
            parse_fault("hang:0:4:2.5").unwrap(),
            FaultModel::Scripted {
                kind: FaultKind::Hang { .. },
                ..
            }
        ));
        assert!(matches!(
            parse_fault("link-down:2:1:10").unwrap(),
            FaultModel::Scripted {
                kind: FaultKind::LinkDown { .. },
                ..
            }
        ));
        match parse_fault("chaos:0.1:5:9").unwrap() {
            FaultModel::Chaos { p, down, seed } => {
                assert_eq!(p, 0.1);
                assert_eq!(down, SimDuration::from_secs(5));
                assert_eq!(seed, 9);
            }
            _ => panic!(),
        }
        match parse_fault("chaos:0.1:5").unwrap() {
            FaultModel::Chaos { seed, .. } => assert_eq!(seed, 42),
            _ => panic!(),
        }
        for bad in [
            "chaos:1.5:5",
            "chaos:nan:5",
            "chaos:0.1:inf",
            "crash:x:2",
            "crash:1:y",
            "crash-restart:1:0:-3",
            "hang:1",
            "explode:1:2",
        ] {
            assert!(parse_fault(bad).is_err(), "{bad} should be rejected");
        }
    }

    #[test]
    fn server_crash_restart_fault_spec() {
        assert_eq!(
            parse_fault("server-crash-restart:2:30").unwrap(),
            FaultModel::ServerCrashRestart {
                iteration: 2,
                down: SimDuration::from_secs(30),
            }
        );
        // Fractional downtime is fine.
        assert_eq!(
            parse_fault("server-crash-restart:0:0.5").unwrap(),
            FaultModel::ServerCrashRestart {
                iteration: 0,
                down: SimDuration::from_millis(500),
            }
        );
        for bad in [
            "server-crash-restart:x:30",
            "server-crash-restart:1:-3",
            "server-crash-restart:1:inf",
            "server-crash-restart:1",
            "server-crash-restart:1:2:3",
        ] {
            assert!(parse_fault(bad).is_err(), "{bad} should be rejected");
        }
        // Reaches CommonArgs through --fault like every other spec.
        let Command::Run(r) = parse(&["run", "--fault", "server-crash-restart:3:10"]).unwrap()
        else {
            panic!()
        };
        assert!(matches!(
            r.common.fault,
            FaultModel::ServerCrashRestart { iteration: 3, .. }
        ));
    }

    #[test]
    fn durability_flags_parse_on_every_scenario_command() {
        let Command::Run(r) =
            parse(&["run", "--wal-dir", "/tmp/wal", "--checkpoint-every", "5"]).unwrap()
        else {
            panic!()
        };
        assert_eq!(r.common.wal_dir.as_deref(), Some("/tmp/wal"));
        assert_eq!(r.common.checkpoint_every, Some(5));
        let Command::Live(l) = parse(&["live", "--checkpoint-every", "0"]).unwrap() else {
            panic!()
        };
        assert_eq!(l.common.checkpoint_every, Some(0), "0 = log-only");
        assert!(l.common.wal_dir.is_none());
        assert!(parse(&["run", "--wal-dir", ""]).is_err());
        assert!(parse(&["run", "--checkpoint-every", "x"]).is_err());
        assert!(parse(&["run", "--checkpoint-every", "-1"]).is_err());
    }

    #[test]
    fn fault_flag_reaches_common_args() {
        let Command::Run(r) = parse(&["run", "--fault", "crash-restart:2:3:15"]).unwrap() else {
            panic!()
        };
        assert!(matches!(
            r.common.fault,
            FaultModel::Scripted {
                worker: 3,
                iteration: 2,
                kind: FaultKind::CrashRestart { .. },
            }
        ));
        let Command::Compare(c) = parse(&["compare", "--fault", "chaos:0.05:20"]).unwrap() else {
            panic!()
        };
        assert!(matches!(c.fault, FaultModel::Chaos { .. }));
        assert!(parse(&["run", "--fault", "explode"]).is_err());
    }

    #[test]
    fn errors_are_descriptive() {
        let e = parse(&["run", "--batch"]).unwrap_err();
        assert!(e.0.contains("expects a value"));
        let e = parse(&["run", "--frobnicate"]).unwrap_err();
        assert!(e.0.contains("unknown flag"));
        let e = parse(&["destroy"]).unwrap_err();
        assert!(e.0.contains("unknown command"));
        let e = parse(&["run", "--weights", "1,x"]).unwrap_err();
        assert!(e.0.contains("bad weight list"));
    }

    #[test]
    fn seed_and_jobs_flags() {
        let Command::Compare(c) = parse(&["compare", "--seed", "99", "--jobs", "4"]).unwrap()
        else {
            panic!()
        };
        assert_eq!(c.seed, Some(99));
        assert_eq!(c.jobs, Some(4));
        let Command::Run(r) = parse(&["run", "--jobs", "2"]).unwrap() else {
            panic!()
        };
        assert_eq!(r.common.jobs, Some(2));
        let e = parse(&["compare", "--jobs", "0"]).unwrap_err();
        assert!(e.0.contains("--jobs must be at least 1"), "{e}");
        assert!(parse(&["compare", "--jobs", "-1"]).is_err());
        assert!(parse(&["compare", "--seed", "x"]).is_err());
    }

    #[test]
    fn fela_jobs_env_is_validated() {
        let e = resolve_jobs_with(None, Some("0")).unwrap_err();
        assert!(e.0.contains("FELA_JOBS"), "{e}");
        assert!(resolve_jobs_with(None, Some("abc")).is_err());
        assert!(resolve_jobs_with(None, Some("-2")).is_err());
        assert_eq!(resolve_jobs_with(None, Some("4")).unwrap(), 4);
        assert_eq!(resolve_jobs_with(None, Some(" 4 ")).unwrap(), 4);
        // An explicit --jobs wins and is already validated at parse time.
        assert_eq!(resolve_jobs_with(Some(3), Some("0")).unwrap(), 3);
        // Unset env falls back to the harness default, which is always ≥ 1.
        assert!(resolve_jobs_with(None, None).unwrap() >= 1);
    }

    #[test]
    fn shards_flag_parses_on_run_and_live() {
        let Command::Run(r) = parse(&["run", "--shards", "3"]).unwrap() else {
            panic!()
        };
        assert_eq!(r.shards, Some(3));
        let Command::Live(l) = parse(&["live", "--shards", "2"]).unwrap() else {
            panic!()
        };
        assert_eq!(l.shards, Some(2));
        // Unset flag defers to resolve_shards (FELA_SHARDS / 1).
        let Command::Run(r) = parse(&["run"]).unwrap() else {
            panic!()
        };
        assert_eq!(r.shards, None);
    }

    #[test]
    fn shards_of_zero_is_a_parse_error() {
        for cmd in ["run", "live"] {
            let e = parse(&[cmd, "--shards", "0"]).unwrap_err();
            assert!(e.0.contains("--shards must be at least 1"), "{e}");
            assert!(parse(&[cmd, "--shards", "-1"]).is_err());
            assert!(parse(&[cmd, "--shards", "x"]).is_err());
        }
    }

    #[test]
    fn resolve_shards_bounds_and_env() {
        // Explicit flag wins over the environment.
        assert_eq!(resolve_shards_with(Some(2), Some("9"), 3).unwrap(), 2);
        // Environment fallback, validated like FELA_JOBS.
        assert_eq!(resolve_shards_with(None, Some("3"), 3).unwrap(), 3);
        assert_eq!(resolve_shards_with(None, Some(" 2 "), 3).unwrap(), 2);
        let e = resolve_shards_with(None, Some("0"), 3).unwrap_err();
        assert!(e.0.contains("FELA_SHARDS"), "{e}");
        assert!(resolve_shards_with(None, Some("abc"), 3).is_err());
        // Default is the monolithic server.
        assert_eq!(resolve_shards_with(None, None, 3).unwrap(), 1);
        // A shard owns at least one level: counts above the level count fail.
        let e = resolve_shards_with(Some(4), None, 3).unwrap_err();
        assert!(e.0.contains("exceeds"), "{e}");
        let e = resolve_shards_with(None, Some("5"), 3).unwrap_err();
        assert!(e.0.contains("exceeds"), "{e}");
        assert_eq!(resolve_shards_with(Some(3), None, 3).unwrap(), 3);
    }

    #[test]
    fn check_parses_policy_and_scope() {
        let Command::Check(c) = parse(&["check", "--model", "vgg19", "--policy", "ads"]).unwrap()
        else {
            panic!()
        };
        assert_eq!(c.common.model, "vgg19");
        assert_eq!(c.policy, "ads");
        assert_eq!(c.common.iters, 3, "check defaults to a short traced run");
        assert!(!c.all);
        assert!(c.weights.is_none());

        let Command::Check(c) = parse(&["check", "--all"]).unwrap() else {
            panic!()
        };
        assert!(c.all);

        let Command::Check(c) = parse(&[
            "check",
            "--policy",
            "ctd",
            "--ctd",
            "4",
            "--weights",
            "1,2,4",
            "--staleness",
            "1",
        ])
        .unwrap() else {
            panic!()
        };
        assert_eq!(c.policy, "ctd");
        assert_eq!(c.ctd, Some(4));
        assert_eq!(c.weights, Some(vec![1, 2, 4]));
        assert_eq!(c.staleness, 1);

        assert!(parse(&["check", "--policy", "fast"]).is_err());
        assert!(parse(&["check", "--frobnicate"]).is_err());

        let Command::Check(c) = parse(&["check", "--wal"]).unwrap() else {
            panic!()
        };
        assert!(c.wal);
        assert!(!c.mc);
    }

    #[test]
    fn live_parses_its_flags_and_defaults() {
        let Command::Live(l) = parse(&["live"]).unwrap() else {
            panic!()
        };
        assert_eq!(l.transport, "chan");
        assert_eq!(l.mode, "virtual");
        assert_eq!(l.common.nodes, 4, "live defaults to a small cluster");
        assert!(l.workers.is_none());

        let Command::Live(l) = parse(&[
            "live",
            "--model",
            "alexnet",
            "--workers",
            "6",
            "--transport",
            "tcp",
            "--mode",
            "real",
            "--time-scale",
            "0.0001",
            "--weights",
            "1,2,4",
            "--fault",
            "crash-restart:2:1:5",
            "--json",
        ])
        .unwrap() else {
            panic!()
        };
        assert_eq!(l.common.model, "alexnet");
        assert_eq!(l.workers, Some(6));
        assert_eq!(l.transport, "tcp");
        assert_eq!(l.mode, "real");
        assert_eq!(l.time_scale, 0.0001);
        assert_eq!(l.weights, Some(vec![1, 2, 4]));
        assert!(l.json);
        assert!(matches!(l.common.fault, FaultModel::Scripted { .. }));

        assert!(parse(&["live", "--transport", "carrier-pigeon"]).is_err());
        assert!(parse(&["live", "--mode", "imaginary"]).is_err());
        assert!(parse(&["live", "--workers", "0"]).is_err());
        assert!(parse(&["live", "--time-scale", "-1"]).is_err());
        assert!(parse(&["live", "--time-scale", "inf"]).is_err());
    }

    #[test]
    fn results_dir_flag_wins_over_environment() {
        // Flag beats env beats default.
        assert_eq!(
            resolve_results_dir_with(Some("/tmp/a"), Some("/tmp/b")),
            std::path::PathBuf::from("/tmp/a")
        );
        assert_eq!(
            resolve_results_dir_with(None, Some("/tmp/b")),
            std::path::PathBuf::from("/tmp/b")
        );
        assert_eq!(
            resolve_results_dir_with(None, None),
            std::path::PathBuf::from("results")
        );
        // The flag parses into CommonArgs and rejects empty paths.
        let Command::Live(l) = parse(&["live", "--results-dir", "out"]).unwrap() else {
            panic!()
        };
        assert_eq!(l.common.results_dir.as_deref(), Some("out"));
        assert!(parse(&["live", "--results-dir", ""]).is_err());
    }

    #[test]
    fn resize_specs() {
        assert_eq!(parse_resize("none").unwrap(), ResizeModel::None);
        assert_eq!(
            parse_resize("join:3:2").unwrap(),
            ResizeModel::Scripted(vec![ResizeEvent {
                iteration: 3,
                action: ResizeAction::Join(2),
            }])
        );
        assert_eq!(
            parse_resize("leave:7:0,4").unwrap(),
            ResizeModel::Scripted(vec![ResizeEvent {
                iteration: 7,
                action: ResizeAction::Leave(vec![0, 4]),
            }])
        );
        match parse_resize("churn:0.3:9").unwrap() {
            ResizeModel::Churn { rate, seed } => {
                assert_eq!(rate, 0.3);
                assert_eq!(seed, 9);
            }
            other => panic!("{other:?}"),
        }
        match parse_resize("churn:0.3").unwrap() {
            ResizeModel::Churn { seed, .. } => assert_eq!(seed, 42),
            other => panic!("{other:?}"),
        }
        for bad in [
            "join:0:2",    // iteration 0 is the initial membership
            "join:3:0",    // joins nobody
            "join:x:2",    // bad iteration
            "join:3",      // missing count
            "leave:4:",    // empty worker list
            "leave:4:1,1", // repeated rank
            "leave:4:1,x", // bad rank
            "churn:1.5",   // rate out of [0, 1]
            "churn:nan",   // non-finite rate
            "churn:0.3:z", // bad seed
            "shrink:3:1",  // unknown verb
        ] {
            assert!(parse_resize(bad).is_err(), "{bad} should be rejected");
        }
    }

    #[test]
    fn repeated_resize_flags_compose_into_one_sorted_script() {
        let Command::Run(r) =
            parse(&["run", "--resize", "leave:7:0,4", "--resize", "join:3:2"]).unwrap()
        else {
            panic!()
        };
        assert_eq!(
            r.common.resize,
            ResizeModel::Scripted(vec![
                ResizeEvent {
                    iteration: 3,
                    action: ResizeAction::Join(2),
                },
                ResizeEvent {
                    iteration: 7,
                    action: ResizeAction::Leave(vec![0, 4]),
                },
            ])
        );
        // Two events on the same boundary cannot compose.
        let e = parse(&["run", "--resize", "join:3:1", "--resize", "leave:3:0"]).unwrap_err();
        assert!(e.0.contains("one event per iteration"), "{e}");
        // Churn composes with nothing.
        assert!(parse(&["run", "--resize", "churn:0.2", "--resize", "join:3:1"]).is_err());
        assert!(parse(&["run", "--resize", "join:3:1", "--resize", "churn:0.2"]).is_err());
        // A trailing `none` resets the accumulated script.
        let Command::Run(r) = parse(&["run", "--resize", "join:3:1", "--resize", "none"]).unwrap()
        else {
            panic!()
        };
        assert!(r.common.resize.is_none());
        // The flag parses on every scenario command.
        let Command::Live(l) = parse(&["live", "--resize", "join:2:1"]).unwrap() else {
            panic!()
        };
        assert!(!l.common.resize.is_none());
        let Command::Compare(c) = parse(&["compare", "--resize", "churn:0.1"]).unwrap() else {
            panic!()
        };
        assert!(matches!(c.resize, ResizeModel::Churn { .. }));
    }

    #[test]
    fn fela_resize_env_is_a_fallback_only() {
        // Explicit flag wins regardless of the environment.
        let flag = ResizeModel::Churn { rate: 0.1, seed: 1 };
        assert_eq!(resolve_resize_with(&flag, Some("join:2:1")).unwrap(), flag);
        // Unset env, no flag → no resizes.
        assert_eq!(
            resolve_resize_with(&ResizeModel::None, None).unwrap(),
            ResizeModel::None
        );
        // Whitespace-separated specs compose like repeated flags.
        let m = resolve_resize_with(&ResizeModel::None, Some("join:3:2  leave:7:0")).unwrap();
        assert_eq!(
            m,
            ResizeModel::Scripted(vec![
                ResizeEvent {
                    iteration: 3,
                    action: ResizeAction::Join(2),
                },
                ResizeEvent {
                    iteration: 7,
                    action: ResizeAction::Leave(vec![0]),
                },
            ])
        );
        // Malformed env is a named error, not a silent ignore.
        let e = resolve_resize_with(&ResizeModel::None, Some("join:0:2")).unwrap_err();
        assert!(e.0.contains("FELA_RESIZE"), "{e}");
        assert!(resolve_resize_with(&ResizeModel::None, Some("churn:0.1 join:2:1")).is_err());
    }

    #[test]
    fn check_elastic_flag_parses() {
        let Command::Check(c) = parse(&["check", "--elastic"]).unwrap() else {
            panic!()
        };
        assert!(c.elastic);
        assert!(!c.wal && !c.mc);
    }

    #[test]
    fn tune_and_compare_share_common_flags() {
        let Command::Tune(c) = parse(&["tune", "--batch", "64"]).unwrap() else {
            panic!()
        };
        assert_eq!(c.batch, 64);
        let Command::Compare(c) = parse(&["compare", "--straggler", "prob:0.2:3"]).unwrap() else {
            panic!()
        };
        assert!(matches!(c.straggler, StragglerModel::Probabilistic { .. }));
    }

    // ---- resize-spec property tests --------------------------------------

    use proptest::prelude::*;

    proptest! {
        #[test]
        fn well_formed_resize_specs_always_parse_valid(
            kind in 0usize..3,
            it in 1u64..1000,
            n in 1usize..64,
            raw_ranks in prop::collection::vec(0usize..64, 1..8),
            rate in 0.0f64..1.0,
            seed in any::<u64>(),
        ) {
            let mut ranks = raw_ranks;
            ranks.sort_unstable();
            ranks.dedup();
            let spec = match kind {
                0 => format!("join:{it}:{n}"),
                1 => {
                    let list: Vec<String> =
                        ranks.iter().map(usize::to_string).collect();
                    format!("leave:{it}:{}", list.join(","))
                }
                _ => format!("churn:{rate}:{seed}"),
            };
            let model = parse_resize(&spec).expect("well-formed spec");
            prop_assert!(model.validate().is_ok());
            prop_assert!(!model.is_none());
        }

        #[test]
        fn resize_parsing_never_panics(bytes in prop::collection::vec(0usize..16, 0..40)) {
            // Arbitrary input over the spec alphabet either parses to a
            // valid model or errors — never panics.
            const ALPHABET: &[u8; 16] = b"jolinecurh:,.059";
            let spec: String =
                bytes.iter().map(|&b| ALPHABET[b] as char).collect();
            if let Ok(model) = parse_resize(&spec) {
                prop_assert!(model.validate().is_ok());
            }
        }

        #[test]
        fn disjoint_scripted_specs_always_compose(
            raw_its in prop::collection::vec(1u64..1000, 1..6),
            n in 1usize..8,
        ) {
            // Any set of distinct boundaries composes, in any order, into
            // one valid sorted script.
            let mut its = raw_its;
            its.sort_unstable();
            its.dedup();
            let half = its.len() / 2;
            its.rotate_left(half); // not sorted when len > 1
            let mut model = ResizeModel::None;
            for it in &its {
                let next = parse_resize(&format!("join:{it}:{n}")).expect("parses");
                model = merge_resize(model, next).expect("disjoint specs compose");
            }
            let ResizeModel::Scripted(events) = model else {
                panic!("expected a script");
            };
            prop_assert_eq!(events.len(), its.len());
            prop_assert!(events.windows(2).all(|p| p[0].iteration < p[1].iteration));
        }
    }
}
