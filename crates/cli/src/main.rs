//! `fela` — command-line front end to the Fela reproduction.
//!
//! ```text
//! fela run --model vgg19 --batch 256 --iters 100 --weights 1,2,4 --ctd 2
//! fela tune --model googlenet --batch 512
//! fela compare --model vgg19 --batch 256 --straggler round-robin:6
//! fela models
//! ```

mod args;

use args::{Command, CommonArgs, RunArgs, HELP};
use fela_baselines::{DpRuntime, HpRuntime, MpRuntime};
use fela_cluster::{ClusterSpec, Scenario, TrainingRuntime};
use fela_core::{FelaConfig, FelaRuntime};
use fela_harness::SweepSpec;
use fela_metrics::{f2, format_speedup, Table};
use fela_model::zoo;
use fela_tuning::Tuner;
use std::process::ExitCode;

/// The worker-thread count for a command: `--jobs`, else `FELA_JOBS`/auto.
fn jobs_from(common: &CommonArgs) -> usize {
    common.jobs.unwrap_or_else(fela_harness::default_jobs)
}

fn model_by_cli_name(name: &str) -> Option<fela_model::Model> {
    let canonical = match name.to_ascii_lowercase().as_str() {
        "vgg19" => "VGG19",
        "vgg16" => "VGG16",
        "googlenet" => "GoogleNet",
        "alexnet" => "AlexNet",
        "lenet-5" | "lenet5" | "lenet" => "LeNet-5",
        "zf-net" | "zfnet" => "ZF Net",
        "resnet-152" | "resnet152" => "ResNet-152",
        _ => return None,
    };
    zoo::build_by_name(canonical)
}

fn scenario_from(common: &CommonArgs) -> Result<Scenario, String> {
    let model = model_by_cli_name(&common.model)
        .ok_or_else(|| format!("unknown model '{}' (try 'fela models')", common.model))?;
    let mut sc = Scenario::paper(model, common.batch).with_iterations(common.iters);
    if common.nodes != 8 {
        sc.cluster = ClusterSpec::k40c_cluster(common.nodes);
    }
    sc.straggler = common.straggler;
    if let Some(seed) = common.seed {
        sc.straggler = sc.straggler.with_seed(seed);
    }
    Ok(sc)
}

fn cmd_models() {
    let mut table = Table::new(
        "Model zoo (Table I)",
        &["name", "year", "layers", "params", "fwd GFLOP/sample"],
    );
    for info in zoo::TABLE_I {
        let built = zoo::build_by_name(info.name);
        table.row(vec![
            info.name.to_owned(),
            info.year.to_string(),
            info.layer_number.to_string(),
            built
                .as_ref()
                .map(|m| m.param_count().to_string())
                .unwrap_or_else(|| "(metadata only)".into()),
            built
                .as_ref()
                .map(|m| format!("{:.2}", m.forward_flops() as f64 / 1e9))
                .unwrap_or_else(|| "-".into()),
        ]);
    }
    print!("{}", table.render());
}

fn cmd_run(run: &RunArgs) -> Result<(), String> {
    let sc = scenario_from(&run.common)?;
    let m = {
        let probe = FelaRuntime::new(FelaConfig::new(1));
        probe.partition_for(&sc).len()
    };
    let mut config = match &run.weights {
        Some(w) => {
            if w.len() != m {
                return Err(format!(
                    "--weights needs {m} entries for this model's partition, got {}",
                    w.len()
                ));
            }
            FelaConfig::new(m).with_weights(w.clone())
        }
        None => {
            eprintln!("no --weights given: running the two-phase tuner first…");
            Tuner::default()
                .tune_with_jobs(&sc, jobs_from(&run.common))
                .best_config
        }
    };
    if let Some(ctd) = run.ctd {
        config = config.with_ctd(ctd);
    }
    config = config
        .with_staleness(run.staleness)
        .with_pipelining(!run.no_pipelining);
    config.validate(sc.cluster.nodes);

    let report = FelaRuntime::new(config.clone()).run(&sc);
    if run.json {
        println!(
            "{}",
            serde_json::to_string_pretty(&report).map_err(|e| e.to_string())?
        );
        return Ok(());
    }
    let mut table = Table::new(
        format!(
            "Fela — {} @ batch {}, {} iterations, {} nodes",
            sc.model.name, sc.total_batch, sc.iterations, sc.cluster.nodes
        ),
        &["metric", "value"],
    );
    table.row(vec!["weights".into(), format!("{:?}", config.weights)]);
    table.row(vec![
        "CTD subset".into(),
        config
            .ctd
            .map(|c| c.subset_size.to_string())
            .unwrap_or_else(|| "off".into()),
    ]);
    table.row(vec![
        "throughput (samples/s)".into(),
        f2(report.average_throughput()),
    ]);
    table.row(vec!["total time (s)".into(), f2(report.total_time_secs)]);
    table.row(vec![
        "mean iteration (s)".into(),
        f2(report.mean_iteration_secs()),
    ]);
    table.row(vec![
        "GPU utilisation".into(),
        f2(report.mean_utilization()),
    ]);
    table.row(vec![
        "network traffic (GB)".into(),
        f2(report.network_bytes as f64 / 1e9),
    ]);
    table.row(vec![
        "tokens granted".into(),
        report.counter("grants").to_string(),
    ]);
    table.row(vec![
        "helper steals".into(),
        report.counter("steals").to_string(),
    ]);
    table.row(vec![
        "lock conflicts".into(),
        report.counter("conflicts").to_string(),
    ]);
    print!("{}", table.render());
    Ok(())
}

fn cmd_tune(common: &CommonArgs) -> Result<(), String> {
    let sc = scenario_from(common)?;
    let outcome = Tuner::default().tune_with_jobs(&sc, jobs_from(common));
    let mut table = Table::new(
        format!("Tuning {} @ batch {}", sc.model.name, sc.total_batch),
        &[
            "case",
            "phase",
            "weights",
            "CTD subset",
            "per-iteration (s)",
        ],
    );
    for c in &outcome.cases {
        table.row(vec![
            c.case.id.to_string(),
            c.case.phase.to_string(),
            format!("{:?}", c.case.weights),
            c.case
                .subset
                .map(|s| s.to_string())
                .unwrap_or_else(|| "off".into()),
            c.per_iteration_secs
                .map(|t| format!("{t:.3}"))
                .unwrap_or_else(|| "infeasible".into()),
        ]);
    }
    print!("{}", table.render());
    let best = &outcome.cases[outcome.best].case;
    println!(
        "winner: weights {:?}, CTD subset {} — rerun with:\n  fela run --model {} --batch {} --weights {}{}",
        best.weights,
        best.subset.map(|s| s.to_string()).unwrap_or_else(|| "off".into()),
        common.model,
        common.batch,
        best.weights
            .iter()
            .map(u64::to_string)
            .collect::<Vec<_>>()
            .join(","),
        best.subset
            .map(|s| format!(" --ctd {s}"))
            .unwrap_or_default()
    );
    Ok(())
}

fn cmd_compare(common: &CommonArgs) -> Result<(), String> {
    let sc = scenario_from(common)?;
    let jobs = jobs_from(common);
    eprintln!("tuning Fela first…");
    let fela_config = Tuner::default().tune_with_jobs(&sc, jobs).best_config;

    // One harness sweep: four runtimes × this scenario. Labels come from each
    // runtime's own name() so reports and artifacts agree with the runtimes.
    let fela = FelaRuntime::new(fela_config);
    let fela_label = fela.name();
    let scenario_label = format!("{}/b{}", sc.model.name, sc.total_batch);
    let result = SweepSpec::new("compare")
        .runtime_factory(fela_label, fela_harness::sweep::share_runtime(fela))
        .runtime(DpRuntime::default().name(), |_| {
            Box::new(DpRuntime::default())
        })
        .runtime(MpRuntime::default().name(), |_| {
            Box::new(MpRuntime::default())
        })
        .runtime(HpRuntime.name(), |_| Box::new(HpRuntime))
        .scenario(scenario_label.clone(), sc.clone())
        .with_seed(common.seed)
        .run(jobs);
    if let Err(e) = result.write_artifacts() {
        eprintln!("warning: cannot write compare artifacts: {e}");
    }

    let mut table = Table::new(
        format!(
            "{} @ batch {}, {} iterations{}",
            sc.model.name,
            sc.total_batch,
            sc.iterations,
            if sc.straggler.is_none() {
                ""
            } else {
                " (stragglers injected)"
            }
        ),
        &[
            "runtime",
            "samples/s",
            "GPU util",
            "wire GB",
            "Fela speedup",
        ],
    );
    let fela_at = result
        .report(fela_label, &scenario_label)
        .average_throughput();
    for record in &result.records {
        let report = &record.report;
        table.row(vec![
            record.runtime.clone(),
            f2(report.average_throughput()),
            f2(report.mean_utilization()),
            f2(report.network_bytes as f64 / 1e9),
            if record.runtime == fela_label {
                "-".into()
            } else {
                format_speedup(fela_at / report.average_throughput())
            },
        ]);
    }
    print!("{}", table.render());
    Ok(())
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let argv_refs: Vec<&str> = argv.iter().map(String::as_str).collect();
    let command = match args::parse(&argv_refs) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}\n\n{HELP}");
            return ExitCode::FAILURE;
        }
    };
    let result = match &command {
        Command::Help => {
            print!("{HELP}");
            Ok(())
        }
        Command::Models => {
            cmd_models();
            Ok(())
        }
        Command::Run(run) => cmd_run(run),
        Command::Tune(common) => cmd_tune(common),
        Command::Compare(common) => cmd_compare(common),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
