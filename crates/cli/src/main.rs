//! `fela` — command-line front end to the Fela reproduction.
//!
//! ```text
//! fela run --model vgg19 --batch 256 --iters 100 --weights 1,2,4 --ctd 2
//! fela tune --model googlenet --batch 512
//! fela compare --model vgg19 --batch 256 --straggler round-robin:6
//! fela models
//! ```

mod args;

use args::{CheckArgs, Command, CommonArgs, LiveArgs, RunArgs, HELP};
use fela_baselines::{DpRuntime, HpRuntime, MpRuntime};
use fela_cluster::{ClusterSpec, Scenario, TrainingRuntime};
use fela_core::{FelaConfig, FelaRuntime};
use fela_harness::SweepSpec;
use fela_metrics::{f2, format_speedup, RunReport, Table};
use fela_model::zoo;
use fela_tuning::Tuner;
use std::process::ExitCode;

/// The worker-thread count for a command: `--jobs`, else `FELA_JOBS`/auto.
/// A malformed `FELA_JOBS` (e.g. `0`) is a user-facing error, not a clamp.
fn jobs_from(common: &CommonArgs) -> Result<usize, String> {
    args::resolve_jobs(common.jobs).map_err(|e| e.to_string())
}

fn model_by_cli_name(name: &str) -> Option<fela_model::Model> {
    let canonical = match name.to_ascii_lowercase().as_str() {
        "vgg19" => "VGG19",
        "vgg16" => "VGG16",
        "googlenet" => "GoogleNet",
        "alexnet" => "AlexNet",
        "lenet-5" | "lenet5" | "lenet" => "LeNet-5",
        "zf-net" | "zfnet" => "ZF Net",
        "resnet-152" | "resnet152" => "ResNet-152",
        _ => return None,
    };
    zoo::build_by_name(canonical)
}

/// Control-plane durability options from the shared `--wal-dir` /
/// `--checkpoint-every` flags; `None` when neither was given (the runtimes
/// then attach an in-memory WAL only if a server fault demands one).
fn durability_from(common: &CommonArgs) -> Option<fela_core::DurabilityOptions> {
    if common.wal_dir.is_none() && common.checkpoint_every.is_none() {
        return None;
    }
    Some(fela_core::DurabilityOptions {
        wal_dir: common.wal_dir.as_ref().map(std::path::PathBuf::from),
        checkpoint_every: common.checkpoint_every.unwrap_or(1),
    })
}

fn scenario_from(common: &CommonArgs) -> Result<Scenario, String> {
    let model = model_by_cli_name(&common.model)
        .ok_or_else(|| format!("unknown model '{}' (try 'fela models')", common.model))?;
    let mut sc = Scenario::paper(model, common.batch).with_iterations(common.iters);
    if common.nodes != 8 {
        sc.cluster = ClusterSpec::k40c_cluster(common.nodes);
    }
    sc.straggler = common.straggler;
    sc.fault = common.fault;
    sc.resize = args::resolve_resize(&common.resize).map_err(|e| e.to_string())?;
    if let Some(seed) = common.seed {
        sc.straggler = sc.straggler.with_seed(seed);
        sc.fault = sc.fault.with_seed(seed);
        sc.resize = sc.resize.with_seed(seed);
    }
    Ok(sc)
}

fn cmd_models() {
    let mut table = Table::new(
        "Model zoo (Table I)",
        &["name", "year", "layers", "params", "fwd GFLOP/sample"],
    );
    for info in zoo::TABLE_I {
        let built = zoo::build_by_name(info.name);
        table.row(vec![
            info.name.to_owned(),
            info.year.to_string(),
            info.layer_number.to_string(),
            built
                .as_ref()
                .map(|m| m.param_count().to_string())
                .unwrap_or_else(|| "(metadata only)".into()),
            built
                .as_ref()
                .map(|m| format!("{:.2}", m.forward_flops() as f64 / 1e9))
                .unwrap_or_else(|| "-".into()),
        ]);
    }
    print!("{}", table.render());
}

/// `fela run --resize …`: the elastic path. The controller re-bins and
/// re-tunes at every boundary, so per-epoch weights are chosen online —
/// explicit `--weights`/`--ctd` would contradict that and are rejected.
fn cmd_run_elastic(run: &RunArgs, sc: &Scenario) -> Result<(), String> {
    if run.weights.is_some() || run.ctd.is_some() {
        return Err(
            "--weights/--ctd cannot combine with --resize: the elastic controller \
             re-tunes the configuration at every resize boundary"
                .into(),
        );
    }
    let runtime = fela_elastic::ElasticRuntime::new(fela_elastic::ElasticOptions::default());
    let outcome = runtime.run_elastic(sc).map_err(|e| e.to_string())?;
    if run.json {
        #[derive(serde::Serialize)]
        struct ElasticRunPayload {
            report: RunReport,
            epochs: Vec<fela_elastic::EpochSummary>,
        }
        let payload = ElasticRunPayload {
            report: outcome.report.clone(),
            epochs: outcome
                .plan
                .epochs
                .iter()
                .map(fela_elastic::EpochPlan::summary)
                .collect(),
        };
        println!(
            "{}",
            serde_json::to_string_pretty(&payload).map_err(|e| e.to_string())?
        );
        return Ok(());
    }
    let mut epochs = Table::new(
        format!(
            "Fela elastic — {} @ batch {}, {} iterations, {} resize(s)",
            sc.model.name,
            sc.total_batch,
            sc.iterations,
            outcome.plan.resizes()
        ),
        &[
            "epoch",
            "from iter",
            "iters",
            "workers",
            "batch",
            "weights",
            "profiled",
            "reused",
            "transition (s)",
        ],
    );
    for e in &outcome.plan.epochs {
        let s = e.summary();
        epochs.row(vec![
            s.index.to_string(),
            s.start_iteration.to_string(),
            s.iterations.to_string(),
            s.n_workers.to_string(),
            s.total_batch.to_string(),
            format!("{:?}", s.weights),
            s.retune_profiled.to_string(),
            s.retune_reused.to_string(),
            f2(s.transition_secs),
        ]);
    }
    print!("{}", epochs.render());
    let report = &outcome.report;
    let mut table = Table::new("Stitched run", &["metric", "value"]);
    table.row(vec![
        "total time (s, incl. transitions)".into(),
        f2(report.total_time_secs),
    ]);
    table.row(vec![
        "transition overhead (s)".into(),
        f2(outcome.plan.total_transition_secs),
    ]);
    table.row(vec![
        "throughput (samples/s)".into(),
        f2(report.average_throughput()),
    ]);
    table.row(vec![
        "samples trained".into(),
        report.counter("elastic_samples").to_string(),
    ]);
    table.row(vec![
        "join / leave events".into(),
        format!(
            "{} / {}",
            report.counter("elastic_joins"),
            report.counter("elastic_leaves")
        ),
    ]);
    table.row(vec![
        "retune cases profiled / reused".into(),
        format!(
            "{} / {}",
            report.counter("elastic_retune_profiled"),
            report.counter("elastic_retune_reused")
        ),
    ]);
    print!("{}", table.render());
    Ok(())
}

fn cmd_run(run: &RunArgs) -> Result<(), String> {
    let sc = scenario_from(&run.common)?;
    if !sc.resize.is_none() {
        return cmd_run_elastic(run, &sc);
    }
    let m = {
        let probe = FelaRuntime::new(FelaConfig::new(1));
        probe.partition_for(&sc).len()
    };
    let mut config = match &run.weights {
        Some(w) => {
            if w.len() != m {
                return Err(format!(
                    "--weights needs {m} entries for this model's partition, got {}",
                    w.len()
                ));
            }
            FelaConfig::new(m).with_weights(w.clone())
        }
        None => {
            eprintln!("no --weights given: running the two-phase tuner first…");
            Tuner::default()
                .tune_with_jobs(&sc, jobs_from(&run.common)?)
                .best_config
        }
    };
    if let Some(ctd) = run.ctd {
        config = config.with_ctd(ctd);
    }
    config = config
        .with_staleness(run.staleness)
        .with_pipelining(!run.no_pipelining)
        .with_shards(args::resolve_shards(run.shards, m).map_err(|e| e.to_string())?);
    config.validate(sc.cluster.nodes);

    let mut runtime = FelaRuntime::new(config.clone());
    if let Some(d) = durability_from(&run.common) {
        runtime = runtime.with_durability(d);
    }
    let report = runtime.run(&sc);
    if run.json {
        println!(
            "{}",
            serde_json::to_string_pretty(&report).map_err(|e| e.to_string())?
        );
        return Ok(());
    }
    let mut table = Table::new(
        format!(
            "Fela — {} @ batch {}, {} iterations, {} nodes",
            sc.model.name, sc.total_batch, sc.iterations, sc.cluster.nodes
        ),
        &["metric", "value"],
    );
    table.row(vec!["weights".into(), format!("{:?}", config.weights)]);
    table.row(vec![
        "CTD subset".into(),
        config
            .ctd
            .map(|c| c.subset_size.to_string())
            .unwrap_or_else(|| "off".into()),
    ]);
    table.row(vec![
        "throughput (samples/s)".into(),
        f2(report.average_throughput()),
    ]);
    table.row(vec!["total time (s)".into(), f2(report.total_time_secs)]);
    table.row(vec![
        "mean iteration (s)".into(),
        f2(report.mean_iteration_secs()),
    ]);
    table.row(vec![
        "GPU utilisation".into(),
        f2(report.mean_utilization()),
    ]);
    table.row(vec![
        "network traffic (GB)".into(),
        f2(report.network_bytes as f64 / 1e9),
    ]);
    table.row(vec![
        "tokens granted".into(),
        report.counter("grants").to_string(),
    ]);
    table.row(vec![
        "helper steals".into(),
        report.counter("steals").to_string(),
    ]);
    table.row(vec![
        "lock conflicts".into(),
        report.counter("conflicts").to_string(),
    ]);
    if !sc.fault.is_none() {
        for (label, key) in [
            ("crashes", "crashes"),
            ("restarts", "restarts"),
            ("leases revoked", "revocations"),
            ("stale reports", "stale_reports"),
            ("workers quarantined", "quarantined"),
            ("server crashes", "server_crashes"),
            ("server restarts", "server_restarts"),
        ] {
            table.row(vec![label.into(), report.counter(key).to_string()]);
        }
    }
    print!("{}", table.render());
    Ok(())
}

fn cmd_tune(common: &CommonArgs) -> Result<(), String> {
    let sc = scenario_from(common)?;
    if !sc.resize.is_none() {
        return Err("tune works on a fixed membership; for resized runs use \
             'fela run --resize …' (the elastic controller re-tunes per epoch)"
            .into());
    }
    let outcome = Tuner::default().tune_with_jobs(&sc, jobs_from(common)?);
    let mut table = Table::new(
        format!("Tuning {} @ batch {}", sc.model.name, sc.total_batch),
        &[
            "case",
            "phase",
            "weights",
            "CTD subset",
            "per-iteration (s)",
        ],
    );
    for c in &outcome.cases {
        table.row(vec![
            c.case.id.to_string(),
            c.case.phase.to_string(),
            format!("{:?}", c.case.weights),
            c.case
                .subset
                .map(|s| s.to_string())
                .unwrap_or_else(|| "off".into()),
            c.per_iteration_secs
                .map(|t| format!("{t:.3}"))
                .unwrap_or_else(|| "infeasible".into()),
        ]);
    }
    print!("{}", table.render());
    let best = &outcome.cases[outcome.best].case;
    println!(
        "winner: weights {:?}, CTD subset {} — rerun with:\n  fela run --model {} --batch {} --weights {}{}",
        best.weights,
        best.subset.map(|s| s.to_string()).unwrap_or_else(|| "off".into()),
        common.model,
        common.batch,
        best.weights
            .iter()
            .map(u64::to_string)
            .collect::<Vec<_>>()
            .join(","),
        best.subset
            .map(|s| format!(" --ctd {s}"))
            .unwrap_or_default()
    );
    Ok(())
}

fn cmd_compare(common: &CommonArgs) -> Result<(), String> {
    let sc = scenario_from(common)?;
    let jobs = jobs_from(common)?;
    let scenario_label = format!("{}/b{}", sc.model.name, sc.total_batch);
    let result = if sc.resize.is_none() {
        eprintln!("tuning Fela first…");
        let fela_config = Tuner::default().tune_with_jobs(&sc, jobs).best_config;

        // One harness sweep: four runtimes × this scenario. Labels come from
        // each runtime's own name() so reports and artifacts agree with the
        // runtimes.
        let fela = FelaRuntime::new(fela_config);
        SweepSpec::new("compare")
            .runtime_factory(fela.name(), fela_harness::sweep::share_runtime(fela))
            .runtime(DpRuntime::default().name(), |_| {
                Box::new(DpRuntime::default())
            })
            .runtime(MpRuntime::default().name(), |_| {
                Box::new(MpRuntime::default())
            })
            .runtime(HpRuntime.name(), |_| Box::new(HpRuntime))
            .scenario(scenario_label.clone(), sc.clone())
            .with_seed(common.seed)
            .run(jobs)
    } else {
        // Elastic comparison: Fela re-tunes and keeps training across each
        // boundary; the baselines stop the job and relaunch it at the new
        // membership. Each runtime tunes per epoch internally, so no
        // up-front tuning pass.
        use fela_elastic::{ElasticOptions, ElasticRuntime, StopRestartRuntime};
        ElasticRuntime::new(ElasticOptions::default())
            .plan(&sc)
            .map_err(|e| e.to_string())?;
        SweepSpec::new("compare-elastic")
            .runtime("fela-elastic", |_| {
                Box::new(ElasticRuntime::new(ElasticOptions::default()))
            })
            .runtime("dp-restart", |_| {
                Box::new(StopRestartRuntime::new(DpRuntime::default(), "dp-restart"))
            })
            .runtime("hp-restart", |_| {
                Box::new(StopRestartRuntime::new(HpRuntime, "hp-restart"))
            })
            .scenario(scenario_label.clone(), sc.clone())
            .with_seed(common.seed)
            .run(jobs)
    };
    let fela_label = if sc.resize.is_none() {
        FelaRuntime::new(FelaConfig::new(1)).name()
    } else {
        "fela-elastic"
    };
    let dir = args::resolve_results_dir(common.results_dir.as_deref());
    if let Err(e) = result.write_artifacts_to(&dir) {
        eprintln!("warning: cannot write compare artifacts: {e}");
    }

    let mut table = Table::new(
        format!(
            "{} @ batch {}, {} iterations{}",
            sc.model.name,
            sc.total_batch,
            sc.iterations,
            match (sc.straggler.is_none(), sc.fault.is_none()) {
                (true, true) => "",
                (false, true) => " (stragglers injected)",
                (true, false) => " (faults injected)",
                (false, false) => " (stragglers + faults injected)",
            }
        ),
        &[
            "runtime",
            "samples/s",
            "GPU util",
            "wire GB",
            "Fela speedup",
        ],
    );
    let fela_at = result
        .report(fela_label, &scenario_label)
        .average_throughput();
    for record in &result.records {
        let report = &record.report;
        table.row(vec![
            record.runtime.clone(),
            f2(report.average_throughput()),
            f2(report.mean_utilization()),
            f2(report.network_bytes as f64 / 1e9),
            if record.runtime == fela_label {
                "-".into()
            } else {
                format_speedup(fela_at / report.average_throughput())
            },
        ]);
    }
    print!("{}", table.render());
    Ok(())
}

/// `fela live`: run the Token Server and workers as real OS threads over the
/// wire protocol, then record the outcome as a [`fela_harness::RunRecord`].
fn cmd_live(live: &LiveArgs) -> Result<(), String> {
    let mut common = live.common.clone();
    if let Some(workers) = live.workers {
        common.nodes = workers;
    }
    let sc = scenario_from(&common)?;
    if !sc.resize.is_none() {
        return cmd_live_elastic(live, &common, &sc);
    }
    let m = {
        let probe = FelaRuntime::new(FelaConfig::new(1));
        probe.partition_for(&sc).len()
    };
    let config = match &live.weights {
        Some(w) => {
            if w.len() != m {
                return Err(format!(
                    "--weights needs {m} entries for this model's partition, got {}",
                    w.len()
                ));
            }
            FelaConfig::new(m).with_weights(w.clone())
        }
        None => FelaConfig::new(m),
    };
    let config =
        config.with_shards(args::resolve_shards(live.shards, m).map_err(|e| e.to_string())?);
    config.validate(sc.cluster.nodes);
    let mut transport = fela_live::transport_by_name(&live.transport)
        .ok_or_else(|| format!("unknown transport '{}'", live.transport))?;

    let scenario_label = format!("{}/b{}", sc.model.name, sc.total_batch);
    let durability = durability_from(&common);
    let mut extra_rows: Vec<(String, String)> = Vec::new();
    let (runtime_label, report) = if live.mode == "virtual" {
        if durability.is_some() {
            eprintln!("warning: --wal-dir/--checkpoint-every only apply to --mode real; ignored");
        }
        let outcome = fela_live::run_virtual(&config, &sc, transport.as_mut())
            .map_err(|e| format!("live run failed: {e}"))?;
        let label = format!("fela-live:virtual:{}", outcome.transport);
        extra_rows.push((
            "conformance".into(),
            "trace + report byte-identical to the simulator".into(),
        ));
        extra_rows.push((
            "replica params".into(),
            format!("{} bytes, all workers agree", outcome.params.len()),
        ));
        (label, outcome.report)
    } else {
        let opts = fela_live::RealOptions {
            time_scale: live.time_scale,
            ..fela_live::RealOptions::default()
        };
        let outcome = match &durability {
            Some(d) => fela_live::run_real_durable(&config, &sc, transport.as_mut(), opts, d),
            None => fela_live::run_real(&config, &sc, transport.as_mut(), opts),
        }
        .map_err(|e| format!("live run failed: {e}"))?;
        let label = format!("fela-live:real:{}", outcome.transport);
        // Real-clock runs measure the wall clock, so the report carries real
        // seconds — unlike simulator records, which are virtual-time only.
        let mut report = RunReport::new(label.clone(), sc.model.name.clone(), sc.total_batch);
        report.iterations = outcome.iterations;
        report.total_time_secs = outcome.elapsed_secs;
        report.bump("grants", outcome.grants);
        report.bump("stale_reports", outcome.stale_reports);
        report.bump("crashes", outcome.crashes);
        report.bump("restarts", outcome.restarts);
        report.bump("revocations", outcome.revocations);
        report.bump("server_crashes", outcome.server_crashes);
        report.bump("server_restarts", outcome.server_restarts);
        for (w, trained) in outcome.trained_per_worker.iter().enumerate() {
            report.bump(&format!("trained_worker_{w}"), *trained);
        }
        extra_rows.push((
            "token throughput".into(),
            format!("{:.0} tokens/s (wall clock)", outcome.tokens_per_sec),
        ));
        extra_rows.push((
            "replica params".into(),
            format!("{} bytes, all workers agree", outcome.params.len()),
        ));
        (label, report)
    };

    let record = fela_harness::RunRecord::new(
        "live",
        &runtime_label,
        &scenario_label,
        &sc,
        common.seed,
        report.clone(),
    );
    let dir = args::resolve_results_dir(common.results_dir.as_deref());
    match fela_harness::write_jsonl_to(&dir, "live", std::slice::from_ref(&record)) {
        Ok(path) => eprintln!("[live] 1 run -> {}", path.display()),
        Err(e) => eprintln!("warning: cannot write live artifacts: {e}"),
    }

    if live.json {
        println!(
            "{}",
            serde_json::to_string_pretty(&record).map_err(|e| e.to_string())?
        );
        return Ok(());
    }
    let mut table = Table::new(
        format!(
            "fela live — {} @ batch {}, {} iterations, {} workers",
            sc.model.name, sc.total_batch, sc.iterations, sc.cluster.nodes
        ),
        &["metric", "value"],
    );
    table.row(vec!["runtime".into(), runtime_label]);
    table.row(vec!["transport".into(), live.transport.clone()]);
    table.row(vec!["mode".into(), live.mode.clone()]);
    table.row(vec!["weights".into(), format!("{:?}", config.weights)]);
    table.row(vec![
        if live.mode == "virtual" {
            "simulated time (s)".into()
        } else {
            "wall time (s)".into()
        },
        f2(report.total_time_secs),
    ]);
    table.row(vec![
        "tokens granted".into(),
        report.counter("grants").to_string(),
    ]);
    if !sc.fault.is_none() {
        for key in [
            "crashes",
            "restarts",
            "revocations",
            "stale_reports",
            "server_crashes",
            "server_restarts",
        ] {
            table.row(vec![key.into(), report.counter(key).to_string()]);
        }
    }
    for (k, v) in extra_rows {
        table.row(vec![k, v]);
    }
    print!("{}", table.render());
    Ok(())
}

/// `fela live --resize …`: each epoch runs as its own live session over a
/// fresh transport — joiners genuinely perform the `Hello` handshake when
/// their epoch begins, leavers drain through the epoch's `End` epilogue. The
/// stitched report is byte-identical to the simulated elastic run, so only
/// virtual-clock mode is supported.
fn cmd_live_elastic(live: &LiveArgs, common: &CommonArgs, sc: &Scenario) -> Result<(), String> {
    if live.mode != "virtual" {
        return Err(
            "--resize with 'fela live' supports --mode virtual only (per-epoch \
             sessions conform to the simulator bytewise)"
                .into(),
        );
    }
    if live.weights.is_some() {
        return Err(
            "--weights cannot combine with --resize: the elastic controller \
             re-tunes the configuration at every resize boundary"
                .into(),
        );
    }
    let outcome = fela_elastic::run_live_elastic(
        fela_elastic::ElasticOptions::default(),
        sc,
        &live.transport,
    )
    .map_err(|e| format!("live elastic run failed: {e}"))?;
    let runtime_label = format!("fela-live-elastic:virtual:{}", live.transport);
    let scenario_label = format!("{}/b{}", sc.model.name, sc.total_batch);
    let record = fela_harness::RunRecord::new(
        "live",
        &runtime_label,
        &scenario_label,
        sc,
        common.seed,
        outcome.report.clone(),
    );
    let dir = args::resolve_results_dir(common.results_dir.as_deref());
    match fela_harness::write_jsonl_to(&dir, "live", std::slice::from_ref(&record)) {
        Ok(path) => eprintln!("[live] 1 run -> {}", path.display()),
        Err(e) => eprintln!("warning: cannot write live artifacts: {e}"),
    }
    if live.json {
        println!(
            "{}",
            serde_json::to_string_pretty(&record).map_err(|e| e.to_string())?
        );
        return Ok(());
    }
    let mut table = Table::new(
        format!(
            "fela live elastic — {} @ batch {}, {} iterations, {} epoch(s)",
            sc.model.name,
            sc.total_batch,
            sc.iterations,
            outcome.plan.epochs.len()
        ),
        &["metric", "value"],
    );
    table.row(vec!["runtime".into(), runtime_label]);
    table.row(vec!["transport".into(), live.transport.clone()]);
    table.row(vec![
        "simulated time (s, incl. transitions)".into(),
        f2(outcome.report.total_time_secs),
    ]);
    table.row(vec!["resizes".into(), outcome.plan.resizes().to_string()]);
    table.row(vec![
        "join / leave events".into(),
        format!(
            "{} / {}",
            outcome.report.counter("elastic_joins"),
            outcome.report.counter("elastic_leaves")
        ),
    ]);
    table.row(vec![
        "conformance".into(),
        "stitched report byte-identical to the simulated elastic run".into(),
    ]);
    print!("{}", table.render());
    Ok(())
}

/// Maps a `--policy` preset onto a configuration (weights applied separately).
fn policy_config(policy: &str, m: usize, nodes: usize, ctd: Option<usize>) -> FelaConfig {
    let base = FelaConfig::new(m);
    match policy {
        "none" => base.with_ads(false).with_hf(false),
        "ads" => base.with_hf(false),
        "hf" => base.with_ads(false),
        "ctd" => {
            // Default subset: the largest power of two ≤ half the cluster.
            let subset = ctd.unwrap_or_else(|| {
                let half = (nodes / 2).max(1);
                1 << (usize::BITS - 1 - half.leading_zeros())
            });
            base.with_ctd(subset)
        }
        _ => base,
    }
}

fn cmd_check(check: &CheckArgs) -> Result<(), String> {
    if check.elastic {
        return cmd_check_elastic();
    }
    if check.wal {
        return cmd_check_wal();
    }
    if check.mc || check.protocol {
        return cmd_check_mc(check);
    }
    if check.all {
        return cmd_check_all(check);
    }
    let sc = scenario_from(&check.common)?;
    let partition = FelaRuntime::new(FelaConfig::new(1)).partition_for(&sc);
    let m = partition.len();
    let nodes = sc.cluster.nodes;
    let weight_sets: Vec<Vec<u64>> = match &check.weights {
        Some(w) => {
            if w.len() != m {
                return Err(format!(
                    "--weights needs {m} entries for this model's partition, got {}",
                    w.len()
                ));
            }
            vec![w.clone()]
        }
        None => fela_tuning::phase1_candidates(m, nodes),
    };

    let mut table = Table::new(
        format!(
            "Schedule verification — {} @ batch {}, {} iterations, {} nodes, policy {}",
            sc.model.name, sc.total_batch, sc.iterations, nodes, check.policy
        ),
        &["weights", "tokens", "edges", "verdict"],
    );
    let mut failures = 0usize;
    let mut traced_cfg: Option<FelaConfig> = None;
    for w in &weight_sets {
        let cfg = policy_config(&check.policy, m, nodes, check.ctd)
            .with_weights(w.clone())
            .with_staleness(check.staleness);
        cfg.validate(nodes);
        match fela_check::verify_config(&partition, &cfg, sc.total_batch, nodes, sc.iterations) {
            Ok(summary) => {
                table.row(vec![
                    format!("{w:?}"),
                    summary.train_tokens.to_string(),
                    summary.edges.to_string(),
                    "ok".into(),
                ]);
                if traced_cfg.is_none() {
                    traced_cfg = Some(cfg);
                }
            }
            Err(fela_check::CheckError::Plan(e)) => {
                table.row(vec![
                    format!("{w:?}"),
                    "-".into(),
                    "-".into(),
                    format!("infeasible: {e}"),
                ]);
            }
            Err(fela_check::CheckError::Dag(violations)) => {
                failures += violations.len();
                table.row(vec![
                    format!("{w:?}"),
                    "-".into(),
                    "-".into(),
                    format!("{} violation(s)", violations.len()),
                ]);
                for v in &violations {
                    eprintln!("  {w:?}: {v}");
                }
            }
        }
    }
    print!("{}", table.render());

    // Dynamic half: trace a real run under the first feasible config, then
    // race-check its happens-before order and replay its lease protocol.
    if let Some(cfg) = traced_cfg {
        let (_, trace) = FelaRuntime::new(cfg).run_traced(&sc);
        match fela_check::check_trace(&trace, check.staleness) {
            Ok(s) => println!(
                "race check: {} events ({} grants, {} completions, {} commits, {} revocations) across {} processes — clean",
                s.events, s.grants, s.completions, s.commits, s.revocations, s.processes
            ),
            Err(violations) => {
                for v in &violations {
                    eprintln!("race: {v}");
                }
                return Err(format!(
                    "{} happens-before violation(s) in the traced run",
                    violations.len()
                ));
            }
        }
        match fela_check::check_recovery(&trace) {
            Ok(s) => println!(
                "recovery check: {} tokens, {} applied, {} discarded, {} revocations, {} crashes — exactly-once",
                s.tokens, s.applied, s.discarded, s.revocations, s.crashes
            ),
            Err(violations) => {
                for v in &violations {
                    eprintln!("recovery: {v}");
                }
                return Err(format!(
                    "{} lease-protocol violation(s) in the traced run",
                    violations.len()
                ));
            }
        }
    } else {
        println!("race and recovery checks skipped: no feasible configuration to trace");
    }
    if failures > 0 {
        return Err(format!("{failures} schedule invariant violation(s)"));
    }
    Ok(())
}

/// `fela check --mc [--protocol]`: the live-runtime model checker and frame
/// protocol verifier. `--mc` exhaustively explores every non-equivalent
/// message-delivery / lease-fire interleaving of small clusters (monolithic
/// and sharded, with and without the lease-expiry adversary), checks
/// deadlock-freedom, lost-wakeup-freedom and exactly-once token application,
/// proves per-op linearizability against the monolithic `TokenServer` oracle,
/// and runs the seeded-mutation matrix expecting every mutation caught with a
/// distinct diagnostic. `--protocol` replays recorded executions — both the
/// model checker's deterministic schedule and a real threaded virtual-clock
/// run under `RecordingSched` — through the per-link frame-session verifier.
fn cmd_check_mc(check: &CheckArgs) -> Result<(), String> {
    let mut failures = 0usize;

    if check.mc {
        let sweep: Vec<(&str, fela_check::McConfig)> = vec![
            (
                "monolithic 2w×2i",
                fela_check::McConfig::small().with_shards(1),
            ),
            ("sharded 2w×2s×2i", fela_check::McConfig::small()),
            (
                "sharded + lease adversary",
                fela_check::McConfig::small().with_recovery(),
            ),
            ("3 workers × 2s × 1i", {
                let mut cfg = fela_check::McConfig::small();
                cfg.workers = 3;
                cfg.iterations = 1;
                cfg
            }),
        ];
        let mut table = Table::new(
            "Model checking — exhaustive interleaving exploration of the live runtime",
            &[
                "config",
                "states",
                "transitions",
                "terminals",
                "deepest",
                "fires",
                "stale",
                "verdict",
            ],
        );
        for (name, cfg) in &sweep {
            let outcome = fela_check::model_check(cfg);
            table.row(vec![
                (*name).into(),
                outcome.states.to_string(),
                outcome.transitions.to_string(),
                outcome.terminals.to_string(),
                outcome.deepest.to_string(),
                outcome.lease_fires.to_string(),
                outcome.stale_reports.to_string(),
                if outcome.ok() {
                    "ok".into()
                } else if outcome.truncated {
                    "truncated".into()
                } else {
                    format!("{} violation(s)", outcome.violations.len())
                },
            ]);
            if !outcome.ok() {
                failures += outcome.violations.len().max(1);
                for v in &outcome.violations {
                    eprintln!("mc: {name}: {v}");
                }
                if outcome.truncated {
                    eprintln!(
                        "mc: {name}: state space truncated at {} states",
                        cfg.max_states
                    );
                }
            }
        }
        print!("{}", table.render());

        let matrix = fela_check::run_mutation_matrix();
        let mut mutation_table = Table::new(
            "Seeded-mutation matrix — every mutation must be caught, distinctly",
            &["mutation", "caught", "diagnostic"],
        );
        let mut kinds = std::collections::BTreeSet::new();
        for row in &matrix {
            mutation_table.row(vec![
                row.name.into(),
                if row.caught {
                    "yes".into()
                } else {
                    "MISSED".into()
                },
                row.diagnostic.clone(),
            ]);
            if !row.caught {
                failures += 1;
                eprintln!("mc: mutation '{}' was not caught", row.name);
            }
            if !kinds.insert(row.kind) {
                failures += 1;
                eprintln!(
                    "mc: mutation '{}' shares diagnostic kind '{}' with an earlier row",
                    row.name, row.kind
                );
            }
        }
        print!("{}", mutation_table.render());
    }

    if check.protocol {
        for shards in [1usize, 2] {
            let cfg = fela_check::McConfig::small().with_shards(shards);
            let (events, ops) = fela_check::record_execution(&cfg);
            let report = fela_check::verify_session(&events, Some(&ops));
            println!(
                "protocol (model, {shards} shard{}): {} links, {} frames — {}",
                if shards == 1 { "" } else { "s" },
                report.links,
                report.frames,
                if report.ok() { "clean" } else { "VIOLATIONS" }
            );
            if !report.ok() {
                failures += report.violations.len();
                for v in &report.violations {
                    eprintln!("protocol: model/{shards}: {v}");
                }
            }
        }

        // A real threaded virtual-clock run, recorded via the scheduler seam
        // and replayed through the same session machine.
        let common = CommonArgs {
            model: "lenet-5".into(),
            batch: 32,
            iters: 2,
            nodes: 2,
            ..CommonArgs::default()
        };
        let sc = scenario_from(&common)?;
        let m = FelaRuntime::new(FelaConfig::new(1))
            .partition_for(&sc)
            .len();
        let config = FelaConfig::new(m);
        config.validate(sc.cluster.nodes);
        let rec = fela_live::RecordingSched::new();
        let sched: fela_live::SharedSched = rec.clone();
        fela_live::run_virtual_with(&config, &sc, &mut fela_live::ChanTransport, sched)
            .map_err(|e| format!("live run for protocol check failed: {e}"))?;
        let events = rec.take();
        let report = fela_check::verify_session(&events, None);
        println!(
            "protocol (live {} @ batch {}, {} workers): {} links, {} frames — {}",
            sc.model.name,
            sc.total_batch,
            sc.cluster.nodes,
            report.links,
            report.frames,
            if report.ok() { "clean" } else { "VIOLATIONS" }
        );
        if !report.ok() {
            failures += report.violations.len();
            for v in &report.violations {
                eprintln!("protocol: live: {v}");
            }
        }
    }

    if failures > 0 {
        return Err(format!(
            "check --mc/--protocol failed: {failures} problem(s)"
        ));
    }
    Ok(())
}

/// `fela check --wal`: the write-ahead-log replay verifier. Drives a
/// reference logged run to completion on both plane shapes, replays each log
/// through the oracle `ControlPlane` (snapshot-equal recovery, every token
/// applied exactly once, every checkpoint verified), then applies the seeded
/// log-mutation matrix — a dropped, duplicated and reordered record and a
/// flipped byte must each be caught with a distinct diagnostic.
fn cmd_check_wal() -> Result<(), String> {
    let mut failures = 0usize;
    let mut table = Table::new(
        "WAL replay — checkpoint + log suffix must rebuild the exact server state",
        &[
            "plane",
            "records",
            "ops",
            "checkpoints",
            "applied",
            "verdict",
        ],
    );
    for (name, shards, checkpoint_every) in [
        ("monolithic, log-only", 1usize, 0u64),
        ("monolithic, checkpointed", 1, 1),
        ("sharded x2, checkpointed", 2, 1),
    ] {
        match fela_check::reference_wal_check(shards, checkpoint_every) {
            Ok(s) => {
                table.row(vec![
                    name.into(),
                    s.records.to_string(),
                    s.ops.to_string(),
                    s.checkpoints.to_string(),
                    s.applied.to_string(),
                    "ok".into(),
                ]);
            }
            Err(violations) => {
                failures += violations.len();
                table.row(vec![
                    name.into(),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                    format!("{} violation(s)", violations.len()),
                ]);
                for v in &violations {
                    eprintln!("wal: {name}: {v}");
                }
            }
        }
    }
    print!("{}", table.render());

    let matrix = fela_check::run_wal_mutation_matrix();
    let mut mutation_table = Table::new(
        "Seeded log-mutation matrix — every corruption caught, distinctly",
        &["mutation", "caught", "diagnostic"],
    );
    let mut kinds = std::collections::BTreeSet::new();
    for row in &matrix {
        mutation_table.row(vec![
            row.name.into(),
            if row.caught {
                "yes".into()
            } else {
                "MISSED".into()
            },
            row.diagnostic.clone(),
        ]);
        if !row.caught {
            failures += 1;
            eprintln!("wal: mutation '{}' was not caught", row.name);
        }
        if !kinds.insert(row.kind) {
            failures += 1;
            eprintln!(
                "wal: mutation '{}' shares diagnostic kind '{}' with an earlier row",
                row.name, row.kind
            );
        }
    }
    print!("{}", mutation_table.render());
    if failures > 0 {
        return Err(format!("check --wal failed: {failures} problem(s)"));
    }
    Ok(())
}

/// `fela check --elastic`: the elastic-run verifier. Traces real resized runs
/// (a scripted join+leave and a churn walk), replays every epoch against its
/// membership (no grant may reach a departed worker), re-runs the full
/// two-phase search as an oracle against the incremental boundary re-tune (no
/// re-bin divergence), and composes the race + lease-protocol checkers per
/// epoch. Then the seeded elastic mutation matrix must be caught, each kind
/// with its own diagnostic.
fn cmd_check_elastic() -> Result<(), String> {
    use fela_cluster::{ResizeAction, ResizeEvent, ResizeModel};
    use fela_elastic::{ElasticOptions, ElasticRuntime};

    let mut failures = 0usize;
    let options = ElasticOptions {
        profile_iterations: 1,
        ..ElasticOptions::default()
    };
    let base = |resize: ResizeModel| -> Result<Scenario, String> {
        let model = model_by_cli_name("googlenet").ok_or("zoo model missing")?;
        Ok(Scenario::paper(model, 256)
            .with_iterations(6)
            .with_resize(resize))
    };
    let scripted = base(ResizeModel::Scripted(vec![
        ResizeEvent {
            iteration: 2,
            action: ResizeAction::Join(2),
        },
        ResizeEvent {
            iteration: 4,
            action: ResizeAction::Leave(vec![9, 3]),
        },
    ]))?;
    let churn = base(ResizeModel::Churn {
        rate: 0.5,
        seed: 11,
    })?;

    let mut table = Table::new(
        "Elastic replay — every epoch against its membership and the full-search oracle",
        &[
            "scenario", "epochs", "resizes", "grants", "applied", "reused", "verdict",
        ],
    );
    for (name, sc) in [("scripted join+leave", &scripted), ("churn 0.5", &churn)] {
        let (outcome, traces) = ElasticRuntime::new(options)
            .run_elastic_traced(sc)
            .map_err(|e| format!("{name}: {e}"))?;
        match fela_check::check_elastic(&outcome.plan, &traces, options.profile_iterations) {
            Ok(s) => {
                table.row(vec![
                    name.into(),
                    s.epochs.to_string(),
                    s.resizes.to_string(),
                    s.grants.to_string(),
                    s.applied.to_string(),
                    s.retune_reused.to_string(),
                    "ok".into(),
                ]);
            }
            Err(violations) => {
                failures += violations.len();
                table.row(vec![
                    name.into(),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                    format!("{} violation(s)", violations.len()),
                ]);
                for v in &violations {
                    eprintln!("elastic: {name}: {v}");
                }
            }
        }
    }
    print!("{}", table.render());

    let matrix = fela_check::run_elastic_mutation_matrix(&scripted, options, &[0, 1, 2])
        .map_err(|e| e.to_string())?;
    let mut mutation_table = Table::new(
        "Seeded elastic-mutation matrix — every corruption caught, distinctly",
        &["mutation", "caught", "diagnostic"],
    );
    for run in &matrix {
        let (name, want_kind) = match run.mutation {
            fela_check::ElasticMutation::GrantToDeparted { seed } => (
                format!("grant-to-departed (seed {seed})"),
                "GrantToDepartedWorker",
            ),
            fela_check::ElasticMutation::RebinDiverge { seed } => {
                (format!("re-bin-diverge (seed {seed})"), "RebinDivergence")
            }
        };
        let caught = match run.mutation {
            fela_check::ElasticMutation::GrantToDeparted { .. } => run.violations.iter().any(|v| {
                matches!(
                    v,
                    fela_check::ElasticViolation::GrantToDepartedWorker { .. }
                )
            }),
            fela_check::ElasticMutation::RebinDiverge { .. } => run
                .violations
                .iter()
                .any(|v| matches!(v, fela_check::ElasticViolation::RebinDivergence { .. })),
        };
        mutation_table.row(vec![
            name.clone(),
            if caught {
                "yes".into()
            } else {
                "MISSED".into()
            },
            run.violations
                .first()
                .map(|v| v.to_string())
                .unwrap_or_else(|| "(none)".into()),
        ]);
        if !caught {
            failures += 1;
            eprintln!("elastic: mutation '{name}' did not provoke its {want_kind} diagnostic");
        }
    }
    print!("{}", mutation_table.render());
    if failures > 0 {
        return Err(format!("check --elastic failed: {failures} problem(s)"));
    }
    Ok(())
}

/// `fela check --all`: the CI gate. Verifies every zoo model × policy preset ×
/// Phase-1 candidate weight vector statically, then exhausts the small-config
/// schedule space dynamically.
fn cmd_check_all(check: &CheckArgs) -> Result<(), String> {
    let nodes = check.common.nodes;
    let batch = check.common.batch;
    let policies = ["none", "ads", "hf", "full", "ctd"];
    let mut verified = 0usize;
    let mut infeasible = 0usize;
    let mut failures = 0usize;
    for info in zoo::TABLE_I {
        let Some(model) = zoo::build_by_name(info.name) else {
            continue;
        };
        let name = model.name.clone();
        let mut sc = Scenario::paper(model, batch).with_iterations(check.common.iters);
        if nodes != 8 {
            sc.cluster = ClusterSpec::k40c_cluster(nodes);
        }
        let partition = FelaRuntime::new(FelaConfig::new(1)).partition_for(&sc);
        let m = partition.len();
        for policy in policies {
            for w in fela_tuning::phase1_candidates(m, nodes) {
                let cfg = policy_config(policy, m, nodes, check.ctd)
                    .with_weights(w.clone())
                    .with_staleness(check.staleness);
                cfg.validate(nodes);
                match fela_check::verify_config(&partition, &cfg, batch, nodes, sc.iterations) {
                    Ok(_) => verified += 1,
                    Err(fela_check::CheckError::Plan(_)) => infeasible += 1,
                    Err(fela_check::CheckError::Dag(violations)) => {
                        failures += violations.len();
                        for v in &violations {
                            eprintln!("{name} / {policy} / {w:?}: {v}");
                        }
                    }
                }
            }
        }
    }
    println!(
        "static: {verified} configuration(s) verified, {infeasible} infeasible skipped, {failures} violation(s)"
    );

    let outcome = fela_check::exhaustive_schedule_check(check.staleness);
    println!(
        "dynamic: {} schedule(s) over {} state(s) explored{}, {} violation(s)",
        outcome.schedules.len(),
        outcome.states_visited,
        if outcome.truncated {
            " (truncated)"
        } else {
            ""
        },
        outcome.violations.len()
    );
    for v in &outcome.violations {
        eprintln!("explore: {v}");
    }
    if failures > 0 || !outcome.violations.is_empty() {
        return Err(format!(
            "check --all failed: {} violation(s)",
            failures + outcome.violations.len()
        ));
    }
    Ok(())
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let argv_refs: Vec<&str> = argv.iter().map(String::as_str).collect();
    let command = match args::parse(&argv_refs) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}\n\n{HELP}");
            return ExitCode::FAILURE;
        }
    };
    let result = match &command {
        Command::Help => {
            print!("{HELP}");
            Ok(())
        }
        Command::Models => {
            cmd_models();
            Ok(())
        }
        Command::Run(run) => cmd_run(run),
        Command::Check(check) => cmd_check(check),
        Command::Live(live) => cmd_live(live),
        Command::Tune(common) => cmd_tune(common),
        Command::Compare(common) => cmd_compare(common),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
