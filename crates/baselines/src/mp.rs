//! The model-parallel (MP) pipeline baseline (PipeDream/GPipe-style under BSP).
//!
//! The model is cut into `N` contiguous stages balanced by forward FLOPs, one per
//! worker. Each iteration pushes `total_batch / micro_batch` micro-batches through
//! the pipeline: stage `s` forwards micro-batch `j` once stage `s−1`'s activations
//! arrive, the last stage turns straight around into backward, and gradients ripple
//! back. Parameters live on exactly one stage, so there is no parameter
//! synchronisation — MP's communication advantage — but under BSP the pipeline
//! flushes every iteration, so stages idle during ramp-up/ramp-down (the *bubble*),
//! and the small fixed micro-batch under-saturates the GPU (§V-C1's two reasons MP
//! finishes last).

use std::collections::VecDeque;

use fela_cluster::{Scenario, TrainingRuntime};
use fela_metrics::RunReport;
use fela_model::Model;
use fela_net::{FlowSpec, Network, NodeId};
use fela_sim::{BusyTracker, Engine, EventId, RunOutcome, Scheduler, SimDuration, SimTime, World};

/// One pipeline stage: a contiguous unit range on one worker.
#[derive(Clone, Copy, Debug)]
pub struct Stage {
    /// First unit index.
    pub start: usize,
    /// One past the last unit index.
    pub end: usize,
    /// Output boundary bytes per sample (activation volume to the next stage).
    pub out_bytes_per_sample: u64,
}

/// Balances the model into at most `n` contiguous stages by forward FLOPs.
/// Returns fewer stages than `n` only if the model has fewer units.
pub fn balance_stages(model: &Model, n: usize) -> Vec<Stage> {
    let units = model.len();
    let n = n.min(units).max(1);
    let flops: Vec<u64> = model
        .layers()
        .iter()
        .map(|l| l.kind.forward_flops())
        .collect();
    let total: u64 = flops.iter().sum();
    let mut stages = Vec::with_capacity(n);
    let mut start = 0usize;
    let mut acc = 0u64;
    let mut consumed = 0u64;
    for s in 0..n {
        let remaining_stages = n - s;
        let target = (total - consumed) / remaining_stages as u64;
        let mut end = start;
        // Take units until we reach the per-stage target, but always leave enough
        // units for the remaining stages.
        while end < units - (remaining_stages - 1) {
            let next = flops[end];
            // Stop if adding the unit overshoots and we already have something.
            if acc > 0 && acc + next > target && end > start {
                break;
            }
            acc += next;
            end += 1;
        }
        if end == start {
            end = start + 1; // every stage gets at least one unit
        }
        consumed += model.layers()[start..end]
            .iter()
            .map(|l| l.kind.forward_flops())
            .sum::<u64>();
        stages.push(Stage {
            start,
            end,
            out_bytes_per_sample: model.boundary_bytes(end - 1),
        });
        start = end;
        acc = 0;
    }
    stages.last_mut().expect("n ≥ 1").end = units;
    stages.last_mut().expect("n ≥ 1").out_bytes_per_sample = model.boundary_bytes(units - 1);
    stages
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Task {
    Fwd(u64),
    Bwd(u64),
}

enum Ev {
    IterationStart,
    ComputeDone { stage: usize, task: Task },
    NetWake,
}

const KIND_FWD: u64 = 1 << 48;
const KIND_BWD: u64 = 2 << 48;

fn tag(kind: u64, stage: usize, micro: u64) -> u64 {
    kind | ((stage as u64) << 24) | micro
}

struct MpWorld {
    scenario: Scenario,
    stages: Vec<Stage>,
    micro_batch: u64,
    n_micro: u64,
    elastic_period: Option<u64>,
    /// Busy seconds per stage within the current profiling period.
    period_busy: Vec<f64>,
    repartitions: u64,
    net: Network,
    net_ev: Option<EventId>,
    busy: Vec<BusyTracker>,
    ready: Vec<VecDeque<Task>>,
    stage_busy: Vec<bool>,
    bwd_done_at_stage0: u64,
    iteration: u64,
    iteration_start: SimTime,
    per_iteration_secs: Vec<f64>,
    finished_at: Option<SimTime>,
}

impl MpWorld {
    fn reschedule_net(&mut self, sched: &mut Scheduler<'_, Ev>) {
        if let Some(ev) = self.net_ev.take() {
            sched.cancel(ev);
        }
        if let Some(t) = self.net.next_completion() {
            self.net_ev = Some(sched.schedule_at(t.max(sched.now()), Ev::NetWake));
        }
    }

    /// Forward time of a stage on one micro-batch (fwd ≈ ⅓ of train time).
    fn fwd_secs(&self, stage: usize, worker: usize) -> f64 {
        let st = self.stages[stage];
        self.scenario.cluster.compute_secs(
            &self.scenario.model,
            st.start,
            st.end,
            self.micro_batch,
            worker,
        ) / 3.0
    }

    /// Backward time (≈ ⅔ of train time).
    fn bwd_secs(&self, stage: usize, worker: usize) -> f64 {
        2.0 * self.fwd_secs(stage, worker)
    }

    fn try_start(&mut self, stage: usize, sched: &mut Scheduler<'_, Ev>) {
        if self.stage_busy[stage] {
            return;
        }
        let Some(task) = self.ready[stage].pop_front() else {
            return;
        };
        self.stage_busy[stage] = true;
        let worker = stage; // stage s runs on worker s
        let secs = match task {
            Task::Fwd(_) => self.fwd_secs(stage, worker),
            Task::Bwd(_) => self.bwd_secs(stage, worker),
        };
        // A straggler cannot start computing before iteration_start + d; the
        // sleep overlaps with the stage's ramp-up bubble (§V-C2's explanation of
        // MP's small per-iteration delay). Faults stall the stage the same way —
        // MP has no token recovery, so the pipeline waits the downtime out.
        let floor = self.iteration_start
            + self.scenario.straggler_delay(self.iteration, worker)
            + self.scenario.fault_stall(self.iteration, worker);
        let start = sched.now().max(floor);
        self.period_busy[stage] += secs + start.since(sched.now()).as_secs_f64();
        self.busy[worker].begin(start);
        sched.schedule_at(
            start + SimDuration::from_secs_f64(secs),
            Ev::ComputeDone { stage, task },
        );
    }

    /// ElasticPipe-style boundary migration: move one unit out of the stage with
    /// the highest profiled busy time towards its lighter neighbour, based on
    /// the *previous* period's measurements (the delayed, proactive tuning the
    /// paper contrasts with Fela's reactive pulls).
    fn repartition(&mut self) {
        let Some(slowest) = self
            .period_busy
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i)
        else {
            return;
        };
        let st = self.stages[slowest];
        if st.end - st.start <= 1 {
            for b in &mut self.period_busy {
                *b = 0.0;
            }
            return;
        }
        // Pick the lighter neighbour; shrink the slow stage by one unit.
        let left = slowest.checked_sub(1);
        let right = (slowest + 1 < self.stages.len()).then_some(slowest + 1);
        let target = match (left, right) {
            (Some(l), Some(r)) => {
                if self.period_busy[l] <= self.period_busy[r] {
                    l
                } else {
                    r
                }
            }
            (Some(l), None) => l,
            (None, Some(r)) => r,
            (None, None) => return,
        };
        if target < slowest {
            self.stages[slowest].start += 1;
            self.stages[target].end += 1;
        } else {
            self.stages[slowest].end -= 1;
            self.stages[target].start -= 1;
        }
        // Refresh boundary volumes.
        for st in &mut self.stages {
            st.out_bytes_per_sample = self.scenario.model.boundary_bytes(st.end - 1);
        }
        self.repartitions += 1;
        for b in &mut self.period_busy {
            *b = 0.0;
        }
    }

    fn finish_iteration(&mut self, sched: &mut Scheduler<'_, Ev>) {
        let now = sched.now();
        self.per_iteration_secs
            .push(now.since(self.iteration_start).as_secs_f64());
        self.iteration += 1;
        if self.iteration < self.scenario.iterations {
            sched.schedule_now(Ev::IterationStart);
        } else {
            self.finished_at = Some(now);
        }
    }
}

impl World for MpWorld {
    type Event = Ev;

    fn handle(&mut self, now: SimTime, event: Ev, sched: &mut Scheduler<'_, Ev>) {
        match event {
            Ev::IterationStart => {
                if let Some(period) = self.elastic_period {
                    if self.iteration > 0 && self.iteration % period == 0 {
                        self.repartition();
                    }
                }
                self.iteration_start = now;
                self.bwd_done_at_stage0 = 0;
                for q in &mut self.ready {
                    debug_assert!(q.is_empty(), "pipeline flushed between iterations");
                }
                // Stage 0 reads samples locally: all its forwards are ready.
                for j in 0..self.n_micro {
                    self.ready[0].push_back(Task::Fwd(j));
                }
                self.try_start(0, sched);
            }
            Ev::ComputeDone { stage, task } => {
                self.busy[stage].end(now);
                self.stage_busy[stage] = false;
                let last = self.stages.len() - 1;
                match task {
                    Task::Fwd(j) => {
                        if stage == last {
                            // Loss computed locally; turn straight into backward.
                            self.ready[stage].push_back(Task::Bwd(j));
                        } else {
                            let bytes = self.stages[stage].out_bytes_per_sample * self.micro_batch;
                            self.net.start_flow(
                                now,
                                FlowSpec {
                                    src: NodeId(stage),
                                    dst: NodeId(stage + 1),
                                    bytes,
                                    tag: tag(KIND_FWD, stage, j),
                                },
                            );
                            self.reschedule_net(sched);
                        }
                    }
                    Task::Bwd(j) => {
                        if stage == 0 {
                            self.bwd_done_at_stage0 += 1;
                            if self.bwd_done_at_stage0 == self.n_micro {
                                self.finish_iteration(sched);
                                return;
                            }
                        } else {
                            // Gradient w.r.t. the boundary activations flows back.
                            let bytes =
                                self.stages[stage - 1].out_bytes_per_sample * self.micro_batch;
                            self.net.start_flow(
                                now,
                                FlowSpec {
                                    src: NodeId(stage),
                                    dst: NodeId(stage - 1),
                                    bytes,
                                    tag: tag(KIND_BWD, stage, j),
                                },
                            );
                            self.reschedule_net(sched);
                        }
                    }
                }
                self.try_start(stage, sched);
            }
            Ev::NetWake => {
                self.net_ev = None;
                let completions = self.net.take_completions(now);
                for (_, spec) in completions {
                    let micro = spec.tag & 0xFF_FFFF;
                    let dst = spec.dst.0;
                    if spec.tag & KIND_FWD != 0 {
                        self.ready[dst].push_back(Task::Fwd(micro));
                    } else {
                        self.ready[dst].push_back(Task::Bwd(micro));
                    }
                    self.try_start(dst, sched);
                }
                self.reschedule_net(sched);
            }
        }
    }
}

/// The MP pipeline baseline runtime.
#[derive(Clone, Copy, Debug)]
pub struct MpRuntime {
    /// Fixed micro-batch size (the paper notes MP keeps this "small and fixed"
    /// to amortise the bubble; 16 matches its Figure 3 granularity).
    pub micro_batch: u64,
    /// ElasticPipe-style proactive re-partitioning (§II of the paper): every
    /// `Some(period)` iterations the head node moves one boundary unit from the
    /// stage with the highest profiled busy time to its lighter neighbour.
    /// `None` = the static PipeDream-style pipeline. Because the decision uses
    /// the *previous* period's profile, transient (rotating) stragglers make it
    /// chase the past — the behaviour §II-C and §III-C criticise.
    pub elastic_period: Option<u64>,
}

impl Default for MpRuntime {
    fn default() -> Self {
        MpRuntime {
            micro_batch: 16,
            elastic_period: None,
        }
    }
}

impl MpRuntime {
    /// The ElasticPipe-style variant with the given re-partitioning period.
    pub fn elastic(period: u64) -> Self {
        MpRuntime {
            micro_batch: 16,
            elastic_period: Some(period),
        }
    }
}

impl TrainingRuntime for MpRuntime {
    fn name(&self) -> &'static str {
        "mp"
    }

    fn run(&self, scenario: &Scenario) -> RunReport {
        scenario.cluster.validate();
        let micro = self.micro_batch.min(scenario.total_batch);
        assert!(
            scenario.total_batch % micro == 0,
            "total batch must be a multiple of the micro-batch"
        );
        let stages = balance_stages(&scenario.model, scenario.cluster.nodes);
        let n = scenario.cluster.nodes;
        let n_stages = stages.len();
        let world = MpWorld {
            scenario: scenario.clone(),
            n_micro: scenario.total_batch / micro,
            micro_batch: micro,
            elastic_period: self.elastic_period,
            period_busy: vec![0.0; n_stages],
            repartitions: 0,
            net: Network::new(scenario.cluster.network),
            net_ev: None,
            busy: vec![BusyTracker::new(); n],
            ready: vec![VecDeque::new(); stages.len()],
            stage_busy: vec![false; stages.len()],
            stages,
            bwd_done_at_stage0: 0,
            iteration: 0,
            iteration_start: SimTime::ZERO,
            per_iteration_secs: Vec::new(),
            finished_at: None,
        };
        let mut engine = Engine::new(world);
        engine.prime(Ev::IterationStart);
        assert_eq!(engine.run(1 << 32), RunOutcome::Drained);
        let (world, _) = engine.into_world();
        let end = world.finished_at.expect("all iterations completed");

        let mut report = RunReport::new("mp", &scenario.model.name, scenario.total_batch);
        report.iterations = world.iteration;
        report.total_time_secs = end.as_secs_f64();
        report.per_iteration_secs = world.per_iteration_secs;
        report.network_bytes = world.net.bytes_delivered();
        report.worker_busy_secs = world
            .busy
            .iter()
            .map(|b| b.busy_time().as_secs_f64())
            .collect();
        report.bump("stages", world.stages.len() as u64);
        report.bump("micro_batches", world.n_micro);
        report.bump("repartitions", world.repartitions);
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fela_cluster::StragglerModel;
    use fela_model::zoo;

    fn scenario(batch: u64, iters: u64) -> Scenario {
        Scenario::paper(zoo::vgg19(), batch).with_iterations(iters)
    }

    #[test]
    fn stage_balance_covers_model() {
        let m = zoo::vgg19();
        let stages = balance_stages(&m, 8);
        assert_eq!(stages.len(), 8);
        assert_eq!(stages[0].start, 0);
        assert_eq!(stages.last().unwrap().end, m.len());
        for w in stages.windows(2) {
            assert_eq!(w[0].end, w[1].start, "stages must be contiguous");
        }
        // Reasonable balance: no stage above 3× the mean forward FLOPs.
        let total = m.forward_flops() as f64;
        for st in &stages {
            let f: u64 = m.layers()[st.start..st.end]
                .iter()
                .map(|l| l.kind.forward_flops())
                .sum();
            assert!(
                (f as f64) < 3.0 * total / 8.0,
                "stage {st:?} holds {f} of {total} FLOPs"
            );
        }
    }

    #[test]
    fn stage_count_capped_by_units() {
        let m = zoo::lenet5(); // 7 units
        let stages = balance_stages(&m, 8);
        assert_eq!(stages.len(), 7);
    }

    #[test]
    fn completes_and_reports() {
        let r = MpRuntime::default().run(&scenario(128, 2));
        assert_eq!(r.iterations, 2);
        assert!(r.average_throughput() > 0.0);
        assert_eq!(r.counter("stages"), 8);
        assert_eq!(r.counter("micro_batches"), 8);
    }

    #[test]
    fn pipeline_bubble_hurts_utilization() {
        let r = MpRuntime::default().run(&scenario(128, 2));
        // With 8 micro-batches on 8 stages, ramp-up/down idles most stages most
        // of the time — the §V-C1 "majority of workers remain idle" claim.
        assert!(
            r.mean_utilization() < 0.55,
            "MP utilisation {} suspiciously high",
            r.mean_utilization()
        );
    }

    #[test]
    fn straggler_on_idle_stage_partially_hidden() {
        // MP's bubbles absorb some of the sleep — PID can be below d (§V-C2).
        let base = MpRuntime::default().run(&scenario(128, 4));
        let slow = MpRuntime::default().run(&scenario(128, 4).with_straggler(
            StragglerModel::RoundRobin {
                delay: SimDuration::from_secs(4),
            },
        ));
        let pid = (slow.total_time_secs - base.total_time_secs) / 4.0;
        assert!(
            pid < 4.0,
            "PID {pid} must be partially hidden by the bubble"
        );
        assert!(pid >= 0.0);
    }

    #[test]
    fn deterministic() {
        let a = MpRuntime::default().run(&scenario(128, 2));
        let b = MpRuntime::default().run(&scenario(128, 2));
        assert_eq!(a.total_time_secs, b.total_time_secs);
    }

    #[test]
    fn elastic_repartitioning_fixes_persistent_imbalance() {
        // A persistently slow worker: ElasticPipe's periodic migration should
        // eventually shrink its stage and beat the static pipeline.
        let mut sc = scenario(128, 12);
        sc.cluster.speed_factors[2] = 3.0;
        let static_mp = MpRuntime::default().run(&sc);
        let elastic = MpRuntime::elastic(2).run(&sc);
        assert!(elastic.counter("repartitions") > 0);
        assert!(
            elastic.total_time_secs < static_mp.total_time_secs,
            "elastic {} vs static {}",
            elastic.total_time_secs,
            static_mp.total_time_secs
        );
    }

    #[test]
    fn elastic_repartitioning_chases_transient_stragglers() {
        // §II-C / §III-C: with a rotating straggler, the previous period's
        // profile mis-identifies the next period's bottleneck, so proactive
        // migration cannot beat the static pipeline (and can lose to it).
        let sc = scenario(128, 16).with_straggler(StragglerModel::RoundRobin {
            delay: SimDuration::from_secs(4),
        });
        let static_mp = MpRuntime::default().run(&sc);
        let elastic = MpRuntime::elastic(2).run(&sc);
        assert!(elastic.counter("repartitions") > 0);
        assert!(
            elastic.total_time_secs >= static_mp.total_time_secs * 0.99,
            "elastic {} should not beat static {} under rotating stragglers",
            elastic.total_time_secs,
            static_mp.total_time_secs
        );
    }
}
