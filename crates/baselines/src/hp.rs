//! The hybrid-parallel (HP) baseline — Stanza-style layer separation.
//!
//! Following the configuration the paper inherits from Stanza: `N−1` CONV workers
//! and one FC worker. Each iteration:
//!
//! 1. CONV workers forward their sample shards and ship the boundary activations
//!    to the FC worker;
//! 2. the FC worker, having received all shards, runs FC forward+backward on the
//!    *full* batch (saturating the GPU on FC — HP's advantage) and ships the
//!    boundary gradients back;
//! 3. CONV workers run backward, then ring-all-reduce the CONV parameters among
//!    themselves. FC parameters live only on the FC worker — no FC sync (HP's
//!    other advantage over DP).
//!
//! The cost: the FC worker idles while CONV workers compute (bad work
//! conservation), and the activation funnel into its single NIC grows linearly
//! with the batch — the incast that makes HP fall behind DP at large batch sizes
//! in Figure 8.

use fela_cluster::{Scenario, TrainingRuntime};
use fela_metrics::RunReport;
use fela_net::{FlowSpec, Network, NodeId, RingAllReduce};
use fela_sim::{BusyTracker, Engine, EventId, RunOutcome, Scheduler, SimDuration, SimTime, World};

enum Ev {
    IterationStart,
    ConvFwdDone { worker: usize },
    FcDone,
    ConvBwdDone { worker: usize },
    NetWake,
}

const TAG_ACT: u64 = 1;
const TAG_GRAD: u64 = 2;
const TAG_SYNC: u64 = 3;

fn tag(kind: u64, worker: usize) -> u64 {
    (kind << 48) | worker as u64
}

struct HpWorld {
    scenario: Scenario,
    /// Units `[0, fc_start)` are the CONV part; `[fc_start, len)` the FC part.
    fc_start: usize,
    net: Network,
    net_ev: Option<EventId>,
    busy: Vec<BusyTracker>,
    acts_arrived: usize,
    grads_back: usize,
    bwd_done: usize,
    sync: Option<RingAllReduce>,
    iteration: u64,
    iteration_start: SimTime,
    per_iteration_secs: Vec<f64>,
    finished_at: Option<SimTime>,
}

impl HpWorld {
    fn n(&self) -> usize {
        self.scenario.cluster.nodes
    }

    fn conv_workers(&self) -> usize {
        self.n() - 1
    }

    fn fc_worker(&self) -> usize {
        self.n() - 1
    }

    /// Samples assigned to CONV worker `w` (remainder spread over the first
    /// workers, since the batch rarely divides by N−1).
    fn shard(&self, w: usize) -> u64 {
        let k = self.conv_workers() as u64;
        let base = self.scenario.total_batch / k;
        let extra = self.scenario.total_batch % k;
        base + u64::from((w as u64) < extra)
    }

    fn boundary_bytes_per_sample(&self) -> u64 {
        self.scenario.model.boundary_bytes(self.fc_start - 1)
    }

    fn reschedule_net(&mut self, sched: &mut Scheduler<'_, Ev>) {
        if let Some(ev) = self.net_ev.take() {
            sched.cancel(ev);
        }
        if let Some(t) = self.net.next_completion() {
            self.net_ev = Some(sched.schedule_at(t.max(sched.now()), Ev::NetWake));
        }
    }

    /// A straggler cannot start computing before `iteration_start + d` (§V-C2:
    /// the sleep delays the worker's computation start, so it overlaps with any
    /// idle time the worker had anyway). Faults stall the victim the same way —
    /// HP has no token recovery, so the iteration waits the downtime out.
    fn compute_floor(&self, worker: usize) -> SimTime {
        self.iteration_start
            + self.scenario.straggler_delay(self.iteration, worker)
            + self.scenario.fault_stall(self.iteration, worker)
    }

    fn finish_iteration(&mut self, sched: &mut Scheduler<'_, Ev>) {
        let now = sched.now();
        self.per_iteration_secs
            .push(now.since(self.iteration_start).as_secs_f64());
        self.iteration += 1;
        if self.iteration < self.scenario.iterations {
            sched.schedule_now(Ev::IterationStart);
        } else {
            self.finished_at = Some(now);
        }
    }
}

impl World for HpWorld {
    type Event = Ev;

    fn handle(&mut self, now: SimTime, event: Ev, sched: &mut Scheduler<'_, Ev>) {
        match event {
            Ev::IterationStart => {
                self.iteration_start = now;
                self.acts_arrived = 0;
                self.grads_back = 0;
                self.bwd_done = 0;
                for w in 0..self.conv_workers() {
                    let secs = self.scenario.cluster.chunked_compute_secs(
                        &self.scenario.model,
                        0,
                        self.fc_start,
                        self.shard(w),
                        w,
                    ) / 3.0; // forward only
                    let start = now.max(self.compute_floor(w));
                    self.busy[w].begin(start);
                    sched.schedule_at(
                        start + SimDuration::from_secs_f64(secs),
                        Ev::ConvFwdDone { worker: w },
                    );
                }
            }
            Ev::ConvFwdDone { worker } => {
                self.busy[worker].end(now);
                let bytes = self.shard(worker) * self.boundary_bytes_per_sample();
                self.net.start_flow(
                    now,
                    FlowSpec {
                        src: NodeId(worker),
                        dst: NodeId(self.fc_worker()),
                        bytes,
                        tag: tag(TAG_ACT, worker),
                    },
                );
                self.reschedule_net(sched);
            }
            Ev::FcDone => {
                let fc = self.fc_worker();
                self.busy[fc].end(now);
                // Boundary gradients fan back out to every CONV worker.
                for w in 0..self.conv_workers() {
                    let bytes = self.shard(w) * self.boundary_bytes_per_sample();
                    self.net.start_flow(
                        now,
                        FlowSpec {
                            src: NodeId(fc),
                            dst: NodeId(w),
                            bytes,
                            tag: tag(TAG_GRAD, w),
                        },
                    );
                }
                self.reschedule_net(sched);
            }
            Ev::ConvBwdDone { worker } => {
                self.busy[worker].end(now);
                self.bwd_done += 1;
                if self.bwd_done == self.conv_workers() {
                    let participants = (0..self.conv_workers()).map(NodeId).collect();
                    let conv_params = self.scenario.model.param_bytes_in(0..self.fc_start);
                    let ar = RingAllReduce::start(
                        &mut self.net,
                        now,
                        participants,
                        conv_params,
                        tag(TAG_SYNC, 0),
                    );
                    if ar.is_done() {
                        self.finish_iteration(sched);
                    } else {
                        self.sync = Some(ar);
                        self.reschedule_net(sched);
                    }
                }
            }
            Ev::NetWake => {
                self.net_ev = None;
                let completions = self.net.take_completions(now);
                for (id, spec) in completions {
                    let kind = spec.tag >> 48;
                    if kind == TAG_SYNC {
                        let sync = self.sync.as_mut().expect("sync in progress");
                        if sync.on_flow_complete(&mut self.net, now, id)
                            == fela_net::CollectiveProgress::Done
                        {
                            self.sync = None;
                            self.finish_iteration(sched);
                        }
                    } else if kind == TAG_ACT {
                        self.acts_arrived += 1;
                        if self.acts_arrived == self.conv_workers() {
                            // Full batch assembled: FC fwd+bwd in one go.
                            let fc = self.fc_worker();
                            let model = &self.scenario.model;
                            let secs = self.scenario.cluster.chunked_compute_secs(
                                model,
                                self.fc_start,
                                model.len(),
                                self.scenario.total_batch,
                                fc,
                            );
                            let start = now.max(self.compute_floor(fc));
                            self.busy[fc].begin(start);
                            sched.schedule_at(start + SimDuration::from_secs_f64(secs), Ev::FcDone);
                        }
                    } else {
                        debug_assert_eq!(kind, TAG_GRAD);
                        self.grads_back += 1;
                        let w = spec.dst.0;
                        let secs = self.scenario.cluster.chunked_compute_secs(
                            &self.scenario.model,
                            0,
                            self.fc_start,
                            self.shard(w),
                            w,
                        ) * 2.0
                            / 3.0; // backward only
                        let start = now.max(self.compute_floor(w));
                        self.busy[w].begin(start);
                        sched.schedule_at(
                            start + SimDuration::from_secs_f64(secs),
                            Ev::ConvBwdDone { worker: w },
                        );
                    }
                }
                self.reschedule_net(sched);
            }
        }
    }
}

/// The HP (Stanza) baseline runtime.
#[derive(Clone, Copy, Debug, Default)]
pub struct HpRuntime;

impl TrainingRuntime for HpRuntime {
    fn name(&self) -> &'static str {
        "hp"
    }

    fn run(&self, scenario: &Scenario) -> RunReport {
        scenario.cluster.validate();
        assert!(scenario.cluster.nodes >= 2, "HP needs ≥ 2 workers");
        let fc_start = scenario
            .model
            .first_fc_index()
            .expect("HP requires a model with FC layers");
        let n = scenario.cluster.nodes;
        let world = HpWorld {
            scenario: scenario.clone(),
            fc_start,
            net: Network::new(scenario.cluster.network),
            net_ev: None,
            busy: vec![BusyTracker::new(); n],
            acts_arrived: 0,
            grads_back: 0,
            bwd_done: 0,
            sync: None,
            iteration: 0,
            iteration_start: SimTime::ZERO,
            per_iteration_secs: Vec::new(),
            finished_at: None,
        };
        let mut engine = Engine::new(world);
        engine.prime(Ev::IterationStart);
        assert_eq!(engine.run(1 << 32), RunOutcome::Drained);
        let (world, _) = engine.into_world();
        let end = world.finished_at.expect("all iterations completed");

        let mut report = RunReport::new("hp", &scenario.model.name, scenario.total_batch);
        report.iterations = world.iteration;
        report.total_time_secs = end.as_secs_f64();
        report.per_iteration_secs = world.per_iteration_secs;
        report.network_bytes = world.net.bytes_delivered();
        report.worker_busy_secs = world
            .busy
            .iter()
            .map(|b| b.busy_time().as_secs_f64())
            .collect();
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fela_cluster::StragglerModel;
    use fela_model::zoo;

    fn scenario(batch: u64, iters: u64) -> Scenario {
        Scenario::paper(zoo::vgg19(), batch).with_iterations(iters)
    }

    #[test]
    fn completes_and_reports() {
        let r = HpRuntime.run(&scenario(128, 2));
        assert_eq!(r.iterations, 2);
        assert!(r.average_throughput() > 0.0);
    }

    #[test]
    fn shards_cover_batch() {
        // 128 over 7 workers: 128 = 7·18 + 2 → shards 19,19,18,…
        let world_shards: Vec<u64> = {
            let _ = scenario(128, 1);
            let k = 7u64;
            (0..7)
                .map(|w| 128 / k + u64::from((w as u64) < 128 % k))
                .collect()
        };
        assert_eq!(world_shards.iter().sum::<u64>(), 128);
        assert!(world_shards.iter().all(|&s| s == 18 || s == 19));
    }

    #[test]
    fn network_bytes_grow_with_batch() {
        // HP's activation funnel is linear in batch — the opposite of DP. The
        // conv all-reduce term is batch-independent, so compare the *difference*:
        // ΔB samples cost 2·ΔB·boundary bytes per iteration (acts + grads).
        let small = HpRuntime.run(&scenario(64, 2));
        let large = HpRuntime.run(&scenario(1024, 2));
        let boundary = zoo::vgg19().boundary_bytes(zoo::vgg19().first_fc_index().unwrap() - 1);
        let expected_delta = 2 * 2 * (1024 - 64) * boundary; // iters × 2·ΔB·boundary
        let delta = large.network_bytes - small.network_bytes;
        let ratio = delta as f64 / expected_delta as f64;
        assert!(
            (0.95..1.05).contains(&ratio),
            "delta {delta} vs {expected_delta}"
        );
    }

    #[test]
    fn no_fc_sync_traffic() {
        // Total traffic = activations + gradients + conv all-reduce only.
        let r = HpRuntime.run(&scenario(128, 1));
        let m = zoo::vgg19();
        let fc_start = m.first_fc_index().unwrap();
        let boundary = m.boundary_bytes(fc_start - 1);
        let conv_params = m.param_bytes_in(0..fc_start);
        // Ring all-reduce among 7 workers: 2·(K−1) rounds × K flows × bytes/K
        // = 2·(K−1)·bytes of total wire traffic.
        let expected = 2 * 128 * boundary + 2 * 6 * conv_params;
        // Allow 5% slack for integer chunking of the ring.
        let ratio = r.network_bytes as f64 / expected as f64;
        assert!(
            (0.9..1.1).contains(&ratio),
            "traffic {} vs expected {expected}",
            r.network_bytes
        );
    }

    #[test]
    fn fc_worker_straggler_not_absorbed() {
        // A sleep on the FC worker extends the critical path 1:1.
        let base = HpRuntime.run(&scenario(128, 4));
        let slow = HpRuntime.run(
            &scenario(128, 4).with_straggler(StragglerModel::RoundRobin {
                delay: SimDuration::from_secs(4),
            }),
        );
        let pid = (slow.total_time_secs - base.total_time_secs) / 4.0;
        assert!(pid > 2.0, "HP PID {pid} should be near d");
    }

    #[test]
    fn deterministic() {
        let a = HpRuntime.run(&scenario(256, 2));
        let b = HpRuntime.run(&scenario(256, 2));
        assert_eq!(a.total_time_secs, b.total_time_secs);
    }

    #[test]
    #[should_panic(expected = "FC layers")]
    fn rejects_fc_free_models() {
        // A conv-only model cannot be layer-separated.
        use fela_model::{Layer, LayerKind, Model, SpatialShape};
        let m = Model::new(
            "convnet",
            SpatialShape::new(3, 8, 8),
            vec![Layer::new(
                "conv",
                LayerKind::Conv2d {
                    input: SpatialShape::new(3, 8, 8),
                    out_channels: 4,
                    kernel: 3,
                    stride: 1,
                    padding: 1,
                },
            )],
        );
        HpRuntime.run(&Scenario::paper(m, 64).with_iterations(1));
    }
}
