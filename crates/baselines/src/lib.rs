//! # fela-baselines — the paper's three comparators
//!
//! Faithful BSP implementations of the baselines of §V-A, all driven by the same
//! simulator, GPU model, network and straggler injection as Fela itself:
//!
//! * [`DpRuntime`] — data parallelism: full replicas, per-worker shards,
//!   whole-model ring all-reduce each iteration;
//! * [`MpRuntime`] — model parallelism: a FLOP-balanced pipeline with fixed
//!   micro-batches (PipeDream/GPipe-style under BSP flushes);
//! * [`HpRuntime`] — hybrid parallelism: Stanza's layer separation with N−1 CONV
//!   workers and one FC worker.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod dp;
mod hp;
mod mp;

pub use dp::{DpRuntime, DpSync};
pub use hp::HpRuntime;
pub use mp::{balance_stages, MpRuntime, Stage};
