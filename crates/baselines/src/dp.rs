//! The data-parallel (DP) baseline.
//!
//! Classic BSP data parallelism as the paper's first comparator: every worker holds
//! a full model replica, trains `total_batch / N` samples per iteration (in
//! gradient-accumulation micro-batches when the per-worker batch exceeds GPU
//! memory), then all workers ring-all-reduce the *entire* parameter set. The
//! iteration ends when the all-reduce drains — the synchronisation volume that the
//! paper's §II-A argues makes DP network-bound, and which does **not** shrink as
//! the batch grows (the reason DP eventually overtakes HP in Figure 8).

use fela_cluster::{Scenario, TrainingRuntime};
use fela_metrics::RunReport;
use fela_net::{FlowSpec, Network, NodeId, RingAllReduce};
use fela_sim::{BusyTracker, Engine, EventId, RunOutcome, Scheduler, SimDuration, SimTime, World};

/// How the DP baseline synchronises gradients.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DpSync {
    /// Bandwidth-optimal ring all-reduce (Gloo's algorithm — the default, and
    /// what the paper's prototypes use).
    Ring,
    /// Parameter-server: every worker pushes its full gradient to `servers` PS
    /// shards (co-located on the first `servers` workers, each holding
    /// `1/servers` of the parameters) and pulls fresh parameters back. With one
    /// server this exhibits the centralized bottleneck the paper attributes to
    /// PS-based designs like FlexPS (§II-D).
    ParameterServer {
        /// Number of PS shards.
        servers: usize,
    },
}

enum Ev {
    IterationStart,
    ComputeDone { worker: usize },
    NetWake,
}

enum SyncPhase {
    Idle,
    Ring(RingAllReduce),
    /// PS push in flight: remaining push flows.
    PsPush(usize),
    /// PS pull in flight: remaining pull flows.
    PsPull(usize),
}

struct DpWorld {
    scenario: Scenario,
    sync_mode: DpSync,
    net: Network,
    net_ev: Option<EventId>,
    busy: Vec<BusyTracker>,
    compute_done: usize,
    sync: SyncPhase,
    iteration: u64,
    iteration_start: SimTime,
    per_iteration_secs: Vec<f64>,
    finished_at: Option<SimTime>,
}

impl DpWorld {
    fn n(&self) -> usize {
        self.scenario.cluster.nodes
    }

    fn reschedule_net(&mut self, sched: &mut Scheduler<'_, Ev>) {
        if let Some(ev) = self.net_ev.take() {
            sched.cancel(ev);
        }
        if let Some(t) = self.net.next_completion() {
            self.net_ev = Some(sched.schedule_at(t.max(sched.now()), Ev::NetWake));
        }
    }

    /// Starts the PS push phase: each worker ships `params/servers` bytes to
    /// every PS shard. Returns the number of flows started.
    fn start_ps_push(&mut self, now: SimTime, servers: usize) -> usize {
        let shard = self.scenario.model.param_bytes() / servers as u64;
        let mut flows = 0;
        for w in 0..self.n() {
            for srv in 0..servers {
                self.net.start_flow(
                    now,
                    FlowSpec {
                        src: NodeId(w),
                        dst: NodeId(srv),
                        bytes: shard,
                        tag: 0,
                    },
                );
                flows += 1;
            }
        }
        flows
    }

    /// Starts the PS pull phase (mirror image of the push).
    fn start_ps_pull(&mut self, now: SimTime, servers: usize) -> usize {
        let shard = self.scenario.model.param_bytes() / servers as u64;
        let mut flows = 0;
        for w in 0..self.n() {
            for srv in 0..servers {
                self.net.start_flow(
                    now,
                    FlowSpec {
                        src: NodeId(srv),
                        dst: NodeId(w),
                        bytes: shard,
                        tag: 0,
                    },
                );
                flows += 1;
            }
        }
        flows
    }

    fn finish_iteration(&mut self, sched: &mut Scheduler<'_, Ev>) {
        let now = sched.now();
        self.per_iteration_secs
            .push(now.since(self.iteration_start).as_secs_f64());
        self.iteration += 1;
        if self.iteration < self.scenario.iterations {
            sched.schedule_now(Ev::IterationStart);
        } else {
            self.finished_at = Some(now);
        }
    }
}

impl World for DpWorld {
    type Event = Ev;

    fn handle(&mut self, now: SimTime, event: Ev, sched: &mut Scheduler<'_, Ev>) {
        match event {
            Ev::IterationStart => {
                self.iteration_start = now;
                self.compute_done = 0;
                let model = &self.scenario.model;
                let per_worker = self.scenario.total_batch / self.n() as u64;
                for worker in 0..self.n() {
                    let mut secs = self.scenario.cluster.chunked_compute_secs(
                        model,
                        0,
                        model.len(),
                        per_worker,
                        worker,
                    );
                    secs += self
                        .scenario
                        .straggler_delay(self.iteration, worker)
                        .as_secs_f64();
                    // No token recovery: a fault stalls the victim (and so the
                    // whole BSP iteration) until it is back.
                    secs += self
                        .scenario
                        .fault_stall(self.iteration, worker)
                        .as_secs_f64();
                    self.busy[worker].begin(now);
                    sched.schedule_in(SimDuration::from_secs_f64(secs), Ev::ComputeDone { worker });
                }
            }
            Ev::ComputeDone { worker } => {
                self.busy[worker].end(now);
                self.compute_done += 1;
                if self.compute_done == self.n() {
                    match self.sync_mode {
                        DpSync::Ring => {
                            // All gradients ready: all-reduce every parameter.
                            let participants = (0..self.n()).map(NodeId).collect();
                            let ar = RingAllReduce::start(
                                &mut self.net,
                                now,
                                participants,
                                self.scenario.model.param_bytes(),
                                0,
                            );
                            if ar.is_done() {
                                // Single-node cluster: no sync needed.
                                self.finish_iteration(sched);
                            } else {
                                self.sync = SyncPhase::Ring(ar);
                                self.reschedule_net(sched);
                            }
                        }
                        DpSync::ParameterServer { servers } => {
                            let flows = self.start_ps_push(now, servers);
                            self.sync = SyncPhase::PsPush(flows);
                            self.reschedule_net(sched);
                        }
                    }
                }
            }
            Ev::NetWake => {
                self.net_ev = None;
                let completions = self.net.take_completions(now);
                for (id, _spec) in completions {
                    match &mut self.sync {
                        SyncPhase::Ring(ar) => {
                            if ar.on_flow_complete(&mut self.net, now, id)
                                == fela_net::CollectiveProgress::Done
                            {
                                self.sync = SyncPhase::Idle;
                                self.finish_iteration(sched);
                                break;
                            }
                        }
                        SyncPhase::PsPush(remaining) => {
                            *remaining -= 1;
                            if *remaining == 0 {
                                let servers = match self.sync_mode {
                                    DpSync::ParameterServer { servers } => servers,
                                    DpSync::Ring => unreachable!("push implies PS"),
                                };
                                let flows = self.start_ps_pull(now, servers);
                                self.sync = SyncPhase::PsPull(flows);
                            }
                        }
                        SyncPhase::PsPull(remaining) => {
                            *remaining -= 1;
                            if *remaining == 0 {
                                self.sync = SyncPhase::Idle;
                                self.finish_iteration(sched);
                                break;
                            }
                        }
                        SyncPhase::Idle => unreachable!("flow completed with no sync"),
                    }
                }
                self.reschedule_net(sched);
            }
        }
    }
}

/// The DP baseline runtime.
#[derive(Clone, Copy, Debug)]
pub struct DpRuntime {
    /// Gradient synchronisation algorithm.
    pub sync: DpSync,
}

impl Default for DpRuntime {
    fn default() -> Self {
        DpRuntime { sync: DpSync::Ring }
    }
}

#[allow(non_upper_case_globals)]
impl DpRuntime {
    /// A PS-based DP runtime with `servers` shards.
    pub fn parameter_server(servers: usize) -> Self {
        DpRuntime {
            sync: DpSync::ParameterServer { servers },
        }
    }
}

impl TrainingRuntime for DpRuntime {
    fn name(&self) -> &'static str {
        "dp"
    }

    fn run(&self, scenario: &Scenario) -> RunReport {
        scenario.cluster.validate();
        assert!(
            scenario.total_batch % scenario.cluster.nodes as u64 == 0,
            "DP requires the batch to divide evenly across workers"
        );
        if let DpSync::ParameterServer { servers } = self.sync {
            assert!(
                servers >= 1 && servers <= scenario.cluster.nodes,
                "PS shard count must be in 1..=nodes"
            );
        }
        let n = scenario.cluster.nodes;
        let world = DpWorld {
            scenario: scenario.clone(),
            sync_mode: self.sync,
            net: Network::new(scenario.cluster.network),
            net_ev: None,
            busy: vec![BusyTracker::new(); n],
            compute_done: 0,
            sync: SyncPhase::Idle,
            iteration: 0,
            iteration_start: SimTime::ZERO,
            per_iteration_secs: Vec::new(),
            finished_at: None,
        };
        let mut engine = Engine::new(world);
        engine.prime(Ev::IterationStart);
        assert_eq!(engine.run(1 << 32), RunOutcome::Drained);
        let (world, _) = engine.into_world();
        let end = world.finished_at.expect("all iterations completed");

        let mut report = RunReport::new("dp", &scenario.model.name, scenario.total_batch);
        report.iterations = world.iteration;
        report.total_time_secs = end.as_secs_f64();
        report.per_iteration_secs = world.per_iteration_secs;
        report.network_bytes = world.net.bytes_delivered();
        report.worker_busy_secs = world
            .busy
            .iter()
            .map(|b| b.busy_time().as_secs_f64())
            .collect();
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fela_cluster::StragglerModel;
    use fela_model::zoo;

    fn scenario(batch: u64, iters: u64) -> Scenario {
        Scenario::paper(zoo::vgg19(), batch).with_iterations(iters)
    }

    #[test]
    fn completes_and_reports() {
        let r = DpRuntime::default().run(&scenario(128, 3));
        assert_eq!(r.iterations, 3);
        assert_eq!(r.per_iteration_secs.len(), 3);
        assert!(r.average_throughput() > 0.0);
        // Full-model ring all-reduce per iteration: 2·(N−1) rounds of N flows of
        // params/N bytes = 2·(N−1)·params of total wire traffic.
        let expected_sync = 2.0 * 7.0 * zoo::vgg19().param_bytes() as f64 * 3.0;
        let actual = r.network_bytes as f64;
        assert!(
            (actual / expected_sync - 1.0).abs() < 0.01,
            "sync bytes {actual} vs expected {expected_sync}"
        );
    }

    #[test]
    fn straggler_costs_full_delay() {
        // DP has no way to absorb a straggler: PID ≈ d.
        let base = DpRuntime::default().run(&scenario(128, 4));
        let slow = DpRuntime::default().run(&scenario(128, 4).with_straggler(
            StragglerModel::RoundRobin {
                delay: SimDuration::from_secs(4),
            },
        ));
        let pid = (slow.total_time_secs - base.total_time_secs) / 4.0;
        assert!((pid - 4.0).abs() < 0.1, "DP PID {pid} should be ≈ d");
    }

    #[test]
    fn deterministic() {
        let a = DpRuntime::default().run(&scenario(256, 2));
        let b = DpRuntime::default().run(&scenario(256, 2));
        assert_eq!(a.total_time_secs, b.total_time_secs);
    }

    #[test]
    fn crash_restart_stalls_the_whole_iteration() {
        use fela_cluster::{FaultKind, FaultModel};
        // No token recovery: the BSP barrier waits the full downtime out.
        let base = DpRuntime::default().run(&scenario(128, 4));
        let faulted =
            DpRuntime::default().run(&scenario(128, 4).with_fault(FaultModel::Scripted {
                worker: 1,
                iteration: 2,
                kind: FaultKind::CrashRestart {
                    down: SimDuration::from_secs(30),
                },
            }));
        let stall = faulted.total_time_secs - base.total_time_secs;
        assert!(
            (stall - 30.0).abs() < 0.1,
            "DP stall {stall} should be ≈ 30"
        );
    }

    #[test]
    fn network_bytes_flat_in_batch() {
        // DP's defining property (§V-C1): sync volume does not grow with batch.
        let small = DpRuntime::default().run(&scenario(64, 2));
        let large = DpRuntime::default().run(&scenario(1024, 2));
        assert!((small.network_bytes as f64 / large.network_bytes as f64 - 1.0).abs() < 0.01);
        // But compute time does grow.
        assert!(large.total_time_secs > small.total_time_secs);
    }

    #[test]
    #[should_panic(expected = "divide evenly")]
    fn rejects_indivisible_batch() {
        DpRuntime::default().run(&Scenario::paper(zoo::vgg19(), 100).with_iterations(1));
    }

    #[test]
    fn single_parameter_server_is_the_bottleneck() {
        // One PS shard funnels 8 full gradients through one NIC, then fans the
        // parameters back out — far slower than the ring (§II-D's "centralized
        // network bottleneck").
        let sc = scenario(128, 2);
        let ring = DpRuntime::default().run(&sc);
        let ps1 = DpRuntime::parameter_server(1).run(&sc);
        assert!(
            ps1.total_time_secs > 1.5 * ring.total_time_secs,
            "PS(1) {} vs ring {}",
            ps1.total_time_secs,
            ring.total_time_secs
        );
    }

    #[test]
    fn sharding_the_ps_closes_the_gap() {
        let sc = scenario(128, 2);
        let mut last = f64::INFINITY;
        for servers in [1usize, 2, 4, 8] {
            let t = DpRuntime::parameter_server(servers)
                .run(&sc)
                .total_time_secs;
            assert!(
                t <= last * 1.0001,
                "PS({servers}) slower than fewer shards: {t} vs {last}"
            );
            last = t;
        }
    }

    #[test]
    #[should_panic(expected = "PS shard count")]
    fn rejects_zero_servers() {
        DpRuntime::parameter_server(0).run(&scenario(64, 1));
    }
}
