//! The token plan: how one BSP iteration decomposes into tokens (§III-B, §IV-B).
//!
//! Given a partition into `M` sub-models, a weight vector `w` and the total batch,
//! the plan fixes, per level `i`:
//!
//! * `n_i` — tokens per iteration: `n_0 = pow2_ceil(max(⌈B/threshold_0⌉, N))`
//!   and `n_i = n_0 / w_i` (DESIGN.md §3 documents why `n_i` *divides* rather than
//!   multiplies — deeper sub-models need larger per-token batches, as in Figure 3);
//! * `batch_i = B / n_i` — samples per token;
//! * `ratio_i = n_{i-1} / n_i` — how many level-(i−1) completions generate one
//!   level-`i` token.
//!
//! Rounding `n_0` up to a power of two keeps every quantity integral for the
//! power-of-two batch sizes the paper sweeps, mirroring its §IV-B divisibility
//! concerns.

use serde::Serialize;

use crate::config::FelaConfig;
use fela_model::Partition;

/// Per-level token arithmetic.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize)]
pub struct LevelPlan {
    /// Sub-model index.
    pub level: usize,
    /// Tokens per iteration (`n_i`).
    pub tokens_per_iteration: u64,
    /// Samples per token (`batch_i`).
    pub batch_per_token: u64,
    /// Level-(i−1) completions per generated level-i token (1 for level 0).
    pub gen_ratio: u64,
}

/// The complete decomposition of an iteration into tokens.
#[derive(Clone, PartialEq, Eq, Debug, Serialize)]
pub struct TokenPlan {
    /// Per-level plans, index = sub-model index.
    pub levels: Vec<LevelPlan>,
    /// Total batch size per iteration.
    pub total_batch: u64,
}

/// Errors from [`TokenPlan::build`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum PlanError {
    /// Weight vector length does not match the partition's sub-model count.
    WeightCountMismatch {
        /// Number of weights supplied.
        weights: usize,
        /// Number of sub-models in the partition.
        sub_models: usize,
    },
    /// The total batch is too small to give every worker a token.
    BatchTooSmall {
        /// Total batch requested.
        total_batch: u64,
        /// Minimum viable (`n_0`).
        minimum: u64,
    },
    /// A weight exceeds `n_0`, which would leave level `i` with zero tokens.
    WeightTooLarge {
        /// Offending level.
        level: usize,
        /// Its weight.
        weight: u64,
        /// Root token count.
        n0: u64,
    },
    /// Total batch must be a power of two (§V sweeps 64…1024; integrality of
    /// every `batch_i` requires it under power-of-two weights).
    BatchNotPow2 {
        /// Total batch requested.
        total_batch: u64,
    },
}

impl std::fmt::Display for PlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlanError::WeightCountMismatch { weights, sub_models } => write!(
                f,
                "weight vector has {weights} entries but the partition has {sub_models} sub-models"
            ),
            PlanError::BatchTooSmall { total_batch, minimum } => write!(
                f,
                "total batch {total_batch} is smaller than the minimum {minimum} (one token per worker)"
            ),
            PlanError::WeightTooLarge { level, weight, n0 } => write!(
                f,
                "weight {weight} at level {level} exceeds the root token count {n0}"
            ),
            PlanError::BatchNotPow2 { total_batch } => {
                write!(f, "total batch {total_batch} must be a power of two")
            }
        }
    }
}

impl std::error::Error for PlanError {}

impl TokenPlan {
    /// Builds the plan.
    ///
    /// `config.weights` must already satisfy [`FelaConfig::validate`].
    pub fn build(
        partition: &Partition,
        config: &FelaConfig,
        total_batch: u64,
        n_workers: usize,
    ) -> Result<TokenPlan, PlanError> {
        let m = partition.len();
        if config.weights.len() != m {
            return Err(PlanError::WeightCountMismatch {
                weights: config.weights.len(),
                sub_models: m,
            });
        }
        if !total_batch.is_power_of_two() {
            return Err(PlanError::BatchNotPow2 { total_batch });
        }
        let threshold0 = partition.sub_models()[0].threshold_batch.max(1);
        let raw_n0 = total_batch.div_ceil(threshold0).max(n_workers as u64);
        let n0 = raw_n0.next_power_of_two();
        if n0 > total_batch {
            return Err(PlanError::BatchTooSmall {
                total_batch,
                minimum: n0,
            });
        }
        let mut levels = Vec::with_capacity(m);
        let mut prev_n = n0;
        for (i, &w) in config.weights.iter().enumerate() {
            if w > n0 {
                return Err(PlanError::WeightTooLarge {
                    level: i,
                    weight: w,
                    n0,
                });
            }
            let n_i = n0 / w;
            let ratio = if i == 0 { 1 } else { prev_n / n_i };
            levels.push(LevelPlan {
                level: i,
                tokens_per_iteration: n_i,
                batch_per_token: total_batch / n_i,
                gen_ratio: ratio,
            });
            prev_n = n_i;
        }
        Ok(TokenPlan {
            levels,
            total_batch,
        })
    }

    /// Number of sub-models.
    pub fn num_levels(&self) -> usize {
        self.levels.len()
    }

    /// Total tokens per iteration across all levels.
    pub fn tokens_per_iteration(&self) -> u64 {
        self.levels.iter().map(|l| l.tokens_per_iteration).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fela_model::{bin_partition, zoo, PartitionOptions, ThresholdProfile};

    fn vgg_partition() -> Partition {
        bin_partition(
            &zoo::vgg19(),
            &ThresholdProfile::k40c(),
            PartitionOptions::default(),
        )
    }

    #[test]
    fn figure3_shape_with_weights_1_2_4() {
        // Figure 3: total batch 128 → 8 T-1 tokens (batch 16), 4 T-2 (batch 32),
        // 2 T-3 (batch 64), generation ratios 2 and 2.
        let p = vgg_partition();
        let cfg = FelaConfig::new(3).with_weights(vec![1, 2, 4]);
        let plan = TokenPlan::build(&p, &cfg, 128, 8).unwrap();
        let n: Vec<_> = plan.levels.iter().map(|l| l.tokens_per_iteration).collect();
        let b: Vec<_> = plan.levels.iter().map(|l| l.batch_per_token).collect();
        let r: Vec<_> = plan.levels.iter().map(|l| l.gen_ratio).collect();
        assert_eq!(n, vec![8, 4, 2]);
        assert_eq!(b, vec![16, 32, 64]);
        assert_eq!(r, vec![1, 2, 2]);
        assert_eq!(plan.tokens_per_iteration(), 14);
    }

    #[test]
    fn unit_weights_give_uniform_tokens() {
        let p = vgg_partition();
        let cfg = FelaConfig::new(3);
        let plan = TokenPlan::build(&p, &cfg, 256, 8).unwrap();
        for l in &plan.levels {
            assert_eq!(l.tokens_per_iteration, plan.levels[0].tokens_per_iteration);
            assert_eq!(l.gen_ratio, 1);
            assert_eq!(
                l.batch_per_token * l.tokens_per_iteration,
                256,
                "every level covers the full batch"
            );
        }
    }

    #[test]
    fn n0_floor_guarantees_token_per_worker() {
        // Batch 64 with threshold 24: ⌈64/24⌉ = 3 < 8 workers → n_0 = 8.
        let p = vgg_partition();
        let plan = TokenPlan::build(&p, &FelaConfig::new(3), 64, 8).unwrap();
        assert_eq!(plan.levels[0].tokens_per_iteration, 8);
        assert_eq!(plan.levels[0].batch_per_token, 8);
    }

    #[test]
    fn n0_rounds_up_to_pow2_for_divisibility() {
        // Batch 256, threshold 24: ⌈256/24⌉ = 11 → n_0 = 16, batch 16.
        let p = vgg_partition();
        let plan = TokenPlan::build(&p, &FelaConfig::new(3), 256, 8).unwrap();
        assert_eq!(plan.levels[0].tokens_per_iteration, 16);
        assert_eq!(plan.levels[0].batch_per_token, 16);
    }

    #[test]
    fn batch_too_small_is_reported() {
        let p = vgg_partition();
        let err = TokenPlan::build(&p, &FelaConfig::new(3), 4, 8).unwrap_err();
        assert!(matches!(err, PlanError::BatchTooSmall { .. }), "{err}");
    }

    #[test]
    fn weight_count_mismatch_is_reported() {
        let p = vgg_partition();
        let err = TokenPlan::build(&p, &FelaConfig::new(2), 128, 8).unwrap_err();
        assert!(
            matches!(err, PlanError::WeightCountMismatch { .. }),
            "{err}"
        );
    }

    #[test]
    fn non_pow2_batch_rejected() {
        let p = vgg_partition();
        let err = TokenPlan::build(&p, &FelaConfig::new(3), 100, 8).unwrap_err();
        assert!(matches!(err, PlanError::BatchNotPow2 { .. }), "{err}");
    }

    #[test]
    fn oversized_weight_rejected() {
        let p = vgg_partition();
        // n_0 for batch 64 is 8; weight 8 is fine (one token), larger would not be
        // a valid config anyway, so force the error with a tiny cluster/batch.
        let cfg = FelaConfig::new(3).with_weights(vec![1, 8, 8]);
        let plan = TokenPlan::build(&p, &cfg, 64, 8).unwrap();
        assert_eq!(plan.levels[2].tokens_per_iteration, 1);
        assert_eq!(plan.levels[2].batch_per_token, 64);
        // weight 8 with n0 = 8 is the edge; weight larger than n0 errors.
        let cfg_bad = FelaConfig::new(3).with_weights(vec![1, 8, 16]);
        let err = TokenPlan::build(&p, &cfg_bad, 64, 8).unwrap_err();
        assert!(matches!(err, PlanError::WeightTooLarge { .. }), "{err}");
    }

    #[test]
    fn every_level_covers_total_batch() {
        let p = vgg_partition();
        for batch in [64u64, 128, 256, 512, 1024] {
            for w in [[1u64, 1, 1], [1, 2, 4], [1, 8, 8], [2, 4, 8]] {
                let cfg = FelaConfig::new(3).with_weights(w.to_vec());
                let plan = TokenPlan::build(&p, &cfg, batch, 8).unwrap();
                for l in &plan.levels {
                    assert_eq!(l.batch_per_token * l.tokens_per_iteration, batch);
                }
                // Generation ratios multiply out: n_0 = n_{M-1} · Π ratios.
                let prod: u64 = plan.levels.iter().map(|l| l.gen_ratio).product();
                assert_eq!(
                    plan.levels[0].tokens_per_iteration,
                    plan.levels.last().unwrap().tokens_per_iteration * prod
                );
            }
        }
    }
}
