//! Control-plane operation recording: the linearizability hook.
//!
//! When recording is enabled ([`ControlPlane::enable_op_log`]), every
//! *mutating* control-plane call appends one [`CoordOp`] — the operation's
//! inputs ([`OpKind`]) plus its observable outcome ([`OpOutcome`], the
//! linearizability digest: which token was granted to whom at which attempt,
//! which syncs became due, which leases were revoked, or which error was
//! returned).
//!
//! The recorded history can then be replayed, op for op, against a freshly
//! built *monolithic* [`TokenServer`] oracle ([`replay_oplog`]): because the
//! sharded [`Coordinator`] is specified to be observably equivalent to the
//! monolith, any digest divergence pinpoints the first operation where a
//! sharded (or adversarially scheduled) history stops being linearizable
//! against the oracle. `fela-check`'s model checker uses the same hook in
//! lockstep — it drains the log after every explored transition and applies
//! it to an oracle carried inside the model state — so every transition of
//! every explored interleaving is oracle-checked, not just final states.
//!
//! [`ControlPlane::enable_op_log`]: crate::ControlPlane::enable_op_log
//! [`TokenServer`]: crate::TokenServer
//! [`Coordinator`]: crate::Coordinator

use fela_sim::SimTime;

use crate::error::ScheduleError;
use crate::lease::ExpiredLease;
use crate::server::{Grant, SyncSpec};
use crate::token::TokenId;

/// The input half of one recorded control-plane operation.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum OpKind {
    /// [`request`](crate::ControlPlane::request)`(worker, now)`.
    Request {
        /// Requesting worker.
        worker: usize,
        /// Virtual instant of the request.
        now: SimTime,
    },
    /// [`pop_ready_grant`](crate::ControlPlane::pop_ready_grant)`(now)`.
    PopReadyGrant {
        /// Virtual instant of the poll.
        now: SimTime,
    },
    /// [`report`](crate::ControlPlane::report)`(worker, token)`.
    Report {
        /// Reporting worker.
        worker: usize,
        /// Completed token id.
        token: u64,
    },
    /// [`sync_finished`](crate::ControlPlane::sync_finished)`(level, iteration)`.
    SyncFinished {
        /// Synced level.
        level: usize,
        /// Synced iteration.
        iteration: u64,
    },
    /// [`worker_crashed`](crate::ControlPlane::worker_crashed)`(worker)`.
    WorkerCrashed {
        /// Crashed worker.
        worker: usize,
    },
    /// [`worker_restarted`](crate::ControlPlane::worker_restarted)`(worker)`.
    WorkerRestarted {
        /// Restarted worker.
        worker: usize,
    },
    /// [`lease_expired`](crate::ControlPlane::lease_expired)`(token, attempt)`.
    LeaseExpired {
        /// Leased token id.
        token: u64,
        /// Attempt the firing deadline belonged to.
        attempt: u64,
    },
}

/// The observable outcome of one operation — what a linearizability check
/// compares between the recorded history and the oracle.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum OpOutcome {
    /// A request/poll handed out a token.
    Granted {
        /// Grantee.
        worker: usize,
        /// Granted token id.
        token: u64,
        /// Grant attempt (0 = first issue, +1 per revocation).
        attempt: u64,
        /// Whether the grant was flagged as an HF conflict.
        conflict: bool,
        /// Remote fetches the grant requires, `(from_worker, bytes)`.
        fetches: Vec<(usize, u64)>,
    },
    /// A request/poll had nothing to hand out.
    NoGrant,
    /// A report was accepted; these `(level, iteration)` syncs became due.
    Synced {
        /// Sync specs returned, in order.
        syncs: Vec<(usize, u64)>,
    },
    /// A crash revoked these leased tokens.
    Revoked {
        /// Revoked token ids, in order.
        tokens: Vec<u64>,
    },
    /// A lease-deadline fire revoked the lease.
    Expired {
        /// Worker that lost the lease.
        worker: usize,
        /// Token ids revoked (the leased token, possibly + quarantine sweep).
        revoked: Vec<u64>,
        /// Whether the holder was quarantined.
        quarantined: bool,
    },
    /// A lease-deadline fire found the lease already satisfied/superseded.
    NoLease,
    /// The operation succeeded with no other observable result.
    Done,
    /// The operation returned this error.
    Failed(ScheduleError),
}

/// One recorded operation: inputs plus observed outcome.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct CoordOp {
    /// The operation and its inputs.
    pub kind: OpKind,
    /// What it observably did.
    pub outcome: OpOutcome,
}

fn grant_outcome(worker: usize, grant: &Grant) -> OpOutcome {
    OpOutcome::Granted {
        worker,
        token: grant.token.id.0,
        attempt: grant.attempt,
        conflict: grant.conflict,
        fetches: grant.fetches.clone(),
    }
}

/// Digest of a `request` result.
pub(crate) fn outcome_of_request(
    worker: usize,
    result: &Result<Option<Grant>, ScheduleError>,
) -> OpOutcome {
    match result {
        Ok(Some(grant)) => grant_outcome(worker, grant),
        Ok(None) => OpOutcome::NoGrant,
        Err(e) => OpOutcome::Failed(e.clone()),
    }
}

/// Digest of a `pop_ready_grant` result.
pub(crate) fn outcome_of_pop(result: &Result<Option<(usize, Grant)>, ScheduleError>) -> OpOutcome {
    match result {
        Ok(Some((worker, grant))) => grant_outcome(*worker, grant),
        Ok(None) => OpOutcome::NoGrant,
        Err(e) => OpOutcome::Failed(e.clone()),
    }
}

/// Digest of a `report` result.
pub(crate) fn outcome_of_report(result: &Result<Vec<SyncSpec>, ScheduleError>) -> OpOutcome {
    match result {
        Ok(syncs) => OpOutcome::Synced {
            syncs: syncs.iter().map(|s| (s.level, s.iteration)).collect(),
        },
        Err(e) => OpOutcome::Failed(e.clone()),
    }
}

/// Digest of a `worker_crashed` result.
pub(crate) fn outcome_of_crash(result: &Result<Vec<TokenId>, ScheduleError>) -> OpOutcome {
    match result {
        Ok(tokens) => OpOutcome::Revoked {
            tokens: tokens.iter().map(|t| t.0).collect(),
        },
        Err(e) => OpOutcome::Failed(e.clone()),
    }
}

/// Digest of a unit-result op (`sync_finished`, `worker_restarted`).
pub(crate) fn outcome_of_unit(result: &Result<(), ScheduleError>) -> OpOutcome {
    match result {
        Ok(()) => OpOutcome::Done,
        Err(e) => OpOutcome::Failed(e.clone()),
    }
}

/// Digest of a `lease_expired` result.
pub(crate) fn outcome_of_expiry(result: &Result<Option<ExpiredLease>, ScheduleError>) -> OpOutcome {
    match result {
        Ok(Some(expired)) => OpOutcome::Expired {
            worker: expired.worker,
            revoked: expired.revoked.iter().map(|t| t.0).collect(),
            quarantined: expired.quarantined,
        },
        Ok(None) => OpOutcome::NoLease,
        Err(e) => OpOutcome::Failed(e.clone()),
    }
}

/// Applies one recorded operation's inputs to `plane` and returns the digest
/// of what *this* plane did — the oracle half of a lockstep comparison.
pub fn apply_op(plane: &mut crate::ControlPlane, kind: &OpKind) -> OpOutcome {
    match kind {
        OpKind::Request { worker, now } => {
            outcome_of_request(*worker, &plane.request(*worker, *now))
        }
        OpKind::PopReadyGrant { now } => outcome_of_pop(&plane.pop_ready_grant(*now)),
        OpKind::Report { worker, token } => {
            outcome_of_report(&plane.report(*worker, TokenId(*token)))
        }
        OpKind::SyncFinished { level, iteration } => {
            outcome_of_unit(&plane.sync_finished(*level, *iteration))
        }
        OpKind::WorkerCrashed { worker } => outcome_of_crash(&plane.worker_crashed(*worker)),
        OpKind::WorkerRestarted { worker } => outcome_of_unit(&plane.worker_restarted(*worker)),
        OpKind::LeaseExpired { token, attempt } => {
            outcome_of_expiry(&plane.lease_expired(TokenId(*token), *attempt))
        }
    }
}

/// The first operation at which a recorded history and the oracle disagree.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct OpDivergence {
    /// Index into the recorded history.
    pub index: usize,
    /// The diverging operation's inputs.
    pub kind: OpKind,
    /// What the recorded plane observed.
    pub recorded: OpOutcome,
    /// What the oracle observed for the same inputs.
    pub oracle: OpOutcome,
}

impl std::fmt::Display for OpDivergence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "op {} ({:?}): recorded outcome {:?}, oracle outcome {:?}",
            self.index, self.kind, self.recorded, self.oracle
        )
    }
}

/// Replays a recorded history against `oracle` (typically a freshly built
/// monolithic plane with the same plan/config), comparing every op's digest.
/// Returns the first divergence, if any.
pub fn replay_oplog(
    ops: &[CoordOp],
    oracle: &mut crate::ControlPlane,
) -> Result<(), Box<OpDivergence>> {
    for (index, op) in ops.iter().enumerate() {
        let got = apply_op(oracle, &op.kind);
        if got != op.outcome {
            return Err(Box::new(OpDivergence {
                index,
                kind: op.kind.clone(),
                recorded: op.outcome.clone(),
                oracle: got,
            }));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ControlPlane, FelaConfig, LevelMeta, LevelPlan, TokenPlan};

    fn small_plan() -> TokenPlan {
        TokenPlan {
            levels: vec![
                LevelPlan {
                    level: 0,
                    tokens_per_iteration: 2,
                    batch_per_token: 4,
                    gen_ratio: 1,
                },
                LevelPlan {
                    level: 1,
                    tokens_per_iteration: 1,
                    batch_per_token: 8,
                    gen_ratio: 2,
                },
            ],
            total_batch: 8,
        }
    }

    fn meta() -> Vec<LevelMeta> {
        vec![
            LevelMeta {
                param_bytes: 4096,
                output_bytes_per_sample: 64,
                input_bytes_per_sample: 64,
                comm_intensive: false,
            },
            LevelMeta {
                param_bytes: 8192,
                output_bytes_per_sample: 32,
                input_bytes_per_sample: 64,
                comm_intensive: false,
            },
        ]
    }

    fn plane(shards: usize) -> ControlPlane {
        let cfg = FelaConfig::new(2)
            .with_weights(vec![1, 2])
            .with_shards(shards);
        ControlPlane::new(small_plan(), cfg, meta(), 2, 2)
    }

    /// Drives one full 2-iteration run on `plane`, recording everything.
    fn drive(plane: &mut ControlPlane) -> Vec<CoordOp> {
        plane.enable_op_log();
        let now = SimTime::ZERO;
        while !plane.run_complete() {
            let mut progressed = false;
            for w in 0..2 {
                if let Ok(Some(grant)) = plane.request(w, now) {
                    let syncs = plane.report(w, grant.token.id).expect("report accepted");
                    for s in syncs {
                        plane.sync_finished(s.level, s.iteration).expect("sync");
                    }
                    progressed = true;
                }
            }
            while let Ok(Some((w, grant))) = plane.pop_ready_grant(now) {
                let syncs = plane.report(w, grant.token.id).expect("report accepted");
                for s in syncs {
                    plane.sync_finished(s.level, s.iteration).expect("sync");
                }
                progressed = true;
            }
            assert!(progressed, "run must make progress");
        }
        plane.take_op_log()
    }

    #[test]
    fn recording_is_off_by_default_and_drains_when_on() {
        let mut p = plane(1);
        assert!(!p.op_log_enabled());
        let _ = p.request(0, SimTime::ZERO);
        assert!(p.take_op_log().is_empty());
        p.enable_op_log();
        let _ = p.request(1, SimTime::ZERO);
        let log = p.take_op_log();
        assert_eq!(log.len(), 1);
        assert!(matches!(log[0].kind, OpKind::Request { worker: 1, .. }));
        assert!(p.take_op_log().is_empty(), "take drains");
    }

    #[test]
    fn sharded_history_replays_cleanly_against_the_monolithic_oracle() {
        let mut sharded = plane(2);
        let ops = drive(&mut sharded);
        assert!(
            ops.iter()
                .any(|op| matches!(op.outcome, OpOutcome::Granted { .. })),
            "the run must contain grants"
        );
        let mut oracle = plane(1);
        replay_oplog(&ops, &mut oracle).expect("sharded history is linearizable vs the oracle");
        assert!(oracle.run_complete(), "oracle finishes the same run");
    }

    #[test]
    fn a_tampered_outcome_is_pinpointed_by_index() {
        let mut sharded = plane(2);
        let mut ops = drive(&mut sharded);
        let idx = ops
            .iter()
            .position(|op| matches!(op.outcome, OpOutcome::Granted { .. }))
            .expect("some grant");
        // Pretend the recorded plane granted a different token.
        if let OpOutcome::Granted { token, .. } = &mut ops[idx].outcome {
            *token += 1000;
        }
        let mut oracle = plane(1);
        let div = replay_oplog(&ops, &mut oracle).expect_err("tamper must be caught");
        assert_eq!(div.index, idx);
        assert!(matches!(div.oracle, OpOutcome::Granted { .. }));
        assert_ne!(div.recorded, div.oracle);
    }
}
