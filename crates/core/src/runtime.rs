//! The Fela runtime: TS + workers + network + GPU, wired into the discrete-event
//! simulator (§III-A workflow).
//!
//! Event flow per token:
//!
//! ```text
//! worker idle ──RPC──▶ RequestArrive @TS ──RPC(+conflict penalty)──▶ GrantArrive
//!      ▲                                                            │
//!      │                         dependency flows (from holders) ───┤
//!      │                                                            ▼
//! ReportArrive @TS ◀──RPC── ComputeDone ◀── compute(+straggler) ── start
//! ```
//!
//! Reports piggyback the next request (§III-D "Fela combines report and request").
//! When a level's last token completes, its parameters ring-all-reduce among the
//! sync group *without blocking trainers* (§III-A); the BSP barrier closes an
//! iteration once all tokens are trained and all syncs have drained.

use fela_cluster::{Scenario, TrainingRuntime};
use fela_metrics::RunReport;
use fela_model::{bin_partition, Partition, PartitionOptions};
use fela_net::{FlowSpec, Network, NodeId, RingAllReduce};
use fela_sim::{
    BusyTracker, Engine, EventId, EventKind, Scheduler, SimDuration, SimTime, Trace, World,
};

use crate::config::FelaConfig;
use crate::error::ScheduleError;
use crate::plan::TokenPlan;
use crate::server::{Grant, LevelMeta, SyncSpec, TokenServer};
use crate::token::TokenId;

/// The simulation runtime treats any scheduling error as a fatal bug in the
/// scheduler itself (a real deployment would abort the job the same way).
fn sched_ok<T>(result: Result<T, ScheduleError>) -> T {
    match result {
        Ok(v) => v,
        Err(e) => panic!("Fela scheduler invariant violated: {e}"),
    }
}

/// Tag namespace for network flows: dependency fetches carry the token id,
/// sync flows carry the level.
const TAG_DEP: u64 = 1 << 62;
const TAG_SYNC: u64 = 2 << 62;

fn dep_tag(token: TokenId) -> u64 {
    TAG_DEP | token.0
}

fn sync_tag(level: usize, iteration: u64) -> u64 {
    // Under SSP staleness two syncs of one level can be in flight concurrently,
    // so the tag carries both coordinates.
    TAG_SYNC | ((level as u64) << 40) | (iteration & 0xFF_FFFF_FFFF)
}

enum Ev {
    /// A worker's token request reaches the TS.
    RequestArrive { worker: usize },
    /// A grant reaches the worker.
    GrantArrive { worker: usize, grant: Grant },
    /// The worker's GPU finishes a token.
    ComputeDone { worker: usize },
    /// A completion report (with piggybacked request) reaches the TS.
    ReportArrive { worker: usize, token: TokenId },
    /// The network has one or more flows completing now.
    NetWake,
}

struct WorkerState {
    current: Option<Grant>,
    pending_fetches: usize,
}

struct ActiveSync {
    level: usize,
    iteration: u64,
    collective: RingAllReduce,
}

struct FelaWorld {
    trace: Trace,
    scenario: Scenario,
    partition: Partition,
    server: TokenServer,
    net: Network,
    net_ev: Option<EventId>,
    workers: Vec<WorkerState>,
    syncs: Vec<ActiveSync>,
    busy: Vec<BusyTracker>,
    /// Start instant of each released iteration (straggler floors).
    iter_starts: Vec<SimTime>,
    /// Completion instant of each fully synced iteration.
    iter_done: Vec<SimTime>,
    finished_at: Option<SimTime>,
}

impl FelaWorld {
    fn rpc(&self) -> SimDuration {
        self.server.config().rpc_latency
    }

    fn reschedule_net(&mut self, sched: &mut Scheduler<'_, Ev>) {
        if let Some(ev) = self.net_ev.take() {
            sched.cancel(ev);
        }
        if let Some(t) = self.net.next_completion() {
            // A flow can "complete" marginally in the past after float rounding;
            // clamp to now.
            let at = t.max(sched.now());
            self.net_ev = Some(sched.schedule_at(at, Ev::NetWake));
        }
    }

    fn schedule_grant(&mut self, worker: usize, grant: Grant, sched: &mut Scheduler<'_, Ev>) {
        let mut delay = self.rpc();
        if grant.conflict {
            delay += self.server.config().conflict_penalty;
        }
        sched.schedule_in(delay, Ev::GrantArrive { worker, grant });
    }

    fn serve_waiting(&mut self, sched: &mut Scheduler<'_, Ev>) {
        while let Some((worker, grant)) = sched_ok(self.server.pop_ready_grant(sched.now())) {
            self.schedule_grant(worker, grant, sched);
        }
    }

    fn start_compute(&mut self, worker: usize, sched: &mut Scheduler<'_, Ev>) {
        let Some(grant) = self.workers[worker].current.as_ref() else {
            panic!("worker {worker} started compute without a grant");
        };
        let sm = &self.partition.sub_models()[grant.token.level];
        let secs = self.scenario.cluster.compute_secs(
            &self.scenario.model,
            sm.unit_start,
            sm.unit_end,
            grant.token.batch,
            worker,
        );
        // Straggler sleep (§V-C2): the worker cannot start computing before
        // its iteration's start + d, so the sleep overlaps any scheduling idle
        // time (and overlapping iterations each charge their own sleep).
        let iter = grant.token.iteration;
        let floor = self.iter_starts[iter as usize] + self.scenario.straggler_delay(iter, worker);
        let start = sched.now().max(floor);
        self.busy[worker].begin(start);
        sched.schedule_at(
            start + SimDuration::from_secs_f64(secs),
            Ev::ComputeDone { worker },
        );
    }

    fn start_syncs(&mut self, specs: Vec<SyncSpec>, sched: &mut Scheduler<'_, Ev>) {
        let now = sched.now();
        for spec in specs {
            self.trace.record_kind(
                now,
                "sync",
                EventKind::SyncStart {
                    level: spec.level,
                    iteration: spec.iteration,
                },
                || {
                    format!(
                        "all-reduce level {} iter {} ({} MB among {:?})",
                        spec.level + 1,
                        spec.iteration,
                        spec.bytes / 1_000_000,
                        spec.participants
                    )
                },
            );
            if spec.is_degenerate() {
                // Nothing crosses the wire: the update commits instantly, but the
                // commit point still appears in the trace for checkers.
                self.trace.record_kind(
                    now,
                    "sync",
                    EventKind::SyncDone {
                        level: spec.level,
                        iteration: spec.iteration,
                    },
                    || {
                        format!(
                            "degenerate sync level {} iter {} committed for free",
                            spec.level + 1,
                            spec.iteration
                        )
                    },
                );
                sched_ok(self.server.sync_finished(spec.level, spec.iteration));
                continue;
            }
            let participants = spec.participants.iter().map(|&w| NodeId(w)).collect();
            let collective = RingAllReduce::start(
                &mut self.net,
                now,
                participants,
                spec.bytes,
                sync_tag(spec.level, spec.iteration),
            );
            debug_assert!(!collective.is_done(), "non-degenerate syncs move bytes");
            self.syncs.push(ActiveSync {
                level: spec.level,
                iteration: spec.iteration,
                collective,
            });
        }
    }

    /// Reconciles with the server after any state change: records newly released
    /// iterations (for straggler floors), newly completed iterations, serves
    /// waiting workers, and detects run completion.
    fn after_server_change(&mut self, sched: &mut Scheduler<'_, Ev>) {
        let now = sched.now();
        while (self.iter_starts.len() as u64) < self.server.released_root_iterations() {
            self.iter_starts.push(now);
        }
        while (self.iter_done.len() as u64) < self.server.completed_iterations() {
            self.iter_done.push(now);
        }
        self.serve_waiting(sched);
        if self.server.run_complete() {
            self.finished_at = Some(now);
        }
    }

    fn on_flow_done(
        &mut self,
        id: fela_net::FlowId,
        spec: FlowSpec,
        sched: &mut Scheduler<'_, Ev>,
    ) {
        let now = sched.now();
        if spec.tag & TAG_DEP != 0 {
            let token = TokenId(spec.tag & !TAG_DEP);
            let worker = spec.dst.0;
            let state = &mut self.workers[worker];
            let waiting_for_this = state
                .current
                .as_ref()
                .is_some_and(|g| g.token.id == token && state.pending_fetches > 0);
            assert!(
                waiting_for_this,
                "dep flow for token {token:?} arrived at worker {worker} unexpectedly"
            );
            state.pending_fetches -= 1;
            if state.pending_fetches == 0 {
                self.start_compute(worker, sched);
            }
        } else {
            debug_assert!(spec.tag & TAG_SYNC != 0, "unknown flow tag {}", spec.tag);
            let mut finished: Vec<(usize, u64)> = Vec::new();
            for sync in &mut self.syncs {
                if sync.collective.tag() == spec.tag {
                    use fela_net::CollectiveProgress as P;
                    match sync.collective.on_flow_complete(&mut self.net, now, id) {
                        P::Done => finished.push((sync.level, sync.iteration)),
                        P::NotMine => unreachable!("tag matched but flow not owned"),
                        P::InProgress | P::RoundStarted => {}
                    }
                    break;
                }
            }
            for (level, iteration) in finished {
                self.syncs
                    .retain(|s| !(s.level == level && s.iteration == iteration));
                self.trace.record_kind(
                    now,
                    "sync",
                    EventKind::SyncDone { level, iteration },
                    || format!("all-reduce level {} iter {} done", level + 1, iteration),
                );
                sched_ok(self.server.sync_finished(level, iteration));
                self.after_server_change(sched);
            }
        }
    }
}

impl World for FelaWorld {
    type Event = Ev;

    fn handle(&mut self, now: SimTime, event: Ev, sched: &mut Scheduler<'_, Ev>) {
        match event {
            Ev::RequestArrive { worker } => {
                if let Some(grant) = sched_ok(self.server.request(worker, now)) {
                    self.schedule_grant(worker, grant, sched);
                }
            }
            Ev::GrantArrive { worker, grant } => {
                self.trace.record_kind(
                    now,
                    "ts",
                    EventKind::Grant {
                        worker,
                        token: grant.token.id.0,
                        level: grant.token.level,
                        iteration: grant.token.iteration,
                        deps: grant.token.deps.iter().map(|d| d.0).collect(),
                    },
                    || {
                        format!(
                        "grant token {} (level {}, iter {}, batch {}) to worker {} ({} fetches{})",
                        grant.token.id.0,
                        grant.token.level + 1,
                        grant.token.iteration,
                        grant.token.batch,
                        worker,
                        grant.fetches.len(),
                        if grant.conflict { ", conflicted" } else { "" }
                    )
                    },
                );
                let fetches = grant.fetches.clone();
                let token = grant.token.id;
                let state = &mut self.workers[worker];
                debug_assert!(state.current.is_none(), "worker {worker} double-granted");
                state.current = Some(grant);
                state.pending_fetches = fetches.len();
                if fetches.is_empty() {
                    self.start_compute(worker, sched);
                } else {
                    for (holder, bytes) in fetches {
                        self.net.start_flow(
                            now,
                            FlowSpec {
                                src: NodeId(holder),
                                dst: NodeId(worker),
                                bytes,
                                tag: dep_tag(token),
                            },
                        );
                    }
                    self.reschedule_net(sched);
                }
            }
            Ev::ComputeDone { worker } => {
                let Some(grant) = self.workers[worker].current.take() else {
                    panic!("worker {worker} finished compute without a grant");
                };
                self.trace.record_kind(
                    now,
                    "worker",
                    EventKind::Complete {
                        worker,
                        token: grant.token.id.0,
                        level: grant.token.level,
                        iteration: grant.token.iteration,
                    },
                    || {
                        format!(
                            "worker {} finished token {} (level {})",
                            worker,
                            grant.token.id.0,
                            grant.token.level + 1
                        )
                    },
                );
                self.busy[worker].end(now);
                sched.schedule_in(
                    self.rpc(),
                    Ev::ReportArrive {
                        worker,
                        token: grant.token.id,
                    },
                );
            }
            Ev::ReportArrive { worker, token } => {
                let syncs = sched_ok(self.server.report(worker, token));
                if !syncs.is_empty() {
                    self.start_syncs(syncs, sched);
                    self.reschedule_net(sched);
                }
                // Piggybacked request for the reporter, then any other waiters.
                if let Some(grant) = sched_ok(self.server.request(worker, now)) {
                    self.schedule_grant(worker, grant, sched);
                }
                self.after_server_change(sched);
            }
            Ev::NetWake => {
                self.net_ev = None;
                let completions = self.net.take_completions(now);
                for (id, spec) in completions {
                    self.on_flow_done(id, spec, sched);
                }
                self.reschedule_net(sched);
            }
        }
    }
}

/// The Fela training runtime (implements [`TrainingRuntime`]).
pub struct FelaRuntime {
    /// Scheduling/tuning configuration.
    pub config: FelaConfig,
    /// Partitioning options (defaults reproduce the paper's 3-way splits).
    pub partition_options: PartitionOptions,
}

impl FelaRuntime {
    /// A runtime with the given configuration and default partitioning.
    pub fn new(config: FelaConfig) -> Self {
        FelaRuntime {
            config,
            partition_options: PartitionOptions::default(),
        }
    }

    /// Builds the partition this runtime would use for a scenario's model.
    pub fn partition_for(&self, scenario: &Scenario) -> Partition {
        bin_partition(
            &scenario.model,
            &scenario.cluster.compute.profile,
            self.partition_options,
        )
    }
}

impl FelaRuntime {
    /// Runs a scenario with schedule tracing enabled, returning the report and
    /// the recorded trace (grants, completions and syncs with virtual
    /// timestamps). Tracing costs formatting time, so [`TrainingRuntime::run`]
    /// leaves it off.
    pub fn run_traced(&self, scenario: &Scenario) -> (RunReport, Trace) {
        self.run_impl(scenario, Trace::enabled())
    }

    fn run_impl(&self, scenario: &Scenario, trace: Trace) -> (RunReport, Trace) {
        scenario.cluster.validate();
        let partition = self.partition_for(scenario);
        let plan = match TokenPlan::build(
            &partition,
            &self.config,
            scenario.total_batch,
            scenario.cluster.nodes,
        ) {
            Ok(plan) => plan,
            Err(e) => panic!("scenario must admit a token plan: {e}"),
        };
        let meta: Vec<LevelMeta> = partition
            .sub_models()
            .iter()
            .map(|s| LevelMeta {
                param_bytes: s.param_bytes,
                output_bytes_per_sample: s.output_bytes_per_sample,
                input_bytes_per_sample: s.input_bytes_per_sample,
                comm_intensive: s.comm_intensive,
            })
            .collect();
        let n = scenario.cluster.nodes;
        let server = TokenServer::new(plan, self.config.clone(), meta, n, scenario.iterations);
        let world = FelaWorld {
            trace,
            scenario: scenario.clone(),
            partition,
            server,
            net: Network::new(scenario.cluster.network),
            net_ev: None,
            workers: (0..n)
                .map(|_| WorkerState {
                    current: None,
                    pending_fetches: 0,
                })
                .collect(),
            syncs: Vec::new(),
            busy: vec![BusyTracker::new(); n],
            iter_starts: vec![SimTime::ZERO],
            iter_done: Vec::new(),
            finished_at: None,
        };
        let mut engine = Engine::new(world);
        // Every worker fires its first request at t=0 (arrives after one RPC).
        for worker in 0..n {
            engine.prime_at(
                SimTime::ZERO + self.config.rpc_latency,
                Ev::RequestArrive { worker },
            );
        }
        let outcome = engine.run(1 << 32);
        assert_eq!(
            outcome,
            fela_sim::RunOutcome::Drained,
            "Fela simulation hit the step backstop"
        );
        let (world, _) = engine.into_world();
        let Some(end) = world.finished_at else {
            panic!("simulation drained before completing all iterations");
        };

        let mut report = RunReport::new("fela", &scenario.model.name, scenario.total_batch);
        report.iterations = world.iter_done.len() as u64;
        report.total_time_secs = end.as_secs_f64();
        // Per-iteration times are the gaps between successive iteration-complete
        // instants (iterations overlap, so these are pipeline-steady-state gaps).
        report.per_iteration_secs = world
            .iter_done
            .iter()
            .scan(SimTime::ZERO, |prev, &t| {
                let dt = t.since(*prev).as_secs_f64();
                *prev = t;
                Some(dt)
            })
            .collect();
        report.network_bytes = world.net.bytes_delivered();
        report.worker_busy_secs = world
            .busy
            .iter()
            .map(|b| b.busy_time().as_secs_f64())
            .collect();
        let stats = world.server.stats();
        report.bump("grants", stats.grants);
        report.bump("local_grants", stats.local_grants);
        report.bump("steals", stats.steals);
        report.bump("conflicts", stats.conflicts);
        report.bump("remote_fetch_bytes", stats.remote_fetch_bytes);
        report.bump("starved_requests", stats.starved_requests);
        for (w, &count) in world.server.trained_per_worker().iter().enumerate() {
            report.bump(&format!("tokens_worker{w}"), count);
        }
        (report, world.trace)
    }
}

impl TrainingRuntime for FelaRuntime {
    fn name(&self) -> &'static str {
        "fela"
    }

    fn run(&self, scenario: &Scenario) -> RunReport {
        self.run_impl(scenario, Trace::disabled()).0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fela_cluster::StragglerModel;
    use fela_model::zoo;

    fn quick_scenario(batch: u64) -> Scenario {
        Scenario::paper(zoo::vgg19(), batch).with_iterations(3)
    }

    fn runtime(weights: Vec<u64>) -> FelaRuntime {
        FelaRuntime::new(FelaConfig::new(3).with_weights(weights))
    }

    #[test]
    fn completes_all_iterations() {
        let r = runtime(vec![1, 2, 4]).run(&quick_scenario(128));
        assert_eq!(r.iterations, 3);
        assert_eq!(r.per_iteration_secs.len(), 3);
        assert!(r.total_time_secs > 0.0);
        assert!(r.average_throughput() > 0.0);
    }

    #[test]
    fn token_conservation() {
        let r = runtime(vec![1, 2, 4]).run(&quick_scenario(128));
        // 8 + 4 + 2 tokens per iteration × 3 iterations.
        assert_eq!(r.counter("grants"), 14 * 3);
        let per_worker: u64 = (0..8)
            .map(|w| r.counter(&format!("tokens_worker{w}")))
            .sum();
        assert_eq!(per_worker, 14 * 3);
    }

    #[test]
    fn deterministic_runs() {
        let a = runtime(vec![1, 2, 4]).run(&quick_scenario(128));
        let b = runtime(vec![1, 2, 4]).run(&quick_scenario(128));
        assert_eq!(a.total_time_secs, b.total_time_secs);
        assert_eq!(a.network_bytes, b.network_bytes);
        assert_eq!(a.counters, b.counters);
    }

    #[test]
    fn stragglers_slow_the_run_down() {
        let base = runtime(vec![1, 2, 4]).run(&quick_scenario(128));
        let slow = runtime(vec![1, 2, 4]).run(&quick_scenario(128).with_straggler(
            StragglerModel::RoundRobin {
                delay: SimDuration::from_secs(2),
            },
        ));
        assert!(slow.total_time_secs > base.total_time_secs);
        // Token counts unchanged — only timing shifts.
        assert_eq!(slow.counter("grants"), base.counter("grants"));
    }

    #[test]
    fn straggler_delay_mostly_absorbed() {
        // With token stealing, one 2 s straggler per iteration should cost the
        // 8-worker cluster well under the full 2 s per iteration.
        let base = runtime(vec![1, 2, 4]).run(&quick_scenario(256));
        let slow = runtime(vec![1, 2, 4]).run(&quick_scenario(256).with_straggler(
            StragglerModel::RoundRobin {
                delay: SimDuration::from_secs(2),
            },
        ));
        let pid = (slow.total_time_secs - base.total_time_secs) / 3.0;
        assert!(
            pid < 2.0,
            "per-iteration delay {pid} should be < full sleep"
        );
        assert!(pid > 0.0);
    }

    #[test]
    fn hf_off_causes_conflicts_and_remote_fetches() {
        let on = runtime(vec![1, 2, 4]).run(&quick_scenario(128));
        let off = FelaRuntime::new(
            FelaConfig::new(3)
                .with_weights(vec![1, 2, 4])
                .with_hf(false),
        )
        .run(&quick_scenario(128));
        assert!(off.counter("conflicts") > on.counter("conflicts"));
        assert!(
            off.counter("remote_fetch_bytes") > on.counter("remote_fetch_bytes"),
            "global bucket loses sample affinity"
        );
        assert!(off.total_time_secs >= on.total_time_secs);
    }

    #[test]
    fn ctd_reduces_network_bytes() {
        let no_ctd = runtime(vec![1, 2, 4]).run(&quick_scenario(128));
        let ctd = FelaRuntime::new(FelaConfig::new(3).with_weights(vec![1, 2, 4]).with_ctd(2))
            .run(&quick_scenario(128));
        // FC params sync among 2 instead of 8 → fewer sync bytes on the wire.
        assert!(ctd.network_bytes < no_ctd.network_bytes);
    }

    #[test]
    fn utilization_is_sane() {
        let r = runtime(vec![1, 2, 4]).run(&quick_scenario(1024));
        let u = r.mean_utilization();
        assert!(u > 0.05 && u <= 1.0, "utilization {u}");
    }

    #[test]
    fn pipelining_improves_throughput() {
        let sc = quick_scenario(128).with_iterations(6);
        let piped = runtime(vec![1, 2, 4]).run(&sc);
        let barrier = FelaRuntime::new(
            FelaConfig::new(3)
                .with_weights(vec![1, 2, 4])
                .with_pipelining(false),
        )
        .run(&sc);
        assert!(
            piped.average_throughput() > barrier.average_throughput(),
            "pipelined {} vs barrier {}",
            piped.average_throughput(),
            barrier.average_throughput()
        );
        // Both process identical token counts.
        assert_eq!(piped.counter("grants"), barrier.counter("grants"));
    }

    #[test]
    fn ssp_staleness_tolerates_stragglers_better() {
        let sc =
            quick_scenario(128)
                .with_iterations(6)
                .with_straggler(StragglerModel::RoundRobin {
                    delay: SimDuration::from_secs(4),
                });
        let bsp = runtime(vec![1, 2, 4]).run(&sc);
        let ssp = FelaRuntime::new(
            FelaConfig::new(3)
                .with_weights(vec![1, 2, 4])
                .with_staleness(1),
        )
        .run(&sc);
        assert!(
            ssp.average_throughput() >= bsp.average_throughput(),
            "SSP {} must not lose to BSP {} under stragglers",
            ssp.average_throughput(),
            bsp.average_throughput()
        );
        assert_eq!(ssp.counter("grants"), bsp.counter("grants"));
    }

    #[test]
    fn googlenet_runs_too() {
        let scenario = Scenario::paper(zoo::googlenet(), 256).with_iterations(2);
        let r = runtime(vec![1, 1, 2]).run(&scenario);
        assert_eq!(r.iterations, 2);
        assert!(r.total_time_secs > 0.0);
    }
}
